#ifndef CONQUER_BENCH_BENCH_UTIL_H_
#define CONQUER_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "exec/batch.h"
#include "gen/tpch_dirty.h"

namespace conquer {
namespace bench {

/// Returns a cached dirty TPC-H database for (scale factor in thousandths,
/// inconsistency factor). Generation, identifier propagation, index build
/// and statistics run once per configuration, outside any timed region.
inline TpchDirtyDatabase& GetCachedDb(int sf_milli, int iff) {
  static std::map<std::pair<int, int>, std::unique_ptr<TpchDirtyDatabase>>
      cache;
  auto key = std::make_pair(sf_milli, iff);
  auto it = cache.find(key);
  if (it == cache.end()) {
    TpchDirtyConfig config;
    config.scale_factor = sf_milli / 1000.0;
    config.inconsistency_factor = iff;
    config.seed = 20060402;
    auto gen = MakeTpchDirtyDatabase(config);
    if (!gen.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   gen.status().ToString().c_str());
      std::abort();
    }
    auto db = std::make_unique<TpchDirtyDatabase>(std::move(gen).value());
    Status s = db->BuildIndexesAndStats();
    if (!s.ok()) {
      std::fprintf(stderr, "index build failed: %s\n", s.ToString().c_str());
      std::abort();
    }
    it = cache.emplace(key, std::move(db)).first;
  }
  return *it->second;
}

/// Parses and strips a `--threads=N` flag from argv. Call before
/// benchmark::Initialize (which rejects flags it does not know). Returns
/// the worker-thread sweep the benchmark should register: powers of two up
/// to N plus N itself, e.g. `--threads=6` -> {1, 2, 4, 6}. Without the
/// flag the sweep is {1} (sequential only).
inline std::vector<int> ParseThreadSweep(int* argc, char** argv) {
  int max_threads = 1;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    std::string_view arg = argv[r];
    if (arg.rfind("--threads=", 0) == 0) {
      // argv strings are NUL-terminated, so the tail is atoi-safe.
      max_threads = std::atoi(arg.data() + 10);
      if (max_threads < 1) max_threads = 1;
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  std::vector<int> sweep;
  for (int t = 1; t < max_threads; t *= 2) sweep.push_back(t);
  if (sweep.empty() || sweep.back() != max_threads) sweep.push_back(max_threads);
  return sweep;
}

/// Parses and strips a `--json=PATH` flag from argv (same contract as
/// ParseThreadSweep: call before benchmark::Initialize). Returns PATH, or
/// an empty string when the flag is absent.
inline std::string ParseJsonPath(int* argc, char** argv) {
  std::string path;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    std::string_view arg = argv[r];
    if (arg.rfind("--json=", 0) == 0) {
      path.assign(arg.substr(7));
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  return path;
}

/// Reads one "<key>:   <n> kB" line from /proc/self/status, in MiB.
/// Returns -1 when the key is absent (non-Linux).
inline double ReadProcStatusMb(std::string_view key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key.data(), 0) == 0 &&
        line.compare(0, key.size(), key) == 0 &&
        line.size() > key.size() && line[key.size()] == ':') {
      return std::atof(line.c_str() + key.size() + 1) / 1024.0;
    }
  }
  return -1;
}

/// Peak resident set size (VmHWM) of this process in MiB.
inline double ReadPeakRssMb() { return ReadProcStatusMb("VmHWM"); }

/// Current resident set size (VmRSS) in MiB.
inline double CurrentRssMb() { return ReadProcStatusMb("VmRSS"); }

/// Resets the kernel's peak-RSS watermark to the current RSS (writes "5" to
/// /proc/self/clear_refs), so VmHWM measures only what happens after setup.
/// Returns false when unsupported.
inline bool ResetPeakRss() {
  std::ofstream out("/proc/self/clear_refs");
  if (!out) return false;
  out << "5";
  out.close();
  return static_cast<bool>(out);
}

/// Total bytes of regular files directly inside `dir`, in MiB (the on-disk
/// footprint of a saved database directory).
inline double DirSizeMb(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  uint64_t bytes = 0;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) bytes += entry.file_size(ec);
  }
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/// Best-effort short git revision of the working tree, "unknown" when the
/// binary runs outside a checkout. Recorded in benchmark JSON so results
/// can be matched to the code that produced them.
inline std::string GitShortSha() {
  std::string sha = "unknown";
  FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe != nullptr) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      std::string_view line(buf);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.remove_suffix(1);
      }
      if (!line.empty()) sha.assign(line);
    }
    pclose(pipe);
  }
  return sha;
}

/// Console reporter that additionally records every run into a JSON file:
/// per-benchmark wall-clock ms, rows/sec (from the `result_rows` counter
/// when the benchmark sets one), thread count, plus top-level batch size
/// and git sha. Pass an empty path to get plain console behaviour.
class JsonReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      const double wall_s = run.real_accumulated_time /
                            static_cast<double>(run.iterations);
      Entry e;
      e.name = run.benchmark_name();
      e.wall_ms = wall_s * 1e3;
      e.threads = ThreadsFromName(e.name);
      auto rows = run.counters.find("result_rows");
      if (rows != run.counters.end() && wall_s > 0) {
        e.rows_per_sec = rows->second.value / wall_s;
      }
      // Out-of-core instrumentation counters pass straight through.
      for (const char* key : {"peak_rss_mb", "baseline_rss_mb", "budget_mb",
                              "data_mb", "chunks_loaded", "pool_peak_mb"}) {
        auto it = run.counters.find(key);
        if (it != run.counters.end()) {
          e.extras.emplace_back(key, it->second.value);
        }
      }
      entries_.push_back(std::move(e));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  void Finalize() override {
    if (!path_.empty()) WriteJson();
    ConsoleReporter::Finalize();
  }

 private:
  struct Entry {
    std::string name;
    double wall_ms = 0;
    double rows_per_sec = -1;  // absent when < 0
    int threads = 1;
    std::vector<std::pair<std::string, double>> extras;
  };

  /// Benchmark names embed the worker count as ".../threads:N".
  static int ThreadsFromName(const std::string& name) {
    size_t pos = name.rfind("threads:");
    if (pos == std::string::npos) return 1;
    int t = std::atoi(name.c_str() + pos + 8);
    return t >= 1 ? t : 1;
  }

  static void AppendEscaped(const std::string& s, std::string* out) {
    for (char c : s) {
      if (c == '"' || c == '\\') {
        *out += '\\';
        *out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char hex[8];
        std::snprintf(hex, sizeof(hex), "\\u%04x", c);
        *out += hex;
      } else {
        *out += c;
      }
    }
  }

  void WriteJson() const {
    std::string out = "{\n";
    out += "  \"git_sha\": \"";
    AppendEscaped(GitShortSha(), &out);
    out += "\",\n";
    out += "  \"batch_size\": " + std::to_string(RowBatch::kDefaultCapacity) +
           ",\n";
    out += "  \"results\": [\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      char buf[160];
      out += "    {\"name\": \"";
      AppendEscaped(e.name, &out);
      std::snprintf(buf, sizeof(buf), "\", \"wall_ms\": %.3f, \"threads\": %d",
                    e.wall_ms, e.threads);
      out += buf;
      if (e.rows_per_sec >= 0) {
        std::snprintf(buf, sizeof(buf), ", \"rows_per_sec\": %.1f",
                      e.rows_per_sec);
        out += buf;
      }
      for (const auto& [key, value] : e.extras) {
        std::snprintf(buf, sizeof(buf), ", \"%s\": %.2f", key.c_str(), value);
        out += buf;
      }
      out += i + 1 < entries_.size() ? "},\n" : "}\n";
    }
    out += "  ]\n}\n";
    std::ofstream file(path_, std::ios::trunc);
    if (!file) {
      std::fprintf(stderr, "cannot write benchmark JSON to %s\n",
                   path_.c_str());
      return;
    }
    file << out;
  }

  std::string path_;
  std::vector<Entry> entries_;
};

}  // namespace bench
}  // namespace conquer

#endif  // CONQUER_BENCH_BENCH_UTIL_H_
