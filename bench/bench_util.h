#ifndef CONQUER_BENCH_BENCH_UTIL_H_
#define CONQUER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "gen/tpch_dirty.h"

namespace conquer {
namespace bench {

/// Returns a cached dirty TPC-H database for (scale factor in thousandths,
/// inconsistency factor). Generation, identifier propagation, index build
/// and statistics run once per configuration, outside any timed region.
inline TpchDirtyDatabase& GetCachedDb(int sf_milli, int iff) {
  static std::map<std::pair<int, int>, std::unique_ptr<TpchDirtyDatabase>>
      cache;
  auto key = std::make_pair(sf_milli, iff);
  auto it = cache.find(key);
  if (it == cache.end()) {
    TpchDirtyConfig config;
    config.scale_factor = sf_milli / 1000.0;
    config.inconsistency_factor = iff;
    config.seed = 20060402;
    auto gen = MakeTpchDirtyDatabase(config);
    if (!gen.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   gen.status().ToString().c_str());
      std::abort();
    }
    auto db = std::make_unique<TpchDirtyDatabase>(std::move(gen).value());
    Status s = db->BuildIndexesAndStats();
    if (!s.ok()) {
      std::fprintf(stderr, "index build failed: %s\n", s.ToString().c_str());
      std::abort();
    }
    it = cache.emplace(key, std::move(db)).first;
  }
  return *it->second;
}

/// Parses and strips a `--threads=N` flag from argv. Call before
/// benchmark::Initialize (which rejects flags it does not know). Returns
/// the worker-thread sweep the benchmark should register: powers of two up
/// to N plus N itself, e.g. `--threads=6` -> {1, 2, 4, 6}. Without the
/// flag the sweep is {1} (sequential only).
inline std::vector<int> ParseThreadSweep(int* argc, char** argv) {
  int max_threads = 1;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    std::string_view arg = argv[r];
    if (arg.rfind("--threads=", 0) == 0) {
      // argv strings are NUL-terminated, so the tail is atoi-safe.
      max_threads = std::atoi(arg.data() + 10);
      if (max_threads < 1) max_threads = 1;
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  std::vector<int> sweep;
  for (int t = 1; t < max_threads; t *= 2) sweep.push_back(t);
  if (sweep.empty() || sweep.back() != max_threads) sweep.push_back(max_threads);
  return sweep;
}

}  // namespace bench
}  // namespace conquer

#endif  // CONQUER_BENCH_BENCH_UTIL_H_
