#ifndef CONQUER_BENCH_BENCH_UTIL_H_
#define CONQUER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <utility>

#include "gen/tpch_dirty.h"

namespace conquer {
namespace bench {

/// Returns a cached dirty TPC-H database for (scale factor in thousandths,
/// inconsistency factor). Generation, identifier propagation, index build
/// and statistics run once per configuration, outside any timed region.
inline TpchDirtyDatabase& GetCachedDb(int sf_milli, int iff) {
  static std::map<std::pair<int, int>, std::unique_ptr<TpchDirtyDatabase>>
      cache;
  auto key = std::make_pair(sf_milli, iff);
  auto it = cache.find(key);
  if (it == cache.end()) {
    TpchDirtyConfig config;
    config.scale_factor = sf_milli / 1000.0;
    config.inconsistency_factor = iff;
    config.seed = 20060402;
    auto gen = MakeTpchDirtyDatabase(config);
    if (!gen.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   gen.status().ToString().c_str());
      std::abort();
    }
    auto db = std::make_unique<TpchDirtyDatabase>(std::move(gen).value());
    Status s = db->BuildIndexesAndStats();
    if (!s.ok()) {
      std::fprintf(stderr, "index build failed: %s\n", s.ToString().c_str());
      std::abort();
    }
    it = cache.emplace(key, std::move(db)).first;
  }
  return *it->second;
}

}  // namespace bench
}  // namespace conquer

#endif  // CONQUER_BENCH_BENCH_UTIL_H_
