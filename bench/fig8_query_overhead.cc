// Figure 8: running times of the thirteen TPC-H queries, original vs.
// rewritten, on a dirty database with average cluster size 3 (paper: sf=1,
// if=3; here the scale factor is reduced to fit the test machine — the
// claim under reproduction is the *ratio* between the two bars per query).
//
// Paper claims: all rewritten queries except Q9 run within 1.5x of the
// original; eight queries (2, 4, 6, 11, 14, 17, 18, 20) within 1.05x;
// Q9 (six joins, high selectivity) is the worst at ~1.8x.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/clean_engine.h"
#include "gen/tpch_queries.h"

namespace conquer {
namespace {

constexpr int kSfMilli = 10;  // sf = 0.01
constexpr int kIf = 3;

std::vector<int> g_thread_sweep = {1};

void BM_OriginalQuery(benchmark::State& state) {
  const TpchQuery* q = FindTpchQuery(static_cast<int>(state.range(0)));
  TpchDirtyDatabase& db = bench::GetCachedDb(kSfMilli, kIf);
  db.db->SetThreads(static_cast<size_t>(state.range(1)));
  size_t rows = 0;
  for (auto _ : state) {
    auto rs = db.db->Query(q->sql);
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    rows = rs->num_rows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
  db.db->SetThreads(1);
}

void BM_RewrittenQuery(benchmark::State& state) {
  const TpchQuery* q = FindTpchQuery(static_cast<int>(state.range(0)));
  TpchDirtyDatabase& db = bench::GetCachedDb(kSfMilli, kIf);
  db.db->SetThreads(static_cast<size_t>(state.range(1)));
  CleanAnswerEngine engine(db.db.get(), &db.dirty);
  size_t rows = 0;
  for (auto _ : state) {
    auto answers = engine.Query(q->sql);
    if (!answers.ok()) state.SkipWithError(answers.status().ToString().c_str());
    rows = answers->answers.size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["result_rows"] = static_cast<double>(rows);

  // One instrumented run outside the timed loop: attribute the rewriting
  // overhead to the GROUP BY the rewriting adds (paper Section 6 blames the
  // grouping step for the gap between the two bars).
  QueryStats stats;
  if (engine.Query(q->sql, &stats).ok()) {
    state.counters["hashagg_self_ms"] =
        stats.OperatorSelfSeconds("HashAggregate") * 1e3;
    state.counters["hashagg_share"] = stats.OperatorShare("HashAggregate");
  }
  db.db->SetThreads(1);
}

// Pass `--threads=N` to run each query with {1, 2, 4, ..., N} workers; the
// per-query Original/Rewritten ratio under reproduction is unchanged, the
// sweep shows how both bars move together under the parallel executor.
void RegisterAll() {
  for (const TpchQuery& q : TpchQueries()) {
    for (int t : g_thread_sweep) {
      const std::string suffix =
          "/Q" + std::to_string(q.number) + "/threads:" + std::to_string(t);
      benchmark::RegisterBenchmark(("Fig8/Original" + suffix).c_str(),
                                   BM_OriginalQuery)
          ->Args({q.number, t})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);
      benchmark::RegisterBenchmark(("Fig8/Rewritten" + suffix).c_str(),
                                   BM_RewrittenQuery)
          ->Args({q.number, t})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);
    }
  }
}

}  // namespace
}  // namespace conquer

int main(int argc, char** argv) {
  conquer::g_thread_sweep = conquer::bench::ParseThreadSweep(&argc, argv);
  std::string json_path = conquer::bench::ParseJsonPath(&argc, argv);
  conquer::RegisterAll();
  benchmark::Initialize(&argc, argv);
  conquer::bench::JsonReporter reporter(std::move(json_path));
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
