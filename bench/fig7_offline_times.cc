// Figure 7: offline annotation costs on the largest relation (lineitem) —
// identifier propagation, probability computation (the Fig. 5 algorithm),
// and a linear-scan baseline — as the inconsistency factor grows
// (paper: sf=1, if in {1, 5, 25}; scale reduced here).
//
// Paper claims: propagation time is insensitive to if (it depends only on
// total relation sizes); probability-computation time grows with if (more
// tuples merge into each cluster representative); both stay within an
// off-line-reasonable budget relative to a linear scan.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "prob/assigner.h"
#include "prob/propagate.h"

namespace conquer {
namespace {

constexpr int kSfMilli = 4;  // sf = 0.004

void BM_IdentifierPropagation(benchmark::State& state) {
  int iff = static_cast<int>(state.range(0));
  TpchDirtyDatabase& db = bench::GetCachedDb(kSfMilli, iff);
  // Propagate only lineitem's foreign identifiers (the paper times the
  // lineitem relation).
  std::vector<PropagationSpec> specs;
  for (const PropagationSpec& s : db.propagation_specs) {
    if (s.table == "lineitem") specs.push_back(s);
  }
  for (auto _ : state) {
    auto stats = PropagateIdentifiers(db.db.get(), db.dirty, specs);
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
    benchmark::DoNotOptimize(stats->rows_updated);
  }
  auto t = db.db->GetTable("lineitem");
  state.counters["rows"] = t.ok() ? static_cast<double>((*t)->num_rows()) : 0;
}

void BM_ProbabilityComputation(benchmark::State& state) {
  int iff = static_cast<int>(state.range(0));
  TpchDirtyDatabase& db = bench::GetCachedDb(kSfMilli, iff);
  auto table = db.db->GetTable("lineitem");
  if (!table.ok()) {
    state.SkipWithError("no lineitem");
    return;
  }
  const DirtyTableInfo* info = db.dirty.Find("lineitem");
  for (auto _ : state) {
    auto details = AssignProbabilities(*table, *info);
    if (!details.ok()) state.SkipWithError(details.status().ToString().c_str());
    benchmark::DoNotOptimize(details->size());
  }
  state.counters["rows"] = static_cast<double>((*table)->num_rows());
}

void BM_LinearScan(benchmark::State& state) {
  int iff = static_cast<int>(state.range(0));
  TpchDirtyDatabase& db = bench::GetCachedDb(kSfMilli, iff);
  auto table = db.db->GetTable("lineitem");
  if (!table.ok()) {
    state.SkipWithError("no lineitem");
    return;
  }
  for (auto _ : state) {
    size_t touched = 0;
    for (const Row& row : (*table)->rows()) {
      touched += row.size();
      benchmark::DoNotOptimize(row.data());
    }
    benchmark::DoNotOptimize(touched);
  }
  state.counters["rows"] = static_cast<double>((*table)->num_rows());
}

BENCHMARK(BM_IdentifierPropagation)
    ->Name("Fig7/Propagation")
    ->Arg(1)
    ->Arg(5)
    ->Arg(25)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_ProbabilityComputation)
    ->Name("Fig7/ProbabilityCalculation")
    ->Arg(1)
    ->Arg(5)
    ->Arg(25)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_LinearScan)
    ->Name("Fig7/LinearScan")
    ->Arg(1)
    ->Arg(5)
    ->Arg(25)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace conquer

BENCHMARK_MAIN();
