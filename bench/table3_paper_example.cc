// Table 3 (and Tables 1-2): reproduces the paper's Section 4 worked example
// on the Figure 6 customer relation — cluster representatives, per-tuple
// information-loss distance, similarity, and assigned probability.

#include <cstdio>

#include "prob/assigner.h"

namespace conquer {
namespace {

int RunReport() {
  TableSchema schema("customer", {{"id", DataType::kString},
                                  {"name", DataType::kString},
                                  {"mktsegmt", DataType::kString},
                                  {"nation", DataType::kString},
                                  {"address", DataType::kString},
                                  {"prob", DataType::kDouble}});
  Table table(schema);
  auto ins = [&](const char* cid, const char* name, const char* seg,
                 const char* nation, const char* addr) {
    Status s = table.Insert({Value::String(cid), Value::String(name),
                             Value::String(seg), Value::String(nation),
                             Value::String(addr), Value::Null()});
    if (!s.ok()) std::abort();
  };
  ins("c1", "Mary", "building", "USA", "Jones Ave");
  ins("c1", "Mary", "banking", "USA", "Jones Ave");
  ins("c1", "Marion", "banking", "USA", "Jones ave");
  ins("c2", "John", "building", "America", "Arrow");
  ins("c2", "John S.", "building", "USA", "Arrow");
  ins("c3", "John", "banking", "Canada", "Baldwin");

  DirtyTableInfo info{"customer", "id", "prob", {}};
  auto details = AssignProbabilities(&table, info);
  if (!details.ok()) {
    std::fprintf(stderr, "assignment failed: %s\n",
                 details.status().ToString().c_str());
    return 1;
  }

  std::printf("Table 3 reproduction: probability calculation in customer\n");
  std::printf("(Figure 6 relation; paper Section 4)\n\n");
  std::printf("%-5s %-5s %-10s %-10s %-10s %-10s\n", "tuple", "rep",
              "d(t,rep)", "s_t", "prob(t)", "name");
  const char* reps[6] = {"rep1", "rep1", "rep1", "rep2", "rep2", "rep3"};
  for (size_t i = 0; i < details->size(); ++i) {
    const TupleProbability& t = (*details)[i];
    std::printf("t%-4zu %-5s %-10.4f %-10.4f %-10.4f %-10s\n", i + 1, reps[i],
                t.distance, t.similarity, t.probability,
                table.row(i)[1].string_value().c_str());
  }
  std::printf(
      "\nPaper's checks: within c1, t2 is most probable; c2's two tuples "
      "are equally likely (0.5); t6 is certain (1.0);\n"
      "probabilities sum to 1 per cluster.\n");
  return 0;
}

}  // namespace
}  // namespace conquer

int main() { return conquer::RunReport(); }
