// Serving-layer client sweep: N concurrent client sessions issuing the
// Figure-8 rewritten-query mix against one QueryService, measuring
// throughput (QPS) and latency percentiles per client count.
//
// This is the benchmark behind the concurrent-serving claim: with a shared
// TaskPool, admission control and the plan cache, adding clients should
// scale throughput until the worker pool saturates, with a plan-cache hit
// rate >90% on a repeated query mix (each distinct statement binds once).
// Numbers depend on the machine's core count — the JSON records
// hardware_threads so a 1-core container's flat curve is interpretable.
//
// Usage:
//   clients_throughput [--clients=1,2,4,8] [--threads=8] [--seconds=2]
//                      [--sf-milli=10] [--json=PATH]
//
//   --clients   comma-separated client counts to sweep
//   --threads   Database worker threads (the shared morsel pool)
//   --seconds   measured duration per client count
//   --sf-milli  TPC-H scale factor in thousandths (if=3 throughout)
//   --json      also write results as JSON (e.g. BENCH_clients.json)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/clean_engine.h"
#include "engine/service.h"
#include "gen/tpch_queries.h"

namespace conquer {
namespace {

using Clock = std::chrono::steady_clock;

// The fast rewritable Figure-8 queries: the serving mix wants statements
// that complete in single-digit milliseconds so a sweep finishes quickly
// while still exercising joins, grouping and the probability arithmetic.
constexpr int kMixQueryNumbers[] = {2, 6, 11, 14, 17, 20};

struct SweepPoint {
  int clients = 0;
  double qps = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double cache_hit_rate = 0;
  uint64_t queries = 0;
  uint64_t errors = 0;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(std::ceil(p * static_cast<double>(sorted.size()))) -
          1);
  return sorted[idx];
}

SweepPoint RunPoint(Database* db, const std::vector<std::string>& mix,
                    int clients, double seconds, size_t max_concurrent) {
  ServiceOptions options;
  options.max_concurrent_queries = max_concurrent;
  QueryService service(db, options);
  // Prime the plan cache so every client starts on the hit path (each
  // distinct statement still counts one miss in the hit-rate below).
  for (const std::string& sql : mix) {
    auto rs = service.ExecuteSql(sql);
    if (!rs.ok()) {
      std::fprintf(stderr, "prime failed: %s\n", rs.status().ToString().c_str());
      std::exit(1);
    }
  }

  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  const Clock::time_point start = Clock::now();
  for (int tid = 0; tid < clients; ++tid) {
    threads.emplace_back([&, tid] {
      auto session = service.CreateSession("bench-" + std::to_string(tid));
      std::vector<double>& lat = latencies[tid];
      lat.reserve(4096);
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& sql = mix[(tid + i++) % mix.size()];
        const Clock::time_point t0 = Clock::now();
        auto rs = session->Execute(sql);
        const Clock::time_point t1 = Clock::now();
        if (rs.ok()) {
          lat.push_back(std::chrono::duration<double, std::milli>(t1 - t0)
                            .count());
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& t : threads) t.join();
  const double elapsed = std::chrono::duration<double>(Clock::now() - start)
                             .count();

  std::vector<double> all;
  for (const auto& lat : latencies) all.insert(all.end(), lat.begin(),
                                               lat.end());
  std::sort(all.begin(), all.end());

  const ServiceStats stats = service.stats();
  SweepPoint point;
  point.clients = clients;
  point.queries = static_cast<uint64_t>(all.size());
  point.errors = stats.query_errors;
  point.qps = elapsed > 0 ? static_cast<double>(all.size()) / elapsed : 0;
  point.p50_ms = Percentile(all, 0.50);
  point.p95_ms = Percentile(all, 0.95);
  point.p99_ms = Percentile(all, 0.99);
  point.cache_hit_rate = stats.plan_cache.hit_rate();
  return point;
}

std::string ParseFlag(int* argc, char** argv, const std::string& name) {
  std::string value;
  const std::string prefix = "--" + name + "=";
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    std::string_view arg = argv[r];
    if (arg.rfind(prefix, 0) == 0) {
      value.assign(arg.substr(prefix.size()));
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  return value;
}

std::vector<int> ParseIntList(const std::string& csv,
                              std::vector<int> fallback) {
  if (csv.empty()) return fallback;
  std::vector<int> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const int v = std::atoi(csv.substr(pos, comma - pos).c_str());
    if (v >= 1) out.push_back(v);
    pos = comma + 1;
  }
  return out.empty() ? fallback : out;
}

}  // namespace
}  // namespace conquer

int main(int argc, char** argv) {
  using namespace conquer;

  const std::string json_path = ParseFlag(&argc, argv, "json");
  const std::vector<int> clients =
      ParseIntList(ParseFlag(&argc, argv, "clients"), {1, 2, 4, 8});
  const std::string threads_flag = ParseFlag(&argc, argv, "threads");
  const std::string seconds_flag = ParseFlag(&argc, argv, "seconds");
  const std::string sf_flag = ParseFlag(&argc, argv, "sf-milli");
  const int db_threads = threads_flag.empty() ? 8 : std::atoi(threads_flag.c_str());
  const double seconds = seconds_flag.empty() ? 2.0 : std::atof(seconds_flag.c_str());
  const int sf_milli = sf_flag.empty() ? 10 : std::atoi(sf_flag.c_str());

  TpchDirtyDatabase& dirty_db = bench::GetCachedDb(sf_milli, 3);
  Database* db = dirty_db.db.get();
  CleanAnswerEngine engine(db, &dirty_db.dirty);

  // The mix is the REWRITTEN text of the fast Figure-8 queries: what a
  // clean-answer client actually sends to the engine, repeated — the
  // plan cache's best case and the paper's steady-state workload.
  std::vector<std::string> mix;
  std::vector<int> mix_numbers;
  for (int number : kMixQueryNumbers) {
    const TpchQuery* q = FindTpchQuery(number);
    if (q == nullptr) continue;
    auto rewritten = engine.RewrittenSql(q->sql);
    if (!rewritten.ok()) {
      std::fprintf(stderr, "Q%d not rewritable: %s\n", number,
                   rewritten.status().ToString().c_str());
      continue;
    }
    mix.push_back(std::move(rewritten).value());
    mix_numbers.push_back(number);
  }
  if (mix.empty()) {
    std::fprintf(stderr, "no rewritable queries in the mix\n");
    return 1;
  }

  db->SetThreads(static_cast<size_t>(std::max(1, db_threads)));
  const size_t max_concurrent =
      static_cast<size_t>(*std::max_element(clients.begin(), clients.end()));

  std::printf("serving sweep: %zu queries in mix, db threads=%d, "
              "%.1fs per point, hardware threads=%u\n",
              mix.size(), db_threads, seconds,
              std::thread::hardware_concurrency());
  std::printf("%8s %10s %9s %9s %9s %9s %8s\n", "clients", "qps", "p50 ms",
              "p95 ms", "p99 ms", "hit rate", "errors");

  std::vector<SweepPoint> points;
  for (int c : clients) {
    SweepPoint point = RunPoint(db, mix, c, seconds, max_concurrent);
    std::printf("%8d %10.1f %9.3f %9.3f %9.3f %8.1f%% %8llu\n", point.clients,
                point.qps, point.p50_ms, point.p95_ms, point.p99_ms,
                100.0 * point.cache_hit_rate,
                static_cast<unsigned long long>(point.errors));
    points.push_back(point);
  }
  db->SetThreads(1);

  if (!points.empty() && points.front().clients == 1) {
    const double base = points.front().qps;
    for (const SweepPoint& p : points) {
      if (p.clients != 1 && base > 0) {
        std::printf("speedup at %d clients: %.2fx\n", p.clients, p.qps / base);
      }
    }
  }

  if (!json_path.empty()) {
    std::string out = "{\n";
    out += "  \"git_sha\": \"" + bench::GitShortSha() + "\",\n";
    out += "  \"hardware_threads\": " +
           std::to_string(std::thread::hardware_concurrency()) + ",\n";
    out += "  \"db_threads\": " + std::to_string(db_threads) + ",\n";
    out += "  \"sf_milli\": " + std::to_string(sf_milli) + ",\n";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f", seconds);
    out += "  \"seconds_per_point\": " + std::string(buf) + ",\n";
    out += "  \"mix\": [";
    for (size_t i = 0; i < mix_numbers.size(); ++i) {
      out += "\"Q" + std::to_string(mix_numbers[i]) + "\"";
      if (i + 1 < mix_numbers.size()) out += ", ";
    }
    out += "],\n  \"results\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      char line[256];
      std::snprintf(line, sizeof(line),
                    "    {\"clients\": %d, \"qps\": %.1f, \"p50_ms\": %.3f, "
                    "\"p95_ms\": %.3f, \"p99_ms\": %.3f, "
                    "\"cache_hit_rate\": %.4f, \"queries\": %llu, "
                    "\"errors\": %llu}%s\n",
                    p.clients, p.qps, p.p50_ms, p.p95_ms, p.p99_ms,
                    p.cache_hit_rate,
                    static_cast<unsigned long long>(p.queries),
                    static_cast<unsigned long long>(p.errors),
                    i + 1 < points.size() ? "," : "");
      out += line;
    }
    out += "  ]\n}\n";
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
