// Figure 10: rewritten-query running time as the database grows
// (paper: 100 MB / 500 MB / 1 GB / 2 GB with if = 3; here the same 20x
// size range at reduced absolute scale).
//
// Paper claims: for all plotted queries (Q9 excluded from the plot, Q3's
// sort makes it the steepest) running times grow linearly with database
// size.
//
// Pass `--threads=N` to also sweep the morsel-driven parallel executor at
// the largest scale ({1, 2, 4, ..., N} workers; smaller scales stay
// sequential). Every parallel run is checked against the sequential
// answers: the `prob_bits_equal` counter is 1 only when all clean-answer
// probabilities are BIT-identical to the threads=1 run.

#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <tuple>

#include "bench/bench_util.h"
#include "core/clean_engine.h"
#include "gen/tpch_queries.h"

namespace conquer {
namespace {

constexpr int kIf = 3;
// 20x range mirroring the paper's 0.1 GB .. 2 GB sweep.
const int kSfMilli[] = {2, 10, 20, 40};

std::vector<int> g_thread_sweep = {1};

std::vector<uint64_t> ProbabilityBits(const CleanAnswerSet& answers) {
  std::vector<uint64_t> bits;
  bits.reserve(answers.answers.size());
  for (const CleanAnswer& a : answers.answers) {
    uint64_t u;
    std::memcpy(&u, &a.probability, sizeof u);
    bits.push_back(u);
  }
  return bits;
}

void BM_RewrittenAtScale(benchmark::State& state) {
  const TpchQuery* q = FindTpchQuery(static_cast<int>(state.range(0)));
  int sf_milli = static_cast<int>(state.range(1));
  int threads = static_cast<int>(state.range(2));
  TpchDirtyDatabase& db = bench::GetCachedDb(sf_milli, kIf);
  db.db->SetThreads(static_cast<size_t>(threads));
  CleanAnswerEngine engine(db.db.get(), &db.dirty);
  size_t rows = 0;
  for (auto _ : state) {
    auto answers = engine.Query(q->sql);
    if (!answers.ok()) state.SkipWithError(answers.status().ToString().c_str());
    rows = answers->answers.size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
  state.counters["total_db_rows"] = static_cast<double>(db.TotalRows());

  // Determinism audit (outside the timed loop): the threads=1 run records
  // the probability bit patterns; every parallel run must reproduce them.
  static std::map<std::tuple<int, int>, std::vector<uint64_t>> baselines;
  auto audit = engine.Query(q->sql);
  if (audit.ok()) {
    auto key = std::make_tuple(q->number, sf_milli);
    std::vector<uint64_t> bits = ProbabilityBits(*audit);
    if (threads == 1) {
      baselines[key] = std::move(bits);
    } else {
      auto it = baselines.find(key);
      state.counters["prob_bits_equal"] =
          (it != baselines.end() && it->second == bits) ? 1.0 : 0.0;
    }
  }
  db.db->SetThreads(1);
}

void RegisterAll() {
  const int max_sf = kSfMilli[sizeof(kSfMilli) / sizeof(kSfMilli[0]) - 1];
  // The paper's Figure 10 plots queries 1,2,3,4,6,10,11,12,14,17,18,20
  // (Q9 reported separately for its higher absolute time).
  for (int number : {1, 2, 3, 4, 6, 10, 11, 12, 14, 17, 18, 20}) {
    for (int sf_milli : kSfMilli) {
      const std::vector<int> threads = sf_milli == max_sf
                                           ? g_thread_sweep
                                           : std::vector<int>{1};
      for (int t : threads) {
        std::string name = "Fig10/Q" + std::to_string(number) +
                           "/sf_milli:" + std::to_string(sf_milli) +
                           "/threads:" + std::to_string(t);
        benchmark::RegisterBenchmark(name.c_str(), BM_RewrittenAtScale)
            ->Args({number, sf_milli, t})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(2);
      }
    }
  }
}

}  // namespace
}  // namespace conquer

int main(int argc, char** argv) {
  conquer::g_thread_sweep = conquer::bench::ParseThreadSweep(&argc, argv);
  std::string json_path = conquer::bench::ParseJsonPath(&argc, argv);
  conquer::RegisterAll();
  benchmark::Initialize(&argc, argv);
  conquer::bench::JsonReporter reporter(std::move(json_path));
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
