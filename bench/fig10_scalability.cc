// Figure 10: rewritten-query running time as the database grows
// (paper: 100 MB / 500 MB / 1 GB / 2 GB with if = 3; here the same 20x
// size range at reduced absolute scale).
//
// Paper claims: for all plotted queries (Q9 excluded from the plot, Q3's
// sort makes it the steepest) running times grow linearly with database
// size.
//
// Pass `--threads=N` to also sweep the morsel-driven parallel executor at
// the largest scale ({1, 2, 4, ..., N} workers; smaller scales stay
// sequential). Every parallel run is checked against the sequential
// answers: the `prob_bits_equal` counter is 1 only when all clean-answer
// probabilities are BIT-identical to the threads=1 run.

#include <benchmark/benchmark.h>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string_view>
#include <tuple>

#include "bench/bench_util.h"
#include "core/clean_engine.h"
#include "engine/persist.h"
#include "gen/tpch_queries.h"

namespace conquer {
namespace {

constexpr int kIf = 3;
// 20x range mirroring the paper's 0.1 GB .. 2 GB sweep.
const int kSfMilli[] = {2, 10, 20, 40};

std::vector<int> g_thread_sweep = {1};

std::vector<uint64_t> ProbabilityBits(const CleanAnswerSet& answers) {
  std::vector<uint64_t> bits;
  bits.reserve(answers.answers.size());
  for (const CleanAnswer& a : answers.answers) {
    uint64_t u;
    std::memcpy(&u, &a.probability, sizeof u);
    bits.push_back(u);
  }
  return bits;
}

void BM_RewrittenAtScale(benchmark::State& state) {
  const TpchQuery* q = FindTpchQuery(static_cast<int>(state.range(0)));
  int sf_milli = static_cast<int>(state.range(1));
  int threads = static_cast<int>(state.range(2));
  TpchDirtyDatabase& db = bench::GetCachedDb(sf_milli, kIf);
  db.db->SetThreads(static_cast<size_t>(threads));
  CleanAnswerEngine engine(db.db.get(), &db.dirty);
  size_t rows = 0;
  for (auto _ : state) {
    auto answers = engine.Query(q->sql);
    if (!answers.ok()) state.SkipWithError(answers.status().ToString().c_str());
    rows = answers->answers.size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
  state.counters["total_db_rows"] = static_cast<double>(db.TotalRows());

  // Determinism audit (outside the timed loop): the threads=1 run records
  // the probability bit patterns; every parallel run must reproduce them.
  static std::map<std::tuple<int, int>, std::vector<uint64_t>> baselines;
  auto audit = engine.Query(q->sql);
  if (audit.ok()) {
    auto key = std::make_tuple(q->number, sf_milli);
    std::vector<uint64_t> bits = ProbabilityBits(*audit);
    if (threads == 1) {
      baselines[key] = std::move(bits);
    } else {
      auto it = baselines.find(key);
      state.counters["prob_bits_equal"] =
          (it != baselines.end() && it->second == bits) ? 1.0 : 0.0;
    }
  }
  db.db->SetThreads(1);
}

// ---- Out-of-core runs: Fig 10 at 10-50x the in-memory sweep ---------------
//
// The database is generated once, persisted to binary segments, and every
// benchmark run loads it LAZILY (metadata only) into a fresh Database with a
// hard buffer-pool budget expressed as a percentage of the on-disk data size
// (0 = unlimited). No hash indexes are built: indexes are resident by design
// and at this scale would defeat the point of bounding memory. peak_rss_mb /
// baseline_rss_mb counters in the JSON prove the budget held: the kernel's
// peak-RSS watermark is reset after setup, so peak - baseline is the query's
// own footprint (pinned chunks within budget + operator state).

int g_ooc_sf_milli = 400;  // 10x the largest in-memory scale; --ooc_sf=N

struct OocData {
  std::string dir;
  DirtySchema dirty;
  double data_mb = 0;
};

OocData& GetOocData(int sf_milli) {
  static std::map<int, std::unique_ptr<OocData>> cache;
  auto it = cache.find(sf_milli);
  if (it == cache.end()) {
    TpchDirtyConfig config;
    config.scale_factor = sf_milli / 1000.0;
    config.inconsistency_factor = kIf;
    config.seed = 20060402;
    auto gen = MakeTpchDirtyDatabase(config);
    if (!gen.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   gen.status().ToString().c_str());
      std::abort();
    }
    auto data = std::make_unique<OocData>();
    data->dir = (std::filesystem::temp_directory_path() /
                 ("conquer-ooc-sf" + std::to_string(sf_milli)))
                    .string();
    Status s = SaveDatabase(*gen->db, data->dir, &gen->dirty);
    if (!s.ok()) {
      std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
      std::abort();
    }
    data->dirty = gen->dirty;
    data->data_mb = bench::DirSizeMb(data->dir);
    // The fully materialized generator database dies here; from now on
    // every run faults its data in from the segment files.
    it = cache.emplace(sf_milli, std::move(data)).first;
  }
  return *it->second;
}

void BM_OutOfCoreAtScale(benchmark::State& state) {
  const TpchQuery* q = FindTpchQuery(static_cast<int>(state.range(0)));
  const int budget_pct = static_cast<int>(state.range(1));
  OocData& data = GetOocData(g_ooc_sf_milli);

  auto loaded = LoadDatabase(data.dir);
  if (!loaded.ok()) {
    state.SkipWithError(loaded.status().ToString().c_str());
    return;
  }
  std::unique_ptr<Database> db = std::move(*loaded);
  const uint64_t data_bytes =
      static_cast<uint64_t>(data.data_mb * 1024.0 * 1024.0);
  const uint64_t budget =
      budget_pct == 0 ? 0 : data_bytes * static_cast<uint64_t>(budget_pct) / 100;
  db->SetMemoryBudget(budget);
  CleanAnswerEngine engine(db.get(), &data.dirty);

  // Setup loaded resident metadata (dictionaries, zones, stamps) only;
  // measure the query's own footprint from here. Return retained allocator
  // arenas (generation's freed heap) to the OS first so the baseline is
  // live data, not allocator history.
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
  bench::ResetPeakRss();
  const double baseline_mb = bench::CurrentRssMb();
  size_t rows = 0;
  for (auto _ : state) {
    auto answers = engine.Query(q->sql);
    if (!answers.ok()) state.SkipWithError(answers.status().ToString().c_str());
    rows = answers->answers.size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
  state.counters["data_mb"] = data.data_mb;
  state.counters["budget_mb"] =
      static_cast<double>(budget) / (1024.0 * 1024.0);
  state.counters["baseline_rss_mb"] = baseline_mb;
  state.counters["peak_rss_mb"] = bench::ReadPeakRssMb();
  const BufferPool::Stats ps = db->buffer_pool()->stats();
  state.counters["chunks_loaded"] = static_cast<double>(ps.chunks_loaded);
  // Exact residency high-water mark from pool accounting: must stay at or
  // under budget_mb (plus at most the pinned working set) when bounded.
  state.counters["pool_peak_mb"] =
      static_cast<double>(ps.peak_resident_bytes) / (1024.0 * 1024.0);
}

void RegisterAll() {
  const int max_sf = kSfMilli[sizeof(kSfMilli) / sizeof(kSfMilli[0]) - 1];
  // The paper's Figure 10 plots queries 1,2,3,4,6,10,11,12,14,17,18,20
  // (Q9 reported separately for its higher absolute time).
  for (int number : {1, 2, 3, 4, 6, 10, 11, 12, 14, 17, 18, 20}) {
    for (int sf_milli : kSfMilli) {
      const std::vector<int> threads = sf_milli == max_sf
                                           ? g_thread_sweep
                                           : std::vector<int>{1};
      for (int t : threads) {
        std::string name = "Fig10/Q" + std::to_string(number) +
                           "/sf_milli:" + std::to_string(sf_milli) +
                           "/threads:" + std::to_string(t);
        benchmark::RegisterBenchmark(name.c_str(), BM_RewrittenAtScale)
            ->Args({number, sf_milli, t})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(2);
      }
    }
  }
  // Out-of-core family: scan-dominated queries at 10-50x, swept over memory
  // budgets of {unlimited, 25%, 10%} of the on-disk data size.
  if (g_ooc_sf_milli > 0) {
    for (int number : {1, 6}) {
      for (int pct : {0, 25, 10}) {
        std::string name = "Fig10OOC/Q" + std::to_string(number) +
                           "/sf_milli:" + std::to_string(g_ooc_sf_milli) +
                           "/budget_pct:" + std::to_string(pct);
        benchmark::RegisterBenchmark(name.c_str(), BM_OutOfCoreAtScale)
            ->Args({number, pct})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace conquer

int main(int argc, char** argv) {
  conquer::g_thread_sweep = conquer::bench::ParseThreadSweep(&argc, argv);
  std::string json_path = conquer::bench::ParseJsonPath(&argc, argv);
  // `--ooc_sf=N` overrides the out-of-core scale (thousandths of TPC-H
  // sf 1); 0 disables the Fig10OOC family entirely.
  {
    int w = 1;
    for (int r = 1; r < argc; ++r) {
      std::string_view arg = argv[r];
      if (arg.rfind("--ooc_sf=", 0) == 0) {
        conquer::g_ooc_sf_milli = std::atoi(arg.data() + 9);
      } else {
        argv[w++] = argv[r];
      }
    }
    argc = w;
  }
  conquer::RegisterAll();
  benchmark::Initialize(&argc, argv);
  conquer::bench::JsonReporter reporter(std::move(json_path));
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
