// Figure 10: rewritten-query running time as the database grows
// (paper: 100 MB / 500 MB / 1 GB / 2 GB with if = 3; here the same 20x
// size range at reduced absolute scale).
//
// Paper claims: for all plotted queries (Q9 excluded from the plot, Q3's
// sort makes it the steepest) running times grow linearly with database
// size.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/clean_engine.h"
#include "gen/tpch_queries.h"

namespace conquer {
namespace {

constexpr int kIf = 3;
// 20x range mirroring the paper's 0.1 GB .. 2 GB sweep.
const int kSfMilli[] = {2, 10, 20, 40};

void BM_RewrittenAtScale(benchmark::State& state) {
  const TpchQuery* q = FindTpchQuery(static_cast<int>(state.range(0)));
  int sf_milli = static_cast<int>(state.range(1));
  TpchDirtyDatabase& db = bench::GetCachedDb(sf_milli, kIf);
  CleanAnswerEngine engine(db.db.get(), &db.dirty);
  size_t rows = 0;
  for (auto _ : state) {
    auto answers = engine.Query(q->sql);
    if (!answers.ok()) state.SkipWithError(answers.status().ToString().c_str());
    rows = answers->answers.size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
  state.counters["total_db_rows"] = static_cast<double>(db.TotalRows());
}

void RegisterAll() {
  // The paper's Figure 10 plots queries 1,2,3,4,6,10,11,12,14,17,18,20
  // (Q9 reported separately for its higher absolute time).
  for (int number : {1, 2, 3, 4, 6, 10, 11, 12, 14, 17, 18, 20}) {
    for (int sf_milli : kSfMilli) {
      std::string name = "Fig10/Q" + std::to_string(number) + "/sf_milli:" +
                         std::to_string(sf_milli);
      benchmark::RegisterBenchmark(name.c_str(), BM_RewrittenAtScale)
          ->Args({number, sf_milli})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

}  // namespace
}  // namespace conquer

int main(int argc, char** argv) {
  conquer::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
