// Figure 9: TPC-H Query 3 running time as the average cluster size grows
// (if = 1..5), original vs. rewritten, with and without the ORDER BY clause
// (paper: sf=1; scale reduced here).
//
// Paper claims: both queries slow down as clusters grow (the join result
// fans out), the rewritten query's extra cost comes from its GROUP BY (it
// keeps growing with cluster size even after the ORDER BY is removed,
// while the original without ORDER BY stays flat).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/clean_engine.h"
#include "gen/tpch_queries.h"

namespace conquer {
namespace {

constexpr int kSfMilli = 30;  // sf = 0.03

void BM_Query3(benchmark::State& state) {
  int iff = static_cast<int>(state.range(0));
  bool rewritten = state.range(1) != 0;
  bool with_order_by = state.range(2) != 0;
  TpchDirtyDatabase& db = bench::GetCachedDb(kSfMilli, iff);
  std::string sql = TpchQuery3(with_order_by);
  CleanAnswerEngine engine(db.db.get(), &db.dirty);
  size_t rows = 0;
  for (auto _ : state) {
    if (rewritten) {
      auto answers = engine.Query(sql);
      if (!answers.ok()) {
        state.SkipWithError(answers.status().ToString().c_str());
      }
      rows = answers->answers.size();
    } else {
      auto rs = db.db->Query(sql);
      if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
      rows = rs->num_rows();
    }
    benchmark::DoNotOptimize(rows);
  }
  state.counters["result_rows"] = static_cast<double>(rows);

  if (rewritten) {
    // Instrumented run outside the timed loop: the paper attributes the
    // rewritten query's growth with cluster size to its GROUP BY, so report
    // the HashAggregate's self time and share directly.
    QueryStats stats;
    if (engine.Query(sql, &stats).ok()) {
      state.counters["hashagg_self_ms"] =
          stats.OperatorSelfSeconds("HashAggregate") * 1e3;
      state.counters["hashagg_share"] = stats.OperatorShare("HashAggregate");
    }
  }
}

void RegisterAll() {
  for (int iff = 1; iff <= 5; ++iff) {
    for (int rewritten = 0; rewritten <= 1; ++rewritten) {
      for (int order_by = 0; order_by <= 1; ++order_by) {
        std::string name = std::string("Fig9/Q3/") +
                           (rewritten ? "Rewritten" : "Original") +
                           (order_by ? "" : "NoOrderBy") + "/if:" +
                           std::to_string(iff);
        benchmark::RegisterBenchmark(name.c_str(), BM_Query3)
            ->Args({iff, rewritten, order_by})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(3);
      }
    }
  }
}

}  // namespace
}  // namespace conquer

int main(int argc, char** argv) {
  conquer::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
