// Table 4: qualitative evaluation of the probability assignment on a
// Cora-like bibliographic cluster of 56 tuples (paper Section 4.2).
// Prints the most frequent values, the top-2 and the bottom-2 tuples by
// assigned probability, mirroring the paper's table.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "gen/cora.h"
#include "prob/assigner.h"

namespace conquer {
namespace {

void PrintTuple(const Table& table, size_t row, double prob) {
  const Row& r = table.row(row);
  std::printf("  p=%.4f | %-22s | %-38s | %-28s | %-10s | %-4s | %s\n", prob,
              r[1].string_value().c_str(), r[2].string_value().c_str(),
              r[3].string_value().c_str(), r[4].string_value().c_str(),
              r[5].string_value().c_str(), r[6].string_value().c_str());
}

int RunReport() {
  DirtyTableInfo info;
  auto table = MakeTable4Cluster(&info);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  auto details = AssignProbabilities(table->get(), info);
  if (!details.ok()) {
    std::fprintf(stderr, "%s\n", details.status().ToString().c_str());
    return 1;
  }

  std::vector<TupleProbability> ranked = *details;
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const TupleProbability& a, const TupleProbability& b) {
                     return a.probability > b.probability;
                   });

  std::printf("Table 4 reproduction: 56-tuple bibliographic cluster\n");
  std::printf("(synthetic stand-in for the paper's Cora/Schapire cluster)\n\n");
  std::printf("Most frequent (canonical) values:\n");
  PrintTuple(**table, 0, -0.0);
  std::printf("\nTop-2 tuples by assigned probability:\n");
  PrintTuple(**table, ranked[0].row, ranked[0].probability);
  PrintTuple(**table, ranked[1].row, ranked[1].probability);
  std::printf("\nBottom-2 tuples by assigned probability:\n");
  PrintTuple(**table, ranked[54].row, ranked[54].probability);
  PrintTuple(**table, ranked[55].row, ranked[55].probability);

  bool bottom_is_divergent =
      (ranked[54].row >= 54 && ranked[55].row >= 54);
  std::printf(
      "\nPaper's check: the two least likely tuples are the misclustered "
      "citation and the reformatted one -> %s\n",
      bottom_is_divergent ? "REPRODUCED" : "NOT reproduced");
  return bottom_is_divergent ? 0 : 1;
}

}  // namespace
}  // namespace conquer

int main() { return conquer::RunReport(); }
