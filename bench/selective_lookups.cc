// Selective point and narrow-range lookups at Figure-10 scale: per-chunk
// secondary indexes (DESIGN.md section 15) against the same queries with
// index access disabled, in memory and out of core.
//
// Families:
//   Selective/Point/...  index:1 vs index:0   `l_orderkey = K` (one order)
//   Selective/Range/...  index:1 vs index:0   `K <= l_orderkey <= K+9`
//   SelectiveOOC/...     budget_pct:{0,10}    same point probe against a
//                        lazily loaded on-disk database; chunks_loaded in
//                        the JSON shows the index faulting only chunks with
//                        visible matches while the full scan touches all.
//
// The point-lookup speedup (index:1 vs index:0 wall clock) is the headline
// number bench_check's ANALYZE-side acceptance tracks: it must stay >= 10x
// at the default scale. Results land in BENCH_selective.json via
// `--json=PATH`; `--sf=N` overrides the scale (thousandths of TPC-H sf 1).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "bench/bench_util.h"
#include "engine/persist.h"

namespace conquer {
namespace {

constexpr int kIf = 3;
int g_sf_milli = 40;  // the largest in-memory Figure-10 scale; --sf=N

// The probed literals come from the data itself (the median stored
// l_orderkey), so the point query matches exactly one order's lineitems and
// the range query a handful of orders, at every scale.
struct ProbeKeys {
  int64_t point = 0;
  int64_t range_lo = 0;
  int64_t range_hi = 0;
};

ProbeKeys PickProbeKeys(Database* db) {
  auto rs = db->Query("select l_orderkey from lineitem");
  if (!rs.ok() || rs->rows.empty()) {
    std::fprintf(stderr, "probe-key scan failed: %s\n",
                 rs.ok() ? "empty lineitem" : rs.status().ToString().c_str());
    std::abort();
  }
  ProbeKeys keys;
  keys.point = rs->rows[rs->rows.size() / 2][0].int_value();
  keys.range_lo = keys.point;
  keys.range_hi = keys.point + 9;
  return keys;
}

std::string PointSql(const ProbeKeys& k) {
  return "select l_linenumber, l_quantity from lineitem where l_orderkey = " +
         std::to_string(k.point);
}

std::string RangeSql(const ProbeKeys& k) {
  return "select l_linenumber, l_quantity from lineitem where l_orderkey >= " +
         std::to_string(k.range_lo) +
         " and l_orderkey <= " + std::to_string(k.range_hi);
}

// In-memory database with a secondary index on lineitem.l_orderkey, built
// once outside any timed region (on top of GetCachedDb's identifier indexes
// and statistics).
TpchDirtyDatabase& GetIndexedDb() {
  static bool indexed = false;
  TpchDirtyDatabase& db = bench::GetCachedDb(g_sf_milli, kIf);
  if (!indexed) {
    Status s = db.db->CreateIndex("lineitem", "l_orderkey");
    if (!s.ok()) {
      std::fprintf(stderr, "index build failed: %s\n", s.ToString().c_str());
      std::abort();
    }
    indexed = true;
  }
  return db;
}

void BM_Selective(benchmark::State& state) {
  const bool range = state.range(0) != 0;
  const bool index_on = state.range(1) != 0;
  TpchDirtyDatabase& db = GetIndexedDb();
  const ProbeKeys keys = PickProbeKeys(db.db.get());
  const std::string sql = range ? RangeSql(keys) : PointSql(keys);
  db.db->mutable_exec_context()->enable_index_scan = index_on;
  // One untimed warmup: the first query after generation pays one-off costs
  // (allocator consolidation of the generator's freed heap, lazy index
  // slice sorts) that scale with the database, not with the probe.
  if (auto warm = db.db->Query(sql); !warm.ok()) {
    state.SkipWithError(warm.status().ToString().c_str());
    db.db->mutable_exec_context()->enable_index_scan = true;
    return;
  }
  size_t rows = 0;
  for (auto _ : state) {
    auto rs = db.db->Query(sql);
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    rows = rs->num_rows();
    benchmark::DoNotOptimize(rows);
  }
  db.db->mutable_exec_context()->enable_index_scan = true;
  state.counters["result_rows"] = static_cast<double>(rows);
}

// ---- Out-of-core: the same point probe against a lazily loaded database --
//
// The database is persisted once; every run loads metadata only, rebuilds
// the secondary index (resident, like zone maps), clamps the buffer pool,
// and probes. With the index on, only chunks holding the key's dictionary
// code are faulted; with it off, the scan walks every chunk through the
// tight budget.

struct OocData {
  std::string dir;
  double data_mb = 0;
};

OocData& GetOocData() {
  static std::unique_ptr<OocData> cache;
  if (cache == nullptr) {
    TpchDirtyDatabase& db = bench::GetCachedDb(g_sf_milli, kIf);
    auto data = std::make_unique<OocData>();
    data->dir = (std::filesystem::temp_directory_path() /
                 ("conquer-selective-sf" + std::to_string(g_sf_milli)))
                    .string();
    Status s = SaveDatabase(*db.db, data->dir, &db.dirty);
    if (!s.ok()) {
      std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
      std::abort();
    }
    data->data_mb = bench::DirSizeMb(data->dir);
    cache = std::move(data);
  }
  return *cache;
}

void BM_SelectiveOutOfCore(benchmark::State& state) {
  const int budget_pct = static_cast<int>(state.range(0));
  const bool index_on = state.range(1) != 0;
  OocData& data = GetOocData();

  auto loaded = LoadDatabase(data.dir);
  if (!loaded.ok()) {
    state.SkipWithError(loaded.status().ToString().c_str());
    return;
  }
  std::unique_ptr<Database> db = std::move(*loaded);
  Status s = db->CreateIndex("lineitem", "l_orderkey");
  if (!s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  const ProbeKeys keys = PickProbeKeys(db.get());
  const uint64_t data_bytes =
      static_cast<uint64_t>(data.data_mb * 1024.0 * 1024.0);
  const uint64_t budget =
      budget_pct == 0 ? 0
                      : data_bytes * static_cast<uint64_t>(budget_pct) / 100;
  db->SetMemoryBudget(budget);
  db->mutable_exec_context()->enable_index_scan = index_on;
  const std::string sql = PointSql(keys);
  // Untimed warmup, as in BM_Selective. Under a tight budget the timed
  // probes still fault chunks (the working set exceeds the pool).
  if (auto warm = db->Query(sql); !warm.ok()) {
    state.SkipWithError(warm.status().ToString().c_str());
    return;
  }

  // Count only the timed probes' chunk traffic: the key scan, index build
  // and warmup above already faulted (and under a budget, evicted) chunks.
  const uint64_t loaded_before = db->buffer_pool()->stats().chunks_loaded;
  size_t rows = 0;
  for (auto _ : state) {
    auto rs = db->Query(sql);
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    rows = rs->num_rows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
  state.counters["data_mb"] = data.data_mb;
  state.counters["budget_mb"] =
      static_cast<double>(budget) / (1024.0 * 1024.0);
  const BufferPool::Stats ps = db->buffer_pool()->stats();
  state.counters["chunks_loaded"] =
      static_cast<double>(ps.chunks_loaded - loaded_before);
  state.counters["pool_peak_mb"] =
      static_cast<double>(ps.peak_resident_bytes) / (1024.0 * 1024.0);
}

void RegisterAll() {
  for (int range : {0, 1}) {
    for (int index_on : {1, 0}) {
      std::string name = std::string("Selective/") +
                         (range != 0 ? "Range" : "Point") +
                         "/sf_milli:" + std::to_string(g_sf_milli) +
                         "/index:" + std::to_string(index_on);
      benchmark::RegisterBenchmark(name.c_str(), BM_Selective)
          ->Args({range, index_on})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(20);
    }
  }
  for (int pct : {0, 10}) {
    for (int index_on : {1, 0}) {
      std::string name = "SelectiveOOC/Point/sf_milli:" +
                         std::to_string(g_sf_milli) +
                         "/budget_pct:" + std::to_string(pct) +
                         "/index:" + std::to_string(index_on);
      benchmark::RegisterBenchmark(name.c_str(), BM_SelectiveOutOfCore)
          ->Args({pct, index_on})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);
    }
  }
}

}  // namespace
}  // namespace conquer

int main(int argc, char** argv) {
  std::string json_path = conquer::bench::ParseJsonPath(&argc, argv);
  // `--sf=N` overrides the scale (thousandths of TPC-H sf 1).
  {
    int w = 1;
    for (int r = 1; r < argc; ++r) {
      std::string_view arg = argv[r];
      if (arg.rfind("--sf=", 0) == 0) {
        conquer::g_sf_milli = std::atoi(arg.data() + 5);
        if (conquer::g_sf_milli < 1) conquer::g_sf_milli = 1;
      } else {
        argv[w++] = argv[r];
      }
    }
    argc = w;
  }
  conquer::RegisterAll();
  benchmark::Initialize(&argc, argv);
  conquer::bench::JsonReporter reporter(std::move(json_path));
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
