// Ablation benchmarks for the design choices behind the reproduction:
//
//  1. Naive candidate enumeration vs. the SQL rewriting — the paper's
//     Section 3 motivation: enumeration is exponential in the number of
//     non-singleton clusters, the rewriting is one SQL query.
//  2. Identifier indexes + statistics on vs. off — the paper's experimental
//     setup builds indexes on identifiers and runs RUNSTATS; this measures
//     what that buys on a representative join query.
//  3. Rewrite-only cost (parse + Dfn 7 check + AST rewrite) vs. full
//     execution — the rewriting itself must be negligible.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.h"
#include "core/clean_engine.h"
#include "core/naive_eval.h"
#include "gen/tpch_queries.h"

namespace conquer {
namespace {

// ---- 1. enumeration vs. rewriting on a small dirty database ----

/// Builds a two-table dirty database with `clusters` two-tuple clusters per
/// table (so 2^(2*clusters) candidate databases).
void BuildSmallDirtyDb(int clusters, Database* db, DirtySchema* dirty) {
  Status s = db->CreateTable(TableSchema("orders", {{"id", DataType::kString},
                                                    {"cid", DataType::kString},
                                                    {"qty", DataType::kInt64},
                                                    {"prob", DataType::kDouble}}));
  s = db->CreateTable(TableSchema("cust", {{"id", DataType::kString},
                                           {"bal", DataType::kInt64},
                                           {"prob", DataType::kDouble}}));
  (void)s;
  for (int i = 0; i < clusters; ++i) {
    std::string oid = "o" + std::to_string(i);
    std::string cid = "c" + std::to_string(i);
    for (int j = 0; j < 2; ++j) {
      (void)db->Insert("orders", {Value::String(oid), Value::String(cid),
                                  Value::Int(j + i), Value::Double(0.5)});
      (void)db->Insert("cust", {Value::String(cid), Value::Int(10000 * (j + 1)),
                                Value::Double(0.5)});
    }
  }
  (void)dirty->AddTable({"orders", "id", "prob", {{"cid", "cust"}}});
  (void)dirty->AddTable({"cust", "id", "prob", {}});
}

const char* kSmallQuery =
    "select o.id, c.id from orders o, cust c "
    "where o.cid = c.id and c.bal > 15000";

void BM_NaiveEnumeration(benchmark::State& state) {
  Database db;
  DirtySchema dirty;
  BuildSmallDirtyDb(static_cast<int>(state.range(0)), &db, &dirty);
  NaiveCandidateEvaluator naive(&db, &dirty);
  for (auto _ : state) {
    auto answers = naive.Evaluate(kSmallQuery, /*max_candidates=*/1ull << 40);
    if (!answers.ok()) state.SkipWithError(answers.status().ToString().c_str());
    benchmark::DoNotOptimize(answers->answers.size());
  }
  state.counters["candidates"] =
      std::pow(2.0, 2.0 * static_cast<double>(state.range(0)));
}

void BM_Rewriting(benchmark::State& state) {
  Database db;
  DirtySchema dirty;
  BuildSmallDirtyDb(static_cast<int>(state.range(0)), &db, &dirty);
  CleanAnswerEngine engine(&db, &dirty);
  for (auto _ : state) {
    auto answers = engine.Query(kSmallQuery);
    if (!answers.ok()) state.SkipWithError(answers.status().ToString().c_str());
    benchmark::DoNotOptimize(answers->answers.size());
  }
  state.counters["candidates"] =
      std::pow(2.0, 2.0 * static_cast<double>(state.range(0)));
}

BENCHMARK(BM_NaiveEnumeration)
    ->Name("Ablation/NaiveEnumeration")
    ->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Rewriting)
    ->Name("Ablation/Rewriting")
    ->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMillisecond);

// ---- 2. indexes + statistics on/off ----

void BM_Q10WithAndWithoutIndexes(benchmark::State& state) {
  bool with_indexes = state.range(0) != 0;
  // A private copy of the database so index state is isolated.
  TpchDirtyConfig config;
  config.scale_factor = 0.005;
  config.inconsistency_factor = 3;
  static std::unique_ptr<TpchDirtyDatabase> plain, indexed;
  auto& slot = with_indexes ? indexed : plain;
  if (!slot) {
    auto gen = MakeTpchDirtyDatabase(config);
    if (!gen.ok()) {
      state.SkipWithError(gen.status().ToString().c_str());
      return;
    }
    slot = std::make_unique<TpchDirtyDatabase>(std::move(gen).value());
    if (with_indexes) {
      if (Status s = slot->BuildIndexesAndStats(); !s.ok()) {
        state.SkipWithError(s.ToString().c_str());
        return;
      }
    }
  }
  CleanAnswerEngine engine(slot->db.get(), &slot->dirty);
  const TpchQuery* q = FindTpchQuery(10);
  for (auto _ : state) {
    auto answers = engine.Query(q->sql);
    if (!answers.ok()) state.SkipWithError(answers.status().ToString().c_str());
    benchmark::DoNotOptimize(answers->answers.size());
  }
}

BENCHMARK(BM_Q10WithAndWithoutIndexes)
    ->Name("Ablation/IndexesAndStats")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// ---- 3. join ordering: greedy vs. Selinger-style DP ----

void BM_JoinOrdering(benchmark::State& state) {
  bool dp = state.range(1) != 0;
  TpchDirtyDatabase& db = bench::GetCachedDb(5, 3);
  PlannerOptions options;
  options.join_ordering = dp
                              ? PlannerOptions::JoinOrdering::kDynamicProgramming
                              : PlannerOptions::JoinOrdering::kGreedy;
  db.db->set_planner_options(options);
  CleanAnswerEngine engine(db.db.get(), &db.dirty);
  const TpchQuery* q = FindTpchQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto answers = engine.Query(q->sql);
    if (!answers.ok()) state.SkipWithError(answers.status().ToString().c_str());
    benchmark::DoNotOptimize(answers->answers.size());
  }
  db.db->set_planner_options(PlannerOptions{});
}

BENCHMARK(BM_JoinOrdering)
    ->Name("Ablation/JoinOrdering")  // Args: {query, 0=greedy/1=dp}
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({9, 0})
    ->Args({9, 1})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// ---- 4. rewrite-only cost ----

void BM_RewriteOnly(benchmark::State& state) {
  TpchDirtyDatabase& db = bench::GetCachedDb(5, 3);
  CleanAnswerEngine engine(db.db.get(), &db.dirty);
  const TpchQuery* q = FindTpchQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto sql = engine.RewrittenSql(q->sql);
    if (!sql.ok()) state.SkipWithError(sql.status().ToString().c_str());
    benchmark::DoNotOptimize(sql->size());
  }
}

BENCHMARK(BM_RewriteOnly)
    ->Name("Ablation/RewriteOnly")
    ->Arg(3)
    ->Arg(9)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace conquer

BENCHMARK_MAIN();
