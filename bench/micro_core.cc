// Micro-benchmarks of the core primitives: SQL parsing, binding, the
// RewriteClean transformation, DCF operations, and the information-loss
// distance. These bound the constant factors behind the offline (Fig. 7)
// and online (Fig. 8) costs.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/str_util.h"
#include "gen/tpch_queries.h"
#include "plan/binder.h"
#include "prob/dcf.h"
#include "sql/parser.h"

namespace conquer {
namespace {

void BM_ParseQuery(benchmark::State& state) {
  const std::string& sql = FindTpchQuery(static_cast<int>(state.range(0)))->sql;
  for (auto _ : state) {
    auto stmt = Parser::Parse(sql);
    if (!stmt.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseQuery)->Name("Micro/Parse")->Arg(3)->Arg(9);

void BM_StatementToString(benchmark::State& state) {
  auto stmt = Parser::Parse(FindTpchQuery(9)->sql);
  for (auto _ : state) {
    std::string text = (*stmt)->ToString();
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_StatementToString)->Name("Micro/Print");

void BM_StatementClone(benchmark::State& state) {
  auto stmt = Parser::Parse(FindTpchQuery(9)->sql);
  for (auto _ : state) {
    auto copy = (*stmt)->Clone();
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_StatementClone)->Name("Micro/CloneAst");

void BM_DcfMerge(benchmark::State& state) {
  Rng rng(7);
  std::vector<Dcf> tuples;
  for (int i = 0; i < 64; ++i) {
    std::vector<uint32_t> values;
    for (int a = 0; a < 16; ++a) {
      values.push_back(static_cast<uint32_t>(a * 100 + rng.Uniform(0, 20)));
    }
    tuples.push_back(Dcf::ForTuple(std::move(values)));
  }
  for (auto _ : state) {
    Dcf rep = tuples[0];
    for (size_t i = 1; i < tuples.size(); ++i) rep = Dcf::Merge(rep, tuples[i]);
    benchmark::DoNotOptimize(rep.weight);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
}
BENCHMARK(BM_DcfMerge)->Name("Micro/DcfMerge64");

void BM_InformationLossDistance(benchmark::State& state) {
  Rng rng(9);
  std::vector<uint32_t> a, b;
  for (int i = 0; i < 16; ++i) {
    a.push_back(static_cast<uint32_t>(i * 100 + rng.Uniform(0, 20)));
    b.push_back(static_cast<uint32_t>(i * 100 + rng.Uniform(0, 20)));
  }
  Dcf da = Dcf::ForTuple(a);
  Dcf db_ = Dcf::ForTuple(b);
  Dcf rep = Dcf::Merge(da, db_);
  for (auto _ : state) {
    double d = InformationLossDistance(da, rep, 1000.0);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_InformationLossDistance)->Name("Micro/InfoLossDistance");

void BM_LikeMatch(benchmark::State& state) {
  std::string text = "the quick brown fox jumps over the lazy dog";
  for (auto _ : state) {
    bool m1 = LikeMatch(text, "%brown%dog");
    bool m2 = LikeMatch(text, "the%cat");
    benchmark::DoNotOptimize(m1);
    benchmark::DoNotOptimize(m2);
  }
}
BENCHMARK(BM_LikeMatch)->Name("Micro/LikeMatch");

}  // namespace
}  // namespace conquer

BENCHMARK_MAIN();
