file(REMOVE_RECURSE
  "libconquer_types.a"
)
