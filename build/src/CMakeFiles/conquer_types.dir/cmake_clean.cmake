file(REMOVE_RECURSE
  "CMakeFiles/conquer_types.dir/types/value.cc.o"
  "CMakeFiles/conquer_types.dir/types/value.cc.o.d"
  "libconquer_types.a"
  "libconquer_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conquer_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
