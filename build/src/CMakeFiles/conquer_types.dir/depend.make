# Empty dependencies file for conquer_types.
# This may be replaced when dependencies are built.
