file(REMOVE_RECURSE
  "CMakeFiles/conquer_prob.dir/prob/assigner.cc.o"
  "CMakeFiles/conquer_prob.dir/prob/assigner.cc.o.d"
  "CMakeFiles/conquer_prob.dir/prob/dcf.cc.o"
  "CMakeFiles/conquer_prob.dir/prob/dcf.cc.o.d"
  "CMakeFiles/conquer_prob.dir/prob/edit_distance.cc.o"
  "CMakeFiles/conquer_prob.dir/prob/edit_distance.cc.o.d"
  "CMakeFiles/conquer_prob.dir/prob/matcher.cc.o"
  "CMakeFiles/conquer_prob.dir/prob/matcher.cc.o.d"
  "CMakeFiles/conquer_prob.dir/prob/propagate.cc.o"
  "CMakeFiles/conquer_prob.dir/prob/propagate.cc.o.d"
  "CMakeFiles/conquer_prob.dir/prob/providers.cc.o"
  "CMakeFiles/conquer_prob.dir/prob/providers.cc.o.d"
  "libconquer_prob.a"
  "libconquer_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conquer_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
