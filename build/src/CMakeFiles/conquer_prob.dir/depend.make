# Empty dependencies file for conquer_prob.
# This may be replaced when dependencies are built.
