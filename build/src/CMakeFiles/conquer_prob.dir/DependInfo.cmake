
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prob/assigner.cc" "src/CMakeFiles/conquer_prob.dir/prob/assigner.cc.o" "gcc" "src/CMakeFiles/conquer_prob.dir/prob/assigner.cc.o.d"
  "/root/repo/src/prob/dcf.cc" "src/CMakeFiles/conquer_prob.dir/prob/dcf.cc.o" "gcc" "src/CMakeFiles/conquer_prob.dir/prob/dcf.cc.o.d"
  "/root/repo/src/prob/edit_distance.cc" "src/CMakeFiles/conquer_prob.dir/prob/edit_distance.cc.o" "gcc" "src/CMakeFiles/conquer_prob.dir/prob/edit_distance.cc.o.d"
  "/root/repo/src/prob/matcher.cc" "src/CMakeFiles/conquer_prob.dir/prob/matcher.cc.o" "gcc" "src/CMakeFiles/conquer_prob.dir/prob/matcher.cc.o.d"
  "/root/repo/src/prob/propagate.cc" "src/CMakeFiles/conquer_prob.dir/prob/propagate.cc.o" "gcc" "src/CMakeFiles/conquer_prob.dir/prob/propagate.cc.o.d"
  "/root/repo/src/prob/providers.cc" "src/CMakeFiles/conquer_prob.dir/prob/providers.cc.o" "gcc" "src/CMakeFiles/conquer_prob.dir/prob/providers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/conquer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
