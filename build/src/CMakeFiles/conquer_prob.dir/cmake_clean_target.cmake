file(REMOVE_RECURSE
  "libconquer_prob.a"
)
