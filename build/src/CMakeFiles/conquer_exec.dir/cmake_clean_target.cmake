file(REMOVE_RECURSE
  "libconquer_exec.a"
)
