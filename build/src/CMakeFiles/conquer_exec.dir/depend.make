# Empty dependencies file for conquer_exec.
# This may be replaced when dependencies are built.
