file(REMOVE_RECURSE
  "CMakeFiles/conquer_exec.dir/exec/eval.cc.o"
  "CMakeFiles/conquer_exec.dir/exec/eval.cc.o.d"
  "CMakeFiles/conquer_exec.dir/exec/operators.cc.o"
  "CMakeFiles/conquer_exec.dir/exec/operators.cc.o.d"
  "CMakeFiles/conquer_exec.dir/exec/result_set.cc.o"
  "CMakeFiles/conquer_exec.dir/exec/result_set.cc.o.d"
  "CMakeFiles/conquer_exec.dir/plan/binder.cc.o"
  "CMakeFiles/conquer_exec.dir/plan/binder.cc.o.d"
  "CMakeFiles/conquer_exec.dir/plan/planner.cc.o"
  "CMakeFiles/conquer_exec.dir/plan/planner.cc.o.d"
  "libconquer_exec.a"
  "libconquer_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conquer_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
