
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/eval.cc" "src/CMakeFiles/conquer_exec.dir/exec/eval.cc.o" "gcc" "src/CMakeFiles/conquer_exec.dir/exec/eval.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/conquer_exec.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/conquer_exec.dir/exec/operators.cc.o.d"
  "/root/repo/src/exec/result_set.cc" "src/CMakeFiles/conquer_exec.dir/exec/result_set.cc.o" "gcc" "src/CMakeFiles/conquer_exec.dir/exec/result_set.cc.o.d"
  "/root/repo/src/plan/binder.cc" "src/CMakeFiles/conquer_exec.dir/plan/binder.cc.o" "gcc" "src/CMakeFiles/conquer_exec.dir/plan/binder.cc.o.d"
  "/root/repo/src/plan/planner.cc" "src/CMakeFiles/conquer_exec.dir/plan/planner.cc.o" "gcc" "src/CMakeFiles/conquer_exec.dir/plan/planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/conquer_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
