file(REMOVE_RECURSE
  "CMakeFiles/conquer_common.dir/common/rng.cc.o"
  "CMakeFiles/conquer_common.dir/common/rng.cc.o.d"
  "CMakeFiles/conquer_common.dir/common/status.cc.o"
  "CMakeFiles/conquer_common.dir/common/status.cc.o.d"
  "CMakeFiles/conquer_common.dir/common/str_util.cc.o"
  "CMakeFiles/conquer_common.dir/common/str_util.cc.o.d"
  "libconquer_common.a"
  "libconquer_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conquer_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
