# Empty dependencies file for conquer_common.
# This may be replaced when dependencies are built.
