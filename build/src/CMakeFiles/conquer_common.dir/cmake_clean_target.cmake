file(REMOVE_RECURSE
  "libconquer_common.a"
)
