file(REMOVE_RECURSE
  "libconquer_gen.a"
)
