file(REMOVE_RECURSE
  "CMakeFiles/conquer_gen.dir/gen/cora.cc.o"
  "CMakeFiles/conquer_gen.dir/gen/cora.cc.o.d"
  "CMakeFiles/conquer_gen.dir/gen/perturb.cc.o"
  "CMakeFiles/conquer_gen.dir/gen/perturb.cc.o.d"
  "CMakeFiles/conquer_gen.dir/gen/tpch_dirty.cc.o"
  "CMakeFiles/conquer_gen.dir/gen/tpch_dirty.cc.o.d"
  "CMakeFiles/conquer_gen.dir/gen/tpch_queries.cc.o"
  "CMakeFiles/conquer_gen.dir/gen/tpch_queries.cc.o.d"
  "libconquer_gen.a"
  "libconquer_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conquer_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
