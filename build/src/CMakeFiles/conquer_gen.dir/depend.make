# Empty dependencies file for conquer_gen.
# This may be replaced when dependencies are built.
