
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/conquer_storage.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/conquer_storage.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/schema.cc" "src/CMakeFiles/conquer_storage.dir/catalog/schema.cc.o" "gcc" "src/CMakeFiles/conquer_storage.dir/catalog/schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/conquer_storage.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/conquer_storage.dir/storage/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/conquer_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
