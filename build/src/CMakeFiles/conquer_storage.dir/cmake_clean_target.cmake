file(REMOVE_RECURSE
  "libconquer_storage.a"
)
