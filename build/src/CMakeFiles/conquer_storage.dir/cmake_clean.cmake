file(REMOVE_RECURSE
  "CMakeFiles/conquer_storage.dir/catalog/catalog.cc.o"
  "CMakeFiles/conquer_storage.dir/catalog/catalog.cc.o.d"
  "CMakeFiles/conquer_storage.dir/catalog/schema.cc.o"
  "CMakeFiles/conquer_storage.dir/catalog/schema.cc.o.d"
  "CMakeFiles/conquer_storage.dir/storage/table.cc.o"
  "CMakeFiles/conquer_storage.dir/storage/table.cc.o.d"
  "libconquer_storage.a"
  "libconquer_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conquer_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
