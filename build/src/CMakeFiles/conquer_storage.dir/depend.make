# Empty dependencies file for conquer_storage.
# This may be replaced when dependencies are built.
