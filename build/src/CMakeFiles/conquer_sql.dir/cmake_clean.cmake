file(REMOVE_RECURSE
  "CMakeFiles/conquer_sql.dir/sql/ast.cc.o"
  "CMakeFiles/conquer_sql.dir/sql/ast.cc.o.d"
  "CMakeFiles/conquer_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/conquer_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/conquer_sql.dir/sql/parser.cc.o"
  "CMakeFiles/conquer_sql.dir/sql/parser.cc.o.d"
  "libconquer_sql.a"
  "libconquer_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conquer_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
