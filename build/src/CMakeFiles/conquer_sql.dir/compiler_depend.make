# Empty compiler generated dependencies file for conquer_sql.
# This may be replaced when dependencies are built.
