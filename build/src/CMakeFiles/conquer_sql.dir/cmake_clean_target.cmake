file(REMOVE_RECURSE
  "libconquer_sql.a"
)
