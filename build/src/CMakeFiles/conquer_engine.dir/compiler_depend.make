# Empty compiler generated dependencies file for conquer_engine.
# This may be replaced when dependencies are built.
