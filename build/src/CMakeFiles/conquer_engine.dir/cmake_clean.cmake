file(REMOVE_RECURSE
  "CMakeFiles/conquer_engine.dir/engine/csv.cc.o"
  "CMakeFiles/conquer_engine.dir/engine/csv.cc.o.d"
  "CMakeFiles/conquer_engine.dir/engine/database.cc.o"
  "CMakeFiles/conquer_engine.dir/engine/database.cc.o.d"
  "libconquer_engine.a"
  "libconquer_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conquer_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
