file(REMOVE_RECURSE
  "libconquer_engine.a"
)
