# Empty dependencies file for conquer_core.
# This may be replaced when dependencies are built.
