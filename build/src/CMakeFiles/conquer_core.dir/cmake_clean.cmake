file(REMOVE_RECURSE
  "CMakeFiles/conquer_core.dir/core/aggregates.cc.o"
  "CMakeFiles/conquer_core.dir/core/aggregates.cc.o.d"
  "CMakeFiles/conquer_core.dir/core/clean_answer.cc.o"
  "CMakeFiles/conquer_core.dir/core/clean_answer.cc.o.d"
  "CMakeFiles/conquer_core.dir/core/clean_engine.cc.o"
  "CMakeFiles/conquer_core.dir/core/clean_engine.cc.o.d"
  "CMakeFiles/conquer_core.dir/core/dirty_schema.cc.o"
  "CMakeFiles/conquer_core.dir/core/dirty_schema.cc.o.d"
  "CMakeFiles/conquer_core.dir/core/naive_eval.cc.o"
  "CMakeFiles/conquer_core.dir/core/naive_eval.cc.o.d"
  "CMakeFiles/conquer_core.dir/core/rewrite.cc.o"
  "CMakeFiles/conquer_core.dir/core/rewrite.cc.o.d"
  "CMakeFiles/conquer_core.dir/engine/persist.cc.o"
  "CMakeFiles/conquer_core.dir/engine/persist.cc.o.d"
  "libconquer_core.a"
  "libconquer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conquer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
