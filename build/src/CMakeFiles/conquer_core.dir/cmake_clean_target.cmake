file(REMOVE_RECURSE
  "libconquer_core.a"
)
