
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregates.cc" "src/CMakeFiles/conquer_core.dir/core/aggregates.cc.o" "gcc" "src/CMakeFiles/conquer_core.dir/core/aggregates.cc.o.d"
  "/root/repo/src/core/clean_answer.cc" "src/CMakeFiles/conquer_core.dir/core/clean_answer.cc.o" "gcc" "src/CMakeFiles/conquer_core.dir/core/clean_answer.cc.o.d"
  "/root/repo/src/core/clean_engine.cc" "src/CMakeFiles/conquer_core.dir/core/clean_engine.cc.o" "gcc" "src/CMakeFiles/conquer_core.dir/core/clean_engine.cc.o.d"
  "/root/repo/src/core/dirty_schema.cc" "src/CMakeFiles/conquer_core.dir/core/dirty_schema.cc.o" "gcc" "src/CMakeFiles/conquer_core.dir/core/dirty_schema.cc.o.d"
  "/root/repo/src/core/naive_eval.cc" "src/CMakeFiles/conquer_core.dir/core/naive_eval.cc.o" "gcc" "src/CMakeFiles/conquer_core.dir/core/naive_eval.cc.o.d"
  "/root/repo/src/core/rewrite.cc" "src/CMakeFiles/conquer_core.dir/core/rewrite.cc.o" "gcc" "src/CMakeFiles/conquer_core.dir/core/rewrite.cc.o.d"
  "/root/repo/src/engine/persist.cc" "src/CMakeFiles/conquer_core.dir/engine/persist.cc.o" "gcc" "src/CMakeFiles/conquer_core.dir/engine/persist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/conquer_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
