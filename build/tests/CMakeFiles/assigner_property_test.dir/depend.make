# Empty dependencies file for assigner_property_test.
# This may be replaced when dependencies are built.
