file(REMOVE_RECURSE
  "CMakeFiles/assigner_property_test.dir/prob/assigner_property_test.cc.o"
  "CMakeFiles/assigner_property_test.dir/prob/assigner_property_test.cc.o.d"
  "assigner_property_test"
  "assigner_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assigner_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
