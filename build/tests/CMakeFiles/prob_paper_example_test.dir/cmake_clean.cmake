file(REMOVE_RECURSE
  "CMakeFiles/prob_paper_example_test.dir/prob/paper_example_test.cc.o"
  "CMakeFiles/prob_paper_example_test.dir/prob/paper_example_test.cc.o.d"
  "prob_paper_example_test"
  "prob_paper_example_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prob_paper_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
