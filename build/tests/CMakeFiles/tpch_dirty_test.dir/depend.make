# Empty dependencies file for tpch_dirty_test.
# This may be replaced when dependencies are built.
