file(REMOVE_RECURSE
  "CMakeFiles/tpch_dirty_test.dir/gen/tpch_dirty_test.cc.o"
  "CMakeFiles/tpch_dirty_test.dir/gen/tpch_dirty_test.cc.o.d"
  "tpch_dirty_test"
  "tpch_dirty_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_dirty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
