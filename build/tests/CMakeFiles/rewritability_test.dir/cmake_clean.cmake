file(REMOVE_RECURSE
  "CMakeFiles/rewritability_test.dir/core/rewritability_test.cc.o"
  "CMakeFiles/rewritability_test.dir/core/rewritability_test.cc.o.d"
  "rewritability_test"
  "rewritability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewritability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
