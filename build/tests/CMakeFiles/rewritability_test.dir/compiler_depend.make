# Empty compiler generated dependencies file for rewritability_test.
# This may be replaced when dependencies are built.
