file(REMOVE_RECURSE
  "CMakeFiles/rewrite_shape_test.dir/integration/rewrite_shape_test.cc.o"
  "CMakeFiles/rewrite_shape_test.dir/integration/rewrite_shape_test.cc.o.d"
  "rewrite_shape_test"
  "rewrite_shape_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
