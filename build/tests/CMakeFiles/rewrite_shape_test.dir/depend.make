# Empty dependencies file for rewrite_shape_test.
# This may be replaced when dependencies are built.
