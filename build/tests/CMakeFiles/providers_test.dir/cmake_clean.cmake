file(REMOVE_RECURSE
  "CMakeFiles/providers_test.dir/prob/providers_test.cc.o"
  "CMakeFiles/providers_test.dir/prob/providers_test.cc.o.d"
  "providers_test"
  "providers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/providers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
