# Empty dependencies file for providers_test.
# This may be replaced when dependencies are built.
