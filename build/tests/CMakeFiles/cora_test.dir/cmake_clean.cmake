file(REMOVE_RECURSE
  "CMakeFiles/cora_test.dir/gen/cora_test.cc.o"
  "CMakeFiles/cora_test.dir/gen/cora_test.cc.o.d"
  "cora_test"
  "cora_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cora_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
