file(REMOVE_RECURSE
  "CMakeFiles/engine_advanced_test.dir/engine/engine_advanced_test.cc.o"
  "CMakeFiles/engine_advanced_test.dir/engine/engine_advanced_test.cc.o.d"
  "engine_advanced_test"
  "engine_advanced_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_advanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
