file(REMOVE_RECURSE
  "CMakeFiles/dcf_test.dir/prob/dcf_test.cc.o"
  "CMakeFiles/dcf_test.dir/prob/dcf_test.cc.o.d"
  "dcf_test"
  "dcf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
