
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_offline_times.cc" "bench/CMakeFiles/fig7_offline_times.dir/fig7_offline_times.cc.o" "gcc" "bench/CMakeFiles/fig7_offline_times.dir/fig7_offline_times.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/conquer_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/conquer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
