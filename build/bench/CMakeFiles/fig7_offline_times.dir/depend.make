# Empty dependencies file for fig7_offline_times.
# This may be replaced when dependencies are built.
