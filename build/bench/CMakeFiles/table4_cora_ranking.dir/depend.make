# Empty dependencies file for table4_cora_ranking.
# This may be replaced when dependencies are built.
