file(REMOVE_RECURSE
  "CMakeFiles/table4_cora_ranking.dir/table4_cora_ranking.cc.o"
  "CMakeFiles/table4_cora_ranking.dir/table4_cora_ranking.cc.o.d"
  "table4_cora_ranking"
  "table4_cora_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_cora_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
