# Empty dependencies file for table3_paper_example.
# This may be replaced when dependencies are built.
