file(REMOVE_RECURSE
  "CMakeFiles/table3_paper_example.dir/table3_paper_example.cc.o"
  "CMakeFiles/table3_paper_example.dir/table3_paper_example.cc.o.d"
  "table3_paper_example"
  "table3_paper_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_paper_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
