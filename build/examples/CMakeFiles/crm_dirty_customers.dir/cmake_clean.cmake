file(REMOVE_RECURSE
  "CMakeFiles/crm_dirty_customers.dir/crm_dirty_customers.cpp.o"
  "CMakeFiles/crm_dirty_customers.dir/crm_dirty_customers.cpp.o.d"
  "crm_dirty_customers"
  "crm_dirty_customers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crm_dirty_customers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
