# Empty compiler generated dependencies file for crm_dirty_customers.
# This may be replaced when dependencies are built.
