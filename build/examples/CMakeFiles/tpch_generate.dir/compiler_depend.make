# Empty compiler generated dependencies file for tpch_generate.
# This may be replaced when dependencies are built.
