file(REMOVE_RECURSE
  "CMakeFiles/tpch_generate.dir/tpch_generate.cpp.o"
  "CMakeFiles/tpch_generate.dir/tpch_generate.cpp.o.d"
  "tpch_generate"
  "tpch_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
