file(REMOVE_RECURSE
  "CMakeFiles/tpch_clean_answers.dir/tpch_clean_answers.cpp.o"
  "CMakeFiles/tpch_clean_answers.dir/tpch_clean_answers.cpp.o.d"
  "tpch_clean_answers"
  "tpch_clean_answers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_clean_answers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
