# Empty compiler generated dependencies file for tpch_clean_answers.
# This may be replaced when dependencies are built.
