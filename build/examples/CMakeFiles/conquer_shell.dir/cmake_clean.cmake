file(REMOVE_RECURSE
  "CMakeFiles/conquer_shell.dir/conquer_shell.cpp.o"
  "CMakeFiles/conquer_shell.dir/conquer_shell.cpp.o.d"
  "conquer_shell"
  "conquer_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conquer_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
