# Empty compiler generated dependencies file for conquer_shell.
# This may be replaced when dependencies are built.
