#include "catalog/schema.h"

#include "common/str_util.h"

namespace conquer {

std::optional<size_t> TableSchema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

Result<size_t> TableSchema::GetColumnIndex(std::string_view name) const {
  auto idx = FindColumn(name);
  if (!idx) {
    return Status::NotFound("column '" + std::string(name) + "' not in table '" +
                            table_name_ + "'");
  }
  return *idx;
}

Status TableSchema::AddColumn(ColumnDef col) {
  if (FindColumn(col.name)) {
    return Status::AlreadyExists("column '" + col.name + "' already exists in '" +
                                 table_name_ + "'");
  }
  columns_.push_back(std::move(col));
  return Status::OK();
}

}  // namespace conquer
