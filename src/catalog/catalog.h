#ifndef CONQUER_CATALOG_CATALOG_H_
#define CONQUER_CATALOG_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace conquer {

/// \brief Name -> table registry. Table names are case-insensitive.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table with the given schema.
  Result<Table*> CreateTable(TableSchema schema);

  /// Registers an already-populated table (takes ownership).
  Result<Table*> AddTable(std::unique_ptr<Table> table);

  /// Drops the named table; NotFound if absent.
  Status DropTable(std::string_view name);

  /// Looks up a table (nullptr-free: NotFound on miss).
  Result<Table*> GetTable(std::string_view name) const;

  bool HasTable(std::string_view name) const;

  /// All table names, in creation order.
  std::vector<std::string> TableNames() const;

 private:
  static std::string Key(std::string_view name);

  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> creation_order_;
};

}  // namespace conquer

#endif  // CONQUER_CATALOG_CATALOG_H_
