#include "catalog/catalog.h"

#include <algorithm>

#include "common/str_util.h"

namespace conquer {

std::string Catalog::Key(std::string_view name) { return ToLower(name); }

Result<Table*> Catalog::CreateTable(TableSchema schema) {
  return AddTable(std::make_unique<Table>(std::move(schema)));
}

Result<Table*> Catalog::AddTable(std::unique_ptr<Table> table) {
  std::string key = Key(table->name());
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + table->name() + "' already exists");
  }
  Table* ptr = table.get();
  tables_[key] = std::move(table);
  creation_order_.push_back(key);
  return ptr;
}

Status Catalog::DropTable(std::string_view name) {
  std::string key = Key(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + std::string(name) + "' does not exist");
  }
  tables_.erase(it);
  creation_order_.erase(
      std::remove(creation_order_.begin(), creation_order_.end(), key),
      creation_order_.end());
  return Status::OK();
}

Result<Table*> Catalog::GetTable(std::string_view name) const {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + std::string(name) + "' does not exist");
  }
  return it->second.get();
}

bool Catalog::HasTable(std::string_view name) const {
  return tables_.count(Key(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(creation_order_.size());
  for (const auto& key : creation_order_) {
    out.push_back(tables_.at(key)->name());
  }
  return out;
}

}  // namespace conquer
