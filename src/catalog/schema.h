#ifndef CONQUER_CATALOG_SCHEMA_H_
#define CONQUER_CATALOG_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace conquer {

/// \brief Definition of one column: name and type.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kString;

  ColumnDef() = default;
  ColumnDef(std::string n, DataType t) : name(std::move(n)), type(t) {}
};

/// \brief Schema of a table: ordered named, typed columns.
///
/// Column names are case-insensitive (stored as given, matched ignoring
/// case), per SQL convention.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string table_name, std::vector<ColumnDef> columns)
      : table_name_(std::move(table_name)), columns_(std::move(columns)) {}

  const std::string& table_name() const { return table_name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  /// Index of the named column, or nullopt.
  std::optional<size_t> FindColumn(std::string_view name) const;

  /// Index of the named column, or NotFound.
  Result<size_t> GetColumnIndex(std::string_view name) const;

  /// Appends a column; returns AlreadyExists on a duplicate name.
  Status AddColumn(ColumnDef col);

 private:
  std::string table_name_;
  std::vector<ColumnDef> columns_;
};

}  // namespace conquer

#endif  // CONQUER_CATALOG_SCHEMA_H_
