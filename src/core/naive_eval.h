#ifndef CONQUER_CORE_NAIVE_EVAL_H_
#define CONQUER_CORE_NAIVE_EVAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/clean_answer.h"
#include "core/dirty_schema.h"
#include "engine/database.h"

namespace conquer {

/// \brief Reference implementation of the clean-answer semantics by direct
/// candidate-database enumeration (paper Dfn 3-5).
///
/// Materializes every candidate database (choose exactly one tuple per
/// cluster), runs the query on each, and accumulates the candidate
/// probability onto every answer tuple. Exponential in the number of
/// non-singleton clusters — this is the testing oracle against which the
/// SQL rewriting is validated, not a production path. Enumeration is capped
/// (ResourceExhausted beyond `max_candidates`).
class NaiveCandidateEvaluator {
 public:
  NaiveCandidateEvaluator(const Database* db, const DirtySchema* dirty)
      : db_(db), dirty_(dirty) {}

  /// Clean answers of an SPJ query (set semantics; ORDER BY ignored).
  Result<CleanAnswerSet> Evaluate(std::string_view sql,
                                  uint64_t max_candidates = 1 << 20) const;

  /// Number of candidate databases the dirty tables referenced by `sql`
  /// induce (product of cluster cardinalities).
  Result<uint64_t> CountCandidates(std::string_view sql) const;

  /// Probability of each candidate database of the named tables, computed
  /// per Dfn 4 (product of chosen tuple probabilities). Exposed so tests
  /// can check the worked examples (paper Example 3 / Figure 3).
  Result<std::vector<double>> CandidateProbabilities(
      const std::vector<std::string>& tables,
      uint64_t max_candidates = 1 << 20) const;

 private:
  struct Cluster {
    std::string table;           ///< owning table name
    std::vector<size_t> members; ///< row positions within the table
  };

  /// Clusters of the given tables, in deterministic (table, first-row) order.
  Result<std::vector<Cluster>> CollectClusters(
      const std::vector<std::string>& tables) const;

  const Database* db_;
  const DirtySchema* dirty_;
};

}  // namespace conquer

#endif  // CONQUER_CORE_NAIVE_EVAL_H_
