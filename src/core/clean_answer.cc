#include "core/clean_answer.h"

#include <algorithm>

#include "common/str_util.h"
#include "exec/result_set.h"

namespace conquer {

namespace {
bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].TotalCompare(b[i]) != 0) return false;
  }
  return true;
}
}  // namespace

double ClampProbability(double p) {
  if (p >= 1.0 - kProbabilityEpsilon) return 1.0;
  if (p <= kProbabilityEpsilon) return p < 0.0 ? 0.0 : p;
  return p;
}

double CleanAnswerSet::ProbabilityOf(const Row& row) const {
  for (const CleanAnswer& a : answers) {
    if (RowsEqual(a.row, row)) return a.probability;
  }
  return 0.0;
}

std::vector<Row> CleanAnswerSet::ConsistentAnswers(double epsilon) const {
  std::vector<Row> out;
  for (const CleanAnswer& a : answers) {
    if (a.probability >= 1.0 - epsilon) out.push_back(a.row);
  }
  return out;
}

void CleanAnswerSet::SortByProbabilityDesc() {
  std::stable_sort(answers.begin(), answers.end(),
                   [](const CleanAnswer& a, const CleanAnswer& b) {
                     return a.probability > b.probability;
                   });
}

std::vector<CleanAnswer> CleanAnswerSet::TopK(size_t k) const {
  std::vector<CleanAnswer> sorted = answers;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const CleanAnswer& a, const CleanAnswer& b) {
                     return a.probability > b.probability;
                   });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

std::string CleanAnswerSet::ToString(size_t max_rows) const {
  ResultSet rs;
  rs.column_names = column_names;
  rs.column_names.push_back("probability");
  for (const CleanAnswer& a : answers) {
    Row row = a.row;
    row.push_back(Value::Double(a.probability));
    rs.rows.push_back(std::move(row));
  }
  return rs.ToString(max_rows);
}

}  // namespace conquer
