#ifndef CONQUER_CORE_REWRITE_H_
#define CONQUER_CORE_REWRITE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "core/dirty_schema.h"
#include "plan/binder.h"
#include "sql/ast.h"

namespace conquer {

/// \brief The join graph of an SPJ query (paper Dfn 6).
///
/// Vertices are the FROM relations. There is a directed arc Ri -> Rj when a
/// non-identifier attribute of Ri is equated with the identifier of Rj.
/// Joins equating two identifiers are recorded separately (`id_id_edges`);
/// for the tree test they unify the two vertices into one super-node, since
/// their identifiers are forced equal.
struct JoinGraph {
  struct Arc {
    int from;  ///< FROM-list index of the referencing relation
    int to;    ///< FROM-list index of the identified relation
  };
  struct Edge {
    int a;
    int b;
  };

  int num_vertices = 0;
  std::vector<Arc> arcs;
  std::vector<Edge> id_id_edges;

  /// Human-readable rendering (for diagnostics and examples).
  std::string ToString(const SelectStatement& stmt) const;
};

/// \brief Outcome of the rewritability test (paper Dfn 7).
struct RewritabilityCheck {
  bool rewritable = false;
  /// Violated condition, empty when rewritable. Examples:
  /// "join on two non-identifier attributes", "join graph is not a tree",
  /// "self-join on relation 'r'", "identifier of root relation 'r' is not
  /// in the SELECT clause".
  std::string reason;
  /// Root of the join-graph tree (valid when rewritable).
  int root_from_index = -1;
  JoinGraph graph;
};

/// \brief Analyzes and rewrites queries over dirty databases.
///
/// Implements the paper's Section 3: the join graph (Dfn 6), the class of
/// rewritable queries (Dfn 7), and RewriteClean (Fig. 4), which appends
/// `SUM(R1.prob * ... * Rm.prob)` to the SELECT list and groups by the
/// original SELECT attributes.
class CleanRewriter {
 public:
  /// Both pointers must outlive the rewriter.
  CleanRewriter(const Catalog* catalog, const DirtySchema* dirty)
      : catalog_(catalog), dirty_(dirty) {}

  /// Builds the join graph of a *bound* query. Fails with NotRewritable if
  /// some join equates two non-identifier attributes, and with
  /// InvalidArgument if the query is not SPJ (aggregates, GROUP BY,
  /// DISTINCT, LIMIT, disjunctive join conditions, or a FROM table not
  /// registered in the dirty schema).
  Result<JoinGraph> BuildJoinGraph(const BoundQuery& q) const;

  /// Tests the four conditions of Dfn 7, reporting the first violation.
  Result<RewritabilityCheck> CheckRewritable(const SelectStatement& stmt) const;

  /// RewriteClean (Fig. 4): returns the rewritten statement computing the
  /// clean answers, with the probability column aliased `clean_prob`.
  /// Returns NotRewritable (with the violated condition) when the query is
  /// outside the rewritable class.
  Result<std::unique_ptr<SelectStatement>> RewriteClean(
      const SelectStatement& stmt) const;

  /// Convenience: parse, rewrite, and print back to SQL text.
  Result<std::string> RewriteCleanSql(std::string_view sql) const;

  const DirtySchema* dirty_schema() const { return dirty_; }

 private:
  /// True when (from_index, column_index) is the identifier attribute.
  bool IsIdentifier(const BoundQuery& q, int from_index,
                    int column_index) const;

  const Catalog* catalog_;
  const DirtySchema* dirty_;
};

}  // namespace conquer

#endif  // CONQUER_CORE_REWRITE_H_
