#include "core/naive_eval.h"

#include <map>
#include <unordered_map>

#include "common/str_util.h"
#include "sql/parser.h"

namespace conquer {

namespace {

/// Odometer over per-cluster choices; returns false after the last one.
bool NextAssignment(std::vector<size_t>* choice,
                    const std::vector<size_t>& sizes) {
  for (size_t i = 0; i < choice->size(); ++i) {
    if (++(*choice)[i] < sizes[i]) return true;
    (*choice)[i] = 0;
  }
  return false;
}

struct RowKeyHash {
  size_t operator()(const Row& r) const {
    size_t h = 0x811c9dc5u;
    for (const Value& v : r) {
      h ^= v.Hash();
      h *= 0x01000193u;
    }
    return h;
  }
};
struct RowKeyEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].TotalCompare(b[i]) != 0) return false;
    }
    return true;
  }
};

std::vector<std::string> DistinctFromTables(const SelectStatement& stmt) {
  std::vector<std::string> out;
  for (const TableRef& ref : stmt.from) {
    bool seen = false;
    for (const auto& t : out) seen = seen || EqualsIgnoreCase(t, ref.table_name);
    if (!seen) out.push_back(ref.table_name);
  }
  return out;
}

}  // namespace

Result<std::vector<NaiveCandidateEvaluator::Cluster>>
NaiveCandidateEvaluator::CollectClusters(
    const std::vector<std::string>& tables) const {
  std::vector<Cluster> clusters;
  for (const std::string& name : tables) {
    CONQUER_ASSIGN_OR_RETURN(Table * table, db_->GetTable(name));
    CONQUER_ASSIGN_OR_RETURN(const DirtyTableInfo* info, dirty_->Get(name));
    CONQUER_ASSIGN_OR_RETURN(size_t id_col,
                             table->schema().GetColumnIndex(info->id_column));
    // Group rows by identifier value, preserving first-seen order.
    std::unordered_map<Value, size_t, ValueHash> index;  // id -> cluster pos
    for (size_t r = 0; r < table->num_rows(); ++r) {
      Value id = table->ValueAt(r, id_col);
      auto it = index.find(id);
      if (it == index.end()) {
        index.emplace(std::move(id), clusters.size());
        clusters.push_back({name, {r}});
      } else {
        clusters[it->second].members.push_back(r);
      }
    }
  }
  return clusters;
}

Result<uint64_t> NaiveCandidateEvaluator::CountCandidates(
    std::string_view sql) const {
  CONQUER_ASSIGN_OR_RETURN(auto stmt, Parser::Parse(sql));
  CONQUER_ASSIGN_OR_RETURN(auto clusters,
                           CollectClusters(DistinctFromTables(*stmt)));
  uint64_t total = 1;
  for (const Cluster& c : clusters) {
    if (total > (1ull << 62) / c.members.size()) {
      return Status::ResourceExhausted("candidate count overflows");
    }
    total *= c.members.size();
  }
  return total;
}

Result<std::vector<double>> NaiveCandidateEvaluator::CandidateProbabilities(
    const std::vector<std::string>& tables, uint64_t max_candidates) const {
  CONQUER_ASSIGN_OR_RETURN(auto clusters, CollectClusters(tables));

  // Per-cluster member probabilities.
  std::vector<std::vector<double>> probs(clusters.size());
  uint64_t total = 1;
  for (size_t i = 0; i < clusters.size(); ++i) {
    CONQUER_ASSIGN_OR_RETURN(Table * table, db_->GetTable(clusters[i].table));
    CONQUER_ASSIGN_OR_RETURN(const DirtyTableInfo* info,
                             dirty_->Get(clusters[i].table));
    int prob_col = -1;
    if (!info->prob_column.empty()) {
      CONQUER_ASSIGN_OR_RETURN(
          size_t idx, table->schema().GetColumnIndex(info->prob_column));
      prob_col = static_cast<int>(idx);
    }
    for (size_t m : clusters[i].members) {
      double p = prob_col < 0
                     ? 1.0
                     : table->ValueAt(m, static_cast<size_t>(prob_col))
                           .AsDouble();
      probs[i].push_back(p);
    }
    // Divide-before-multiply so the running product cannot wrap uint64_t.
    if (total > max_candidates / clusters[i].members.size()) {
      return Status::ResourceExhausted(StringPrintf(
          "candidate databases exceed the cap (%llu)",
          static_cast<unsigned long long>(max_candidates)));
    }
    total *= clusters[i].members.size();
  }

  std::vector<double> out;
  out.reserve(total);
  std::vector<size_t> sizes;
  for (const Cluster& c : clusters) sizes.push_back(c.members.size());
  std::vector<size_t> choice(clusters.size(), 0);
  do {
    double p = 1.0;
    for (size_t i = 0; i < clusters.size(); ++i) p *= probs[i][choice[i]];
    out.push_back(p);
  } while (NextAssignment(&choice, sizes));
  return out;
}

Result<CleanAnswerSet> NaiveCandidateEvaluator::Evaluate(
    std::string_view sql, uint64_t max_candidates) const {
  CONQUER_ASSIGN_OR_RETURN(auto stmt, Parser::Parse(sql));
  // ORDER BY / LIMIT do not affect the (set-valued) answer semantics.
  stmt->order_by.clear();
  stmt->limit = -1;

  std::vector<std::string> table_names = DistinctFromTables(*stmt);
  CONQUER_ASSIGN_OR_RETURN(auto clusters, CollectClusters(table_names));

  uint64_t total = 1;
  for (const Cluster& c : clusters) {
    // Divide-before-multiply so the running product cannot wrap uint64_t.
    if (total > max_candidates / c.members.size()) {
      return Status::ResourceExhausted(StringPrintf(
          "candidate databases exceed the cap (%llu)",
          static_cast<unsigned long long>(max_candidates)));
    }
    total *= c.members.size();
  }

  // The candidate database: same schemas, contents swapped per assignment.
  Database cand;
  std::vector<Table*> src_tables(table_names.size());
  std::vector<Table*> cand_tables(table_names.size());
  std::vector<int> prob_cols(table_names.size(), -1);
  for (size_t t = 0; t < table_names.size(); ++t) {
    CONQUER_ASSIGN_OR_RETURN(src_tables[t], db_->GetTable(table_names[t]));
    CONQUER_RETURN_NOT_OK(cand.CreateTable(src_tables[t]->schema()));
    CONQUER_ASSIGN_OR_RETURN(cand_tables[t],
                             cand.GetTable(table_names[t]));
    CONQUER_ASSIGN_OR_RETURN(const DirtyTableInfo* info,
                             dirty_->Get(table_names[t]));
    if (!info->prob_column.empty()) {
      CONQUER_ASSIGN_OR_RETURN(size_t idx, src_tables[t]->schema()
                                               .GetColumnIndex(
                                                   info->prob_column));
      prob_cols[t] = static_cast<int>(idx);
    }
  }
  // Map cluster -> table position.
  std::vector<size_t> cluster_table(clusters.size());
  for (size_t i = 0; i < clusters.size(); ++i) {
    for (size_t t = 0; t < table_names.size(); ++t) {
      if (EqualsIgnoreCase(table_names[t], clusters[i].table)) {
        cluster_table[i] = t;
      }
    }
  }

  std::vector<size_t> sizes;
  for (const Cluster& c : clusters) sizes.push_back(c.members.size());
  std::vector<size_t> choice(clusters.size(), 0);

  std::unordered_map<Row, double, RowKeyHash, RowKeyEq> accum;
  std::vector<Row> answer_order;
  CleanAnswerSet result;

  do {
    // Materialize this candidate.
    for (Table* t : cand_tables) t->Clear();
    double cand_prob = 1.0;
    for (size_t i = 0; i < clusters.size(); ++i) {
      size_t t = cluster_table[i];
      size_t row_pos = clusters[i].members[choice[i]];
      const Row& row = src_tables[t]->row(row_pos);
      cand_tables[t]->InsertUnchecked(row);
      if (prob_cols[t] >= 0) cand_prob *= row[prob_cols[t]].AsDouble();
    }
    // Answers over this candidate (set semantics).
    CONQUER_ASSIGN_OR_RETURN(ResultSet rs, cand.Execute(stmt->Clone()));
    if (result.column_names.empty()) result.column_names = rs.column_names;
    std::unordered_map<Row, bool, RowKeyHash, RowKeyEq> distinct;
    for (Row& row : rs.rows) {
      auto [it, inserted] = distinct.try_emplace(std::move(row), true);
      if (!inserted) continue;
      auto [ait, fresh] = accum.try_emplace(it->first, 0.0);
      if (fresh) answer_order.push_back(it->first);
      ait->second += cand_prob;
    }
  } while (NextAssignment(&choice, sizes));

  for (const Row& row : answer_order) {
    result.answers.push_back({row, accum.at(row)});
  }
  return result;
}

}  // namespace conquer
