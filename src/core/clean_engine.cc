#include "core/clean_engine.h"

#include <unordered_map>

#include "sql/parser.h"

namespace conquer {

Result<CleanAnswerSet> CleanAnswerEngine::Query(std::string_view sql,
                                                QueryStats* stats) const {
  CONQUER_ASSIGN_OR_RETURN(auto stmt, Parser::Parse(sql));
  CONQUER_ASSIGN_OR_RETURN(auto rewritten, rewriter_.RewriteClean(*stmt));
  CONQUER_ASSIGN_OR_RETURN(ResultSet rs,
                           db_->Execute(std::move(rewritten), stats));

  CleanAnswerSet out;
  // The last column is the SUM(prob product) appended by the rewriting.
  if (rs.column_names.empty()) {
    return Status::Internal("rewritten query produced no columns");
  }
  out.column_names.assign(rs.column_names.begin(),
                          rs.column_names.end() - 1);
  out.answers.reserve(rs.rows.size());
  for (Row& row : rs.rows) {
    CleanAnswer a;
    // SUM over a cluster's tuple probabilities can drift past 1.0 by a few
    // ulps; clamp so consistency checks on probability == 1.0 stay exact.
    a.probability = ClampProbability(row.back().AsDouble());
    row.pop_back();
    a.row = std::move(row);
    out.answers.push_back(std::move(a));
  }
  return out;
}

Result<RewritabilityCheck> CleanAnswerEngine::Check(
    std::string_view sql) const {
  CONQUER_ASSIGN_OR_RETURN(auto stmt, Parser::Parse(sql));
  return rewriter_.CheckRewritable(*stmt);
}

Result<std::unique_ptr<Database>>
OfflineCleaningBaseline::BuildCleanedDatabase() const {
  auto cleaned = std::make_unique<Database>();
  for (const std::string& name : db_->catalog().TableNames()) {
    CONQUER_ASSIGN_OR_RETURN(Table * src, db_->GetTable(name));
    CONQUER_RETURN_NOT_OK(cleaned->CreateTable(src->schema()));
    CONQUER_ASSIGN_OR_RETURN(Table * dst, cleaned->GetTable(name));

    const DirtyTableInfo* info = dirty_->Find(name);
    if (info == nullptr || info->prob_column.empty()) {
      for (const Row& row : src->rows()) dst->InsertUnchecked(row);
      continue;
    }
    CONQUER_ASSIGN_OR_RETURN(size_t id_col,
                             src->schema().GetColumnIndex(info->id_column));
    CONQUER_ASSIGN_OR_RETURN(size_t prob_col,
                             src->schema().GetColumnIndex(info->prob_column));
    // Best row per cluster, first wins on ties.
    std::unordered_map<Value, size_t, ValueHash> best;  // id -> row position
    std::vector<Value> order;
    for (size_t r = 0; r < src->num_rows(); ++r) {
      Value id = src->ValueAt(r, id_col);
      auto it = best.find(id);
      if (it == best.end()) {
        best.emplace(id, r);
        order.push_back(std::move(id));
      } else if (src->ValueAt(r, prob_col).AsDouble() >
                 src->ValueAt(it->second, prob_col).AsDouble()) {
        it->second = r;
      }
    }
    for (const Value& id : order) {
      dst->InsertUnchecked(src->row(best.at(id)));
    }
  }
  return cleaned;
}

Result<ResultSet> OfflineCleaningBaseline::Query(std::string_view sql) const {
  CONQUER_ASSIGN_OR_RETURN(auto cleaned, BuildCleanedDatabase());
  return cleaned->Query(sql);
}

}  // namespace conquer
