#ifndef CONQUER_CORE_AGGREGATES_H_
#define CONQUER_CORE_AGGREGATES_H_

#include <string>

#include "core/clean_engine.h"

namespace conquer {

/// \brief Expected value of an aggregate over the clean database.
struct CleanAggregateResult {
  AggFunc func = AggFunc::kNone;
  /// E[agg] over the distribution of candidate databases. For AVG this is
  /// the ratio of expectations E[SUM]/E[COUNT] (see CleanAggregateEngine).
  double expected_value = 0.0;
  /// Number of clean answers contributing probability mass.
  size_t support = 0;
  /// Probability mass of the support, i.e. E[COUNT(*)] of the answer set.
  double expected_count = 0.0;
};

/// \brief Aggregation over clean answers — the paper's first "future work"
/// item ("extend the class of queries ... to consider queries with grouping
/// and aggregation", Section 6), realized for single-aggregate queries over
/// rewritable SPJ cores.
///
/// Semantics: for a query `SELECT agg(expr) FROM R1..Rm WHERE W` whose SPJ
/// core (projecting every relation's identifier plus expr's inputs) is
/// rewritable, the engine computes the *expected value* of the aggregate
/// over the candidate-database distribution:
///
///   E[SUM(expr)]  = sum over clean answers t of  Pr(t) * expr(t)
///   E[COUNT(*)]   = sum over clean answers t of  Pr(t)
///
/// Both follow from linearity of expectation: with every identifier
/// projected, each candidate database contributes each of its result tuples
/// exactly once. AVG is reported as E[SUM]/E[COUNT] — a ratio of
/// expectations, not E[AVG] (which is not linear); MIN/MAX are rejected.
class CleanAggregateEngine {
 public:
  /// Both pointers must outlive the engine.
  CleanAggregateEngine(const Database* db, const DirtySchema* dirty)
      : engine_(db, dirty) {}

  /// Computes the expected aggregate of `sql`, which must have exactly one
  /// SELECT item: SUM(expr), COUNT(*), COUNT(expr), or AVG(expr), over an
  /// SPJ body with no GROUP BY. Returns NotRewritable when the SPJ core is
  /// outside the rewritable class, and InvalidArgument for unsupported
  /// shapes (MIN/MAX, multiple items, grouping).
  Result<CleanAggregateResult> ExpectedValue(std::string_view sql) const;

  /// The SPJ core the engine evaluates for `sql` (for inspection).
  Result<std::string> CoreSql(std::string_view sql) const;

 private:
  Result<std::unique_ptr<SelectStatement>> BuildCore(
      const SelectStatement& stmt) const;

  CleanAnswerEngine engine_;
};

/// \brief Qualitative bands for answer probabilities, for user-facing
/// triage of clean answers.
enum class AnswerCertainty {
  kConsistent,  ///< probability ~1: a consistent answer (Arenas et al.)
  kProbable,    ///< probability >= probable threshold
  kPossible,    ///< between the unlikely and probable thresholds
  kUnlikely,    ///< probability < unlikely threshold
};

const char* AnswerCertaintyToString(AnswerCertainty c);

/// Classifies a clean-answer probability. Thresholds must satisfy
/// 0 < unlikely <= probable <= 1; out-of-range probabilities clamp.
AnswerCertainty ClassifyAnswer(double probability,
                               double probable_threshold = 0.5,
                               double unlikely_threshold = 0.1);

}  // namespace conquer

#endif  // CONQUER_CORE_AGGREGATES_H_
