#include "core/dirty_schema.h"

#include "common/str_util.h"

namespace conquer {

Status DirtySchema::AddTable(DirtyTableInfo info) {
  if (Find(info.table_name) != nullptr) {
    return Status::AlreadyExists("dirty annotations for table '" +
                                 info.table_name + "' already registered");
  }
  if (info.id_column.empty()) {
    return Status::InvalidArgument("dirty table '" + info.table_name +
                                   "' must name an identifier column");
  }
  tables_.push_back(std::move(info));
  return Status::OK();
}

const DirtyTableInfo* DirtySchema::Find(std::string_view table_name) const {
  for (const auto& t : tables_) {
    if (EqualsIgnoreCase(t.table_name, table_name)) return &t;
  }
  return nullptr;
}

Result<const DirtyTableInfo*> DirtySchema::Get(
    std::string_view table_name) const {
  const DirtyTableInfo* info = Find(table_name);
  if (info == nullptr) {
    return Status::NotFound("table '" + std::string(table_name) +
                            "' is not registered in the dirty schema");
  }
  return info;
}

}  // namespace conquer
