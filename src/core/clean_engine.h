#ifndef CONQUER_CORE_CLEAN_ENGINE_H_
#define CONQUER_CORE_CLEAN_ENGINE_H_

#include <memory>
#include <string>

#include "core/clean_answer.h"
#include "core/dirty_schema.h"
#include "core/rewrite.h"
#include "engine/database.h"

namespace conquer {

/// \brief The top-level ConQuer API: clean answers over a dirty database.
///
/// Wraps a Database annotated with a DirtySchema. Queries are rewritten via
/// RewriteClean and executed on the dirty data directly; each answer comes
/// back with its probability of holding over the clean database.
///
/// \code
///   CleanAnswerEngine engine(&db, &dirty);
///   auto answers = engine.Query(
///       "select c.id from customer c where c.balance > 10000");
///   for (const CleanAnswer& a : answers->answers)
///     std::cout << a.row[0].ToString() << " p=" << a.probability << "\n";
/// \endcode
class CleanAnswerEngine {
 public:
  /// Both pointers must outlive the engine.
  CleanAnswerEngine(const Database* db, const DirtySchema* dirty)
      : db_(db), dirty_(dirty), rewriter_(&db->catalog(), dirty) {}

  /// Clean answers for a rewritable SPJ query. NotRewritable (with the
  /// violated Dfn 7 condition) when outside the rewritable class.
  ///
  /// When `stats` is non-null it receives the QueryStats of the *rewritten*
  /// query as executed — including per-operator metrics for the
  /// HashAggregate the rewriting adds — so callers can attribute the
  /// clean-answer overhead to specific operators.
  Result<CleanAnswerSet> Query(std::string_view sql,
                               QueryStats* stats = nullptr) const;

  /// The rewritten SQL that Query executes (for inspection / logging).
  Result<std::string> RewrittenSql(std::string_view sql) const {
    return rewriter_.RewriteCleanSql(sql);
  }

  /// Rewritability diagnosis without executing.
  Result<RewritabilityCheck> Check(std::string_view sql) const;

  const CleanRewriter& rewriter() const { return rewriter_; }

 private:
  const Database* db_;
  const DirtySchema* dirty_;
  CleanRewriter rewriter_;
};

/// \brief The offline-cleaning strawman from the paper's introduction:
/// keep only the highest-probability tuple of every cluster, then answer
/// queries over that single "cleaned" database.
///
/// The paper's Section 1 example shows this loses answers that the
/// clean-answer semantics preserves (card 111 disappears entirely); tests
/// and examples use this class to reproduce that comparison.
class OfflineCleaningBaseline {
 public:
  OfflineCleaningBaseline(const Database* db, const DirtySchema* dirty)
      : db_(db), dirty_(dirty) {}

  /// Builds the cleaned database: for each cluster, the max-probability
  /// tuple (first wins on ties). Unregistered tables are copied verbatim.
  Result<std::unique_ptr<Database>> BuildCleanedDatabase() const;

  /// Answers `sql` over the cleaned database (ordinary certain semantics).
  Result<ResultSet> Query(std::string_view sql) const;

 private:
  const Database* db_;
  const DirtySchema* dirty_;
};

}  // namespace conquer

#endif  // CONQUER_CORE_CLEAN_ENGINE_H_
