#ifndef CONQUER_CORE_DIRTY_SCHEMA_H_
#define CONQUER_CORE_DIRTY_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace conquer {

/// \brief Dirty-table annotations for one relation (paper Dfn 2).
///
/// A dirty relation carries a cluster-identifier attribute (tuples sharing
/// an identifier are duplicates of one real-world entity) and a probability
/// attribute (probabilities within each cluster sum to 1). A relation with
/// an empty `prob_column` is *clean*: every tuple is its own cluster with
/// probability 1 (its identifier is then simply its key).
struct DirtyTableInfo {
  /// Reference from a foreign-identifier column to the identified table,
  /// produced by identifier propagation (e.g. order.cidfk -> customer.id).
  struct ForeignId {
    std::string column;
    std::string referenced_table;
  };

  std::string table_name;
  std::string id_column;            ///< cluster identifier attribute
  std::string prob_column;          ///< empty for clean relations
  std::vector<ForeignId> foreign_ids;
};

/// \brief The set of dirty-table annotations for a database.
class DirtySchema {
 public:
  /// Registers annotations for one table; AlreadyExists on duplicates.
  Status AddTable(DirtyTableInfo info);

  /// Annotations for the named table, or nullptr if unregistered.
  const DirtyTableInfo* Find(std::string_view table_name) const;

  /// Annotations for the named table, or NotFound.
  Result<const DirtyTableInfo*> Get(std::string_view table_name) const;

  const std::vector<DirtyTableInfo>& tables() const { return tables_; }

 private:
  std::vector<DirtyTableInfo> tables_;
};

}  // namespace conquer

#endif  // CONQUER_CORE_DIRTY_SCHEMA_H_
