#include "core/rewrite.h"

#include <numeric>
#include <set>

#include "common/str_util.h"
#include "sql/parser.h"

namespace conquer {

namespace {

void CollectFromIndices(const Expr& e, std::set<int>* out) {
  if (e.kind == Expr::Kind::kColumnRef) {
    out->insert(e.from_index);
    return;
  }
  if (e.left) CollectFromIndices(*e.left, out);
  if (e.right) CollectFromIndices(*e.right, out);
}

/// Disjoint-set forest used to contract identifier-identifier edges and to
/// test acyclicity of the contracted join graph.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Returns false if x and y were already connected (a cycle).
  bool Union(int x, int y) {
    int rx = Find(x), ry = Find(y);
    if (rx == ry) return false;
    parent_[rx] = ry;
    return true;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

std::string JoinGraph::ToString(const SelectStatement& stmt) const {
  std::string out;
  for (const Arc& a : arcs) {
    out += stmt.from[a.from].effective_alias() + " -> " +
           stmt.from[a.to].effective_alias() + "\n";
  }
  for (const Edge& e : id_id_edges) {
    out += stmt.from[e.a].effective_alias() + " <-> " +
           stmt.from[e.b].effective_alias() + " (identifier join)\n";
  }
  if (out.empty()) out = "(no joins)\n";
  return out;
}

bool CleanRewriter::IsIdentifier(const BoundQuery& q, int from_index,
                                 int column_index) const {
  const DirtyTableInfo* info =
      dirty_->Find(q.stmt->from[from_index].table_name);
  if (info == nullptr) return false;
  auto idx = q.tables[from_index]->schema().FindColumn(info->id_column);
  return idx.has_value() && static_cast<int>(*idx) == column_index;
}

Result<JoinGraph> CleanRewriter::BuildJoinGraph(const BoundQuery& q) const {
  const SelectStatement& stmt = *q.stmt;

  // The clean-answer semantics is defined for SPJ queries only.
  if (!stmt.group_by.empty() || stmt.distinct || stmt.limit >= 0) {
    return Status::InvalidArgument(
        "clean-answer rewriting applies to SPJ queries only "
        "(no GROUP BY / DISTINCT / LIMIT)");
  }
  for (const auto& item : stmt.select_list) {
    if (item.expr->ContainsAggregate()) {
      return Status::InvalidArgument(
          "clean-answer rewriting applies to SPJ queries only "
          "(aggregate in SELECT)");
    }
  }
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (dirty_->Find(stmt.from[i].table_name) == nullptr) {
      return Status::NotFound(
          "table '" + stmt.from[i].table_name +
          "' is not registered in the dirty schema; register clean tables "
          "with an empty prob column");
    }
  }

  JoinGraph graph;
  graph.num_vertices = static_cast<int>(stmt.from.size());

  std::vector<const Expr*> conjuncts;
  CollectConjuncts(stmt.where.get(), &conjuncts);
  for (const Expr* c : conjuncts) {
    std::set<int> refs;
    CollectFromIndices(*c, &refs);
    if (refs.size() <= 1) continue;  // selection on one relation
    if (refs.size() > 2 || c->kind != Expr::Kind::kBinary ||
        c->bop != BinaryOp::kEq ||
        c->left->kind != Expr::Kind::kColumnRef ||
        c->right->kind != Expr::Kind::kColumnRef) {
      return Status::NotRewritable(
          "join condition '" + c->ToString() +
          "' is not an equality between two attributes");
    }
    int li = c->left->from_index, lc = c->left->column_index;
    int ri = c->right->from_index, rc = c->right->column_index;
    bool l_id = IsIdentifier(q, li, lc);
    bool r_id = IsIdentifier(q, ri, rc);
    if (l_id && r_id) {
      graph.id_id_edges.push_back({li, ri});
    } else if (r_id) {
      graph.arcs.push_back({li, ri});  // non-id of left = id of right
    } else if (l_id) {
      graph.arcs.push_back({ri, li});
    } else {
      return Status::NotRewritable(
          "join '" + c->ToString() +
          "' equates two non-identifier attributes (Dfn 7, condition 1)");
    }
  }
  return graph;
}

Result<RewritabilityCheck> CleanRewriter::CheckRewritable(
    const SelectStatement& stmt) const {
  RewritabilityCheck check;

  // Condition 3: each relation appears in FROM at most once (no self-joins).
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    for (size_t j = i + 1; j < stmt.from.size(); ++j) {
      if (EqualsIgnoreCase(stmt.from[i].table_name, stmt.from[j].table_name)) {
        check.reason = "relation '" + stmt.from[i].table_name +
                       "' appears more than once in FROM (self-join, "
                       "Dfn 7, condition 3)";
        return check;
      }
    }
  }

  Binder binder(catalog_);
  CONQUER_ASSIGN_OR_RETURN(BoundQuery bound, binder.Bind(stmt.Clone()));

  auto graph_result = BuildJoinGraph(bound);
  if (!graph_result.ok()) {
    if (graph_result.status().code() == StatusCode::kNotRewritable) {
      check.reason = graph_result.status().message();
      return check;
    }
    return graph_result.status();
  }
  check.graph = std::move(graph_result).value();
  const JoinGraph& graph = check.graph;
  int n = graph.num_vertices;

  // Contract identifier-identifier joins: the two relations' identifiers
  // are equated, so either can serve as the (shared) root identifier.
  UnionFind contraction(n);
  for (const auto& e : graph.id_id_edges) {
    // A duplicate id-id edge between already-unified relations is merely a
    // redundant predicate, not a structural cycle.
    contraction.Union(e.a, e.b);
  }

  // Condition 2: the contracted graph must be a (directed, rooted) tree:
  // acyclic, connected, and every super-node has at most one incoming arc.
  UnionFind acyclicity = contraction;
  std::vector<int> in_degree(n, 0);
  for (const auto& a : graph.arcs) {
    int sf = contraction.Find(a.from);
    int st = contraction.Find(a.to);
    if (sf == st || !acyclicity.Union(sf, st)) {
      check.reason = "join graph has a cycle (Dfn 7, condition 2)";
      return check;
    }
    in_degree[st] += 1;
  }
  // Connectivity: all vertices in one component of `acyclicity`.
  int component = acyclicity.Find(0);
  for (int v = 1; v < n; ++v) {
    if (acyclicity.Find(v) != component) {
      check.reason =
          "join graph is not connected (cartesian product between relation "
          "groups; Dfn 7, condition 2)";
      return check;
    }
  }
  for (int v = 0; v < n; ++v) {
    if (contraction.Find(v) != v) continue;  // not a super-node root
    if (in_degree[v] > 1) {
      check.reason = "relation '" + stmt.from[v].effective_alias() +
                     "' has two parents in the join graph (Dfn 7, "
                     "condition 2)";
      return check;
    }
  }
  int root_super = -1;
  for (int v = 0; v < n; ++v) {
    if (contraction.Find(v) != v) continue;
    if (in_degree[v] == 0) {
      if (root_super >= 0) {
        // Unreachable given connectivity + acyclicity + in-degree <= 1,
        // but kept as a guard.
        check.reason = "join graph has multiple roots (Dfn 7, condition 2)";
        return check;
      }
      root_super = v;
    }
  }

  // Condition 4: the identifier of (some member of) the root super-node
  // must appear in the SELECT clause as a plain attribute.
  int root_member = -1;
  for (const auto& item : bound.stmt->select_list) {
    const Expr& e = *item.expr;
    if (e.kind != Expr::Kind::kColumnRef) continue;
    if (contraction.Find(e.from_index) != root_super) continue;
    if (IsIdentifier(bound, e.from_index, e.column_index)) {
      root_member = e.from_index;
      break;
    }
  }
  if (root_member < 0) {
    // Report using any member of the root super-node.
    int any_member = root_super;
    check.reason = "identifier of the root relation '" +
                   stmt.from[any_member].effective_alias() +
                   "' does not appear in the SELECT clause (Dfn 7, "
                   "condition 4)";
    return check;
  }

  check.rewritable = true;
  check.root_from_index = root_member;
  return check;
}

Result<std::unique_ptr<SelectStatement>> CleanRewriter::RewriteClean(
    const SelectStatement& stmt) const {
  CONQUER_ASSIGN_OR_RETURN(RewritabilityCheck check, CheckRewritable(stmt));
  if (!check.rewritable) {
    return Status::NotRewritable(check.reason);
  }

  auto rewritten = stmt.Clone();

  // GROUP BY every original SELECT attribute (Fig. 4).
  for (const auto& item : rewritten->select_list) {
    rewritten->group_by.push_back(item.expr->Clone());
  }

  // SUM(R1.prob * ... * Rm.prob) over the relations that carry
  // probabilities; clean relations contribute the neutral factor 1.
  ExprPtr product;
  for (const TableRef& ref : rewritten->from) {
    const DirtyTableInfo* info = dirty_->Find(ref.table_name);
    if (info == nullptr || info->prob_column.empty()) continue;
    ExprPtr factor =
        Expr::MakeColumnRef(ref.effective_alias(), info->prob_column);
    if (product) {
      product = Expr::MakeBinary(BinaryOp::kMul, std::move(product),
                                 std::move(factor));
    } else {
      product = std::move(factor);
    }
  }
  if (!product) product = Expr::MakeLiteral(Value::Double(1.0));

  SelectItem prob_item;
  prob_item.expr = Expr::MakeAggregate(AggFunc::kSum, std::move(product));
  prob_item.alias = "clean_prob";
  rewritten->select_list.push_back(std::move(prob_item));

  return rewritten;
}

Result<std::string> CleanRewriter::RewriteCleanSql(
    std::string_view sql) const {
  CONQUER_ASSIGN_OR_RETURN(auto stmt, Parser::Parse(sql));
  CONQUER_ASSIGN_OR_RETURN(auto rewritten, RewriteClean(*stmt));
  return rewritten->ToString();
}

}  // namespace conquer
