#ifndef CONQUER_CORE_CLEAN_ANSWER_H_
#define CONQUER_CORE_CLEAN_ANSWER_H_

#include <string>
#include <vector>

#include "storage/table.h"

namespace conquer {

/// Tolerance for floating-point drift in accumulated probabilities: sums
/// within this distance of an exact bound are snapped to it, and
/// ConsistentAnswers treats probabilities within it of 1 as certain.
inline constexpr double kProbabilityEpsilon = 1e-9;

/// Clamps an accumulated probability into [0, 1]. SUM over a cluster's
/// tuple probabilities can exceed 1 (or fall just short of it) by a few
/// ulps of floating-point error; values within kProbabilityEpsilon of a
/// bound snap exactly to it so that `probability == 1.0` consistency checks
/// and certainty bands stay reliable.
double ClampProbability(double p);

/// \brief One clean answer (paper Dfn 5): an answer tuple together with the
/// probability that it is an answer over the (unknown) clean database.
struct CleanAnswer {
  Row row;
  double probability = 0.0;
};

/// \brief A set of clean answers with their column metadata.
struct CleanAnswerSet {
  std::vector<std::string> column_names;  ///< excludes the probability column
  std::vector<CleanAnswer> answers;

  /// Probability of `row`, or 0 when absent (absent == impossible answer).
  double ProbabilityOf(const Row& row) const;

  /// Answers with probability within `epsilon` of 1 — exactly the
  /// *consistent answers* of Arenas et al. when all tuple probabilities are
  /// non-zero (paper Section 2.2).
  std::vector<Row> ConsistentAnswers(double epsilon = kProbabilityEpsilon) const;

  /// Sorts answers by decreasing probability (ties: row order).
  void SortByProbabilityDesc();

  /// The k most probable answers (ties broken by original row order);
  /// fewer when the set is smaller.
  std::vector<CleanAnswer> TopK(size_t k) const;

  /// ASCII table for display.
  std::string ToString(size_t max_rows = 50) const;
};

}  // namespace conquer

#endif  // CONQUER_CORE_CLEAN_ANSWER_H_
