#include "core/aggregates.h"

#include "sql/parser.h"

namespace conquer {

const char* AnswerCertaintyToString(AnswerCertainty c) {
  switch (c) {
    case AnswerCertainty::kConsistent:
      return "consistent";
    case AnswerCertainty::kProbable:
      return "probable";
    case AnswerCertainty::kPossible:
      return "possible";
    case AnswerCertainty::kUnlikely:
      return "unlikely";
  }
  return "?";
}

AnswerCertainty ClassifyAnswer(double probability, double probable_threshold,
                               double unlikely_threshold) {
  if (probability >= 1.0 - 1e-9) return AnswerCertainty::kConsistent;
  if (probability >= probable_threshold) return AnswerCertainty::kProbable;
  if (probability < unlikely_threshold) return AnswerCertainty::kUnlikely;
  return AnswerCertainty::kPossible;
}

Result<std::unique_ptr<SelectStatement>> CleanAggregateEngine::BuildCore(
    const SelectStatement& stmt) const {
  if (stmt.select_list.size() != 1) {
    return Status::InvalidArgument(
        "expected exactly one aggregate in the SELECT list");
  }
  const Expr& agg = *stmt.select_list[0].expr;
  if (agg.kind != Expr::Kind::kAggregate) {
    return Status::InvalidArgument(
        "the SELECT item must be an aggregate call");
  }
  switch (agg.agg) {
    case AggFunc::kSum:
    case AggFunc::kCount:
    case AggFunc::kAvg:
      break;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return Status::InvalidArgument(
          "MIN/MAX have no linear expected value; only SUM, COUNT and AVG "
          "are supported");
    case AggFunc::kNone:
      return Status::Internal("malformed aggregate");
  }
  if (!stmt.group_by.empty() || stmt.distinct || stmt.limit >= 0) {
    return Status::InvalidArgument(
        "grouped/distinct/limited aggregates are not supported");
  }

  // SPJ core: project every relation's identifier (which makes the core
  // rewritable whenever the join structure allows it, and makes set and bag
  // semantics coincide per candidate), plus the aggregate argument.
  auto core = std::make_unique<SelectStatement>();
  core->from = stmt.from;
  if (stmt.where) core->where = stmt.where->Clone();
  // Identifier columns come from the dirty schema via the rewriter's
  // catalog; resolved lazily through the DirtySchema registered per table.
  for (const TableRef& ref : stmt.from) {
    const DirtyTableInfo* info =
        engine_.rewriter().dirty_schema()->Find(ref.table_name);
    if (info == nullptr) {
      return Status::NotFound("table '" + ref.table_name +
                              "' is not registered in the dirty schema");
    }
    SelectItem item;
    item.expr = Expr::MakeColumnRef(ref.effective_alias(), info->id_column);
    core->select_list.push_back(std::move(item));
  }
  if (agg.left != nullptr) {
    SelectItem arg;
    arg.expr = agg.left->Clone();
    arg.alias = "agg_arg";
    core->select_list.push_back(std::move(arg));
  }
  return core;
}

Result<CleanAggregateResult> CleanAggregateEngine::ExpectedValue(
    std::string_view sql) const {
  CONQUER_ASSIGN_OR_RETURN(auto stmt, Parser::Parse(sql));
  CONQUER_ASSIGN_OR_RETURN(auto core, BuildCore(*stmt));
  const Expr& agg = *stmt->select_list[0].expr;
  bool has_arg = agg.left != nullptr;

  CONQUER_ASSIGN_OR_RETURN(CleanAnswerSet answers,
                           engine_.Query(core->ToString()));

  CleanAggregateResult result;
  result.func = agg.agg;
  result.support = answers.answers.size();
  double expected_sum = 0.0;
  double expected_count = 0.0;
  for (const CleanAnswer& a : answers.answers) {
    const Value& arg_value = a.row.back();  // agg_arg is the last column
    if (has_arg && arg_value.is_null()) continue;  // SQL: aggregates skip NULL
    expected_count += a.probability;
    if (has_arg) expected_sum += a.probability * arg_value.AsDouble();
  }
  result.expected_count = expected_count;
  switch (agg.agg) {
    case AggFunc::kSum:
      result.expected_value = expected_sum;
      break;
    case AggFunc::kCount:
      result.expected_value = expected_count;
      break;
    case AggFunc::kAvg:
      result.expected_value =
          expected_count > 0 ? expected_sum / expected_count : 0.0;
      break;
    default:
      return Status::Internal("unreachable aggregate kind");
  }
  return result;
}

Result<std::string> CleanAggregateEngine::CoreSql(std::string_view sql) const {
  CONQUER_ASSIGN_OR_RETURN(auto stmt, Parser::Parse(sql));
  CONQUER_ASSIGN_OR_RETURN(auto core, BuildCore(*stmt));
  return core->ToString();
}

}  // namespace conquer
