#ifndef CONQUER_GEN_TPCH_QUERIES_H_
#define CONQUER_GEN_TPCH_QUERIES_H_

#include <string>
#include <vector>

namespace conquer {

/// \brief One of the thirteen TPC-H queries used in the paper's Section 5
/// (queries 1, 2, 3, 4, 6, 9, 10, 11, 12, 14, 17, 18, 20).
///
/// Following the paper, aggregate expressions are removed and parameters
/// take the TPC-H validation values. Queries whose originals carry
/// subqueries (2, 4, 11, 17, 18, 20) are flattened to SPJ forms that keep
/// the same join shape and selection knobs (`adaptation` documents each
/// change). All queries project the identifier of the join-tree root, as
/// Dfn 7 requires; joins run along the propagated *_id foreign identifiers.
struct TpchQuery {
  int number;               ///< TPC-H query number
  const char* description;  ///< what the query asks
  const char* adaptation;   ///< deviations from the TPC-H original
  std::string sql;          ///< SPJ form over the dirty schema
};

/// The thirteen queries, in the paper's order.
const std::vector<TpchQuery>& TpchQueries();

/// Looks up a query by TPC-H number; nullptr if not one of the thirteen.
const TpchQuery* FindTpchQuery(int number);

/// The paper's Query 3 (used by the Fig. 9 bench), optionally without its
/// ORDER BY clause.
std::string TpchQuery3(bool with_order_by);

}  // namespace conquer

#endif  // CONQUER_GEN_TPCH_QUERIES_H_
