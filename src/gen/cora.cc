#include "gen/cora.h"

#include <array>

#include "common/rng.h"
#include "common/str_util.h"
#include "gen/perturb.h"

namespace conquer {

namespace {

struct Publication {
  std::string author;
  std::string title;
  std::string venue;
  std::string volume;
  std::string year;
  std::string pages;
};

const char* const kFirstNames[] = {"robert", "yoav",   "leslie", "michael",
                                   "judea",  "vladimir", "thomas", "david"};
const char* const kLastNames[] = {"schapire", "freund",  "valiant", "kearns",
                                  "pearl",    "vapnik",  "cover",   "haussler"};
const char* const kTitleWords[] = {"learnability", "boosting",  "inference",
                                   "networks",     "margins",   "complexity",
                                   "queries",      "sampling",  "weak",
                                   "strength",     "bayesian",  "decision"};
const char* const kVenues[] = {"machine learning", "artificial intelligence",
                               "journal of the acm", "information and computation",
                               "neural computation"};

Publication RandomPublication(Rng* rng) {
  Publication p;
  p.author = std::string(kFirstNames[rng->Uniform(0, 7)]) + " " +
             static_cast<char>('a' + rng->Uniform(0, 25)) + ". " +
             kLastNames[rng->Uniform(0, 7)];
  p.title = "the ";
  for (int i = 0; i < 4; ++i) {
    if (i > 0) p.title += ' ';
    p.title += kTitleWords[rng->Uniform(0, 11)];
  }
  p.venue = kVenues[rng->Uniform(0, 4)];
  int vol = static_cast<int>(rng->Uniform(1, 40));
  int issue = static_cast<int>(rng->Uniform(1, 6));
  p.volume = StringPrintf("%d(%d)", vol, issue);
  p.year = std::to_string(rng->Uniform(1984, 2004));
  int first = static_cast<int>(rng->Uniform(1, 400));
  p.pages = StringPrintf("%d-%d", first,
                         first + static_cast<int>(rng->Uniform(8, 40)));
  return p;
}

/// Author "robert e. schapire" -> "r. schapire" or "schapire, r.e.".
std::string VariantAuthor(const std::string& author, Rng* rng) {
  auto parts = Split(author, ' ');
  if (parts.size() < 2) return author;
  const std::string& last = parts.back();
  if (rng->Chance(0.5)) {
    return std::string(1, parts[0][0]) + ". " + last;
  }
  std::string initials;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    if (!parts[i].empty()) initials += std::string(1, parts[i][0]) + ".";
  }
  return last + ", " + initials;
}

/// Volume "5(2)" + year -> "5 2 (1990)" or just "5".
std::string VariantVolume(const std::string& volume, const std::string& year,
                          Rng* rng) {
  std::string digits, issue;
  size_t paren = volume.find('(');
  digits = volume.substr(0, paren);
  if (paren != std::string::npos) {
    issue = volume.substr(paren + 1, volume.size() - paren - 2);
  }
  if (rng->Chance(0.5)) return digits;
  return digits + " " + issue + " (" + year + ")";
}

Row MakeRow(const std::string& cluster_id, const Publication& p) {
  return {Value::String(cluster_id), Value::String(p.author),
          Value::String(p.title),    Value::String(p.venue),
          Value::String(p.volume),   Value::String(p.year),
          Value::String(p.pages),    Value::Null()};
}

TableSchema CitationSchema() {
  return TableSchema("citations", {{"id", DataType::kString},
                                   {"author", DataType::kString},
                                   {"title", DataType::kString},
                                   {"venue", DataType::kString},
                                   {"volume", DataType::kString},
                                   {"year", DataType::kString},
                                   {"pages", DataType::kString},
                                   {"prob", DataType::kDouble}});
}

DirtyTableInfo CitationInfo() { return {"citations", "id", "prob", {}}; }

Publication Vary(const Publication& canon, Rng* rng) {
  Publication v = canon;
  // One to three independent format changes.
  int changes = static_cast<int>(rng->Uniform(1, 3));
  for (int i = 0; i < changes; ++i) {
    switch (rng->Uniform(0, 4)) {
      case 0:
        v.author = VariantAuthor(canon.author, rng);
        break;
      case 1:
        v.title = PerturbString(canon.title, rng, 2);
        break;
      case 2:
        v.venue = PerturbString(canon.venue, rng, 1);
        break;
      case 3:
        v.volume = VariantVolume(canon.volume, canon.year, rng);
        break;
      case 4:
        v.pages = "pp. " + canon.pages;
        break;
    }
  }
  return v;
}

}  // namespace

Result<std::unique_ptr<Table>> MakeCoraLikeTable(const CoraConfig& config,
                                                 DirtyTableInfo* info) {
  if (config.min_cluster_size < 1 ||
      config.max_cluster_size < config.min_cluster_size) {
    return Status::InvalidArgument("invalid cluster size bounds");
  }
  auto table = std::make_unique<Table>(CitationSchema());
  Rng rng(config.seed);
  for (size_t c = 0; c < config.num_clusters; ++c) {
    Publication canon = RandomPublication(&rng);
    std::string id = "pub" + std::to_string(c);
    size_t size = static_cast<size_t>(
        rng.Uniform(static_cast<int64_t>(config.min_cluster_size),
                    static_cast<int64_t>(config.max_cluster_size)));
    table->InsertUnchecked(MakeRow(id, canon));  // canonical first
    for (size_t m = 1; m < size; ++m) {
      if (rng.Chance(config.outlier_rate)) {
        table->InsertUnchecked(MakeRow(id, RandomPublication(&rng)));
      } else if (rng.Chance(config.canonical_fraction)) {
        table->InsertUnchecked(MakeRow(id, canon));
      } else {
        table->InsertUnchecked(MakeRow(id, Vary(canon, &rng)));
      }
    }
  }
  *info = CitationInfo();
  return table;
}

Result<std::unique_ptr<Table>> MakeTable4Cluster(DirtyTableInfo* info) {
  auto table = std::make_unique<Table>(CitationSchema());
  Publication canon{"robert e. schapire", "the strength of weak learnability",
                    "machine learning", "5(2)", "1990", "197-227"};
  const std::string id = "schapire90";
  Rng rng(56);

  // 1 canonical + 30 exact copies: the dominant form.
  for (int i = 0; i < 31; ++i) table->InsertUnchecked(MakeRow(id, canon));
  // 10 near-canonical tuples differing only in the volume attribute — the
  // paper's second-most-likely tuple shares "all but one" value (volume).
  for (int i = 0; i < 10; ++i) {
    Publication v = canon;
    v.volume = "5";
    table->InsertUnchecked(MakeRow(id, v));
  }
  // 13 format variants.
  for (int i = 0; i < 13; ++i) {
    table->InsertUnchecked(MakeRow(id, Vary(canon, &rng)));
  }
  // One heavily reformatted tuple of the same publication (the paper's
  // least-likely tuple: "its values are stored in a different way").
  Publication reformatted{"schapire, r.e.,", "the strength of weak learnability",
                          "machine learning", "5 2 (1990)", "1990",
                          "pp. 197-227"};
  table->InsertUnchecked(MakeRow(id, reformatted));
  // One misclustered tuple of a *different* publication (the paper's
  // penultimate tuple "corresponds to a different publication").
  Publication other{"r. schapire", "on the strength of weak learnability",
                    "proc of the 30th i.e.e.e. symposium", "NULL", "1989",
                    "pp. 28-33"};
  table->InsertUnchecked(MakeRow(id, other));

  *info = CitationInfo();
  return table;  // 56 tuples total
}

}  // namespace conquer
