#include "gen/tpch_dirty.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"
#include "common/str_util.h"

namespace conquer {

namespace {

// ---- Value vocabularies (abridged TPC-H domains). ----

const char* const kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                 "MIDDLE EAST"};
const char* const kNations[25] = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",     "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",      "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",     "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",      "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
const int kNationRegion[25] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                               4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
const char* const kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                  "MACHINERY", "HOUSEHOLD"};
const char* const kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                    "4-NOT SPECIFIED", "5-LOW"};
const char* const kShipModes[7] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                   "TRUCK",   "MAIL", "FOB"};
const char* const kInstructions[4] = {"DELIVER IN PERSON", "COLLECT COD",
                                      "NONE", "TAKE BACK RETURN"};
const char* const kContainers[8] = {"SM CASE", "SM BOX",  "MED BOX",
                                    "MED BAG", "LG CASE", "LG BOX",
                                    "JUMBO PKG", "WRAP CASE"};
const char* const kTypeSyl1[6] = {"STANDARD", "SMALL",    "MEDIUM",
                                  "LARGE",    "ECONOMY",  "PROMO"};
const char* const kTypeSyl2[5] = {"ANODIZED", "BURNISHED", "PLATED",
                                  "POLISHED", "BRUSHED"};
const char* const kTypeSyl3[5] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* const kColors[16] = {"almond",  "antique", "aquamarine", "azure",
                                 "beige",   "bisque",  "blanched",   "blue",
                                 "brown",   "burlywood", "chartreuse", "coral",
                                 "forest",  "green",   "honeydew",   "ivory"};
const char* const kWords[20] = {
    "furiously", "quickly", "slyly",    "carefully", "blithely",
    "deposits",  "requests", "accounts", "packages",  "instructions",
    "theodolites", "pinto",  "beans",    "foxes",     "ideas",
    "pending",   "regular", "express",  "final",     "ironic"};

std::string RandomWords(Rng* rng, int min_words, int max_words) {
  int n = static_cast<int>(rng->Uniform(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += kWords[rng->Uniform(0, 19)];
  }
  return out;
}

std::string RandomPhone(Rng* rng) {
  return StringPrintf("%02d-%03d-%03d-%04d",
                      static_cast<int>(rng->Uniform(10, 34)),
                      static_cast<int>(rng->Uniform(100, 999)),
                      static_cast<int>(rng->Uniform(100, 999)),
                      static_cast<int>(rng->Uniform(1000, 9999)));
}

std::string RandomAddress(Rng* rng) {
  return StringPrintf("%d %s %s", static_cast<int>(rng->Uniform(1, 9999)),
                      kColors[rng->Uniform(0, 15)],
                      rng->Chance(0.5) ? "St" : "Ave");
}

// Record keys pack (entity, copy): one entity's duplicates get consecutive
// keys. Copies are capped far below kCopiesPerEntity by the if <= 25 bound.
constexpr int64_t kCopiesPerEntity = 100;

int64_t RecordKey(int64_t entity, int64_t copy) {
  return entity * kCopiesPerEntity + copy;
}

/// Per-table duplicate bookkeeping: cluster sizes drawn at generation time.
struct EntityPlan {
  std::vector<uint8_t> cluster_sizes;

  int64_t RandomRecordRef(int64_t entity, Rng* rng,
                          double entity_error_rate) const {
    if (entity_error_rate > 0.0 && rng->Chance(entity_error_rate)) {
      entity = rng->Uniform(0, static_cast<int64_t>(cluster_sizes.size()) - 1);
    }
    int64_t copy = rng->Uniform(0, cluster_sizes[entity] - 1);
    return RecordKey(entity, copy);
  }
};

EntityPlan DrawPlan(size_t num_entities, int inconsistency_factor, bool dirty,
                    Rng* rng) {
  EntityPlan plan;
  plan.cluster_sizes.resize(num_entities, 1);
  if (dirty && inconsistency_factor > 1) {
    for (auto& k : plan.cluster_sizes) {
      k = static_cast<uint8_t>(
          rng->Uniform(1, 2 * inconsistency_factor - 1));
    }
  }
  return plan;
}

std::vector<double> DrawClusterProbs(int k, Rng* rng) {
  std::vector<double> p(k);
  double sum = 0.0;
  for (double& x : p) {
    x = 0.25 + rng->NextDouble();
    sum += x;
  }
  for (double& x : p) x /= sum;
  return p;
}

/// Shared generation context.
struct GenContext {
  const TpchDirtyConfig* config;
  Rng rng;
  explicit GenContext(const TpchDirtyConfig& c) : config(&c), rng(c.seed) {}

  /// Perturbs an attribute of a non-primary duplicate with the configured
  /// attribute error rate; pick-list attributes re-roll from their list.
  Value MaybePerturb(const Value& v) {
    if (!rng.Chance(config->perturb.attribute_error_rate)) return v;
    return PerturbValue(v, &rng, config->perturb);
  }
  template <size_t N>
  Value MaybeReroll(const char* const (&list)[N], const Value& v) {
    if (!rng.Chance(config->perturb.attribute_error_rate)) return v;
    return Value::String(list[rng.Uniform(0, static_cast<int64_t>(N) - 1)]);
  }
};

}  // namespace

TpchCardinalities TpchCardinalities::For(double sf) {
  TpchCardinalities c;
  c.region = 5;
  c.nation = 25;
  auto scaled = [sf](double base) {
    return static_cast<size_t>(std::max(1.0, std::round(base * sf)));
  };
  c.supplier = scaled(10000);
  c.part = scaled(200000);
  c.partsupp = c.part * 4;
  c.customer = scaled(150000);
  c.orders = scaled(1500000);
  return c;
}

Result<PropagationStats> TpchDirtyDatabase::Propagate() {
  return PropagateIdentifiers(db.get(), dirty, propagation_specs);
}

Status TpchDirtyDatabase::BuildIndexesAndStats() {
  for (const DirtyTableInfo& info : dirty.tables()) {
    CONQUER_RETURN_NOT_OK(db->CreateIndex(info.table_name, info.id_column));
  }
  return db->AnalyzeAll();
}

size_t TpchDirtyDatabase::TotalRows() const {
  size_t total = 0;
  for (const std::string& name : db->catalog().TableNames()) {
    auto t = db->GetTable(name);
    if (t.ok()) total += (*t)->num_rows();
  }
  return total;
}

Result<TpchDirtyDatabase> MakeTpchDirtyDatabase(
    const TpchDirtyConfig& config) {
  if (config.inconsistency_factor < 1 || config.inconsistency_factor > 49) {
    return Status::InvalidArgument(
        "inconsistency_factor must be in [1, 49] (record-key packing)");
  }
  if (config.scale_factor <= 0) {
    return Status::InvalidArgument("scale_factor must be positive");
  }

  TpchDirtyDatabase out;
  out.db = std::make_unique<Database>();
  out.config = config;
  Database& db = *out.db;
  GenContext ctx(config);
  const int iff = config.inconsistency_factor;
  TpchCardinalities card = TpchCardinalities::For(config.scale_factor);
  // UIS-generator semantics (paper Section 5.2): the scale factor controls
  // the *total* number of tuples while the inconsistency factor controls the
  // mean cluster cardinality — so entity counts shrink as if grows and the
  // dirty database stays the same size across the if sweep.
  if (iff > 1) {
    auto shrink = [iff](size_t n) {
      return std::max<size_t>(1, n / static_cast<size_t>(iff));
    };
    card.supplier = shrink(card.supplier);
    card.part = shrink(card.part);
    card.partsupp = card.part * 4;
    card.customer = shrink(card.customer);
    card.orders = shrink(card.orders);
  }

  const int64_t kDateLo = CivilToDays(1992, 1, 1);
  const int64_t kDateHi = CivilToDays(1998, 8, 2);

  // ---------------------------------------------------------------- region
  CONQUER_RETURN_NOT_OK(db.CreateTable(TableSchema(
      "region", {{"id", DataType::kString},
                 {"r_regionkey", DataType::kInt64},
                 {"r_name", DataType::kString},
                 {"r_comment", DataType::kString},
                 {"prob", DataType::kDouble}})));
  EntityPlan region_plan = DrawPlan(card.region, iff,
                                    config.dirty_dimension_tables, &ctx.rng);
  {
    Table* t = db.GetTable("region").value();
    for (size_t e = 0; e < card.region; ++e) {
      int k = region_plan.cluster_sizes[e];
      auto probs = DrawClusterProbs(k, &ctx.rng);
      for (int j = 0; j < k; ++j) {
        std::string name = kRegions[e];
        if (j > 0) name = ctx.MaybePerturb(Value::String(name)).string_value();
        t->InsertUnchecked(
            {Value::String("R" + std::to_string(e)),
             Value::Int(RecordKey(e, j)), Value::String(std::move(name)),
             Value::String(RandomWords(&ctx.rng, 2, 4)),
             config.fill_probabilities ? Value::Double(probs[j])
                                       : Value::Null()});
      }
    }
  }

  // ---------------------------------------------------------------- nation
  CONQUER_RETURN_NOT_OK(db.CreateTable(TableSchema(
      "nation", {{"id", DataType::kString},
                 {"n_nationkey", DataType::kInt64},
                 {"n_name", DataType::kString},
                 {"n_regionkey", DataType::kInt64},
                 {"n_region_id", DataType::kString},
                 {"n_comment", DataType::kString},
                 {"prob", DataType::kDouble}})));
  EntityPlan nation_plan = DrawPlan(card.nation, iff,
                                    config.dirty_dimension_tables, &ctx.rng);
  {
    Table* t = db.GetTable("nation").value();
    for (size_t e = 0; e < card.nation; ++e) {
      int k = nation_plan.cluster_sizes[e];
      auto probs = DrawClusterProbs(k, &ctx.rng);
      for (int j = 0; j < k; ++j) {
        std::string name = kNations[e];
        if (j > 0) name = ctx.MaybePerturb(Value::String(name)).string_value();
        t->InsertUnchecked(
            {Value::String("N" + std::to_string(e)),
             Value::Int(RecordKey(e, j)), Value::String(std::move(name)),
             Value::Int(region_plan.RandomRecordRef(
                 kNationRegion[e], &ctx.rng,
                 j > 0 ? config.fk_entity_error_rate : 0.0)),
             Value::Null(), Value::String(RandomWords(&ctx.rng, 2, 5)),
             config.fill_probabilities ? Value::Double(probs[j])
                                       : Value::Null()});
      }
    }
  }

  // -------------------------------------------------------------- supplier
  CONQUER_RETURN_NOT_OK(db.CreateTable(TableSchema(
      "supplier", {{"id", DataType::kString},
                   {"s_suppkey", DataType::kInt64},
                   {"s_name", DataType::kString},
                   {"s_address", DataType::kString},
                   {"s_nationkey", DataType::kInt64},
                   {"s_nation_id", DataType::kString},
                   {"s_phone", DataType::kString},
                   {"s_acctbal", DataType::kDouble},
                   {"s_comment", DataType::kString},
                   {"prob", DataType::kDouble}})));
  EntityPlan supplier_plan = DrawPlan(card.supplier, iff, true, &ctx.rng);
  {
    Table* t = db.GetTable("supplier").value();
    for (size_t e = 0; e < card.supplier; ++e) {
      int k = supplier_plan.cluster_sizes[e];
      auto probs = DrawClusterProbs(k, &ctx.rng);
      int64_t nation = ctx.rng.Uniform(0, 24);
      std::string name = StringPrintf("Supplier#%09zu", e);
      std::string address = RandomAddress(&ctx.rng);
      std::string phone = RandomPhone(&ctx.rng);
      double acctbal = -999.99 + ctx.rng.NextDouble() * 10999.98;
      for (int j = 0; j < k; ++j) {
        Value vname = Value::String(name), vaddr = Value::String(address);
        Value vphone = Value::String(phone), vbal = Value::Double(acctbal);
        if (j > 0) {
          vname = ctx.MaybePerturb(vname);
          vaddr = ctx.MaybePerturb(vaddr);
          vphone = ctx.MaybePerturb(vphone);
          vbal = ctx.MaybePerturb(vbal);
        }
        t->InsertUnchecked(
            {Value::String("S" + std::to_string(e)),
             Value::Int(RecordKey(e, j)), std::move(vname), std::move(vaddr),
             Value::Int(nation_plan.RandomRecordRef(
                 nation, &ctx.rng,
                 j > 0 ? config.fk_entity_error_rate : 0.0)),
             Value::Null(), std::move(vphone), std::move(vbal),
             Value::String(RandomWords(&ctx.rng, 3, 6)),
             config.fill_probabilities ? Value::Double(probs[j])
                                       : Value::Null()});
      }
    }
  }

  // ------------------------------------------------------------------ part
  CONQUER_RETURN_NOT_OK(db.CreateTable(TableSchema(
      "part", {{"id", DataType::kString},
               {"p_partkey", DataType::kInt64},
               {"p_name", DataType::kString},
               {"p_mfgr", DataType::kString},
               {"p_brand", DataType::kString},
               {"p_type", DataType::kString},
               {"p_size", DataType::kInt64},
               {"p_container", DataType::kString},
               {"p_retailprice", DataType::kDouble},
               {"p_comment", DataType::kString},
               {"prob", DataType::kDouble}})));
  EntityPlan part_plan = DrawPlan(card.part, iff, true, &ctx.rng);
  {
    Table* t = db.GetTable("part").value();
    for (size_t e = 0; e < card.part; ++e) {
      int k = part_plan.cluster_sizes[e];
      auto probs = DrawClusterProbs(k, &ctx.rng);
      int mfgr = static_cast<int>(ctx.rng.Uniform(1, 5));
      std::string name = std::string(kColors[ctx.rng.Uniform(0, 15)]) + " " +
                         kColors[ctx.rng.Uniform(0, 15)];
      std::string brand = StringPrintf("Brand#%d%d", mfgr,
                                       static_cast<int>(ctx.rng.Uniform(1, 5)));
      std::string type = std::string(kTypeSyl1[ctx.rng.Uniform(0, 5)]) + " " +
                         kTypeSyl2[ctx.rng.Uniform(0, 4)] + " " +
                         kTypeSyl3[ctx.rng.Uniform(0, 4)];
      int64_t size = ctx.rng.Uniform(1, 50);
      std::string container = kContainers[ctx.rng.Uniform(0, 7)];
      double price = 900.0 + (static_cast<double>(e % 1000) / 10.0) +
                     100 * static_cast<double>(e % 10);
      for (int j = 0; j < k; ++j) {
        Value vname = Value::String(name), vtype = Value::String(type);
        Value vsize = Value::Int(size), vcont = Value::String(container);
        Value vbrand = Value::String(brand), vprice = Value::Double(price);
        if (j > 0) {
          vname = ctx.MaybePerturb(vname);
          vtype = ctx.MaybeReroll(kTypeSyl3, vtype);  // swap material suffix
          if (vtype.string_value().find(' ') == std::string::npos) {
            // Reroll produced a bare material; rebuild a full type string.
            vtype = Value::String(std::string(kTypeSyl1[ctx.rng.Uniform(0, 5)]) +
                                  " " + kTypeSyl2[ctx.rng.Uniform(0, 4)] + " " +
                                  vtype.string_value());
          }
          vsize = ctx.MaybePerturb(vsize);
          vcont = ctx.MaybeReroll(kContainers, vcont);
          // Brands stay stable across duplicates (they are catalog codes).
          vprice = ctx.MaybePerturb(vprice);
        }
        t->InsertUnchecked(
            {Value::String("P" + std::to_string(e)),
             Value::Int(RecordKey(e, j)), std::move(vname),
             Value::String(StringPrintf("Manufacturer#%d", mfgr)),
             std::move(vbrand), std::move(vtype), std::move(vsize),
             std::move(vcont), std::move(vprice),
             Value::String(RandomWords(&ctx.rng, 2, 4)),
             config.fill_probabilities ? Value::Double(probs[j])
                                       : Value::Null()});
      }
    }
  }

  // -------------------------------------------------------------- partsupp
  CONQUER_RETURN_NOT_OK(db.CreateTable(TableSchema(
      "partsupp", {{"id", DataType::kString},
                   {"ps_pskey", DataType::kInt64},
                   {"ps_partkey", DataType::kInt64},
                   {"ps_part_id", DataType::kString},
                   {"ps_suppkey", DataType::kInt64},
                   {"ps_supp_id", DataType::kString},
                   {"ps_availqty", DataType::kInt64},
                   {"ps_supplycost", DataType::kDouble},
                   {"ps_comment", DataType::kString},
                   {"prob", DataType::kDouble}})));
  // Supplier for the j-th offer of part entity `pe` (TPC-H-style spread).
  auto supplier_for = [&](size_t pe, int j) -> int64_t {
    return static_cast<int64_t>((pe + j * (card.supplier / 4 + 1)) %
                                card.supplier);
  };
  EntityPlan partsupp_plan = DrawPlan(card.partsupp, iff, true, &ctx.rng);
  {
    Table* t = db.GetTable("partsupp").value();
    for (size_t pe = 0; pe < card.part; ++pe) {
      for (int offer = 0; offer < 4; ++offer) {
        size_t e = pe * 4 + offer;  // partsupp entity key
        int k = partsupp_plan.cluster_sizes[e];
        auto probs = DrawClusterProbs(k, &ctx.rng);
        int64_t availqty = ctx.rng.Uniform(1, 9999);
        double cost = 1.0 + ctx.rng.NextDouble() * 999.0;
        for (int j = 0; j < k; ++j) {
          Value vqty = Value::Int(availqty), vcost = Value::Double(cost);
          if (j > 0) {
            vqty = ctx.MaybePerturb(vqty);
            vcost = ctx.MaybePerturb(vcost);
          }
          t->InsertUnchecked(
              {Value::String("PS" + std::to_string(e)),
               Value::Int(RecordKey(e, j)),
               Value::Int(part_plan.RandomRecordRef(
                   pe, &ctx.rng, j > 0 ? config.fk_entity_error_rate : 0.0)),
               Value::Null(),
               Value::Int(supplier_plan.RandomRecordRef(
                   supplier_for(pe, offer), &ctx.rng,
                   j > 0 ? config.fk_entity_error_rate : 0.0)),
               Value::Null(), std::move(vqty), std::move(vcost),
               Value::String(RandomWords(&ctx.rng, 2, 5)),
               config.fill_probabilities ? Value::Double(probs[j])
                                         : Value::Null()});
        }
      }
    }
  }

  // -------------------------------------------------------------- customer
  CONQUER_RETURN_NOT_OK(db.CreateTable(TableSchema(
      "customer", {{"id", DataType::kString},
                   {"c_custkey", DataType::kInt64},
                   {"c_name", DataType::kString},
                   {"c_address", DataType::kString},
                   {"c_nationkey", DataType::kInt64},
                   {"c_nation_id", DataType::kString},
                   {"c_phone", DataType::kString},
                   {"c_acctbal", DataType::kDouble},
                   {"c_mktsegment", DataType::kString},
                   {"c_comment", DataType::kString},
                   {"prob", DataType::kDouble}})));
  EntityPlan customer_plan = DrawPlan(card.customer, iff, true, &ctx.rng);
  {
    Table* t = db.GetTable("customer").value();
    for (size_t e = 0; e < card.customer; ++e) {
      int k = customer_plan.cluster_sizes[e];
      auto probs = DrawClusterProbs(k, &ctx.rng);
      int64_t nation = ctx.rng.Uniform(0, 24);
      std::string name = StringPrintf("Customer#%09zu", e);
      std::string address = RandomAddress(&ctx.rng);
      std::string phone = RandomPhone(&ctx.rng);
      double acctbal = -999.99 + ctx.rng.NextDouble() * 10999.98;
      std::string segment = kSegments[ctx.rng.Uniform(0, 4)];
      for (int j = 0; j < k; ++j) {
        Value vname = Value::String(name), vaddr = Value::String(address);
        Value vphone = Value::String(phone), vbal = Value::Double(acctbal);
        Value vseg = Value::String(segment);
        if (j > 0) {
          vname = ctx.MaybePerturb(vname);
          vaddr = ctx.MaybePerturb(vaddr);
          vphone = ctx.MaybePerturb(vphone);
          vbal = ctx.MaybePerturb(vbal);
          vseg = ctx.MaybeReroll(kSegments, vseg);
        }
        t->InsertUnchecked(
            {Value::String("C" + std::to_string(e)),
             Value::Int(RecordKey(e, j)), std::move(vname), std::move(vaddr),
             Value::Int(nation_plan.RandomRecordRef(
                 nation, &ctx.rng,
                 j > 0 ? config.fk_entity_error_rate : 0.0)),
             Value::Null(), std::move(vphone), std::move(vbal),
             std::move(vseg), Value::String(RandomWords(&ctx.rng, 3, 6)),
             config.fill_probabilities ? Value::Double(probs[j])
                                       : Value::Null()});
      }
    }
  }

  // ---------------------------------------------------------------- orders
  CONQUER_RETURN_NOT_OK(db.CreateTable(TableSchema(
      "orders", {{"id", DataType::kString},
                 {"o_orderkey", DataType::kInt64},
                 {"o_custkey", DataType::kInt64},
                 {"o_cust_id", DataType::kString},
                 {"o_orderstatus", DataType::kString},
                 {"o_totalprice", DataType::kDouble},
                 {"o_orderdate", DataType::kDate},
                 {"o_orderpriority", DataType::kString},
                 {"o_clerk", DataType::kString},
                 {"o_shippriority", DataType::kInt64},
                 {"o_comment", DataType::kString},
                 {"prob", DataType::kDouble}})));
  EntityPlan orders_plan = DrawPlan(card.orders, iff, true, &ctx.rng);
  std::vector<int64_t> order_dates(card.orders);
  {
    Table* t = db.GetTable("orders").value();
    for (size_t e = 0; e < card.orders; ++e) {
      int k = orders_plan.cluster_sizes[e];
      auto probs = DrawClusterProbs(k, &ctx.rng);
      int64_t customer = ctx.rng.Uniform(
          0, static_cast<int64_t>(card.customer) - 1);
      int64_t date = ctx.rng.Uniform(kDateLo, kDateHi);
      order_dates[e] = date;
      double total = 100.0 + ctx.rng.NextDouble() * 400000.0;
      std::string priority = kPriorities[ctx.rng.Uniform(0, 4)];
      const char* status = ctx.rng.Chance(0.5) ? "F" : "O";
      for (int j = 0; j < k; ++j) {
        Value vdate = Value::Date(date), vtotal = Value::Double(total);
        Value vprio = Value::String(priority);
        if (j > 0) {
          vdate = ctx.MaybePerturb(vdate);
          vtotal = ctx.MaybePerturb(vtotal);
          vprio = ctx.MaybeReroll(kPriorities, vprio);
        }
        t->InsertUnchecked(
            {Value::String("O" + std::to_string(e)),
             Value::Int(RecordKey(e, j)),
             Value::Int(customer_plan.RandomRecordRef(
                 customer, &ctx.rng,
                 j > 0 ? config.fk_entity_error_rate : 0.0)),
             Value::Null(), Value::String(status), std::move(vtotal),
             std::move(vdate), std::move(vprio),
             Value::String(StringPrintf(
                 "Clerk#%09d", static_cast<int>(ctx.rng.Uniform(1, 1000)))),
             Value::Int(0), Value::String(RandomWords(&ctx.rng, 2, 5)),
             config.fill_probabilities ? Value::Double(probs[j])
                                       : Value::Null()});
      }
    }
  }

  // -------------------------------------------------------------- lineitem
  CONQUER_RETURN_NOT_OK(db.CreateTable(TableSchema(
      "lineitem", {{"id", DataType::kString},
                   {"l_linekey", DataType::kInt64},
                   {"l_orderkey", DataType::kInt64},
                   {"l_order_id", DataType::kString},
                   {"l_partkey", DataType::kInt64},
                   {"l_part_id", DataType::kString},
                   {"l_suppkey", DataType::kInt64},
                   {"l_supp_id", DataType::kString},
                   {"l_pskey", DataType::kInt64},
                   {"l_partsupp_id", DataType::kString},
                   {"l_linenumber", DataType::kInt64},
                   {"l_quantity", DataType::kInt64},
                   {"l_extendedprice", DataType::kDouble},
                   {"l_discount", DataType::kDouble},
                   {"l_tax", DataType::kDouble},
                   {"l_returnflag", DataType::kString},
                   {"l_linestatus", DataType::kString},
                   {"l_shipdate", DataType::kDate},
                   {"l_commitdate", DataType::kDate},
                   {"l_receiptdate", DataType::kDate},
                   {"l_shipinstruct", DataType::kString},
                   {"l_shipmode", DataType::kString},
                   {"l_comment", DataType::kString},
                   {"prob", DataType::kDouble}})));
  {
    Table* t = db.GetTable("lineitem").value();
    size_t line_entity = 0;
    for (size_t oe = 0; oe < card.orders; ++oe) {
      int lines = static_cast<int>(ctx.rng.Uniform(1, 7));
      for (int ln = 1; ln <= lines; ++ln) {
        size_t e = line_entity++;
        int k = 1;
        if (iff > 1) k = static_cast<int>(ctx.rng.Uniform(1, 2 * iff - 1));
        auto probs = DrawClusterProbs(k, &ctx.rng);
        int64_t pe = ctx.rng.Uniform(0, static_cast<int64_t>(card.part) - 1);
        int offer = static_cast<int>(ctx.rng.Uniform(0, 3));
        int64_t se = supplier_for(pe, offer);
        int64_t pse = pe * 4 + offer;
        int64_t quantity = ctx.rng.Uniform(1, 50);
        double extprice =
            static_cast<double>(quantity) * (900.0 + ctx.rng.NextDouble() * 1100);
        double discount = ctx.rng.Uniform(0, 10) / 100.0;
        double tax = ctx.rng.Uniform(0, 8) / 100.0;
        int64_t ship = order_dates[oe] + ctx.rng.Uniform(1, 121);
        int64_t commit = order_dates[oe] + ctx.rng.Uniform(30, 90);
        int64_t receipt = ship + ctx.rng.Uniform(1, 30);
        const char* returnflag =
            receipt <= CivilToDays(1995, 6, 17)
                ? (ctx.rng.Chance(0.5) ? "R" : "A")
                : "N";
        const char* linestatus = ship > CivilToDays(1995, 6, 17) ? "O" : "F";
        std::string shipmode = kShipModes[ctx.rng.Uniform(0, 6)];
        std::string instruct = kInstructions[ctx.rng.Uniform(0, 3)];
        for (int j = 0; j < k; ++j) {
          Value vqty = Value::Int(quantity), vprice = Value::Double(extprice);
          Value vdisc = Value::Double(discount);
          Value vship = Value::Date(ship), vcommit = Value::Date(commit);
          Value vreceipt = Value::Date(receipt);
          Value vmode = Value::String(shipmode);
          if (j > 0) {
            vqty = ctx.MaybePerturb(vqty);
            vprice = ctx.MaybePerturb(vprice);
            if (ctx.rng.Chance(config.perturb.attribute_error_rate)) {
              vdisc = Value::Double(ctx.rng.Uniform(0, 10) / 100.0);
            }
            vship = ctx.MaybePerturb(vship);
            vcommit = ctx.MaybePerturb(vcommit);
            vreceipt = ctx.MaybePerturb(vreceipt);
            vmode = ctx.MaybeReroll(kShipModes, vmode);
          }
          t->InsertUnchecked(
              {Value::String("L" + std::to_string(e)),
               Value::Int(RecordKey(e, j)),
               Value::Int(orders_plan.RandomRecordRef(
                   oe, &ctx.rng, j > 0 ? config.fk_entity_error_rate : 0.0)),
               Value::Null(),
               Value::Int(part_plan.RandomRecordRef(
                   pe, &ctx.rng, j > 0 ? config.fk_entity_error_rate : 0.0)),
               Value::Null(),
               Value::Int(supplier_plan.RandomRecordRef(
                   se, &ctx.rng, j > 0 ? config.fk_entity_error_rate : 0.0)),
               Value::Null(),
               Value::Int(partsupp_plan.RandomRecordRef(
                   pse, &ctx.rng, j > 0 ? config.fk_entity_error_rate : 0.0)),
               Value::Null(), Value::Int(ln), std::move(vqty),
               std::move(vprice), std::move(vdisc), Value::Double(tax),
               Value::String(returnflag), Value::String(linestatus),
               std::move(vship), std::move(vcommit), std::move(vreceipt),
               Value::String(std::move(instruct)), std::move(vmode),
               Value::String(RandomWords(&ctx.rng, 1, 3)),
               config.fill_probabilities ? Value::Double(probs[j])
                                         : Value::Null()});
        }
      }
    }
  }

  // ---- Dirty-schema registration. ----
  auto add = [&](DirtyTableInfo info) {
    Status s = out.dirty.AddTable(std::move(info));
    assert(s.ok());
    (void)s;
  };
  add({"region", "id", "prob", {}});
  add({"nation", "id", "prob", {{"n_region_id", "region"}}});
  add({"supplier", "id", "prob", {{"s_nation_id", "nation"}}});
  add({"part", "id", "prob", {}});
  add({"partsupp",
       "id",
       "prob",
       {{"ps_part_id", "part"}, {"ps_supp_id", "supplier"}}});
  add({"customer", "id", "prob", {{"c_nation_id", "nation"}}});
  add({"orders", "id", "prob", {{"o_cust_id", "customer"}}});
  add({"lineitem",
       "id",
       "prob",
       {{"l_order_id", "orders"},
        {"l_part_id", "part"},
        {"l_supp_id", "supplier"},
        {"l_partsupp_id", "partsupp"}}});

  out.propagation_specs = {
      {"nation", "n_regionkey", "n_region_id", "region", "r_regionkey"},
      {"supplier", "s_nationkey", "s_nation_id", "nation", "n_nationkey"},
      {"partsupp", "ps_partkey", "ps_part_id", "part", "p_partkey"},
      {"partsupp", "ps_suppkey", "ps_supp_id", "supplier", "s_suppkey"},
      {"customer", "c_nationkey", "c_nation_id", "nation", "n_nationkey"},
      {"orders", "o_custkey", "o_cust_id", "customer", "c_custkey"},
      {"lineitem", "l_orderkey", "l_order_id", "orders", "o_orderkey"},
      {"lineitem", "l_partkey", "l_part_id", "part", "p_partkey"},
      {"lineitem", "l_suppkey", "l_supp_id", "supplier", "s_suppkey"},
      {"lineitem", "l_pskey", "l_partsupp_id", "partsupp", "ps_pskey"},
  };

  if (config.propagate_identifiers) {
    CONQUER_RETURN_NOT_OK(out.Propagate().status());
  }
  return out;
}

}  // namespace conquer
