#ifndef CONQUER_GEN_TPCH_DIRTY_H_
#define CONQUER_GEN_TPCH_DIRTY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/dirty_schema.h"
#include "engine/database.h"
#include "gen/perturb.h"
#include "prob/propagate.h"

namespace conquer {

/// \brief Configuration of the dirty TPC-H generator (the in-process
/// substitute for the paper's UIS Database Generator driving Section 5).
///
/// `scale_factor` plays the paper's sf role (fraction of the TPC-H 1 GB
/// cardinalities: sf = 1 ~ 150k customer / 1.5M order / ~6M lineitem
/// tuples); `inconsistency_factor` plays the paper's if role: cluster
/// cardinalities are drawn uniformly from [1, 2*if - 1], so the mean
/// cluster size is if and if = 1 yields a completely clean database.
/// Matching the UIS generator, sf fixes the *total* (dirty) tuple count and
/// if trades entities for duplicates: entity counts shrink by 1/if.
struct TpchDirtyConfig {
  double scale_factor = 0.01;
  int inconsistency_factor = 3;
  uint64_t seed = 20060402;  // ICDE 2006

  /// Fill each cluster's prob column with a random normalized distribution
  /// during generation. When false the prob column is left NULL (for
  /// pipelines that run AssignProbabilities, as the Fig. 7 bench does).
  bool fill_probabilities = true;

  /// Run identifier propagation during generation. When false the
  /// propagated *_id columns are left NULL and the caller must run
  /// PropagateIdentifiers with `propagation_specs`.
  bool propagate_identifiers = true;

  /// Inject duplicates into nation/region as well (off by default; the
  /// dimension tables stay clean like typical reference data).
  bool dirty_dimension_tables = false;

  /// Probability that a duplicate's foreign key points at a *different*
  /// entity (referential disagreement, as in the paper's Figure 1 where the
  /// two loyalty-card duplicates name different customers).
  double fk_entity_error_rate = 0.02;

  /// Attribute-level perturbation model for duplicates.
  PerturbOptions perturb;
};

/// \brief A generated dirty TPC-H database with all ConQuer metadata.
struct TpchDirtyDatabase {
  std::unique_ptr<Database> db;
  DirtySchema dirty;
  std::vector<PropagationSpec> propagation_specs;
  TpchDirtyConfig config;

  /// Runs identifier propagation over all foreign keys.
  Result<PropagationStats> Propagate();

  /// Builds hash indexes on every identifier column and refreshes
  /// optimizer statistics (the paper's index + RUNSTATS setup).
  Status BuildIndexesAndStats();

  /// Total number of rows across all tables.
  size_t TotalRows() const;
};

/// \brief Generates the eight-table dirty TPC-H database.
///
/// Every table carries: a cluster identifier column `id`, its original
/// record-key column (each duplicate gets a distinct record key), foreign
/// keys referencing record keys, propagated `*_id` foreign-identifier
/// columns, and a `prob` column. Deterministic for a fixed config.
Result<TpchDirtyDatabase> MakeTpchDirtyDatabase(const TpchDirtyConfig& config);

/// Entity counts (before duplicate expansion) for a scale factor.
struct TpchCardinalities {
  size_t region, nation, supplier, part, partsupp, customer, orders;
  /// Lineitems are 1..7 per order (average ~4).
  static TpchCardinalities For(double scale_factor);
};

}  // namespace conquer

#endif  // CONQUER_GEN_TPCH_DIRTY_H_
