#include "gen/tpch_queries.h"

namespace conquer {

const std::vector<TpchQuery>& TpchQueries() {
  static const std::vector<TpchQuery> kQueries = {
      {1,
       "pricing summary: lineitems shipped by 1998-09-02",
       "aggregates removed (paper); root identifier l.id projected",
       "select l.id, l.l_returnflag, l.l_linestatus, l.l_quantity, "
       "l.l_extendedprice, l.l_discount "
       "from lineitem l where l.l_shipdate <= date '1998-09-02'"},

      {2,
       "minimum-cost supplier: European suppliers of size-15 BRASS parts",
       "MIN(ps_supplycost) subquery flattened to the SPJ join core",
       "select ps.id, s.id, p.id, s.s_acctbal, s.s_name, n.n_name, "
       "p.p_mfgr, s.s_address, s.s_phone, ps.ps_supplycost "
       "from part p, supplier s, partsupp ps, nation n, region r "
       "where p.id = ps.ps_part_id and s.id = ps.ps_supp_id "
       "and p.p_size = 15 and p.p_type like '%BRASS' "
       "and s.s_nation_id = n.id and n.n_region_id = r.id "
       "and r.r_name = 'EUROPE'"},

      {3,
       "shipping priority: urgent BUILDING-segment orders",
       "aggregates removed; l.id added for root projection (paper keeps the "
       "ORDER BY)",
       "select l.id, o.id, l.l_extendedprice * (1 - l.l_discount) as revenue, "
       "o.o_orderdate, o.o_shippriority "
       "from customer c, orders o, lineitem l "
       "where c.c_mktsegment = 'BUILDING' and o.o_cust_id = c.id "
       "and l.l_order_id = o.id and o.o_orderdate < date '1995-03-15' "
       "and l.l_shipdate > date '1995-03-15' "
       "order by revenue desc, o.o_orderdate"},

      {4,
       "order priority checking: orders with late lineitems in 1993Q3",
       "EXISTS subquery flattened to a join; l.id added for root projection",
       "select l.id, o.id, o.o_orderdate, o.o_orderpriority "
       "from orders o, lineitem l "
       "where l.l_order_id = o.id and l.l_commitdate < l.l_receiptdate "
       "and o.o_orderdate >= date '1993-07-01' "
       "and o.o_orderdate < date '1993-10-01'"},

      {6,
       "forecasting revenue change: discounted 1994 shipments",
       "aggregates removed",
       "select l.id, l.l_extendedprice, l.l_discount, l.l_quantity "
       "from lineitem l "
       "where l.l_shipdate >= date '1994-01-01' "
       "and l.l_shipdate < date '1995-01-01' "
       "and l.l_discount between 0.05 and 0.07 and l.l_quantity < 24"},

      {9,
       "product type profit: green parts across nations (six-way join)",
       "aggregates and EXTRACT removed; l.id projected as root",
       "select l.id, p.id, s.id, o.id, n.n_name, o.o_orderdate, "
       "l.l_extendedprice, l.l_discount, ps.ps_supplycost, l.l_quantity "
       "from part p, supplier s, lineitem l, partsupp ps, orders o, nation n "
       "where s.id = l.l_supp_id and ps.id = l.l_partsupp_id "
       "and p.id = l.l_part_id and o.id = l.l_order_id "
       "and s.s_nation_id = n.id and p.p_name like '%green%'"},

      {10,
       "returned item reporting: 1993Q4 customers with returns",
       "aggregates removed; l.id projected as root",
       "select l.id, c.id, c.c_name, c.c_acctbal, n.n_name, c.c_address, "
       "c.c_phone "
       "from customer c, orders o, lineitem l, nation n "
       "where c.id = o.o_cust_id and l.l_order_id = o.id "
       "and o.o_orderdate >= date '1993-10-01' "
       "and o.o_orderdate < date '1994-01-01' "
       "and l.l_returnflag = 'R' and c.c_nation_id = n.id"},

      {11,
       "important stock identification: German supplier stock",
       "SUM-threshold HAVING subquery dropped; SPJ core kept",
       "select ps.id, ps.ps_availqty, ps.ps_supplycost "
       "from partsupp ps, supplier s, nation n "
       "where ps.ps_supp_id = s.id and s.s_nation_id = n.id "
       "and n.n_name = 'GERMANY'"},

      {12,
       "shipping modes and order priority: late MAIL/SHIP lineitems of 1994",
       "aggregates removed; l.id projected as root",
       "select l.id, o.id, o.o_orderpriority, l.l_shipmode "
       "from orders o, lineitem l "
       "where o.id = l.l_order_id and l.l_shipmode in ('MAIL', 'SHIP') "
       "and l.l_commitdate < l.l_receiptdate "
       "and l.l_shipdate < l.l_commitdate "
       "and l.l_receiptdate >= date '1994-01-01' "
       "and l.l_receiptdate < date '1995-01-01'"},

      {14,
       "promotion effect: parts shipped in 1995-09",
       "aggregates and CASE removed",
       "select l.id, p.id, p.p_type, l.l_extendedprice, l.l_discount "
       "from lineitem l, part p "
       "where l.l_part_id = p.id and l.l_shipdate >= date '1995-09-01' "
       "and l.l_shipdate < date '1995-10-01'"},

      {17,
       "small-quantity-order revenue: Brand#23 MED BOX parts",
       "AVG(l_quantity) subquery replaced by its validation-scale constant "
       "threshold (quantity < 10)",
       "select l.id, p.id, l.l_extendedprice, l.l_quantity "
       "from lineitem l, part p "
       "where p.id = l.l_part_id and p.p_brand = 'Brand#23' "
       "and p.p_container = 'MED BOX' and l.l_quantity < 10"},

      {18,
       "large volume customer: orders with big lineitems",
       "SUM(l_quantity) HAVING subquery replaced by a per-lineitem quantity "
       "threshold; l.id projected as root",
       "select l.id, o.id, c.id, c.c_name, o.o_orderdate, o.o_totalprice, "
       "l.l_quantity "
       "from customer c, orders o, lineitem l "
       "where c.id = o.o_cust_id and o.id = l.l_order_id "
       "and l.l_quantity > 45"},

      {20,
       "potential part promotion: Canadian suppliers of forest parts",
       "nested IN subqueries flattened to joins; availability threshold kept",
       "select ps.id, s.id, s.s_name, s.s_address "
       "from supplier s, nation n, partsupp ps, part p "
       "where ps.ps_supp_id = s.id and ps.ps_part_id = p.id "
       "and p.p_name like 'forest%' and s.s_nation_id = n.id "
       "and n.n_name = 'CANADA' and ps.ps_availqty > 100"},
  };
  return kQueries;
}

const TpchQuery* FindTpchQuery(int number) {
  for (const TpchQuery& q : TpchQueries()) {
    if (q.number == number) return &q;
  }
  return nullptr;
}

std::string TpchQuery3(bool with_order_by) {
  std::string sql = FindTpchQuery(3)->sql;
  if (!with_order_by) {
    size_t pos = sql.find(" order by");
    sql = sql.substr(0, pos);
  }
  return sql;
}

}  // namespace conquer
