#ifndef CONQUER_GEN_PERTURB_H_
#define CONQUER_GEN_PERTURB_H_

#include <string>

#include "common/rng.h"
#include "types/value.h"

namespace conquer {

/// \brief Value-perturbation model for duplicate injection.
///
/// Mirrors the error classes of the UIS duplicate generator the paper uses:
/// typographic string errors (transposition, deletion, substitution,
/// insertion, case flips), small numeric jitter, and day-level date shifts.
struct PerturbOptions {
  /// Probability that any given attribute of a duplicate is perturbed.
  double attribute_error_rate = 0.3;
  /// Typos applied per perturbed string (1..max).
  int max_typos = 2;
  /// Relative jitter bound for numeric attributes (e.g. 0.25 = +-25%).
  double numeric_jitter = 0.25;
  /// Maximum day shift for date attributes.
  int max_date_shift_days = 30;
};

/// Applies one random typographic error to `s` in place (no-op when empty).
void ApplyTypo(std::string* s, Rng* rng);

/// Returns a perturbed copy of `s` with 1..max_typos typos.
std::string PerturbString(const std::string& s, Rng* rng, int max_typos);

/// Returns a perturbed copy of `v` per the options; the type is preserved.
/// NULLs pass through unchanged.
Value PerturbValue(const Value& v, Rng* rng, const PerturbOptions& options);

}  // namespace conquer

#endif  // CONQUER_GEN_PERTURB_H_
