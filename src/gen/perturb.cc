#include "gen/perturb.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace conquer {

void ApplyTypo(std::string* s, Rng* rng) {
  if (s->empty()) return;
  size_t pos = static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(s->size()) - 1));
  switch (rng->Uniform(0, 4)) {
    case 0:  // transpose with next
      if (pos + 1 < s->size()) std::swap((*s)[pos], (*s)[pos + 1]);
      break;
    case 1:  // delete
      if (s->size() > 1) s->erase(pos, 1);
      break;
    case 2:  // substitute
      (*s)[pos] = static_cast<char>('a' + rng->Uniform(0, 25));
      break;
    case 3:  // insert
      s->insert(pos, 1, static_cast<char>('a' + rng->Uniform(0, 25)));
      break;
    case 4: {  // case flip
      char c = (*s)[pos];
      (*s)[pos] = std::isupper(static_cast<unsigned char>(c))
                      ? static_cast<char>(std::tolower(c))
                      : static_cast<char>(std::toupper(c));
      break;
    }
  }
}

std::string PerturbString(const std::string& s, Rng* rng, int max_typos) {
  std::string out = s;
  int typos = static_cast<int>(rng->Uniform(1, std::max(1, max_typos)));
  for (int i = 0; i < typos; ++i) ApplyTypo(&out, rng);
  return out;
}

Value PerturbValue(const Value& v, Rng* rng, const PerturbOptions& options) {
  switch (v.type()) {
    case DataType::kNull:
    case DataType::kBool:
      return v;
    case DataType::kString:
      return Value::String(
          PerturbString(v.string_value(), rng, options.max_typos));
    case DataType::kInt64: {
      double jitter = 1.0 + (rng->NextDouble() * 2 - 1) * options.numeric_jitter;
      int64_t out = static_cast<int64_t>(
          std::llround(static_cast<double>(v.int_value()) * jitter));
      if (out == v.int_value()) out += rng->Chance(0.5) ? 1 : -1;
      return Value::Int(out);
    }
    case DataType::kDouble: {
      double jitter = 1.0 + (rng->NextDouble() * 2 - 1) * options.numeric_jitter;
      return Value::Double(v.double_value() * jitter);
    }
    case DataType::kDate: {
      int64_t shift = rng->Uniform(1, std::max(1, options.max_date_shift_days));
      if (rng->Chance(0.5)) shift = -shift;
      return Value::Date(v.date_value() + shift);
    }
  }
  return v;
}

}  // namespace conquer
