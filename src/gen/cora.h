#ifndef CONQUER_GEN_CORA_H_
#define CONQUER_GEN_CORA_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/dirty_schema.h"
#include "storage/table.h"

namespace conquer {

/// \brief Configuration of the Cora-like bibliographic dataset.
///
/// The paper's Section 4.2 evaluates probability assignment on clusters of
/// the Cora citation-matching dataset (computer-science papers integrated
/// from several sources). That dataset is not redistributable here, so this
/// generator synthesizes clusters with the same strata the paper discusses
/// for its Table 4 cluster of 56 tuples:
///   - a dominant canonical citation form (most tuples),
///   - format variants (abbreviated authors, reformatted volume/pages,
///     truncated venues),
///   - occasional *misclustered* tuples citing a different publication.
struct CoraConfig {
  size_t num_clusters = 12;
  size_t min_cluster_size = 1;
  size_t max_cluster_size = 56;  ///< the paper's example cluster size
  /// Fraction of a cluster's tuples that keep the canonical form.
  double canonical_fraction = 0.5;
  /// Probability that a tuple is an outlier from a different publication.
  double outlier_rate = 0.04;
  uint64_t seed = 1990;  // Schapire's "The strength of weak learnability"
};

/// \brief Generates the citations table:
/// (id, author, title, venue, volume, year, pages, prob[null]).
///
/// `info` receives the dirty-table annotations (identifier "id",
/// probability column "prob"). Row 0 of every cluster holds the canonical
/// form (useful for evaluating rankings against ground truth).
Result<std::unique_ptr<Table>> MakeCoraLikeTable(const CoraConfig& config,
                                                 DirtyTableInfo* info);

/// \brief Builds the specific cluster mirroring the paper's Table 4: 56
/// tuples of one publication dominated by one canonical form, with two
/// strongly divergent tuples (one reformatted, one misclustered).
Result<std::unique_ptr<Table>> MakeTable4Cluster(DirtyTableInfo* info);

}  // namespace conquer

#endif  // CONQUER_GEN_CORA_H_
