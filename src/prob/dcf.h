#ifndef CONQUER_PROB_DCF_H_
#define CONQUER_PROB_DCF_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace conquer {

/// \brief The attribute-qualified categorical value space V of a relation
/// (paper Section 4.1.1).
///
/// Values from different attributes are distinct even when their spellings
/// coincide (the paper's convention): value index is assigned per
/// (attribute, spelling) pair.
class ValueSpace {
 public:
  /// Interns (attribute, value) and returns its index in V.
  uint32_t Intern(size_t attribute, const Value& v);

  /// Index of (attribute, value), or -1 when never interned.
  int64_t Find(size_t attribute, const Value& v) const;

  size_t size() const { return names_.size(); }

  /// Display name "attr<i>:<value>" for diagnostics.
  const std::string& name(uint32_t index) const { return names_[index]; }

 private:
  static std::string Key(size_t attribute, const Value& v);

  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> names_;
};

/// \brief A sparse probability distribution p(v | .) over a ValueSpace.
///
/// Entries are kept sorted by value index; absent indices have probability
/// zero.
class SparseDist {
 public:
  SparseDist() = default;

  /// Builds the normalized tuple distribution p(v|t): probability 1/m for
  /// each of the tuple's m attribute values (paper Section 4.1.1).
  static SparseDist FromIndices(std::vector<uint32_t> indices);

  const std::vector<std::pair<uint32_t, double>>& entries() const {
    return entries_;
  }

  /// Probability of value index `v` (0 when absent).
  double At(uint32_t v) const;

  /// Sum of entries (1.0 up to rounding for a proper distribution).
  double Mass() const;

  /// Weighted mixture: w1*a + w2*b (caller normalizes weights).
  static SparseDist Mix(const SparseDist& a, double w1, const SparseDist& b,
                        double w2);

  void Add(uint32_t v, double p);
  void SortAndCombine();

 private:
  std::vector<std::pair<uint32_t, double>> entries_;
};

/// \brief Distributional Cluster Feature (paper Section 4.1.2):
/// DCF(c) = (|c|, p(V|c)).
struct Dcf {
  double weight = 0.0;  ///< cluster cardinality |c|
  SparseDist dist;      ///< conditional distribution p(v|c)

  /// DCF of a single tuple: weight 1, p(v|t).
  static Dcf ForTuple(std::vector<uint32_t> value_indices);

  /// Recursive merge (paper's equations): |c*| = |c1| + |c2|,
  /// p(v|c*) = |c1|/|c*| p(v|c1) + |c2|/|c*| p(v|c2).
  static Dcf Merge(const Dcf& a, const Dcf& b);
};

/// \brief Information-loss distance between two summaries (paper
/// Section 4.1.3): d(s1, s2) = I(C;V) - I(C';V), where C' merges s1 and s2.
///
/// For summaries drawn from an ensemble of `total_weight` tuples this
/// equals ((n1+n2)/N) * JS_{pi1,pi2}(p1, p2) — the weighted Jensen-Shannon
/// divergence — which is how it is computed here (logs base 2).
double InformationLossDistance(const Dcf& a, const Dcf& b,
                               double total_weight);

/// \brief Mutual information I(C;V) of a clustering given the cluster DCFs
/// (paper Section 4.1.3). `total_weight` is the number of tuples n;
/// p(c) = |c|/n. Used by tests to validate that InformationLossDistance
/// equals the direct I(C;V) - I(C';V) difference.
double MutualInformation(const std::vector<Dcf>& clusters,
                         double total_weight);

}  // namespace conquer

#endif  // CONQUER_PROB_DCF_H_
