#include "prob/assigner.h"

#include <cmath>
#include <unordered_map>

#include "common/str_util.h"

namespace conquer {

namespace {
constexpr double kZeroDistanceEpsilon = 1e-12;

Result<std::vector<size_t>> ResolveAttributeColumns(
    const Table& table, const DirtyTableInfo& info,
    const AssignerOptions& options) {
  std::vector<size_t> cols;
  if (!options.attribute_columns.empty()) {
    for (const std::string& name : options.attribute_columns) {
      CONQUER_ASSIGN_OR_RETURN(size_t idx,
                               table.schema().GetColumnIndex(name));
      cols.push_back(idx);
    }
    return cols;
  }
  CONQUER_ASSIGN_OR_RETURN(size_t id_col,
                           table.schema().GetColumnIndex(info.id_column));
  int prob_col = -1;
  if (!info.prob_column.empty()) {
    CONQUER_ASSIGN_OR_RETURN(size_t idx,
                             table.schema().GetColumnIndex(info.prob_column));
    prob_col = static_cast<int>(idx);
  }
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    if (c == id_col || static_cast<int>(c) == prob_col) continue;
    cols.push_back(c);
  }
  return cols;
}

std::vector<uint32_t> TupleValueIndices(const Table& table, size_t row,
                                        const std::vector<size_t>& attrs,
                                        ValueSpace* space) {
  std::vector<uint32_t> out;
  out.reserve(attrs.size());
  for (size_t a = 0; a < attrs.size(); ++a) {
    out.push_back(space->Intern(a, table.ValueAt(row, attrs[a])));
  }
  return out;
}

}  // namespace

Result<Dcf> BuildClusterRepresentative(const Table& table,
                                       const std::vector<size_t>& rows,
                                       const std::vector<size_t>& attr_columns,
                                       ValueSpace* space) {
  if (rows.empty()) {
    return Status::InvalidArgument("cluster has no rows");
  }
  RowCursor cursor(&table);
  cursor.Touch(rows[0]);
  Dcf rep = Dcf::ForTuple(TupleValueIndices(table, rows[0], attr_columns,
                                            space));
  for (size_t i = 1; i < rows.size(); ++i) {
    cursor.Touch(rows[i]);
    rep = Dcf::Merge(rep, Dcf::ForTuple(TupleValueIndices(
                              table, rows[i], attr_columns, space)));
  }
  return rep;
}

Result<std::vector<TupleProbability>> AssignProbabilities(
    Table* table, const DirtyTableInfo& info, const AssignerOptions& options) {
  if (info.prob_column.empty()) {
    return Status::InvalidArgument(
        "table '" + info.table_name +
        "' has no probability column to assign into");
  }
  CONQUER_ASSIGN_OR_RETURN(size_t id_col,
                           table->schema().GetColumnIndex(info.id_column));
  CONQUER_ASSIGN_OR_RETURN(size_t prob_col,
                           table->schema().GetColumnIndex(info.prob_column));
  CONQUER_ASSIGN_OR_RETURN(std::vector<size_t> attrs,
                           ResolveAttributeColumns(*table, info, options));

  // Group rows into clusters by identifier value.
  std::unordered_map<Value, std::vector<size_t>, ValueHash> clusters;
  std::vector<Value> order;
  RowCursor cursor(table);
  for (size_t r = 0; r < table->num_rows(); ++r) {
    cursor.Touch(r);
    Value id = table->ValueAt(r, id_col);
    auto [it, inserted] = clusters.try_emplace(id);
    if (inserted) order.push_back(std::move(id));
    it->second.push_back(r);
  }

  const double total_weight = static_cast<double>(table->num_rows());
  std::vector<TupleProbability> out(table->num_rows());
  ValueSpace space;

  for (const Value& id : order) {
    const std::vector<size_t>& members = clusters.at(id);
    if (members.size() == 1) {
      // Step 3, singleton case: certainty.
      size_t r = members[0];
      out[r] = {r, 0.0, 1.0, 1.0};
      cursor.Touch(r);
      table->SetValue(r, prob_col, Value::Double(1.0));
      continue;
    }
    // Step 1: representative and distance accumulator.
    CONQUER_ASSIGN_OR_RETURN(
        Dcf rep, BuildClusterRepresentative(*table, members, attrs, &space));
    // Step 2: distances to the representative.
    double s_sum = 0.0;
    std::vector<double> dist(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      cursor.Touch(members[i]);
      Dcf tuple = Dcf::ForTuple(
          TupleValueIndices(*table, members[i], attrs, &space));
      dist[i] = InformationLossDistance(tuple, rep, total_weight);
      s_sum += dist[i];
    }
    // Step 3: similarities and probabilities.
    for (size_t i = 0; i < members.size(); ++i) {
      size_t r = members[i];
      double prob, sim;
      if (s_sum <= kZeroDistanceEpsilon) {
        // All members identical to the representative: uniform.
        sim = 1.0;
        prob = 1.0 / static_cast<double>(members.size());
      } else {
        sim = 1.0 - dist[i] / s_sum;
        prob = sim / static_cast<double>(members.size() - 1);
      }
      out[r] = {r, dist[i], sim, prob};
      cursor.Touch(r);
      table->SetValue(r, prob_col, Value::Double(prob));
    }
  }
  return out;
}

}  // namespace conquer
