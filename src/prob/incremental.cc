#include "prob/incremental.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "engine/database.h"
#include "prob/assigner.h"
#include "prob/dcf.h"

namespace conquer {

namespace {

constexpr double kZeroDistanceEpsilon = 1e-12;

IncrementalFault g_fault = IncrementalFault::kNone;

/// Attribute columns of the dirty relation: everything except the
/// identifier and probability columns (mirrors the batch assigner).
Result<std::vector<size_t>> AttributeColumns(const Table& table,
                                             const DirtyTableInfo& info) {
  CONQUER_ASSIGN_OR_RETURN(size_t id_col,
                           table.schema().GetColumnIndex(info.id_column));
  CONQUER_ASSIGN_OR_RETURN(size_t prob_col,
                           table.schema().GetColumnIndex(info.prob_column));
  std::vector<size_t> cols;
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    if (c != id_col && c != prob_col) cols.push_back(c);
  }
  return cols;
}

std::vector<uint32_t> TupleValueIndices(const Table& table, size_t row,
                                        const std::vector<size_t>& attrs,
                                        ValueSpace* space) {
  std::vector<uint32_t> out;
  out.reserve(attrs.size());
  for (size_t a = 0; a < attrs.size(); ++a) {
    out.push_back(space->Intern(a, table.ValueAt(row, attrs[a])));
  }
  return out;
}

/// One deferred Table::SetValue. Maintenance computes into a staging list
/// and the caller applies it only after every touched cluster succeeded, so
/// a failure midway leaves the committed probabilities and identifiers
/// untouched (matching the write path's abort contract). Staging is sound
/// because maintenance only ever writes the id and probability columns and
/// only ever reads the attribute columns.
struct StagedWrite {
  size_t row;
  size_t col;
  Value value;
};

using ClusterMembers =
    std::unordered_map<Value, std::vector<size_t>, ValueHash>;

/// Computes one cluster's renormalized probabilities over its visible
/// member rows into `staged`, exactly as the batch assigner's steps 1-3 but
/// with the total weight taken from the visible row count.
Status RenormalizeCluster(const Table& table,
                          const std::vector<size_t>& members,
                          const std::vector<size_t>& attrs, size_t prob_col,
                          double total_weight, ValueSpace* space,
                          std::vector<StagedWrite>* staged) {
  if (members.empty()) return Status::OK();  // cluster fully deleted
  if (members.size() == 1) {
    staged->push_back({members[0], prob_col, Value::Double(1.0)});
    return Status::OK();
  }
  CONQUER_ASSIGN_OR_RETURN(
      Dcf rep, BuildClusterRepresentative(table, members, attrs, space));
  double s_sum = 0.0;
  std::vector<double> dist(members.size());
  RowCursor cursor(&table);
  for (size_t i = 0; i < members.size(); ++i) {
    cursor.Touch(members[i]);
    Dcf tuple =
        Dcf::ForTuple(TupleValueIndices(table, members[i], attrs, space));
    dist[i] = InformationLossDistance(tuple, rep, total_weight);
    s_sum += dist[i];
  }
  for (size_t i = 0; i < members.size(); ++i) {
    double prob;
    if (s_sum <= kZeroDistanceEpsilon) {
      prob = 1.0 / static_cast<double>(members.size());
    } else {
      prob = (1.0 - dist[i] / s_sum) / static_cast<double>(members.size() - 1);
    }
    staged->push_back({members[i], prob_col, Value::Double(prob)});
  }
  return Status::OK();
}

/// Fresh cluster identifier for an unmatched NULL-id insert: "m<N>" for
/// string identifiers, max+1 for integer ones. Identifiers are user data,
/// so every candidate is probed against the membership map (which already
/// includes earlier fresh assignments) until one is unused — otherwise the
/// new singleton would silently join an unrelated existing cluster.
Value FreshIdentifier(const Table& table, size_t id_col,
                      const std::vector<size_t>& visible,
                      const ClusterMembers& members, size_t* counter) {
  if (table.schema().column(id_col).type == DataType::kString) {
    while (true) {
      Value cand =
          Value::String("m" + std::to_string(visible.size() + (*counter)++));
      if (members.find(cand) == members.end()) return cand;
    }
  }
  int64_t max_id = 0;
  RowCursor cursor(&table);
  for (size_t pos : visible) {
    cursor.Touch(pos);
    Value v = table.ValueAt(pos, id_col);
    if (!v.is_null()) max_id = std::max(max_id, v.int_value());
  }
  while (true) {
    Value cand = Value::Int(max_id + 1 + static_cast<int64_t>((*counter)++));
    if (members.find(cand) == members.end()) return cand;
  }
}

}  // namespace

void SetIncrementalFaultInjection(IncrementalFault fault) { g_fault = fault; }

IncrementalFault GetIncrementalFaultInjection() { return g_fault; }

Result<size_t> ReassignClusters(Table* table, const DirtyTableInfo& info,
                                const std::vector<Value>& touched_ids,
                                uint64_t snapshot,
                                const IncrementalOptions& options) {
  if (info.prob_column.empty()) {
    return Status::InvalidArgument("table '" + info.table_name +
                                   "' has no probability column to maintain");
  }
  CONQUER_ASSIGN_OR_RETURN(size_t id_col,
                           table->schema().GetColumnIndex(info.id_column));
  CONQUER_ASSIGN_OR_RETURN(size_t prob_col,
                           table->schema().GetColumnIndex(info.prob_column));
  CONQUER_ASSIGN_OR_RETURN(std::vector<size_t> attrs,
                           AttributeColumns(*table, info));

  const std::vector<size_t> visible = table->VisibleRowPositions(snapshot);
  const double total_weight = static_cast<double>(visible.size());

  // Distinct touched identifiers, in first-touch order.
  std::vector<Value> touched;
  std::unordered_set<Value, ValueHash> touched_set;
  bool touched_null = false;
  for (const Value& id : touched_ids) {
    if (id.is_null()) {
      touched_null = true;
      continue;
    }
    if (touched_set.insert(id).second) touched.push_back(id);
  }

  // Visible membership of every cluster (needed both for renormalization
  // and for matching NULL-id inserts against all representatives).
  ClusterMembers members;
  std::vector<size_t> null_rows;
  RowCursor cursor(table);
  for (size_t pos : visible) {
    cursor.Touch(pos);
    Value id = table->ValueAt(pos, id_col);
    if (id.is_null()) {
      null_rows.push_back(pos);
    } else {
      members[std::move(id)].push_back(pos);
    }
  }

  ValueSpace space;
  // Every in-place write is staged and applied only once the whole pass has
  // succeeded: a failure on the Nth touched cluster must not leave the
  // first N-1 already renormalized (the write aborts, but SetValue mutates
  // committed-visible rows that no rollback could restore).
  std::vector<StagedWrite> staged;

  // Match rows inserted without a cluster identifier against the existing
  // cluster representatives; join the nearest within the threshold, else
  // start a new singleton cluster under a fresh identifier.
  if (touched_null && !null_rows.empty()) {
    size_t fresh_counter = 0;
    for (size_t pos : null_rows) {
      cursor.Touch(pos);
      Dcf tuple = Dcf::ForTuple(TupleValueIndices(*table, pos, attrs, &space));
      const Value* best_id = nullptr;
      double best_dist = options.merge_threshold;
      for (const auto& [id, rows] : members) {
        CONQUER_ASSIGN_OR_RETURN(
            Dcf rep, BuildClusterRepresentative(*table, rows, attrs, &space));
        // Passing the summed weights as the total makes the n/N prefactor 1,
        // the same pure-information-loss distance the matcher thresholds.
        double d =
            InformationLossDistance(tuple, rep, tuple.weight + rep.weight);
        if (d <= best_dist) {
          best_dist = d;
          best_id = &id;
        }
      }
      Value assigned = best_id != nullptr
                           ? *best_id
                           : FreshIdentifier(*table, id_col, visible, members,
                                             &fresh_counter);
      staged.push_back({pos, id_col, assigned});
      members[assigned].push_back(pos);
      if (touched_set.insert(assigned).second) touched.push_back(assigned);
    }
  }

  size_t first = 0;
  if (g_fault == IncrementalFault::kSkipFirstCluster && !touched.empty()) {
    first = 1;  // injected off-by-one: first touched cluster left stale
  }
  size_t renormalized = 0;
  for (size_t i = first; i < touched.size(); ++i) {
    auto it = members.find(touched[i]);
    if (it == members.end()) continue;  // cluster fully deleted
    CONQUER_RETURN_NOT_OK(RenormalizeCluster(*table, it->second, attrs,
                                             prob_col, total_weight, &space,
                                             &staged));
    ++renormalized;
  }
  for (const StagedWrite& w : staged) {
    cursor.Touch(w.row);
    table->SetValue(w.row, w.col, w.value);
  }
  return renormalized;
}

Status InstallIncrementalMaintenance(Database* db, const DirtySchema* dirty,
                                     const IncrementalOptions& options) {
  for (const DirtyTableInfo& info : dirty->tables()) {
    if (info.prob_column.empty()) continue;  // clean relation
    WriteMaintenanceHook hook;
    hook.id_column = info.id_column;
    hook.after_write = [&info, options](Table* table,
                                        const std::vector<Value>& touched,
                                        uint64_t version) -> Status {
      return ReassignClusters(table, info, touched, version, options)
          .status();
    };
    db->SetWriteHook(info.table_name, std::move(hook));
  }
  return Status::OK();
}

}  // namespace conquer
