#include "prob/providers.h"

#include <vector>

namespace conquer {

namespace {

/// Groups row positions by identifier value, preserving first-seen order.
Result<std::vector<std::vector<size_t>>> CollectClusters(
    const Table& table, const DirtyTableInfo& info) {
  CONQUER_ASSIGN_OR_RETURN(size_t id_col,
                           table.schema().GetColumnIndex(info.id_column));
  std::unordered_map<Value, size_t, ValueHash> index;
  std::vector<std::vector<size_t>> clusters;
  RowCursor cursor(&table);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    cursor.Touch(r);
    Value id = table.ValueAt(r, id_col);
    auto [it, inserted] = index.try_emplace(std::move(id), clusters.size());
    if (inserted) clusters.emplace_back();
    clusters[it->second].push_back(r);
  }
  return clusters;
}

Result<size_t> ProbColumn(const Table& table, const DirtyTableInfo& info) {
  if (info.prob_column.empty()) {
    return Status::InvalidArgument("table '" + info.table_name +
                                   "' has no probability column");
  }
  return table.schema().GetColumnIndex(info.prob_column);
}

}  // namespace

Status AssignUniformProbabilities(Table* table, const DirtyTableInfo& info) {
  CONQUER_ASSIGN_OR_RETURN(size_t prob_col, ProbColumn(*table, info));
  CONQUER_ASSIGN_OR_RETURN(auto clusters, CollectClusters(*table, info));
  RowCursor cursor(table);
  for (const auto& members : clusters) {
    double p = 1.0 / static_cast<double>(members.size());
    for (size_t r : members) {
      cursor.Touch(r);
      table->SetValue(r, prob_col, Value::Double(p));
    }
  }
  return Status::OK();
}

Status AssignSourceReliabilityProbabilities(
    Table* table, const DirtyTableInfo& info, std::string_view source_column,
    const std::unordered_map<std::string, double>& reliability,
    double default_reliability) {
  if (default_reliability < 0.0) {
    return Status::InvalidArgument("default reliability must be >= 0");
  }
  for (const auto& [source, weight] : reliability) {
    if (weight < 0.0) {
      return Status::InvalidArgument("negative reliability for source '" +
                                     source + "'");
    }
  }
  CONQUER_ASSIGN_OR_RETURN(size_t prob_col, ProbColumn(*table, info));
  CONQUER_ASSIGN_OR_RETURN(size_t source_col,
                           table->schema().GetColumnIndex(source_column));
  CONQUER_ASSIGN_OR_RETURN(auto clusters, CollectClusters(*table, info));

  RowCursor cursor(table);
  auto weight_of = [&](size_t row) {
    cursor.Touch(row);
    Value v = table->ValueAt(row, source_col);
    if (v.is_null()) return default_reliability;
    auto it = reliability.find(v.ToString());
    return it == reliability.end() ? default_reliability : it->second;
  };

  for (const auto& members : clusters) {
    double total = 0.0;
    for (size_t r : members) total += weight_of(r);
    for (size_t r : members) {
      double p = total > 0.0 ? weight_of(r) / total
                             : 1.0 / static_cast<double>(members.size());
      cursor.Touch(r);
      table->SetValue(r, prob_col, Value::Double(p));
    }
  }
  return Status::OK();
}

}  // namespace conquer
