#include "prob/dcf.h"

#include <algorithm>
#include <cmath>

namespace conquer {

namespace {
constexpr double kLog2 = 0.6931471805599453;  // ln(2)

double Log2(double x) { return std::log(x) / kLog2; }
}  // namespace

std::string ValueSpace::Key(size_t attribute, const Value& v) {
  return std::to_string(attribute) + ":" + v.ToString();
}

uint32_t ValueSpace::Intern(size_t attribute, const Value& v) {
  std::string key = Key(attribute, v);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  uint32_t idx = static_cast<uint32_t>(names_.size());
  index_.emplace(std::move(key), idx);
  names_.push_back(std::to_string(attribute) + ":" + v.ToString());
  return idx;
}

int64_t ValueSpace::Find(size_t attribute, const Value& v) const {
  auto it = index_.find(Key(attribute, v));
  if (it == index_.end()) return -1;
  return it->second;
}

SparseDist SparseDist::FromIndices(std::vector<uint32_t> indices) {
  SparseDist out;
  if (indices.empty()) return out;
  double p = 1.0 / static_cast<double>(indices.size());
  for (uint32_t v : indices) out.Add(v, p);
  out.SortAndCombine();
  return out;
}

double SparseDist::At(uint32_t v) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), v,
      [](const std::pair<uint32_t, double>& e, uint32_t x) {
        return e.first < x;
      });
  if (it != entries_.end() && it->first == v) return it->second;
  return 0.0;
}

double SparseDist::Mass() const {
  double m = 0.0;
  for (const auto& [v, p] : entries_) m += p;
  return m;
}

void SparseDist::Add(uint32_t v, double p) { entries_.emplace_back(v, p); }

void SparseDist::SortAndCombine() {
  std::sort(entries_.begin(), entries_.end());
  size_t w = 0;
  for (size_t r = 0; r < entries_.size(); ++r) {
    if (w > 0 && entries_[w - 1].first == entries_[r].first) {
      entries_[w - 1].second += entries_[r].second;
    } else {
      entries_[w++] = entries_[r];
    }
  }
  entries_.resize(w);
}

SparseDist SparseDist::Mix(const SparseDist& a, double w1, const SparseDist& b,
                           double w2) {
  SparseDist out;
  size_t i = 0, j = 0;
  const auto& ea = a.entries_;
  const auto& eb = b.entries_;
  out.entries_.reserve(ea.size() + eb.size());
  while (i < ea.size() || j < eb.size()) {
    if (j >= eb.size() || (i < ea.size() && ea[i].first < eb[j].first)) {
      out.entries_.emplace_back(ea[i].first, w1 * ea[i].second);
      ++i;
    } else if (i >= ea.size() || eb[j].first < ea[i].first) {
      out.entries_.emplace_back(eb[j].first, w2 * eb[j].second);
      ++j;
    } else {
      out.entries_.emplace_back(ea[i].first,
                                w1 * ea[i].second + w2 * eb[j].second);
      ++i;
      ++j;
    }
  }
  return out;
}

Dcf Dcf::ForTuple(std::vector<uint32_t> value_indices) {
  Dcf out;
  out.weight = 1.0;
  out.dist = SparseDist::FromIndices(std::move(value_indices));
  return out;
}

Dcf Dcf::Merge(const Dcf& a, const Dcf& b) {
  Dcf out;
  out.weight = a.weight + b.weight;
  if (out.weight <= 0.0) return out;
  out.dist = SparseDist::Mix(a.dist, a.weight / out.weight, b.dist,
                             b.weight / out.weight);
  return out;
}

double InformationLossDistance(const Dcf& a, const Dcf& b,
                               double total_weight) {
  double n = a.weight + b.weight;
  if (n <= 0.0 || total_weight <= 0.0) return 0.0;
  double pi1 = a.weight / n;
  double pi2 = b.weight / n;
  SparseDist mix = SparseDist::Mix(a.dist, pi1, b.dist, pi2);
  // JS = pi1 * KL(p1 || m) + pi2 * KL(p2 || m).
  double js = 0.0;
  for (const auto& [v, p] : a.dist.entries()) {
    if (p <= 0.0) continue;
    js += pi1 * p * Log2(p / mix.At(v));
  }
  for (const auto& [v, p] : b.dist.entries()) {
    if (p <= 0.0) continue;
    js += pi2 * p * Log2(p / mix.At(v));
  }
  if (js < 0.0) js = 0.0;  // guard against rounding
  return (n / total_weight) * js;
}

double MutualInformation(const std::vector<Dcf>& clusters,
                         double total_weight) {
  if (total_weight <= 0.0) return 0.0;
  // Marginal p(v) = sum_c p(c) p(v|c).
  SparseDist marginal;
  for (const Dcf& c : clusters) {
    double pc = c.weight / total_weight;
    for (const auto& [v, p] : c.dist.entries()) marginal.Add(v, pc * p);
  }
  marginal.SortAndCombine();
  // I(C;V) = sum_c p(c) sum_v p(v|c) log2(p(v|c) / p(v)).
  double info = 0.0;
  for (const Dcf& c : clusters) {
    double pc = c.weight / total_weight;
    if (pc <= 0.0) continue;
    for (const auto& [v, p] : c.dist.entries()) {
      if (p <= 0.0) continue;
      info += pc * p * Log2(p / marginal.At(v));
    }
  }
  return info;
}

}  // namespace conquer
