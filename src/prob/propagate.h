#ifndef CONQUER_PROB_PROPAGATE_H_
#define CONQUER_PROB_PROPAGATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/dirty_schema.h"
#include "engine/database.h"

namespace conquer {

/// \brief One foreign-key propagation task (paper Section 2.1, "identifier
/// propagation").
///
/// In an integrated dirty database a foreign key references the *record
/// key* of some duplicate tuple. After tuple matching, every record key
/// maps to its cluster identifier; propagation fills `target_column` of
/// `table` with the cluster identifier of the tuple whose
/// `ref_key_column` equals `fk_column`.
struct PropagationSpec {
  std::string table;
  std::string fk_column;      ///< holds referenced record keys
  std::string target_column;  ///< receives the referenced cluster identifier
  std::string ref_table;
  std::string ref_key_column; ///< record-key column of the referenced table
};

/// \brief Statistics of one propagation run (reported by the Fig. 7 bench).
struct PropagationStats {
  size_t rows_updated = 0;
  size_t dangling_references = 0;  ///< FK values with no matching record key
};

/// \brief Executes identifier propagation over the database in place.
///
/// The referenced cluster identifier is read from the referenced table's
/// DirtyTableInfo::id_column. Dangling references are written as NULL and
/// counted. The pass is a per-spec hash build over the referenced table
/// followed by a linear scan — its cost is linear in table sizes and, as
/// the paper observes, independent of the cluster cardinalities.
Result<PropagationStats> PropagateIdentifiers(
    Database* db, const DirtySchema& dirty,
    const std::vector<PropagationSpec>& specs);

}  // namespace conquer

#endif  // CONQUER_PROB_PROPAGATE_H_
