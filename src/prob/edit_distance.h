#ifndef CONQUER_PROB_EDIT_DISTANCE_H_
#define CONQUER_PROB_EDIT_DISTANCE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/dirty_schema.h"
#include "prob/assigner.h"
#include "storage/table.h"

namespace conquer {

/// \brief Levenshtein edit distance between two strings.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// \brief Edit distance normalized to [0, 1] by the longer string's length
/// (0 for two empty strings).
double NormalizedEditDistance(std::string_view a, std::string_view b);

/// \brief A pluggable tuple-pair distance for the Figure 5 procedure.
///
/// The paper (Section 4): "when a distance measure between tuples (e.g.,
/// string edit distance) is available, our method can incorporate it."
/// Implementations must be symmetric and non-negative.
class TupleDistanceMeasure {
 public:
  virtual ~TupleDistanceMeasure() = default;

  /// Distance between two rows restricted to `attribute_columns`.
  virtual double Distance(const Table& table, size_t row_a, size_t row_b,
                          const std::vector<size_t>& attribute_columns)
      const = 0;
};

/// \brief Attribute-averaged mixed-type distance: normalized Levenshtein
/// for strings, relative difference for numerics/dates, 0/1 for the rest.
/// NULL vs non-NULL counts as a full mismatch (1).
class MixedEditDistance : public TupleDistanceMeasure {
 public:
  double Distance(const Table& table, size_t row_a, size_t row_b,
                  const std::vector<size_t>& attribute_columns) const override;
};

/// \brief The Figure 5 procedure with a pluggable pairwise distance.
///
/// The cluster representative is the *medoid* — the member minimizing the
/// total distance to the rest of the cluster (the natural analogue of the
/// DCF representative when only a pairwise measure exists); each tuple's
/// d_t is its distance to the medoid, and steps 2-3 proceed exactly as in
/// the paper (similarity s_t = 1 - d_t/S, probability s_t/(|c|-1),
/// singletons get 1, all-identical clusters go uniform). O(|c|^2) distance
/// evaluations per cluster.
Result<std::vector<TupleProbability>> AssignProbabilitiesWithDistance(
    Table* table, const DirtyTableInfo& info,
    const TupleDistanceMeasure& measure, const AssignerOptions& options = {});

}  // namespace conquer

#endif  // CONQUER_PROB_EDIT_DISTANCE_H_
