#include "prob/matcher.h"

#include "common/str_util.h"
#include "prob/dcf.h"

namespace conquer {

namespace {

Result<std::vector<size_t>> ResolveColumns(const Table& table,
                                           const MatcherOptions& options) {
  std::vector<size_t> cols;
  if (!options.attribute_columns.empty()) {
    for (const std::string& name : options.attribute_columns) {
      CONQUER_ASSIGN_OR_RETURN(size_t idx,
                               table.schema().GetColumnIndex(name));
      cols.push_back(idx);
    }
    return cols;
  }
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    bool excluded = false;
    for (const std::string& name : options.exclude_columns) {
      excluded = excluded || EqualsIgnoreCase(table.schema().column(c).name,
                                              name);
    }
    if (!excluded) cols.push_back(c);
  }
  if (cols.empty()) {
    return Status::InvalidArgument("no attribute columns left for matching");
  }
  return cols;
}

}  // namespace

Result<MatchResult> MatchTuples(const Table& table,
                                const MatcherOptions& options) {
  if (options.merge_threshold < 0.0 || options.merge_threshold > 1.0) {
    return Status::InvalidArgument("merge_threshold must be in [0, 1]");
  }
  CONQUER_ASSIGN_OR_RETURN(std::vector<size_t> cols,
                           ResolveColumns(table, options));

  MatchResult result;
  result.cluster_of_row.resize(table.num_rows());
  ValueSpace space;
  std::vector<Dcf> clusters;

  RowCursor cursor(&table);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    cursor.Touch(r);
    std::vector<uint32_t> values;
    values.reserve(cols.size());
    for (size_t a = 0; a < cols.size(); ++a) {
      values.push_back(space.Intern(a, table.ValueAt(r, cols[a])));
    }
    Dcf tuple = Dcf::ForTuple(std::move(values));

    // Nearest representative by (pure) Jensen-Shannon divergence: pass the
    // summed weight as the ensemble size so the n/N prefactor is 1.
    double best = options.merge_threshold;
    int best_cluster = -1;
    for (size_t c = 0; c < clusters.size(); ++c) {
      double d = InformationLossDistance(tuple, clusters[c],
                                         tuple.weight + clusters[c].weight);
      if (d <= best) {
        best = d;
        best_cluster = static_cast<int>(c);
      }
    }
    if (best_cluster < 0) {
      result.cluster_of_row[r] = clusters.size();
      clusters.push_back(std::move(tuple));
    } else {
      result.cluster_of_row[r] = static_cast<size_t>(best_cluster);
      clusters[best_cluster] = Dcf::Merge(clusters[best_cluster], tuple);
    }
  }
  result.num_clusters = clusters.size();
  return result;
}

Result<MatchResult> AssignClusterIdentifiers(Table* table,
                                             std::string_view id_column,
                                             const MatcherOptions& options,
                                             std::string_view prefix) {
  CONQUER_ASSIGN_OR_RETURN(size_t id_col,
                           table->schema().GetColumnIndex(id_column));
  // Never match on the identifier column itself.
  MatcherOptions effective = options;
  if (effective.attribute_columns.empty()) {
    effective.exclude_columns.push_back(std::string(id_column));
  }
  CONQUER_ASSIGN_OR_RETURN(MatchResult result, MatchTuples(*table, effective));
  RowCursor cursor(table);
  for (size_t r = 0; r < table->num_rows(); ++r) {
    cursor.Touch(r);
    // SetValue re-interns the string through the column dictionary, so the
    // rewritten identifiers stay on the interned-compare fast path.
    table->SetValue(r, id_col,
                    Value::String(std::string(prefix) +
                                  std::to_string(result.cluster_of_row[r])));
  }
  return result;
}

}  // namespace conquer
