#ifndef CONQUER_PROB_PROVIDERS_H_
#define CONQUER_PROB_PROVIDERS_H_

#include <string>
#include <unordered_map>

#include "common/result.h"
#include "core/dirty_schema.h"
#include "storage/table.h"

namespace conquer {

/// \brief Alternative probability providers from the paper's Section 1.
///
/// The clean-answer semantics is independent of how tuple probabilities are
/// produced. Besides the information-loss method of Section 4
/// (prob/assigner.h), the paper names two other sources, implemented here:
/// uniform probabilities "in the absence of provenance information", and
/// source-reliability probabilities ("the more reliable the source, the
/// higher its probability", distributed to tuples via provenance).
/// \{

/// Assigns 1/|cluster| to every tuple of every cluster.
Status AssignUniformProbabilities(Table* table, const DirtyTableInfo& info);

/// Assigns probabilities proportional to the reliability of each tuple's
/// source, normalized per cluster:
///   prob(t) = reliability(source(t)) / sum over cluster of reliability.
///
/// `source_column` names the provenance attribute; `reliability` maps its
/// values to non-negative weights. Tuples whose source is missing from the
/// map use `default_reliability`. A cluster whose total weight is zero
/// falls back to uniform.
Status AssignSourceReliabilityProbabilities(
    Table* table, const DirtyTableInfo& info, std::string_view source_column,
    const std::unordered_map<std::string, double>& reliability,
    double default_reliability = 0.0);

/// \}

}  // namespace conquer

#endif  // CONQUER_PROB_PROVIDERS_H_
