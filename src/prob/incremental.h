#ifndef CONQUER_PROB_INCREMENTAL_H_
#define CONQUER_PROB_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/dirty_schema.h"
#include "storage/table.h"
#include "types/value.h"

namespace conquer {

class Database;

/// \brief Fault injection for the incremental maintenance path, used by the
/// differential fuzzer's self-test to prove the mutation-stage oracle can
/// catch renormalization bugs.
enum class IncrementalFault {
  kNone,
  /// Off-by-one: skips the first touched cluster, leaving its probabilities
  /// stale after a write.
  kSkipFirstCluster,
};

/// Sets the process-wide injected fault (tests only; not thread-safe
/// against concurrent writes).
void SetIncrementalFaultInjection(IncrementalFault fault);
IncrementalFault GetIncrementalFaultInjection();

/// \brief Options for incremental reassignment.
struct IncrementalOptions {
  /// Information-loss distance threshold for matching a newly inserted row
  /// with a NULL cluster identifier against existing cluster
  /// representatives (same scale as MatcherOptions::merge_threshold).
  double merge_threshold = 0.35;
};

/// \brief Incremental Figure-5 maintenance after a write (the tentpole's
/// "re-match only the touched clusters").
///
/// `touched_ids` are the cluster-identifier values of every row version a
/// write statement touched (from WriteResult::touched_ids). For each
/// distinct touched cluster, rebuilds its DCF representative over the rows
/// visible at `snapshot`, recomputes information-loss distances with
/// total weight = the table's visible row count, and renormalizes the
/// member probabilities in place (singleton -> 1.0; all-identical ->
/// uniform; fully deleted cluster -> nothing to do).
///
/// Rows visible at `snapshot` whose identifier is NULL (freshly inserted
/// without a cluster assignment) are first matched against every existing
/// cluster representative; within `options.merge_threshold` they join the
/// nearest cluster, otherwise they found a new singleton cluster with a
/// fresh identifier. Either way the identifier cell is filled in and the
/// affected cluster is renormalized.
///
/// Returns the number of clusters renormalized.
Result<size_t> ReassignClusters(Table* table, const DirtyTableInfo& info,
                                const std::vector<Value>& touched_ids,
                                uint64_t snapshot,
                                const IncrementalOptions& options = {});

/// Registers a write-maintenance hook on every dirty table of `dirty` that
/// has a probability column, so INSERT/UPDATE/DELETE through
/// Database::ExecuteWrite keep cluster probabilities normalized. `dirty`
/// must outlive `db`'s use of the hooks.
Status InstallIncrementalMaintenance(Database* db, const DirtySchema* dirty,
                                     const IncrementalOptions& options = {});

}  // namespace conquer

#endif  // CONQUER_PROB_INCREMENTAL_H_
