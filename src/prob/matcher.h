#ifndef CONQUER_PROB_MATCHER_H_
#define CONQUER_PROB_MATCHER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace conquer {

/// \brief Options of the baseline tuple matcher.
struct MatcherOptions {
  /// Maximum Jensen-Shannon divergence (base-2, in [0, 1]) between a tuple's
  /// distribution and a cluster representative for the tuple to join the
  /// cluster. 0 merges only identical tuples; 1 merges everything into the
  /// first cluster.
  double merge_threshold = 0.35;

  /// Columns used for matching. Empty = every column not excluded.
  std::vector<std::string> attribute_columns;
  /// Columns ignored when `attribute_columns` is empty (record keys,
  /// pre-existing identifier/probability columns).
  std::vector<std::string> exclude_columns;
};

/// \brief Result of matching: a cluster label per row, in row order.
struct MatchResult {
  std::vector<size_t> cluster_of_row;
  size_t num_clusters = 0;
};

/// \brief Baseline tuple matcher in the LIMBO family (paper reference [4]).
///
/// The paper assumes tuple matching has already produced a clustering; this
/// matcher closes the pipeline for users who start from a raw table. It is
/// the streaming (BIRCH-style) phase of LIMBO over the same Distributional
/// Cluster Features used in Section 4: each tuple is compared against the
/// existing cluster representatives by Jensen-Shannon divergence and merged
/// into the nearest one below `merge_threshold`, or opens a new cluster.
/// One pass, O(rows x clusters); order-dependent like LIMBO phase 1.
///
/// The framework is deliberately modular (paper Section 1): any other
/// matcher can be substituted by writing cluster identifiers directly.
Result<MatchResult> MatchTuples(const Table& table,
                                const MatcherOptions& options = {});

/// \brief Runs MatchTuples and writes cluster identifiers
/// `<prefix><cluster>` into the named column of the table.
Result<MatchResult> AssignClusterIdentifiers(Table* table,
                                             std::string_view id_column,
                                             const MatcherOptions& options = {},
                                             std::string_view prefix = "m");

}  // namespace conquer

#endif  // CONQUER_PROB_MATCHER_H_
