#include "prob/propagate.h"

#include <unordered_map>

namespace conquer {

Result<PropagationStats> PropagateIdentifiers(
    Database* db, const DirtySchema& dirty,
    const std::vector<PropagationSpec>& specs) {
  PropagationStats stats;
  for (const PropagationSpec& spec : specs) {
    CONQUER_ASSIGN_OR_RETURN(Table * table, db->GetTable(spec.table));
    CONQUER_ASSIGN_OR_RETURN(Table * ref, db->GetTable(spec.ref_table));
    CONQUER_ASSIGN_OR_RETURN(const DirtyTableInfo* ref_info,
                             dirty.Get(spec.ref_table));

    CONQUER_ASSIGN_OR_RETURN(size_t fk_col,
                             table->schema().GetColumnIndex(spec.fk_column));
    CONQUER_ASSIGN_OR_RETURN(
        size_t target_col, table->schema().GetColumnIndex(spec.target_column));
    CONQUER_ASSIGN_OR_RETURN(
        size_t ref_key_col,
        ref->schema().GetColumnIndex(spec.ref_key_column));
    CONQUER_ASSIGN_OR_RETURN(size_t ref_id_col,
                             ref->schema().GetColumnIndex(ref_info->id_column));

    // Record key -> cluster identifier of the referenced table.
    std::unordered_map<Value, Value, ValueHash> crossref;
    crossref.reserve(ref->num_rows());
    RowCursor ref_cursor(ref);
    for (size_t r = 0; r < ref->num_rows(); ++r) {
      ref_cursor.Touch(r);
      crossref.emplace(ref->ValueAt(r, ref_key_col),
                       ref->ValueAt(r, ref_id_col));
    }

    RowCursor cursor(table);
    for (size_t r = 0; r < table->num_rows(); ++r) {
      cursor.Touch(r);
      auto it = crossref.find(table->ValueAt(r, fk_col));
      if (it == crossref.end()) {
        table->SetValue(r, target_col, Value::Null());
        ++stats.dangling_references;
      } else {
        table->SetValue(r, target_col, it->second);
        ++stats.rows_updated;
      }
    }
  }
  return stats;
}

}  // namespace conquer
