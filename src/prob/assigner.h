#ifndef CONQUER_PROB_ASSIGNER_H_
#define CONQUER_PROB_ASSIGNER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/dirty_schema.h"
#include "prob/dcf.h"
#include "storage/table.h"

namespace conquer {

/// \brief Per-tuple output of the probability assignment, exposed so tests
/// and reports can reproduce the paper's Table 3 (distance, similarity,
/// probability per tuple).
struct TupleProbability {
  size_t row = 0;        ///< row position in the table
  double distance = 0.0;    ///< d(t, rep) — information loss
  double similarity = 0.0;  ///< s_t = 1 - d_t / S(c_i)
  double probability = 0.0; ///< final prob(t)
};

/// \brief Options for AssignProbabilities.
struct AssignerOptions {
  /// Columns used to build the categorical representation. Empty = every
  /// column except the identifier and probability columns.
  std::vector<std::string> attribute_columns;
};

/// \brief The paper's Figure 5 algorithm: assigns a probability to every
/// tuple of a clustered relation.
///
/// Step 1 computes each cluster's representative by merging the member
/// tuples' DCFs; Step 2 measures each member's information-loss distance to
/// the representative; Step 3 converts distances to similarities
/// (s_t = 1 - d_t/S) and normalizes them into probabilities
/// (prob(t) = s_t / (|c|-1); singleton clusters get probability 1).
///
/// Degenerate clusters whose members are all at distance ~0 from the
/// representative (identical duplicates) get the uniform distribution.
///
/// Writes the probabilities into `info.prob_column` of the table and
/// returns the per-tuple details in row order.
Result<std::vector<TupleProbability>> AssignProbabilities(
    Table* table, const DirtyTableInfo& info,
    const AssignerOptions& options = {});

/// \brief Builds the cluster representative (merged DCF) of the given rows.
/// Exposed for tests that pin the paper's Table 2 values.
Result<Dcf> BuildClusterRepresentative(const Table& table,
                                       const std::vector<size_t>& rows,
                                       const std::vector<size_t>& attr_columns,
                                       ValueSpace* space);

}  // namespace conquer

#endif  // CONQUER_PROB_ASSIGNER_H_
