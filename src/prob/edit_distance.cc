#include "prob/edit_distance.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace conquer {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // Two-row dynamic program over the shorter string.
  std::vector<size_t> prev(a.size() + 1), curr(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    curr[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t substitute = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[i] = std::min({prev[i] + 1, curr[i - 1] + 1, substitute});
    }
    std::swap(prev, curr);
  }
  return prev[a.size()];
}

double NormalizedEditDistance(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(LevenshteinDistance(a, b)) /
         static_cast<double>(longest);
}

double MixedEditDistance::Distance(
    const Table& table, size_t row_a, size_t row_b,
    const std::vector<size_t>& attribute_columns) const {
  if (attribute_columns.empty()) return 0.0;
  double total = 0.0;
  for (size_t c : attribute_columns) {
    Value a = table.ValueAt(row_a, c);
    Value b = table.ValueAt(row_b, c);
    if (a.is_null() && b.is_null()) continue;  // both missing: no evidence
    if (a.is_null() != b.is_null()) {
      total += 1.0;
      continue;
    }
    switch (a.type()) {
      case DataType::kString:
        total += NormalizedEditDistance(a.string_value(),
                                        b.type() == DataType::kString
                                            ? b.string_value()
                                            : b.ToString());
        break;
      case DataType::kInt64:
      case DataType::kDouble:
      case DataType::kDate: {
        double x = a.AsDouble(), y = b.AsDouble();
        double denom = std::max(std::abs(x), std::abs(y));
        total += denom > 0 ? std::min(1.0, std::abs(x - y) / denom) : 0.0;
        break;
      }
      default:
        total += a.TotalCompare(b) == 0 ? 0.0 : 1.0;
        break;
    }
  }
  return total / static_cast<double>(attribute_columns.size());
}

namespace {

constexpr double kZeroDistanceEpsilon = 1e-12;

Result<std::vector<size_t>> ResolveAttributeColumns(
    const Table& table, const DirtyTableInfo& info,
    const AssignerOptions& options) {
  std::vector<size_t> cols;
  if (!options.attribute_columns.empty()) {
    for (const std::string& name : options.attribute_columns) {
      CONQUER_ASSIGN_OR_RETURN(size_t idx,
                               table.schema().GetColumnIndex(name));
      cols.push_back(idx);
    }
    return cols;
  }
  CONQUER_ASSIGN_OR_RETURN(size_t id_col,
                           table.schema().GetColumnIndex(info.id_column));
  int prob_col = -1;
  if (!info.prob_column.empty()) {
    CONQUER_ASSIGN_OR_RETURN(size_t idx,
                             table.schema().GetColumnIndex(info.prob_column));
    prob_col = static_cast<int>(idx);
  }
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    if (c == id_col || static_cast<int>(c) == prob_col) continue;
    cols.push_back(c);
  }
  return cols;
}

}  // namespace

Result<std::vector<TupleProbability>> AssignProbabilitiesWithDistance(
    Table* table, const DirtyTableInfo& info,
    const TupleDistanceMeasure& measure, const AssignerOptions& options) {
  if (info.prob_column.empty()) {
    return Status::InvalidArgument(
        "table '" + info.table_name +
        "' has no probability column to assign into");
  }
  CONQUER_ASSIGN_OR_RETURN(size_t id_col,
                           table->schema().GetColumnIndex(info.id_column));
  CONQUER_ASSIGN_OR_RETURN(size_t prob_col,
                           table->schema().GetColumnIndex(info.prob_column));
  CONQUER_ASSIGN_OR_RETURN(std::vector<size_t> attrs,
                           ResolveAttributeColumns(*table, info, options));

  std::unordered_map<Value, std::vector<size_t>, ValueHash> clusters;
  std::vector<Value> order;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    Value id = table->ValueAt(r, id_col);
    auto [it, inserted] = clusters.try_emplace(id);
    if (inserted) order.push_back(std::move(id));
    it->second.push_back(r);
  }

  std::vector<TupleProbability> out(table->num_rows());
  for (const Value& id : order) {
    const std::vector<size_t>& members = clusters.at(id);
    size_t n = members.size();
    if (n == 1) {
      out[members[0]] = {members[0], 0.0, 1.0, 1.0};
      table->SetValue(members[0], prob_col, Value::Double(1.0));
      continue;
    }
    // Pairwise distances; representative = medoid.
    std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        d[i][j] = d[j][i] =
            measure.Distance(*table, members[i], members[j], attrs);
      }
    }
    size_t medoid = 0;
    double best_total = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      double total = 0.0;
      for (size_t j = 0; j < n; ++j) total += d[i][j];
      if (total < best_total) {
        best_total = total;
        medoid = i;
      }
    }
    double s_sum = 0.0;
    for (size_t i = 0; i < n; ++i) s_sum += d[i][medoid];
    for (size_t i = 0; i < n; ++i) {
      size_t r = members[i];
      double sim, prob;
      if (s_sum <= kZeroDistanceEpsilon) {
        sim = 1.0;
        prob = 1.0 / static_cast<double>(n);
      } else {
        sim = 1.0 - d[i][medoid] / s_sum;
        prob = sim / static_cast<double>(n - 1);
      }
      out[r] = {r, d[i][medoid], sim, prob};
      table->SetValue(r, prob_col, Value::Double(prob));
    }
  }
  return out;
}

}  // namespace conquer
