#include "storage/histogram.h"

#include <algorithm>
#include <cmath>

namespace conquer {

Histogram Histogram::Build(std::vector<double> values, size_t max_buckets) {
  Histogram h;
  values.erase(std::remove_if(values.begin(), values.end(),
                              [](double d) { return std::isnan(d); }),
               values.end());
  if (values.empty() || max_buckets == 0) return h;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  const size_t depth = (n + max_buckets - 1) / max_buckets;
  size_t i = 0;
  while (i < n) {
    size_t end = std::min(n - 1, i + depth - 1);
    // Never split a value across buckets: boundaries stay exact.
    while (end + 1 < n && values[end + 1] == values[end]) ++end;
    Bucket b;
    b.lower = values[i];
    b.upper = values[end];
    b.count = end - i + 1;
    b.distinct = 1;
    for (size_t k = i + 1; k <= end; ++k) {
      if (values[k] != values[k - 1]) ++b.distinct;
    }
    h.buckets_.push_back(b);
    i = end + 1;
  }
  h.total_ = n;
  return h;
}

uint64_t Histogram::PrefixCount(size_t b) const {
  uint64_t acc = 0;
  for (size_t i = 0; i < b; ++i) acc += buckets_[i].count;
  return acc;
}

// Both range estimates interpolate `frac * (count - eq)` — the mass of the
// bucket *excluding* the probe value's own estimated multiplicity — and add
// the equality mass back only for <=. This keeps the boundaries exact in
// both directions: Less(lower) == prefix, LessEqual(upper) == prefix+count.

double Histogram::EstimateLessEqual(double x) const {
  double acc = 0.0;
  for (const Bucket& b : buckets_) {
    if (x >= b.upper) {
      acc += static_cast<double>(b.count);
      continue;
    }
    if (x < b.lower) break;
    const double eq = static_cast<double>(b.count) /
                      static_cast<double>(std::max<uint64_t>(1, b.distinct));
    const double span = b.upper - b.lower;
    const double frac = span > 0.0 ? (x - b.lower) / span : 0.0;
    acc += eq + frac * (static_cast<double>(b.count) - eq);
    break;
  }
  return acc;
}

double Histogram::EstimateLess(double x) const {
  double acc = 0.0;
  for (const Bucket& b : buckets_) {
    if (x > b.upper) {
      acc += static_cast<double>(b.count);
      continue;
    }
    if (x <= b.lower) break;
    const double eq = static_cast<double>(b.count) /
                      static_cast<double>(std::max<uint64_t>(1, b.distinct));
    const double span = b.upper - b.lower;
    const double frac = span > 0.0 ? (x - b.lower) / span : 1.0;
    acc += frac * (static_cast<double>(b.count) - eq);
    break;
  }
  return acc;
}

double Histogram::EstimateEqual(double x) const {
  for (const Bucket& b : buckets_) {
    if (x < b.lower) break;
    if (x <= b.upper) {
      return static_cast<double>(b.count) /
             static_cast<double>(std::max<uint64_t>(1, b.distinct));
    }
  }
  return 0.0;
}

}  // namespace conquer
