#include "storage/segment.h"

#include <fcntl.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/str_util.h"

namespace conquer {

namespace {

constexpr char kSegmentMagic[8] = {'C', 'Q', 'S', 'E', 'G', '0', '0', '1'};
constexpr size_t kFooterSize = 8 + 8 + sizeof(kSegmentMagic);

// Physical storage class of a column (mirrors chunk.cc's layout keying).
enum class Phys : uint8_t { kFixed = 0, kDouble = 1, kCode = 2 };

Phys PhysOf(DataType t) {
  switch (t) {
    case DataType::kDouble:
      return Phys::kDouble;
    case DataType::kString:
      return Phys::kCode;
    default:
      return Phys::kFixed;
  }
}

void PutRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

void PutU8(std::string* out, uint8_t v) { PutRaw(out, &v, 1); }
void PutU32(std::string* out, uint32_t v) { PutRaw(out, &v, sizeof(v)); }
void PutU64(std::string* out, uint64_t v) { PutRaw(out, &v, sizeof(v)); }

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  PutRaw(out, s.data(), s.size());
}

/// Bounds-checked cursor over a serialized buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status Read(void* out, size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::InvalidArgument("segment data truncated");
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status ReadU8(uint8_t* v) { return Read(v, 1); }
  Status ReadU32(uint32_t* v) { return Read(v, sizeof(*v)); }
  Status ReadU64(uint64_t* v) { return Read(v, sizeof(*v)); }

  Status ReadString(std::string_view* s) {
    uint32_t len = 0;
    CONQUER_RETURN_NOT_OK(ReadU32(&len));
    if (pos_ + len > data_.size()) {
      return Status::InvalidArgument("segment string truncated");
    }
    *s = data_.substr(pos_, len);
    pos_ += len;
    return Status::OK();
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// Zone-map value tags (doubles round-trip as raw bits).
enum class ValueTag : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kDate = 4,
  kString = 5,
};

void PutValue(std::string* out, const Value& v) {
  if (v.is_null()) {
    PutU8(out, static_cast<uint8_t>(ValueTag::kNull));
    return;
  }
  switch (v.type()) {
    case DataType::kBool:
      PutU8(out, static_cast<uint8_t>(ValueTag::kBool));
      PutU8(out, v.bool_value() ? 1 : 0);
      return;
    case DataType::kInt64:
      PutU8(out, static_cast<uint8_t>(ValueTag::kInt64));
      PutU64(out, static_cast<uint64_t>(v.int_value()));
      return;
    case DataType::kDouble: {
      PutU8(out, static_cast<uint8_t>(ValueTag::kDouble));
      double d = v.double_value();
      PutRaw(out, &d, sizeof(d));
      return;
    }
    case DataType::kDate:
      PutU8(out, static_cast<uint8_t>(ValueTag::kDate));
      PutU64(out, static_cast<uint64_t>(v.int_value()));
      return;
    case DataType::kString:
      PutU8(out, static_cast<uint8_t>(ValueTag::kString));
      PutString(out, v.string_value());
      return;
    default:
      PutU8(out, static_cast<uint8_t>(ValueTag::kNull));
      return;
  }
}

/// Strings re-intern through `dict` when available, so zone min/max come
/// back as interned Values just as AppendRow would have produced them.
Status GetValue(ByteReader* r, StringDictionary* dict, Value* out) {
  uint8_t tag = 0;
  CONQUER_RETURN_NOT_OK(r->ReadU8(&tag));
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::kNull:
      *out = Value::Null();
      return Status::OK();
    case ValueTag::kBool: {
      uint8_t b = 0;
      CONQUER_RETURN_NOT_OK(r->ReadU8(&b));
      *out = Value::Bool(b != 0);
      return Status::OK();
    }
    case ValueTag::kInt64: {
      uint64_t v = 0;
      CONQUER_RETURN_NOT_OK(r->ReadU64(&v));
      *out = Value::Int(static_cast<int64_t>(v));
      return Status::OK();
    }
    case ValueTag::kDouble: {
      double d = 0;
      CONQUER_RETURN_NOT_OK(r->Read(&d, sizeof(d)));
      *out = Value::Double(d);
      return Status::OK();
    }
    case ValueTag::kDate: {
      uint64_t v = 0;
      CONQUER_RETURN_NOT_OK(r->ReadU64(&v));
      *out = Value::Date(static_cast<int64_t>(v));
      return Status::OK();
    }
    case ValueTag::kString: {
      std::string_view s;
      CONQUER_RETURN_NOT_OK(r->ReadString(&s));
      *out = dict != nullptr ? dict->InternValue(s) : Value::String(std::string(s));
      return Status::OK();
    }
  }
  return Status::InvalidArgument(
      StringPrintf("unknown segment value tag %u", tag));
}

Status ReadBackingPayload(const ChunkBacking& backing, std::string* buf) {
  buf->resize(backing.length);
  return backing.file->ReadAt(backing.offset, buf->data(), backing.length);
}

}  // namespace

// ------------------------------------------------------------- SegmentFile

Result<std::shared_ptr<SegmentFile>> SegmentFile::Create(
    const std::string& path, bool unlink_immediately) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::InvalidArgument(
        StringPrintf("cannot create segment file '%s': %s", path.c_str(),
                     std::strerror(errno)));
  }
  if (unlink_immediately) ::unlink(path.c_str());
  return std::shared_ptr<SegmentFile>(new SegmentFile(fd, path, 0));
}

Result<std::shared_ptr<SegmentFile>> SegmentFile::OpenReadOnly(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound(
        StringPrintf("cannot open segment file '%s': %s", path.c_str(),
                     std::strerror(errno)));
  }
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Status::InvalidArgument("cannot size segment file '" + path + "'");
  }
  return std::shared_ptr<SegmentFile>(
      new SegmentFile(fd, path, static_cast<uint64_t>(end)));
}

SegmentFile::~SegmentFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status SegmentFile::ReadAt(uint64_t offset, void* buf, size_t n) const {
  char* out = static_cast<char*>(buf);
  size_t done = 0;
  while (done < n) {
    ssize_t got = ::pread(fd_, out + done, n - done,
                          static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StringPrintf("pread of '%s' failed: %s", path_.c_str(),
                       std::strerror(errno)));
    }
    if (got == 0) {
      return Status::Internal("short read from segment file '" + path_ + "'");
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

Status SegmentFile::WriteAt(uint64_t offset, const void* data, size_t n) {
  const char* in = static_cast<const char*>(data);
  size_t done = 0;
  while (done < n) {
    ssize_t put = ::pwrite(fd_, in + done, n - done,
                           static_cast<off_t>(offset + done));
    if (put < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StringPrintf("pwrite to '%s' failed: %s", path_.c_str(),
                       std::strerror(errno)));
    }
    done += static_cast<size_t>(put);
  }
  return Status::OK();
}

Status SegmentFile::Append(const void* data, size_t n, uint64_t* offset) {
  uint64_t off = 0;
  Reserve(n, &off);
  CONQUER_RETURN_NOT_OK(WriteAt(off, data, n));
  if (offset != nullptr) *offset = off;
  return Status::OK();
}

Status SegmentFile::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::Internal(StringPrintf("fsync of '%s' failed: %s",
                                         path_.c_str(), std::strerror(errno)));
  }
  return Status::OK();
}

// ------------------------------------------------------------ SegmentCodec

void SegmentCodec::SerializePayload(const Chunk& chunk, std::string* out) {
  PutU32(out, static_cast<uint32_t>(chunk.num_rows_));
  for (const ColumnVector& cv : chunk.columns_) {
    const Phys phys = PhysOf(cv.type_);
    PutU8(out, static_cast<uint8_t>(phys));
    const size_t n = chunk.num_rows_;
    switch (phys) {
      case Phys::kFixed:
        assert(cv.fixed_.size() == n);
        PutRaw(out, cv.fixed_.data(), n * sizeof(int64_t));
        break;
      case Phys::kDouble:
        assert(cv.dbl_.size() == n);
        PutRaw(out, cv.dbl_.data(), n * sizeof(double));
        break;
      case Phys::kCode:
        assert(cv.codes_.size() == n);
        PutRaw(out, cv.codes_.data(), n * sizeof(uint32_t));
        break;
    }
    assert(cv.nulls_.size() == n);
    PutRaw(out, cv.nulls_.data(), n);
  }
}

Status SegmentCodec::DeserializePayload(std::string_view data, Chunk* chunk) {
  ByteReader r(data);
  uint32_t n = 0;
  CONQUER_RETURN_NOT_OK(r.ReadU32(&n));
  if (n != chunk->num_rows_) {
    return Status::InvalidArgument(
        StringPrintf("chunk payload row count %u does not match resident "
                     "metadata (%zu rows)",
                     n, chunk->num_rows_));
  }
  for (ColumnVector& cv : chunk->columns_) {
    const Phys expected = PhysOf(cv.type_);
    uint8_t phys = 0;
    CONQUER_RETURN_NOT_OK(r.ReadU8(&phys));
    if (phys != static_cast<uint8_t>(expected)) {
      return Status::InvalidArgument("chunk payload column layout mismatch");
    }
    switch (expected) {
      case Phys::kFixed:
        cv.fixed_.resize(n);
        CONQUER_RETURN_NOT_OK(r.Read(cv.fixed_.data(), n * sizeof(int64_t)));
        break;
      case Phys::kDouble:
        cv.dbl_.resize(n);
        CONQUER_RETURN_NOT_OK(r.Read(cv.dbl_.data(), n * sizeof(double)));
        break;
      case Phys::kCode:
        cv.codes_.resize(n);
        CONQUER_RETURN_NOT_OK(r.Read(cv.codes_.data(), n * sizeof(uint32_t)));
        break;
    }
    cv.nulls_.resize(n);
    CONQUER_RETURN_NOT_OK(r.Read(cv.nulls_.data(), n));
  }
  chunk->payload_resident_ = true;
  chunk->payload_dirty_ = false;
  return Status::OK();
}

void SegmentCodec::ReleasePayload(Chunk* chunk) {
  for (ColumnVector& cv : chunk->columns_) {
    std::vector<int64_t>().swap(cv.fixed_);
    std::vector<double>().swap(cv.dbl_);
    std::vector<uint32_t>().swap(cv.codes_);
    std::vector<uint8_t>().swap(cv.nulls_);
  }
  chunk->payload_resident_ = false;
}

void SegmentCodec::InitEvicted(Chunk* chunk, size_t num_rows,
                               ChunkBacking backing) {
  assert(chunk->num_rows_ == 0);
  chunk->num_rows_ = num_rows;
  chunk->backing_ = std::move(backing);
  chunk->payload_resident_ = false;
  chunk->payload_dirty_ = false;
}

void SegmentCodec::Rebind(Chunk* chunk, ChunkBacking backing) {
  assert(chunk->pool_ == nullptr);
  chunk->backing_ = std::move(backing);
  chunk->payload_dirty_ = false;
}

void SegmentCodec::SetZone(Chunk* chunk, size_t col, ZoneMap zone) {
  chunk->zones_[col] = std::move(zone);
}

void SegmentCodec::SetVersions(Chunk* chunk, std::vector<uint64_t> begin,
                               std::vector<uint64_t> end) {
  assert(begin.size() == chunk->num_rows_ && end.size() == chunk->num_rows_);
  chunk->begin_versions_ = std::move(begin);
  chunk->end_versions_ = std::move(end);
}

// ----------------------------------------------------- table segment files

namespace {

struct Extent {
  uint64_t offset;
  uint64_t length;
};

Status WriteSegmentBody(const Table& table, SegmentFile* file,
                        std::vector<Extent>* out_extents) {
  CONQUER_RETURN_NOT_OK(
      file->Append(kSegmentMagic, sizeof(kSegmentMagic), nullptr));

  std::vector<Extent>& extents = *out_extents;
  extents.reserve(table.num_chunks());
  std::string buf;
  for (size_t i = 0; i < table.num_chunks(); ++i) {
    // Pin one chunk at a time: saving a budgeted database never needs more
    // than one payload resident beyond the steady state.
    ChunkPin pin = table.PinChunk(i);
    buf.clear();
    SegmentCodec::SerializePayload(*pin.get(), &buf);
    uint64_t off = 0;
    CONQUER_RETURN_NOT_OK(file->Append(buf.data(), buf.size(), &off));
    extents.push_back({off, buf.size()});
  }

  const size_t num_cols = table.schema().num_columns();
  std::string meta;
  PutU64(&meta, table.committed_version());
  PutU64(&meta, table.chunk_capacity());
  PutU64(&meta, table.num_rows());
  PutU32(&meta, static_cast<uint32_t>(num_cols));
  for (size_t c = 0; c < num_cols; ++c) {
    const StringDictionary* dict = table.dictionary(c);
    if (dict == nullptr) {
      PutU8(&meta, 0);
      continue;
    }
    PutU8(&meta, 1);
    // Entries in code order, so re-interning at load reproduces every code.
    const uint32_t n = static_cast<uint32_t>(dict->size());
    PutU64(&meta, n);
    for (uint32_t code = 0; code < n; ++code) {
      PutString(&meta, *dict->StringAt(code));
    }
  }
  PutU64(&meta, table.num_chunks());
  for (size_t i = 0; i < table.num_chunks(); ++i) {
    const Chunk& ch = table.chunk(i);
    PutU64(&meta, extents[i].offset);
    PutU64(&meta, extents[i].length);
    PutU32(&meta, static_cast<uint32_t>(ch.num_rows()));
    for (size_t c = 0; c < num_cols; ++c) {
      const ZoneMap& z = ch.zone(c);
      PutValue(&meta, z.min);
      PutValue(&meta, z.max);
      PutU32(&meta, z.null_count);
      PutU8(&meta, z.all_distinct ? 1 : 0);
    }
    PutU8(&meta, ch.has_versions() ? 1 : 0);
    if (ch.has_versions()) {
      for (size_t r = 0; r < ch.num_rows(); ++r) {
        PutU64(&meta, ch.begin_version(r));
      }
      for (size_t r = 0; r < ch.num_rows(); ++r) {
        PutU64(&meta, ch.end_version(r));
      }
    }
  }

  uint64_t meta_offset = 0;
  CONQUER_RETURN_NOT_OK(file->Append(meta.data(), meta.size(), &meta_offset));
  std::string footer;
  PutU64(&footer, meta_offset);
  PutU64(&footer, meta.size());
  PutRaw(&footer, kSegmentMagic, sizeof(kSegmentMagic));
  CONQUER_RETURN_NOT_OK(file->Append(footer.data(), footer.size(), nullptr));
  return file->Sync();
}

}  // namespace

Status WriteTableSegment(Table* table, const std::string& path) {
  // Never open `path` itself for writing: after LoadDatabase the table's
  // evicted chunks read their payloads from that very file, so truncating
  // it in place would destroy the data before the pin loop below faults it
  // in — and a failed save would leave nothing behind. Write a sibling temp
  // file and rename() it over the target only once the footer is durable;
  // chunks still faulting from the replaced file keep reading the old inode
  // through their open handle.
  const std::string tmp = path + ".tmp";
  std::vector<Extent> extents;
  Status st;
  {
    CONQUER_ASSIGN_OR_RETURN(std::shared_ptr<SegmentFile> file,
                             SegmentFile::Create(tmp));
    st = WriteSegmentBody(*table, file.get(), &extents);
  }
  if (st.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Status::Internal(StringPrintf("cannot rename '%s' over '%s': %s",
                                       tmp.c_str(), path.c_str(),
                                       std::strerror(errno)));
  }
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }

  // Checkpoint: every chunk's payload was just written verbatim, so re-point
  // the backings at the new file and mark everything clean. This releases
  // the replaced inode (otherwise held alive by still-evicted chunks — a
  // full file's worth of dead disk) and any spill extents. Best-effort: if
  // the reopen fails the save already succeeded and the old handles stay
  // valid. Safe because saves run without concurrent writers (the same
  // exclusivity the unsynchronized metadata walk above relies on); a
  // concurrent reader mid-fault is waited out by RebindBacking.
  Result<std::shared_ptr<SegmentFile>> reopened =
      SegmentFile::OpenReadOnly(path);
  if (!reopened.ok()) return Status::OK();
  const std::shared_ptr<SegmentFile>& file = reopened.value();
  BufferPool* pool = table->buffer_pool();
  for (size_t i = 0; i < table->num_chunks() && i < extents.size(); ++i) {
    Chunk* ch = table->mutable_chunk(i);
    ChunkBacking backing{file, extents[i].offset, extents[i].length};
    if (pool != nullptr) {
      pool->RebindBacking(ch, std::move(backing));
    } else {
      SegmentCodec::Rebind(ch, std::move(backing));
    }
  }
  return Status::OK();
}

Status LoadTableSegment(Table* table, const std::string& path) {
  if (table->num_rows() != 0) {
    return Status::InvalidArgument("LoadTableSegment requires an empty table");
  }
  CONQUER_ASSIGN_OR_RETURN(std::shared_ptr<SegmentFile> file,
                           SegmentFile::OpenReadOnly(path));
  if (file->size() < sizeof(kSegmentMagic) + kFooterSize) {
    return Status::InvalidArgument("segment file '" + path + "' truncated");
  }
  char footer_buf[kFooterSize];
  CONQUER_RETURN_NOT_OK(
      file->ReadAt(file->size() - kFooterSize, footer_buf, kFooterSize));
  if (std::memcmp(footer_buf + 16, kSegmentMagic, sizeof(kSegmentMagic)) !=
      0) {
    return Status::InvalidArgument("segment file '" + path +
                                   "' has a corrupt footer");
  }
  uint64_t meta_offset = 0, meta_length = 0;
  std::memcpy(&meta_offset, footer_buf, 8);
  std::memcpy(&meta_length, footer_buf + 8, 8);
  // Per-operand checks: a corrupt footer could make offset+length wrap
  // around u64 and slip past a summed comparison.
  if (meta_offset > file->size() ||
      meta_length > file->size() - meta_offset) {
    return Status::InvalidArgument("segment meta section out of bounds");
  }
  std::string meta(meta_length, '\0');
  CONQUER_RETURN_NOT_OK(file->ReadAt(meta_offset, meta.data(), meta_length));

  ByteReader r(meta);
  uint64_t committed_version = 0, chunk_capacity = 0, num_rows = 0;
  uint32_t num_cols = 0;
  CONQUER_RETURN_NOT_OK(r.ReadU64(&committed_version));
  CONQUER_RETURN_NOT_OK(r.ReadU64(&chunk_capacity));
  CONQUER_RETURN_NOT_OK(r.ReadU64(&num_rows));
  CONQUER_RETURN_NOT_OK(r.ReadU32(&num_cols));
  if (num_cols != table->schema().num_columns()) {
    return Status::InvalidArgument(StringPrintf(
        "segment has %u columns but table '%s' has %zu", num_cols,
        table->name().c_str(), table->schema().num_columns()));
  }
  for (size_t c = 0; c < num_cols; ++c) {
    uint8_t has_dict = 0;
    CONQUER_RETURN_NOT_OK(r.ReadU8(&has_dict));
    if (has_dict == 0) continue;
    StringDictionary* dict = table->mutable_dictionary(c);
    if (dict == nullptr) {
      return Status::InvalidArgument(
          "segment carries a dictionary for a non-string column");
    }
    uint64_t n = 0;
    CONQUER_RETURN_NOT_OK(r.ReadU64(&n));
    for (uint64_t i = 0; i < n; ++i) {
      std::string_view s;
      CONQUER_RETURN_NOT_OK(r.ReadString(&s));
      if (dict->Intern(s) != i) {
        return Status::InvalidArgument(
            "segment dictionary entries are not in code order");
      }
    }
  }

  uint64_t num_chunks = 0;
  CONQUER_RETURN_NOT_OK(r.ReadU64(&num_chunks));
  std::vector<std::unique_ptr<Chunk>> chunks;
  chunks.reserve(num_chunks);
  for (uint64_t i = 0; i < num_chunks; ++i) {
    uint64_t payload_offset = 0, payload_length = 0;
    uint32_t chunk_rows = 0;
    CONQUER_RETURN_NOT_OK(r.ReadU64(&payload_offset));
    CONQUER_RETURN_NOT_OK(r.ReadU64(&payload_length));
    CONQUER_RETURN_NOT_OK(r.ReadU32(&chunk_rows));
    auto ch = std::make_unique<Chunk>(&table->schema(),
                                      static_cast<size_t>(chunk_capacity));
    SegmentCodec::InitEvicted(ch.get(), chunk_rows,
                              {file, payload_offset, payload_length});
    for (size_t c = 0; c < num_cols; ++c) {
      ZoneMap z;
      StringDictionary* dict = table->mutable_dictionary(c);
      CONQUER_RETURN_NOT_OK(GetValue(&r, dict, &z.min));
      CONQUER_RETURN_NOT_OK(GetValue(&r, dict, &z.max));
      CONQUER_RETURN_NOT_OK(r.ReadU32(&z.null_count));
      uint8_t all_distinct = 0;
      CONQUER_RETURN_NOT_OK(r.ReadU8(&all_distinct));
      z.all_distinct = all_distinct != 0;
      SegmentCodec::SetZone(ch.get(), c, std::move(z));
    }
    uint8_t has_versions = 0;
    CONQUER_RETURN_NOT_OK(r.ReadU8(&has_versions));
    if (has_versions != 0) {
      std::vector<uint64_t> begin(chunk_rows), end(chunk_rows);
      CONQUER_RETURN_NOT_OK(
          r.Read(begin.data(), chunk_rows * sizeof(uint64_t)));
      CONQUER_RETURN_NOT_OK(r.Read(end.data(), chunk_rows * sizeof(uint64_t)));
      SegmentCodec::SetVersions(ch.get(), std::move(begin), std::move(end));
    }
    // Without a buffer pool there is nothing to fault payloads in later;
    // load them eagerly (the all-resident case).
    if (table->buffer_pool() == nullptr) {
      std::string buf;
      CONQUER_RETURN_NOT_OK(
          ReadBackingPayload({file, payload_offset, payload_length}, &buf));
      CONQUER_RETURN_NOT_OK(SegmentCodec::DeserializePayload(buf, ch.get()));
    }
    chunks.push_back(std::move(ch));
  }

  table->AdoptChunks(std::move(chunks), static_cast<size_t>(chunk_capacity),
                     static_cast<size_t>(num_rows), committed_version);
  return Status::OK();
}

}  // namespace conquer
