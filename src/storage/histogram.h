#ifndef CONQUER_STORAGE_HISTOGRAM_H_
#define CONQUER_STORAGE_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace conquer {

/// \brief Equi-depth histogram over one numeric column (int64/double/date/
/// bool columns; values are folded through Value::AsDouble).
///
/// Built by Table::AnalyzeStatistics from the full sorted value set: each
/// bucket holds ~n/buckets rows, with boundaries stretched so a single
/// value never straddles two buckets. Bucket boundaries therefore carry
/// exact cumulative counts — EstimateLessEqual(upper_bound) is exact — and
/// estimates inside a bucket interpolate linearly, bounding the error by
/// one bucket's depth.
///
/// Estimates return absolute row counts (of the non-null rows the build
/// saw); callers divide by total() for selectivity fractions.
class Histogram {
 public:
  struct Bucket {
    double lower;       ///< smallest value in the bucket
    double upper;       ///< largest value in the bucket
    uint64_t count;     ///< rows in [lower, upper]
    uint64_t distinct;  ///< distinct values in the bucket
  };

  Histogram() = default;

  /// Builds from the column's non-null values (consumed; order irrelevant).
  /// `max_buckets` caps the bucket count; fewer are used when the column
  /// has fewer distinct values. NaNs are dropped (no ordering position).
  static Histogram Build(std::vector<double> values, size_t max_buckets = 64);

  bool empty() const { return buckets_.empty(); }
  uint64_t total() const { return total_; }
  const std::vector<Bucket>& buckets() const { return buckets_; }

  /// Estimated rows with value < x (exact at bucket boundaries).
  double EstimateLess(double x) const;
  /// Estimated rows with value <= x (exact at bucket boundaries).
  double EstimateLessEqual(double x) const;
  /// Estimated rows with value == x (bucket count / bucket distinct).
  double EstimateEqual(double x) const;

  uint64_t MemoryBytes() const {
    return buckets_.capacity() * sizeof(Bucket);
  }

 private:
  /// Rows strictly below bucket `b` (cumulative prefix, exact).
  uint64_t PrefixCount(size_t b) const;

  std::vector<Bucket> buckets_;  ///< ascending, non-overlapping
  uint64_t total_ = 0;           ///< non-null rows at build time
};

}  // namespace conquer

#endif  // CONQUER_STORAGE_HISTOGRAM_H_
