#ifndef CONQUER_STORAGE_CHUNK_H_
#define CONQUER_STORAGE_CHUNK_H_

#include <cstdint>
#include <list>
#include <memory>
#include <vector>

#include "catalog/schema.h"
#include "storage/dictionary.h"
#include "types/value.h"

namespace conquer {

class BufferPool;
class SegmentCodec;
class SegmentFile;

/// \brief Where an evicted chunk's column payload lives on disk.
///
/// Points into a shared segment file: either the table's persisted `.seg`
/// file (evicted-clean chunks after LoadDatabase) or the buffer pool's
/// anonymous spill file (dirty chunks written back under memory pressure).
struct ChunkBacking {
  std::shared_ptr<SegmentFile> file;  ///< null = payload exists only in RAM
  uint64_t offset = 0;                ///< byte offset of the payload block
  uint64_t length = 0;                ///< serialized payload size in bytes
  /// Allocated extent size (>= length). Spill extents keep their allocated
  /// size across re-spills so a shrinking payload can be rewritten in place;
  /// 0 means "exactly length" (segment-file extents are packed).
  uint64_t alloc = 0;

  bool valid() const { return file != nullptr; }
  uint64_t alloc_length() const { return alloc != 0 ? alloc : length; }
};

/// \brief One tuple: a vector of values aligned with a schema.
using Row = std::vector<Value>;

/// \brief End-version stamp of a row version that has not been deleted.
inline constexpr uint64_t kVersionMax = UINT64_MAX;

/// \brief Per-chunk, per-column statistics used for scan-time skipping.
///
/// min/max are maintained incrementally on append and only *widened* by
/// in-place writes (Table::SetValue), so they are always a superset of the
/// live value range — pruning against them can never drop a matching chunk.
/// null_count is kept exact. all_distinct is computed by AnalyzeStatistics
/// and cleared pessimistically by any in-place write.
struct ZoneMap {
  Value min;  ///< NULL until the chunk holds a non-null value
  Value max;
  uint32_t null_count = 0;
  bool all_distinct = false;

  bool has_values() const { return !min.is_null(); }

  /// Folds one non-null stored value into min/max.
  void Widen(const Value& v) {
    if (min.is_null() || v.TotalCompare(min) < 0) min = v;
    if (max.is_null() || v.TotalCompare(max) > 0) max = v;
  }
};

/// \brief One column of one chunk: a contiguous typed vector.
///
/// The physical representation is keyed by the schema column type:
/// int64/date/bool share an int64 array, doubles get a double array, and
/// strings store dense dictionary codes. A parallel byte array marks NULLs
/// (the slot in the typed array is a zero placeholder).
class ColumnVector {
 public:
  explicit ColumnVector(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return nulls_.size(); }
  bool is_null(size_t i) const { return nulls_[i] != 0; }

  const int64_t* fixed_data() const { return fixed_.data(); }
  const double* double_data() const { return dbl_.data(); }
  const uint32_t* code_data() const { return codes_.data(); }
  const uint8_t* null_data() const { return nulls_.data(); }

  void Reserve(size_t n);

  /// Appends `v`, interning strings through `dict` and widening INT64 into
  /// DOUBLE storage; returns the normalized value as stored (what a reader
  /// will get back), so the caller can fold it into the zone map.
  Value Append(const Value& v, StringDictionary* dict);

  /// Overwrites position `i` (same normalization as Append).
  Value Set(size_t i, const Value& v, StringDictionary* dict);

  /// The stored value at `i`; strings come back interned through `dict`.
  Value GetValue(size_t i, const StringDictionary* dict) const;

  uint64_t MemoryBytes() const {
    return fixed_.capacity() * sizeof(int64_t) +
           dbl_.capacity() * sizeof(double) +
           codes_.capacity() * sizeof(uint32_t) + nulls_.capacity();
  }

 private:
  friend class SegmentCodec;  ///< raw (de)serialization and payload release

  DataType type_;
  std::vector<int64_t> fixed_;   ///< kInt64 / kDate / kBool payloads
  std::vector<double> dbl_;      ///< kDouble payloads
  std::vector<uint32_t> codes_;  ///< kString dictionary codes
  std::vector<uint8_t> nulls_;   ///< 1 = NULL (payload slot is a placeholder)
};

/// \brief A fixed-capacity horizontal partition of a table.
///
/// Columns are stored as independent ColumnVectors; every column of a chunk
/// has exactly num_rows() entries. Each column carries a ZoneMap maintained
/// on append, which scans consult to skip the whole chunk.
class Chunk {
 public:
  Chunk(const TableSchema* schema, size_t capacity);
  /// Deregisters from the owning buffer pool, if any.
  ~Chunk();
  Chunk(const Chunk&) = delete;
  Chunk& operator=(const Chunk&) = delete;

  size_t capacity() const { return capacity_; }
  size_t num_rows() const { return num_rows_; }
  bool full() const { return num_rows_ >= capacity_; }
  size_t num_columns() const { return columns_.size(); }

  const ColumnVector& column(size_t c) const { return columns_[c]; }
  const ZoneMap& zone(size_t c) const { return zones_[c]; }

  void Reserve(size_t rows);

  /// Appends one row (caller guarantees arity/types and !full()); interns
  /// strings through the per-column dictionaries and updates zone maps.
  void AppendRow(const Row& row,
                 const std::vector<std::unique_ptr<StringDictionary>>& dicts);

  /// Overwrites one cell, keeping null_count exact, widening min/max and
  /// clearing all_distinct (AnalyzeStatistics restores exact zones).
  void SetValue(size_t row, size_t col, const Value& v, StringDictionary* dict);

  Value GetValue(size_t row, size_t col, const StringDictionary* dict) const {
    return columns_[col].GetValue(row, dict);
  }

  /// Materializes one row in table-local layout into `*out` (resized to the
  /// chunk arity).
  void MaterializeRow(
      size_t row, Row* out,
      const std::vector<std::unique_ptr<StringDictionary>>& dicts) const;

  /// Recomputes every zone map exactly from the stored values (min/max,
  /// null_count, all_distinct). Called by Table::AnalyzeStatistics.
  void RecomputeZones(
      const std::vector<std::unique_ptr<StringDictionary>>& dicts);

  // ---- MVCC row-version stamps. ----
  //
  // Version vectors are allocated lazily by the first stamped write; a chunk
  // without them holds only rows visible at every snapshot (begin 0, end
  // kVersionMax). Zone maps and dictionaries keep covering dead versions, so
  // pruning stays a conservative superset of any snapshot's visible values.

  bool has_versions() const { return !begin_versions_.empty(); }

  /// Allocates the version vectors, stamping existing rows [0, kVersionMax).
  void EnsureVersions();

  /// Stamps the row's begin version (row becomes visible at `v` and later).
  void StampBegin(size_t row, uint64_t v);

  /// Stamps the row's end version (row is dead at `v` and later).
  void StampEnd(size_t row, uint64_t v);

  uint64_t begin_version(size_t row) const {
    return begin_versions_.empty() ? 0 : begin_versions_[row];
  }
  uint64_t end_version(size_t row) const {
    return end_versions_.empty() ? kVersionMax : end_versions_[row];
  }

  /// True when the row version is live in the given snapshot.
  bool RowVisible(size_t row, uint64_t snapshot) const {
    return begin_version(row) <= snapshot && snapshot < end_version(row);
  }

  uint64_t MemoryBytes() const;

  // ---- Out-of-core residency (see storage/buffer_pool.h). ----
  //
  // Only the column payloads (typed arrays + null bytes) are evictable;
  // num_rows, capacity, zone maps and MVCC stamps always stay resident so
  // pruning and visibility checks never fault I/O. All residency fields are
  // guarded by the owning pool's mutex; a chunk with no pool is permanently
  // resident. Callers must hold a ChunkPin before touching column data of a
  // pool-managed chunk.

  /// True when the column payloads are in memory (pool mutex required for an
  /// authoritative answer; lock-free reads are for tests/diagnostics only).
  bool payload_resident() const { return payload_resident_; }

  /// Bytes of column payload (what eviction frees and the budget charges).
  uint64_t PayloadBytes() const {
    uint64_t bytes = 0;
    for (const ColumnVector& cv : columns_) bytes += cv.MemoryBytes();
    return bytes;
  }

 private:
  friend class BufferPool;    ///< pin counts, LRU hooks, residency flips
  friend class SegmentCodec;  ///< raw (de)serialization and payload release

  size_t capacity_;
  size_t num_rows_ = 0;
  std::vector<ColumnVector> columns_;
  std::vector<ZoneMap> zones_;
  std::vector<uint64_t> begin_versions_;  ///< empty = all rows begin at 0
  std::vector<uint64_t> end_versions_;    ///< empty = all rows end at kVersionMax

  // Residency bookkeeping (owned by the BufferPool; inert without one).
  BufferPool* pool_ = nullptr;
  bool payload_resident_ = true;
  bool payload_dirty_ = true;  ///< payload diverged from backing_ (or none)
  /// A fault or spill is running its file I/O outside the pool mutex; the
  /// chunk's payload and residency flags are owned by that operation until
  /// it clears the flag (waiters block on the pool's io condvar).
  bool io_busy_ = false;
  uint32_t pin_count_ = 0;
  uint64_t accounted_bytes_ = 0;  ///< bytes currently charged to the budget
  bool in_lru_ = false;
  std::list<Chunk*>::iterator lru_it_{};
  ChunkBacking backing_;
};

}  // namespace conquer

#endif  // CONQUER_STORAGE_CHUNK_H_
