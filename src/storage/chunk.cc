#include "storage/chunk.h"

#include <cassert>
#include <unordered_set>

#include "storage/buffer_pool.h"

namespace conquer {

namespace {
/// Physical storage class of a schema column type.
enum class Phys { kFixed, kDouble, kCode };

Phys PhysOf(DataType t) {
  switch (t) {
    case DataType::kDouble:
      return Phys::kDouble;
    case DataType::kString:
      return Phys::kCode;
    default:
      return Phys::kFixed;
  }
}
}  // namespace

void ColumnVector::Reserve(size_t n) {
  switch (PhysOf(type_)) {
    case Phys::kFixed:
      fixed_.reserve(n);
      break;
    case Phys::kDouble:
      dbl_.reserve(n);
      break;
    case Phys::kCode:
      codes_.reserve(n);
      break;
  }
  nulls_.reserve(n);
}

Value ColumnVector::Append(const Value& v, StringDictionary* dict) {
  if (v.is_null()) {
    switch (PhysOf(type_)) {
      case Phys::kFixed:
        fixed_.push_back(0);
        break;
      case Phys::kDouble:
        dbl_.push_back(0.0);
        break;
      case Phys::kCode:
        codes_.push_back(StringDictionary::kInvalidCode);
        break;
    }
    nulls_.push_back(1);
    return Value::Null();
  }
  nulls_.push_back(0);
  switch (PhysOf(type_)) {
    case Phys::kDouble: {
      // Numeric widening: INT64 values land in DOUBLE columns as doubles,
      // so readers always see a uniform representation.
      double d = v.AsDouble();
      dbl_.push_back(d);
      return Value::Double(d);
    }
    case Phys::kCode: {
      assert(v.type() == DataType::kString && dict != nullptr);
      uint32_t code = dict->Intern(v.string_value());
      codes_.push_back(code);
      return dict->ValueAt(code);
    }
    case Phys::kFixed: {
      int64_t raw;
      if (type_ == DataType::kBool) {
        raw = v.bool_value() ? 1 : 0;
      } else {
        assert(v.type() == DataType::kInt64 || v.type() == DataType::kDate);
        raw = v.int_value();
      }
      fixed_.push_back(raw);
      return GetValue(nulls_.size() - 1, nullptr);
    }
  }
  return Value::Null();  // unreachable
}

Value ColumnVector::Set(size_t i, const Value& v, StringDictionary* dict) {
  assert(i < size());
  if (v.is_null()) {
    nulls_[i] = 1;
    return Value::Null();
  }
  nulls_[i] = 0;
  switch (PhysOf(type_)) {
    case Phys::kDouble: {
      double d = v.AsDouble();
      dbl_[i] = d;
      return Value::Double(d);
    }
    case Phys::kCode: {
      assert(v.type() == DataType::kString && dict != nullptr);
      uint32_t code = dict->Intern(v.string_value());
      codes_[i] = code;
      return dict->ValueAt(code);
    }
    case Phys::kFixed: {
      if (type_ == DataType::kBool) {
        fixed_[i] = v.bool_value() ? 1 : 0;
      } else {
        fixed_[i] = v.int_value();
      }
      return GetValue(i, nullptr);
    }
  }
  return Value::Null();  // unreachable
}

Value ColumnVector::GetValue(size_t i, const StringDictionary* dict) const {
  if (nulls_[i] != 0) return Value::Null();
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(fixed_[i] != 0);
    case DataType::kInt64:
      return Value::Int(fixed_[i]);
    case DataType::kDate:
      return Value::Date(fixed_[i]);
    case DataType::kDouble:
      return Value::Double(dbl_[i]);
    case DataType::kString:
      assert(dict != nullptr);
      return dict->ValueAt(codes_[i]);
    default:
      return Value::Null();
  }
}

Chunk::Chunk(const TableSchema* schema, size_t capacity) : capacity_(capacity) {
  columns_.reserve(schema->num_columns());
  for (size_t c = 0; c < schema->num_columns(); ++c) {
    columns_.emplace_back(schema->column(c).type);
  }
  zones_.resize(schema->num_columns());
}

Chunk::~Chunk() {
  if (pool_ != nullptr) pool_->Unregister(this);
}

void Chunk::Reserve(size_t rows) {
  for (ColumnVector& cv : columns_) cv.Reserve(rows);
}

void Chunk::AppendRow(
    const Row& row,
    const std::vector<std::unique_ptr<StringDictionary>>& dicts) {
  assert(!full() && row.size() == columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    Value stored = columns_[c].Append(row[c], dicts[c].get());
    if (stored.is_null()) {
      ++zones_[c].null_count;
    } else {
      zones_[c].Widen(stored);
      // The appended value may duplicate an existing one; a stale
      // all-distinct flag would let equality scans stop at the first match
      // and miss this row. AnalyzeStatistics restores the flag.
      zones_[c].all_distinct = false;
    }
  }
  if (has_versions()) {
    begin_versions_.push_back(0);
    end_versions_.push_back(kVersionMax);
  }
  ++num_rows_;
}

void Chunk::EnsureVersions() {
  if (has_versions()) return;
  begin_versions_.assign(num_rows_, 0);
  end_versions_.assign(num_rows_, kVersionMax);
}

void Chunk::StampBegin(size_t row, uint64_t v) {
  EnsureVersions();
  assert(row < num_rows_);
  begin_versions_[row] = v;
}

void Chunk::StampEnd(size_t row, uint64_t v) {
  EnsureVersions();
  assert(row < num_rows_);
  end_versions_[row] = v;
}

void Chunk::SetValue(size_t row, size_t col, const Value& v,
                     StringDictionary* dict) {
  ZoneMap& z = zones_[col];
  const bool was_null = columns_[col].is_null(row);
  Value stored = columns_[col].Set(row, v, dict);
  if (stored.is_null()) {
    if (!was_null) ++z.null_count;
  } else {
    if (was_null) --z.null_count;
    // The old value may have been the extremum, so min/max only widen here;
    // AnalyzeStatistics tightens them again.
    z.Widen(stored);
  }
  z.all_distinct = false;
}

void Chunk::MaterializeRow(
    size_t row, Row* out,
    const std::vector<std::unique_ptr<StringDictionary>>& dicts) const {
  out->resize(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    (*out)[c] = columns_[c].GetValue(row, dicts[c].get());
  }
}

void Chunk::RecomputeZones(
    const std::vector<std::unique_ptr<StringDictionary>>& dicts) {
  std::unordered_set<Value, ValueHash> distinct;
  for (size_t c = 0; c < columns_.size(); ++c) {
    ZoneMap z;
    distinct.clear();
    for (size_t r = 0; r < num_rows_; ++r) {
      Value v = columns_[c].GetValue(r, dicts[c].get());
      if (v.is_null()) {
        ++z.null_count;
      } else {
        z.Widen(v);
        distinct.insert(v);
      }
    }
    z.all_distinct = distinct.size() == num_rows_ - z.null_count &&
                     z.null_count < num_rows_;
    zones_[c] = z;
  }
}

uint64_t Chunk::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const ColumnVector& cv : columns_) bytes += cv.MemoryBytes();
  bytes += (begin_versions_.capacity() + end_versions_.capacity()) *
           sizeof(uint64_t);
  return bytes;
}

}  // namespace conquer
