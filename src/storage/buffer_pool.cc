#include "storage/buffer_pool.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/str_util.h"
#include "storage/segment.h"

namespace conquer {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The pool owns its spill and backing files; an I/O failure on them leaves
/// evicted payloads unreachable — there is no meaningful recovery, so fail
/// loudly instead of returning rows with silently missing chunks.
void DieOnIoError(const Status& s, const char* what) {
  if (s.ok()) return;
  std::fprintf(stderr, "conquer: unrecoverable buffer pool %s failure: %s\n",
               what, s.ToString().c_str());
  std::abort();
}

}  // namespace

ChunkPin& ChunkPin::operator=(ChunkPin&& other) noexcept {
  if (this != &other) {
    Reset();
    pool_ = other.pool_;
    chunk_ = other.chunk_;
    other.pool_ = nullptr;
    other.chunk_ = nullptr;
  }
  return *this;
}

void ChunkPin::Reset() {
  if (pool_ != nullptr && chunk_ != nullptr) pool_->Unpin(chunk_);
  pool_ = nullptr;
  chunk_ = nullptr;
}

BufferPool::BufferPool(uint64_t budget_bytes) : budget_(budget_bytes) {}

BufferPool::~BufferPool() {
  // Every registered chunk must have been destroyed first (Database declares
  // the pool before the catalog for exactly this reason).
  assert(registered_chunks_ == 0);
}

void BufferPool::SetBudget(uint64_t bytes) {
  std::unique_lock<std::mutex> lock(mu_);
  budget_ = bytes;
  EnforceBudget(lock, nullptr);
}

uint64_t BufferPool::budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.resident_bytes = resident_bytes_;
  out.budget_bytes = budget_;
  out.registered_chunks = registered_chunks_;
  out.spill_file_bytes = spill_ != nullptr ? spill_->size() : 0;
  return out;
}

void BufferPool::Register(Chunk* chunk) {
  std::unique_lock<std::mutex> lock(mu_);
  assert(chunk->pool_ == nullptr);
  chunk->pool_ = this;
  ++registered_chunks_;
  if (chunk->payload_resident_) {
    RefreshAccountingLocked(chunk);
    lru_.push_back(chunk);
    chunk->lru_it_ = std::prev(lru_.end());
    chunk->in_lru_ = true;
    EnforceBudget(lock, nullptr);
  }
}

void BufferPool::Unregister(Chunk* chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(chunk->pin_count_ == 0 && !chunk->io_busy_);
  if (chunk->in_lru_) {
    lru_.erase(chunk->lru_it_);
    chunk->in_lru_ = false;
  }
  // The dying chunk's spill extent (if any) becomes reusable.
  ReleaseSpillExtentLocked(chunk->backing_);
  resident_bytes_ -= chunk->accounted_bytes_;
  chunk->accounted_bytes_ = 0;
  chunk->pool_ = nullptr;
  --registered_chunks_;
}

ChunkPin BufferPool::Pin(Chunk* chunk, PinStats* stats) {
  std::unique_lock<std::mutex> lock(mu_);
  assert(chunk->pool_ == this);
  bool faulted = false;
  for (;;) {
    // An in-flight fault or spill owns the chunk's payload; wait it out
    // rather than observing half-written state.
    if (chunk->io_busy_) {
      io_cv_.wait(lock);
      continue;
    }
    if (chunk->payload_resident_) break;
    LoadChunk(lock, chunk, stats);
    faulted = true;
    break;
  }
  if (chunk->in_lru_) {
    lru_.erase(chunk->lru_it_);
    chunk->in_lru_ = false;
  }
  ++chunk->pin_count_;
  if (faulted) {
    // Make room for what the fault brought in — but never for the chunk
    // itself: it is pinned and off the LRU list.
    EnforceBudget(lock, stats);
  }
  return ChunkPin(this, chunk);
}

void BufferPool::Unpin(Chunk* chunk) {
  std::unique_lock<std::mutex> lock(mu_);
  assert(chunk->pin_count_ > 0);
  if (--chunk->pin_count_ > 0) return;
  // Appends may have grown the payload while pinned; re-measure now that no
  // writer can be touching it, then recheck the budget.
  RefreshAccountingLocked(chunk);
  lru_.push_back(chunk);
  chunk->lru_it_ = std::prev(lru_.end());
  chunk->in_lru_ = true;
  EnforceBudget(lock, nullptr);
}

void BufferPool::MarkDirty(Chunk* chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  chunk->payload_dirty_ = true;
}

void BufferPool::RebindBacking(Chunk* chunk, ChunkBacking backing) {
  std::unique_lock<std::mutex> lock(mu_);
  assert(chunk->pool_ == this);
  // A fault mid-flight copied the old backing and keeps its file alive; a
  // spill mid-flight would overwrite backing_ after us. Either way, wait.
  while (chunk->io_busy_) io_cv_.wait(lock);
  ReleaseSpillExtentLocked(chunk->backing_);
  chunk->backing_ = std::move(backing);
  chunk->payload_dirty_ = false;
}

void BufferPool::LoadChunk(std::unique_lock<std::mutex>& lk, Chunk* chunk,
                           PinStats* stats) {
  assert(!chunk->payload_resident_ && chunk->backing_.valid());
  assert(!chunk->io_busy_);
  chunk->io_busy_ = true;
  // Copy the backing: RebindBacking may re-point it while we read, and the
  // copy keeps the (possibly replaced) file alive and readable.
  const ChunkBacking backing = chunk->backing_;
  lk.unlock();
  const auto t0 = std::chrono::steady_clock::now();
  std::string buf(backing.length, '\0');
  DieOnIoError(backing.file->ReadAt(backing.offset, buf.data(), buf.size()),
               "read");
  DieOnIoError(SegmentCodec::DeserializePayload(buf, chunk), "decode");
  const double secs = SecondsSince(t0);
  lk.lock();
  chunk->io_busy_ = false;
  RefreshAccountingLocked(chunk);
  ++stats_.chunks_loaded;
  stats_.io_read_seconds += secs;
  if (stats != nullptr) {
    ++stats->chunks_loaded;
    stats->io_read_seconds += secs;
  }
  io_cv_.notify_all();
}

void BufferPool::EnforceBudget(std::unique_lock<std::mutex>& lk,
                               PinStats* stats) {
  if (budget_ == 0) return;
  while (resident_bytes_ > budget_ && !lru_.empty()) {
    // Cold clean chunks first: their payload is re-readable from its backing
    // block for free. Only when everything evictable is dirty do we pay a
    // spill write for the coldest chunk.
    Chunk* victim = nullptr;
    for (Chunk* ch : lru_) {
      if (!ch->payload_dirty_) {
        victim = ch;
        break;
      }
    }
    if (victim == nullptr) victim = lru_.front();
    assert(victim->payload_resident_ && victim->pin_count_ == 0);
    lru_.erase(victim->lru_it_);
    victim->in_lru_ = false;
    if (victim->payload_dirty_) SpillChunk(lk, victim);
    SegmentCodec::ReleasePayload(victim);
    resident_bytes_ -= victim->accounted_bytes_;
    victim->accounted_bytes_ = 0;
    ++stats_.chunks_evicted;
    if (stats != nullptr) ++stats->chunks_evicted;
  }
}

void BufferPool::SpillChunk(std::unique_lock<std::mutex>& lk, Chunk* chunk) {
  assert(!chunk->io_busy_);
  // The busy flag makes us the payload's exclusive owner (the chunk is off
  // the LRU list, so no other evictor picks it; pinners wait): serialize
  // and write without holding the pool lock.
  chunk->io_busy_ = true;
  std::shared_ptr<SegmentFile> spill = SpillFileLocked();
  lk.unlock();
  std::string buf;
  SegmentCodec::SerializePayload(*chunk, &buf);
  lk.lock();
  // Pick the destination extent under the lock (the free list is shared):
  // in place when the previous spill extent fits, else a freed extent,
  // else fresh space at the end of the file.
  uint64_t offset = 0;
  uint64_t alloc = 0;
  if (chunk->backing_.file == spill &&
      chunk->backing_.alloc_length() >= buf.size()) {
    offset = chunk->backing_.offset;
    alloc = chunk->backing_.alloc_length();
  } else {
    ReleaseSpillExtentLocked(chunk->backing_);
    if (!TakeSpillExtentLocked(buf.size(), &offset, &alloc)) {
      spill->Reserve(buf.size(), &offset);
      alloc = buf.size();
    }
  }
  lk.unlock();
  const auto t0 = std::chrono::steady_clock::now();
  DieOnIoError(spill->WriteAt(offset, buf.data(), buf.size()), "spill");
  const double secs = SecondsSince(t0);
  lk.lock();
  stats_.io_write_seconds += secs;
  chunk->backing_ = ChunkBacking{std::move(spill), offset, buf.size(), alloc};
  chunk->payload_dirty_ = false;
  chunk->io_busy_ = false;
  ++stats_.chunks_spilled;
  io_cv_.notify_all();
}

void BufferPool::RefreshAccountingLocked(Chunk* chunk) {
  const uint64_t bytes = chunk->payload_resident_ ? chunk->PayloadBytes() : 0;
  resident_bytes_ = resident_bytes_ - chunk->accounted_bytes_ + bytes;
  chunk->accounted_bytes_ = bytes;
  // The high-water mark is the budget proof benchmarks record: RSS is
  // noisy (allocator retention), pool accounting is exact.
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, resident_bytes_);
}

void BufferPool::ReleaseSpillExtentLocked(const ChunkBacking& backing) {
  if (backing.file == nullptr || backing.file != spill_) return;
  spill_free_.push_back({backing.offset, backing.alloc_length()});
}

bool BufferPool::TakeSpillExtentLocked(uint64_t need, uint64_t* offset,
                                       uint64_t* alloc) {
  for (size_t i = 0; i < spill_free_.size(); ++i) {
    if (spill_free_[i].alloc >= need) {
      *offset = spill_free_[i].offset;
      *alloc = spill_free_[i].alloc;
      spill_free_[i] = spill_free_.back();
      spill_free_.pop_back();
      return true;
    }
  }
  return false;
}

std::shared_ptr<SegmentFile> BufferPool::SpillFileLocked() {
  if (spill_ == nullptr) {
    static std::atomic<uint64_t> counter{0};
    std::error_code ec;
    std::filesystem::path dir = std::filesystem::temp_directory_path(ec);
    if (ec) dir = ".";
    const std::string path =
        (dir / StringPrintf("conquer-spill-%ld-%llu.bin",
                            static_cast<long>(::getpid()),
                            static_cast<unsigned long long>(
                                counter.fetch_add(1))))
            .string();
    // Unlinked immediately: the spill store is anonymous and vanishes with
    // the process, even on a crash.
    Result<std::shared_ptr<SegmentFile>> file =
        SegmentFile::Create(path, /*unlink_immediately=*/true);
    DieOnIoError(file.status(), "spill file creation");
    spill_ = std::move(file).value();
  }
  return spill_;
}

uint64_t BufferPool::DefaultBudgetFromEnv() {
  const char* env = std::getenv("CONQUER_MEMORY_BUDGET");
  if (env == nullptr || *env == '\0') return 0;
  uint64_t bytes = 0;
  if (!ParseByteSize(env, &bytes)) {
    std::fprintf(stderr,
                 "conquer: ignoring malformed CONQUER_MEMORY_BUDGET '%s'\n",
                 env);
    return 0;
  }
  return bytes;
}

bool ParseByteSize(std::string_view text, uint64_t* bytes) {
  std::string t(Trim(text));
  for (char& c : t) c = static_cast<char>(std::tolower(c));
  if (t == "unlimited" || t == "none" || t == "off") {
    *bytes = 0;
    return true;
  }
  if (t.empty()) return false;
  size_t i = 0;
  uint64_t n = 0;
  while (i < t.size() && t[i] >= '0' && t[i] <= '9') {
    const uint64_t digit = static_cast<uint64_t>(t[i] - '0');
    // Reject overflow instead of silently wrapping to a tiny budget.
    if (n > (UINT64_MAX - digit) / 10) return false;
    n = n * 10 + digit;
    ++i;
  }
  if (i == 0) return false;
  uint64_t mult = 1;
  if (i < t.size()) {
    switch (t[i]) {
      case 'k':
        mult = 1ull << 10;
        ++i;
        break;
      case 'm':
        mult = 1ull << 20;
        ++i;
        break;
      case 'g':
        mult = 1ull << 30;
        ++i;
        break;
      default:
        break;
    }
    if (i < t.size() && t[i] == 'b') ++i;
    if (i != t.size()) return false;
  }
  if (n > UINT64_MAX / mult) return false;
  *bytes = n * mult;
  return true;
}

}  // namespace conquer
