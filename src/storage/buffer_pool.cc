#include "storage/buffer_pool.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/str_util.h"
#include "storage/segment.h"

namespace conquer {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The pool owns its spill and backing files; an I/O failure on them leaves
/// evicted payloads unreachable — there is no meaningful recovery, so fail
/// loudly instead of returning rows with silently missing chunks.
void DieOnIoError(const Status& s, const char* what) {
  if (s.ok()) return;
  std::fprintf(stderr, "conquer: unrecoverable buffer pool %s failure: %s\n",
               what, s.ToString().c_str());
  std::abort();
}

}  // namespace

ChunkPin& ChunkPin::operator=(ChunkPin&& other) noexcept {
  if (this != &other) {
    Reset();
    pool_ = other.pool_;
    chunk_ = other.chunk_;
    other.pool_ = nullptr;
    other.chunk_ = nullptr;
  }
  return *this;
}

void ChunkPin::Reset() {
  if (pool_ != nullptr && chunk_ != nullptr) pool_->Unpin(chunk_);
  pool_ = nullptr;
  chunk_ = nullptr;
}

BufferPool::BufferPool(uint64_t budget_bytes) : budget_(budget_bytes) {}

BufferPool::~BufferPool() {
  // Every registered chunk must have been destroyed first (Database declares
  // the pool before the catalog for exactly this reason).
  assert(registered_chunks_ == 0);
}

void BufferPool::SetBudget(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = bytes;
  EnforceBudgetLocked(nullptr);
}

uint64_t BufferPool::budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.resident_bytes = resident_bytes_;
  out.budget_bytes = budget_;
  out.registered_chunks = registered_chunks_;
  return out;
}

void BufferPool::Register(Chunk* chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(chunk->pool_ == nullptr);
  chunk->pool_ = this;
  ++registered_chunks_;
  if (chunk->payload_resident_) {
    RefreshAccountingLocked(chunk);
    lru_.push_back(chunk);
    chunk->lru_it_ = std::prev(lru_.end());
    chunk->in_lru_ = true;
    EnforceBudgetLocked(nullptr);
  }
}

void BufferPool::Unregister(Chunk* chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(chunk->pin_count_ == 0);
  if (chunk->in_lru_) {
    lru_.erase(chunk->lru_it_);
    chunk->in_lru_ = false;
  }
  resident_bytes_ -= chunk->accounted_bytes_;
  chunk->accounted_bytes_ = 0;
  chunk->pool_ = nullptr;
  --registered_chunks_;
}

ChunkPin BufferPool::Pin(Chunk* chunk, PinStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(chunk->pool_ == this);
  if (!chunk->payload_resident_) {
    LoadLocked(chunk, stats);
    // Make room for what the fault brought in — but never for the chunk
    // itself: it is not on the LRU list until its last unpin.
    EnforceBudgetLocked(stats);
  }
  if (chunk->in_lru_) {
    lru_.erase(chunk->lru_it_);
    chunk->in_lru_ = false;
  }
  ++chunk->pin_count_;
  return ChunkPin(this, chunk);
}

void BufferPool::Unpin(Chunk* chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(chunk->pin_count_ > 0);
  if (--chunk->pin_count_ > 0) return;
  // Appends may have grown the payload while pinned; re-measure now that no
  // writer can be touching it, then recheck the budget.
  RefreshAccountingLocked(chunk);
  lru_.push_back(chunk);
  chunk->lru_it_ = std::prev(lru_.end());
  chunk->in_lru_ = true;
  EnforceBudgetLocked(nullptr);
}

void BufferPool::MarkDirty(Chunk* chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  chunk->payload_dirty_ = true;
}

void BufferPool::LoadLocked(Chunk* chunk, PinStats* stats) {
  assert(!chunk->payload_resident_ && chunk->backing_.valid());
  const auto t0 = std::chrono::steady_clock::now();
  std::string buf(chunk->backing_.length, '\0');
  DieOnIoError(chunk->backing_.file->ReadAt(chunk->backing_.offset,
                                            buf.data(), buf.size()),
               "read");
  DieOnIoError(SegmentCodec::DeserializePayload(buf, chunk), "decode");
  const double secs = SecondsSince(t0);
  RefreshAccountingLocked(chunk);
  ++stats_.chunks_loaded;
  stats_.io_read_seconds += secs;
  if (stats != nullptr) {
    ++stats->chunks_loaded;
    stats->io_read_seconds += secs;
  }
}

void BufferPool::EnforceBudgetLocked(PinStats* stats) {
  if (budget_ == 0) return;
  while (resident_bytes_ > budget_ && !lru_.empty()) {
    // Cold clean chunks first: their payload is re-readable from its backing
    // block for free. Only when everything evictable is dirty do we pay a
    // spill write for the coldest chunk.
    Chunk* victim = nullptr;
    for (Chunk* ch : lru_) {
      if (!ch->payload_dirty_) {
        victim = ch;
        break;
      }
    }
    if (victim == nullptr) victim = lru_.front();
    EvictLocked(victim, stats);
  }
}

void BufferPool::EvictLocked(Chunk* chunk, PinStats* stats) {
  assert(chunk->payload_resident_ && chunk->pin_count_ == 0);
  if (chunk->payload_dirty_) {
    std::string buf;
    SegmentCodec::SerializePayload(*chunk, &buf);
    const auto t0 = std::chrono::steady_clock::now();
    std::shared_ptr<SegmentFile> spill = SpillFileLocked();
    uint64_t offset = 0;
    DieOnIoError(spill->Append(buf.data(), buf.size(), &offset), "spill");
    stats_.io_write_seconds += SecondsSince(t0);
    chunk->backing_ = {std::move(spill), offset, buf.size()};
    chunk->payload_dirty_ = false;
    ++stats_.chunks_spilled;
  }
  SegmentCodec::ReleasePayload(chunk);
  resident_bytes_ -= chunk->accounted_bytes_;
  chunk->accounted_bytes_ = 0;
  if (chunk->in_lru_) {
    lru_.erase(chunk->lru_it_);
    chunk->in_lru_ = false;
  }
  ++stats_.chunks_evicted;
  if (stats != nullptr) ++stats->chunks_evicted;
}

void BufferPool::RefreshAccountingLocked(Chunk* chunk) {
  const uint64_t bytes = chunk->payload_resident_ ? chunk->PayloadBytes() : 0;
  resident_bytes_ = resident_bytes_ - chunk->accounted_bytes_ + bytes;
  chunk->accounted_bytes_ = bytes;
  // The high-water mark is the budget proof benchmarks record: RSS is
  // noisy (allocator retention), pool accounting is exact.
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, resident_bytes_);
}

std::shared_ptr<SegmentFile> BufferPool::SpillFileLocked() {
  if (spill_ == nullptr) {
    static std::atomic<uint64_t> counter{0};
    std::error_code ec;
    std::filesystem::path dir = std::filesystem::temp_directory_path(ec);
    if (ec) dir = ".";
    const std::string path =
        (dir / StringPrintf("conquer-spill-%ld-%llu.bin",
                            static_cast<long>(::getpid()),
                            static_cast<unsigned long long>(
                                counter.fetch_add(1))))
            .string();
    // Unlinked immediately: the spill store is anonymous and vanishes with
    // the process, even on a crash.
    Result<std::shared_ptr<SegmentFile>> file =
        SegmentFile::Create(path, /*unlink_immediately=*/true);
    DieOnIoError(file.status(), "spill file creation");
    spill_ = std::move(file).value();
  }
  return spill_;
}

uint64_t BufferPool::DefaultBudgetFromEnv() {
  const char* env = std::getenv("CONQUER_MEMORY_BUDGET");
  if (env == nullptr || *env == '\0') return 0;
  uint64_t bytes = 0;
  if (!ParseByteSize(env, &bytes)) {
    std::fprintf(stderr,
                 "conquer: ignoring malformed CONQUER_MEMORY_BUDGET '%s'\n",
                 env);
    return 0;
  }
  return bytes;
}

bool ParseByteSize(std::string_view text, uint64_t* bytes) {
  std::string t(Trim(text));
  for (char& c : t) c = static_cast<char>(std::tolower(c));
  if (t == "unlimited" || t == "none" || t == "off") {
    *bytes = 0;
    return true;
  }
  if (t.empty()) return false;
  size_t i = 0;
  uint64_t n = 0;
  while (i < t.size() && t[i] >= '0' && t[i] <= '9') {
    n = n * 10 + static_cast<uint64_t>(t[i] - '0');
    ++i;
  }
  if (i == 0) return false;
  uint64_t mult = 1;
  if (i < t.size()) {
    switch (t[i]) {
      case 'k':
        mult = 1ull << 10;
        ++i;
        break;
      case 'm':
        mult = 1ull << 20;
        ++i;
        break;
      case 'g':
        mult = 1ull << 30;
        ++i;
        break;
      default:
        break;
    }
    if (i < t.size() && t[i] == 'b') ++i;
    if (i != t.size()) return false;
  }
  *bytes = n * mult;
  return true;
}

}  // namespace conquer
