#ifndef CONQUER_STORAGE_SEGMENT_H_
#define CONQUER_STORAGE_SEGMENT_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/table.h"

namespace conquer {

/// \brief Random-access segment file shared by every chunk backed by it.
///
/// Reads use pread so concurrent faults never share a file position;
/// appends serialize through an atomic end offset. Byte order is the
/// host's — segment files are a local store, not an interchange format
/// (the CSV export is; see engine/persist.h).
class SegmentFile {
 public:
  /// Creates (truncating) a writable segment file. With
  /// `unlink_immediately` the name is removed right away, so the spill
  /// storage is anonymous and cannot outlive the process.
  static Result<std::shared_ptr<SegmentFile>> Create(
      const std::string& path, bool unlink_immediately = false);

  /// Opens an existing segment file read-only.
  static Result<std::shared_ptr<SegmentFile>> OpenReadOnly(
      const std::string& path);

  ~SegmentFile();
  SegmentFile(const SegmentFile&) = delete;
  SegmentFile& operator=(const SegmentFile&) = delete;

  /// Reads exactly `n` bytes at `offset` (short reads are errors).
  Status ReadAt(uint64_t offset, void* buf, size_t n) const;

  /// Writes exactly `n` bytes at `offset` (existing or reserved space).
  Status WriteAt(uint64_t offset, const void* data, size_t n);

  /// Atomically reserves `n` bytes at the end of the file; `*offset`
  /// receives where the extent starts (nothing is written).
  void Reserve(size_t n, uint64_t* offset) {
    *offset = end_.fetch_add(n, std::memory_order_acq_rel);
  }

  /// Appends `n` bytes; `*offset` receives where they landed.
  Status Append(const void* data, size_t n, uint64_t* offset);

  /// Flushes written data to stable storage (fsync).
  Status Sync();

  uint64_t size() const { return end_.load(std::memory_order_acquire); }
  const std::string& path() const { return path_; }

 private:
  SegmentFile(int fd, std::string path, uint64_t end)
      : fd_(fd), path_(std::move(path)), end_(end) {}

  int fd_;
  std::string path_;
  std::atomic<uint64_t> end_;
};

/// \brief The single gateway to a chunk's raw column storage.
///
/// Everything that serializes, restores or frees column payloads goes
/// through here (the buffer pool's spill/fault path and the table segment
/// writer/loader below), so Chunk and ColumnVector expose their vectors to
/// exactly one friend. Payload bytes cover the typed arrays and null bytes
/// only — zone maps and MVCC stamps are resident metadata and travel in the
/// segment's meta section instead.
class SegmentCodec {
 public:
  /// Serializes the column payloads of `chunk` (appends to `*out`).
  static void SerializePayload(const Chunk& chunk, std::string* out);

  /// Restores payloads produced by SerializePayload into `chunk`, which
  /// must have the same schema and row count.
  static Status DeserializePayload(std::string_view data, Chunk* chunk);

  /// Frees the column payloads; num_rows, zones and stamps survive.
  static void ReleasePayload(Chunk* chunk);

  /// Loader-side constructor: marks `chunk` as holding `num_rows` rows
  /// whose payload lives at `backing` (chunk starts evicted-clean).
  static void InitEvicted(Chunk* chunk, size_t num_rows, ChunkBacking backing);

  /// Re-points a pool-less chunk's backing at a new extent known to hold
  /// exactly its current payload bytes, marking it clean. Pool-managed
  /// chunks must go through BufferPool::RebindBacking instead (locking).
  static void Rebind(Chunk* chunk, ChunkBacking backing);

  static void SetZone(Chunk* chunk, size_t col, ZoneMap zone);
  static void SetVersions(Chunk* chunk, std::vector<uint64_t> begin,
                          std::vector<uint64_t> end);
};

/// \brief Binary table persistence: one self-contained `.seg` file per table.
///
/// Layout (host byte order; see DESIGN.md §14 for the full diagram):
///
///   "CQSEG001"            8-byte magic
///   payload blocks        SegmentCodec payloads, one per chunk, in order
///   meta section          committed version, chunk capacity, row count,
///                         per-column dictionaries (entries in code order),
///                         then per chunk: payload extent, row count, zone
///                         maps, MVCC begin/end stamps
///   footer                u64 meta offset, u64 meta length, magic again
///
/// Everything the binary format stores round-trips bit-exactly: doubles are
/// written as raw bits, NULLs as the null byte array (so NULL and empty
/// string stay distinct), and version stamps verbatim.
/// \{

/// Writes every chunk of `table` (faulting evicted payloads in one at a
/// time, so saving respects the memory budget) plus all resident metadata.
///
/// The segment is written to a sibling temp file and rename()d over `path`
/// only after the footer lands, so a save can never destroy the previous
/// segment — crucially including the file the table's own evicted chunks
/// are backed by when saving to the directory it was loaded from. After a
/// successful save the table is checkpointed: every chunk's backing is
/// re-pointed at its freshly written extent and marked clean, releasing
/// any spill extents. Requires no concurrent writers (concurrent readers
/// are fine), the same exclusivity the metadata walk already assumes.
Status WriteTableSegment(Table* table, const std::string& path);

/// Replaces `table`'s storage with the segment's contents. Dictionaries,
/// zone maps, stamps and the committed-version watermark load eagerly;
/// chunk payloads stay on disk (evicted-clean) and fault in through the
/// table's buffer pool on first pin. Without a pool attached, payloads are
/// loaded eagerly instead. The table must have the matching schema and be
/// empty.
Status LoadTableSegment(Table* table, const std::string& path);

/// \}

}  // namespace conquer

#endif  // CONQUER_STORAGE_SEGMENT_H_
