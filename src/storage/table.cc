#include "storage/table.h"

#include <algorithm>
#include <unordered_set>

#include "common/str_util.h"

namespace conquer {

namespace {
bool ValueFitsColumn(const Value& v, DataType col_type) {
  if (v.is_null()) return true;
  if (v.type() == col_type) return true;
  // Numeric widening.
  if (col_type == DataType::kDouble && v.type() == DataType::kInt64) return true;
  return false;
}
}  // namespace

Table::Table(TableSchema schema, size_t chunk_capacity)
    : schema_(std::move(schema)),
      chunk_capacity_(std::max<size_t>(1, chunk_capacity)) {
  dicts_.resize(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    if (schema_.column(c).type == DataType::kString) {
      dicts_[c] = std::make_unique<StringDictionary>();
    }
  }
}

Table::Table(Table&& other) noexcept
    : schema_(std::move(other.schema_)),
      pool_(other.pool_),
      chunk_capacity_(other.chunk_capacity_),
      committed_version_(
          other.committed_version_.load(std::memory_order_relaxed)),
      num_rows_(other.num_rows_),
      reserve_hint_(other.reserve_hint_),
      chunks_(std::move(other.chunks_)),
      indexes_(std::move(other.indexes_)),
      stats_(std::move(other.stats_)),
      dicts_(std::move(other.dicts_)),
      append_pin_(std::move(other.append_pin_)) {
  other.num_rows_ = 0;
}

Table& Table::operator=(Table&& other) noexcept {
  if (this != &other) {
    schema_ = std::move(other.schema_);
    pool_ = other.pool_;
    chunk_capacity_ = other.chunk_capacity_;
    committed_version_.store(
        other.committed_version_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    num_rows_ = other.num_rows_;
    reserve_hint_ = other.reserve_hint_;
    append_pin_.Reset();
    chunks_ = std::move(other.chunks_);
    indexes_ = std::move(other.indexes_);
    stats_ = std::move(other.stats_);
    dicts_ = std::move(other.dicts_);
    append_pin_ = std::move(other.append_pin_);
    other.num_rows_ = 0;
  }
  return *this;
}

void Table::AttachBufferPool(BufferPool* pool) {
  pool_ = pool;
  if (pool_ != nullptr) {
    for (auto& ch : chunks_) pool_->Register(ch.get());
  }
}

void Table::AdoptChunks(std::vector<std::unique_ptr<Chunk>> chunks,
                        size_t chunk_capacity, size_t num_rows,
                        uint64_t committed_version) {
  append_pin_.Reset();
  chunks_ = std::move(chunks);
  chunk_capacity_ = std::max<size_t>(1, chunk_capacity);
  num_rows_ = num_rows;
  committed_version_.store(committed_version, std::memory_order_release);
  indexes_.clear();
  stats_.clear();
  if (pool_ != nullptr) {
    for (auto& ch : chunks_) pool_->Register(ch.get());
  }
}

Chunk* Table::AppendChunk() {
  if (chunks_.empty() || chunks_.back()->full()) {
    chunks_.push_back(std::make_unique<Chunk>(&schema_, chunk_capacity_));
    if (reserve_hint_ > num_rows_) {
      chunks_.back()->Reserve(
          std::min(chunk_capacity_, reserve_hint_ - num_rows_));
    }
    if (pool_ != nullptr) pool_->Register(chunks_.back().get());
  }
  return chunks_.back().get();
}

void Table::AppendToStorage(const Row& row) {
  Chunk* ch = AppendChunk();
  if (pool_ == nullptr) {
    ch->AppendRow(row, dicts_);
  } else {
    // The append chunk stays pinned between inserts; re-pinning per row
    // would let a sub-chunk budget evict (spill) the tail after every
    // append and fault it straight back in. Assigning the new pin
    // releases the previous tail, which becomes evictable.
    if (append_pin_.get() != ch) append_pin_ = pool_->Pin(ch);
    ch->AppendRow(row, dicts_);
    pool_->MarkDirty(ch);
  }
  ++num_rows_;
}

Row Table::row(size_t i) const {
  Row out;
  GetRowInto(i, &out);
  return out;
}

std::vector<Row> Table::rows() const {
  std::vector<Row> out(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) GetRowInto(i, &out[i]);
  return out;
}

void Table::GetRowInto(size_t i, Row* out) const {
  const size_t c = i / chunk_capacity_;
  ChunkPin pin = PinChunk(c);
  chunks_[c]->MaterializeRow(i % chunk_capacity_, out, dicts_);
}

Value Table::ValueAt(size_t row, size_t col) const {
  const size_t c = row / chunk_capacity_;
  ChunkPin pin = PinChunk(c);
  return chunks_[c]->GetValue(row % chunk_capacity_, col, dicts_[col].get());
}

void Table::SetValue(size_t row, size_t col, const Value& v) {
  const size_t c = row / chunk_capacity_;
  ChunkPin pin = PinChunk(c);
  chunks_[c]->SetValue(row % chunk_capacity_, col, v, dicts_[col].get());
  if (pool_ != nullptr) pool_->MarkDirty(chunks_[c].get());
  // Only the touched chunk's index slice is stale; invalidate it and let
  // the next probe rebuild from the pinned payload (the other chunks'
  // slices stay consultable).
  if (col < indexes_.size() && indexes_[col]) {
    indexes_[col]->InvalidateChunk(c);
  }
}

Status Table::Insert(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        StringPrintf("row arity %zu does not match table '%s' arity %zu",
                     row.size(), name().c_str(), schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!ValueFitsColumn(row[i], schema_.column(i).type)) {
      return Status::TypeError(StringPrintf(
          "value of type %s does not fit column '%s' (%s) of table '%s'",
          DataTypeToString(row[i].type()), schema_.column(i).name.c_str(),
          DataTypeToString(schema_.column(i).type), name().c_str()));
    }
  }
  // Columnar storage normalizes on write (INT64 widens into DOUBLE columns,
  // strings are interned); indexes are fed the stored representation.
  const size_t pos = num_rows_;
  AppendToStorage(row);
  MaintainIndexesOnAppend(pos);
  return Status::OK();
}

void Table::InsertUnchecked(const Row& row) {
  const size_t pos = num_rows_;
  AppendToStorage(row);
  MaintainIndexesOnAppend(pos);
}

void Table::MaintainIndexesOnAppend(size_t pos) {
  if (indexes_.empty()) return;
  const size_t c = pos / chunk_capacity_;
  const uint32_t local = static_cast<uint32_t>(pos % chunk_capacity_);
  for (auto& idx : indexes_) {
    if (!idx) continue;
    // The append chunk is resident (append_pin_ holds it while a pool is
    // attached), so the stored representation reads straight off the
    // column payload.
    idx->EnsureChunks(c + 1);
    idx->AppendStored(c, local, chunks_[c]->column(idx->column()));
  }
}

Status Table::InsertVersioned(Row row, uint64_t begin_version) {
  const size_t pos = num_rows_;
  Status st = Insert(std::move(row));
  if (!st.ok()) return st;
  chunks_[pos / chunk_capacity_]->StampBegin(pos % chunk_capacity_,
                                             begin_version);
  return Status::OK();
}

void Table::MarkRowDead(size_t pos, uint64_t v) {
  chunks_[pos / chunk_capacity_]->StampEnd(pos % chunk_capacity_, v);
}

void Table::AbortWrite(uint64_t v) {
  for (auto& ch : chunks_) {
    if (!ch->has_versions()) continue;
    for (size_t r = 0; r < ch->num_rows(); ++r) {
      // Exactly one write stamps `v`, so begin==v identifies its inserts
      // (incl. UPDATE's new versions) and end==v its deletes. Rows it
      // deleted had begin < v, so the two reverts never collide.
      if (ch->begin_version(r) == v) ch->StampBegin(r, kVersionMax);
      if (ch->end_version(r) == v) ch->StampEnd(r, kVersionMax);
    }
  }
}

std::vector<size_t> Table::VisibleRowPositions(uint64_t snapshot) const {
  std::vector<size_t> out;
  out.reserve(num_rows_);
  size_t pos = 0;
  for (const auto& ch : chunks_) {
    for (size_t r = 0; r < ch->num_rows(); ++r, ++pos) {
      if (ch->RowVisible(r, snapshot)) out.push_back(pos);
    }
  }
  return out;
}

void Table::Clear() {
  append_pin_.Reset();
  chunks_.clear();
  num_rows_ = 0;
  reserve_hint_ = 0;
  indexes_.clear();
  stats_.clear();
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    dicts_[c] = schema_.column(c).type == DataType::kString
                    ? std::make_unique<StringDictionary>()
                    : nullptr;
  }
}

void Table::Rechunk(size_t capacity) {
  capacity = std::max<size_t>(1, capacity);
  append_pin_.Reset();
  std::vector<std::unique_ptr<Chunk>> old = std::move(chunks_);
  chunks_.clear();
  chunk_capacity_ = capacity;
  Row scratch;
  size_t pos = 0;
  ChunkPin dst_pin;  // held until the destination tail moves on
  for (const auto& ch : old) {
    // Source payloads fault in chunk-by-chunk; destination chunks are
    // created dirty (they have no backing yet) and may spill behind the
    // cursor under a tight budget.
    ChunkPin src_pin =
        pool_ != nullptr ? pool_->Pin(ch.get()) : ChunkPin(nullptr, ch.get());
    for (size_t r = 0; r < ch->num_rows(); ++r, ++pos) {
      ch->MaterializeRow(r, &scratch, dicts_);
      Chunk* dst = AppendChunk();
      if (pool_ != nullptr && dst_pin.get() != dst) dst_pin = pool_->Pin(dst);
      const size_t local = dst->num_rows();
      dst->AppendRow(scratch, dicts_);
      if (pool_ != nullptr) pool_->MarkDirty(dst);
      // Carry version stamps across the rebuild: losing them would resurrect
      // deleted rows (or hide fresh ones) for pinned snapshots.
      if (ch->has_versions()) {
        const uint64_t b = ch->begin_version(r);
        const uint64_t e = ch->end_version(r);
        if (b != 0) dst->StampBegin(local, b);
        if (e != kVersionMax) dst->StampEnd(local, e);
      }
    }
  }
  dst_pin.Reset();
  // Index slices hold chunk-relative positions, which the new geometry
  // invalidated wholesale; rebuild them eagerly while the chunks are warm.
  for (auto& idx : indexes_) {
    if (!idx) continue;
    auto rebuilt =
        std::make_unique<ChunkIndex>(idx->column(), idx->type());
    rebuilt->EnsureChunks(chunks_.size());
    for (size_t c = 0; c < chunks_.size(); ++c) {
      ChunkPin pin = PinChunk(c);
      rebuilt->RebuildChunk(c, chunks_[c]->column(rebuilt->column()));
    }
    idx = std::move(rebuilt);
  }
}

Status Table::CreateIndex(std::string_view column_name) {
  CONQUER_ASSIGN_OR_RETURN(size_t col, schema_.GetColumnIndex(column_name));
  if (indexes_.size() < schema_.num_columns()) {
    indexes_.resize(schema_.num_columns());
  }
  auto idx = std::make_unique<ChunkIndex>(col, schema_.column(col).type);
  idx->EnsureChunks(chunks_.size());
  for (size_t c = 0; c < chunks_.size(); ++c) {
    ChunkPin pin = PinChunk(c);
    idx->RebuildChunk(c, chunks_[c]->column(col));
  }
  indexes_[col] = std::move(idx);
  return Status::OK();
}

const ChunkIndex* Table::GetIndex(size_t column) const {
  if (column >= indexes_.size()) return nullptr;
  return indexes_[column].get();
}

void Table::IndexProbeChunk(size_t column, const ChunkIndex::ProbeSpec& probe,
                            bool scan_semantics, size_t c,
                            std::vector<uint32_t>* out,
                            PinStats* stats) const {
  const ChunkIndex* idx = indexes_[column].get();
  if (idx->TryLookup(c, probe, scan_semantics, out)) return;
  // Invalidated (or never-built) slice: fault the payload in and rebuild.
  // This is the only probe path that performs I/O.
  ChunkPin pin = PinChunk(c, stats);
  idx->RebuildAndLookup(c, chunks_[c]->column(column), probe, scan_semantics,
                        out);
}

void Table::AnalyzeStatistics() {
  // Re-tighten zone maps first: in-place writes only widen min/max and
  // clear all-distinct flags; this restores exact per-chunk statistics.
  for (size_t i = 0; i < chunks_.size(); ++i) {
    ChunkPin pin = PinChunk(i);
    chunks_[i]->RecomputeZones(dicts_);
  }
  stats_.assign(schema_.num_columns(), ColumnStats{});
  std::unordered_set<Value, ValueHash> distinct;
  std::vector<double> numeric;  // histogram input, reused across columns
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    const bool is_numeric = schema_.column(c).type != DataType::kString;
    distinct.clear();
    numeric.clear();
    if (is_numeric) numeric.reserve(num_rows_);
    for (size_t i = 0; i < chunks_.size(); ++i) {
      ChunkPin pin = PinChunk(i);
      const Chunk& ch = *chunks_[i];
      const ColumnVector& cv = ch.column(c);
      stats_[c].num_nulls += ch.zone(c).null_count;
      for (size_t r = 0; r < ch.num_rows(); ++r) {
        if (cv.is_null(r)) continue;
        Value v = cv.GetValue(r, dicts_[c].get());
        if (is_numeric) numeric.push_back(v.AsDouble());
        distinct.insert(std::move(v));
      }
    }
    stats_[c].num_distinct = distinct.size();
    if (is_numeric) {
      stats_[c].histogram = Histogram::Build(std::move(numeric));
      numeric.clear();
    }
  }
}

const ColumnStats& Table::column_stats(size_t column) const {
  static const ColumnStats kZero;
  if (column >= stats_.size()) return kZero;
  return stats_[column];
}

}  // namespace conquer
