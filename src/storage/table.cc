#include "storage/table.h"

#include <unordered_set>

#include "common/str_util.h"

namespace conquer {

const std::vector<size_t>& HashIndex::Lookup(const Value& key) const {
  static const std::vector<size_t> kEmpty;
  auto it = map_.find(key);
  return it == map_.end() ? kEmpty : it->second;
}

namespace {
bool ValueFitsColumn(const Value& v, DataType col_type) {
  if (v.is_null()) return true;
  if (v.type() == col_type) return true;
  // Numeric widening.
  if (col_type == DataType::kDouble && v.type() == DataType::kInt64) return true;
  return false;
}
}  // namespace

Status Table::Insert(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        StringPrintf("row arity %zu does not match table '%s' arity %zu",
                     row.size(), name().c_str(), schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!ValueFitsColumn(row[i], schema_.column(i).type)) {
      return Status::TypeError(StringPrintf(
          "value of type %s does not fit column '%s' (%s) of table '%s'",
          DataTypeToString(row[i].type()), schema_.column(i).name.c_str(),
          DataTypeToString(schema_.column(i).type), name().c_str()));
    }
    // Normalize INT64 into DOUBLE columns so comparisons and hashing see a
    // uniform representation.
    if (schema_.column(i).type == DataType::kDouble &&
        row[i].type() == DataType::kInt64) {
      row[i] = Value::Double(static_cast<double>(row[i].int_value()));
    }
  }
  // Maintain any existing indexes.
  size_t pos = rows_.size();
  for (auto& idx : indexes_) {
    if (idx) idx->Insert(row[idx->column()], pos);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::CreateIndex(std::string_view column_name) {
  CONQUER_ASSIGN_OR_RETURN(size_t col, schema_.GetColumnIndex(column_name));
  if (indexes_.size() < schema_.num_columns()) {
    indexes_.resize(schema_.num_columns());
  }
  auto idx = std::make_unique<HashIndex>(col);
  for (size_t i = 0; i < rows_.size(); ++i) {
    idx->Insert(rows_[i][col], i);
  }
  indexes_[col] = std::move(idx);
  return Status::OK();
}

const HashIndex* Table::GetIndex(size_t column) const {
  if (column >= indexes_.size()) return nullptr;
  return indexes_[column].get();
}

void Table::AnalyzeStatistics() {
  stats_.assign(schema_.num_columns(), ColumnStats{});
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    std::unordered_set<Value, ValueHash> distinct;
    for (const Row& r : rows_) {
      if (r[c].is_null()) {
        ++stats_[c].num_nulls;
      } else {
        distinct.insert(r[c]);
      }
    }
    stats_[c].num_distinct = distinct.size();
  }
}

const ColumnStats& Table::column_stats(size_t column) const {
  static const ColumnStats kZero;
  if (column >= stats_.size()) return kZero;
  return stats_[column];
}

}  // namespace conquer
