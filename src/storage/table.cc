#include "storage/table.h"

#include <unordered_set>

#include "common/str_util.h"

namespace conquer {

const std::vector<size_t>& HashIndex::Lookup(const Value& key) const {
  static const std::vector<size_t> kEmpty;
  const std::vector<size_t>* hit = map_.FindHashed(key.Hash(), key);
  return hit != nullptr ? *hit : kEmpty;
}

namespace {
bool ValueFitsColumn(const Value& v, DataType col_type) {
  if (v.is_null()) return true;
  if (v.type() == col_type) return true;
  // Numeric widening.
  if (col_type == DataType::kDouble && v.type() == DataType::kInt64) return true;
  return false;
}
}  // namespace

StringDictionary* Table::DictionaryFor(size_t column) {
  if (dicts_.size() < schema_.num_columns()) {
    dicts_.resize(schema_.num_columns());
  }
  if (dicts_[column] == nullptr) {
    dicts_[column] = std::make_unique<StringDictionary>();
  }
  return dicts_[column].get();
}

void Table::InternRow(Row* row) {
  for (size_t i = 0; i < row->size(); ++i) {
    Value& v = (*row)[i];
    if (v.type() == DataType::kString && !v.is_interned()) {
      v = DictionaryFor(i)->InternValue(v.string_value());
    }
  }
}

Status Table::Insert(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        StringPrintf("row arity %zu does not match table '%s' arity %zu",
                     row.size(), name().c_str(), schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!ValueFitsColumn(row[i], schema_.column(i).type)) {
      return Status::TypeError(StringPrintf(
          "value of type %s does not fit column '%s' (%s) of table '%s'",
          DataTypeToString(row[i].type()), schema_.column(i).name.c_str(),
          DataTypeToString(schema_.column(i).type), name().c_str()));
    }
    // Normalize INT64 into DOUBLE columns so comparisons and hashing see a
    // uniform representation, then re-check the widened value and intern
    // strings — normalization must never store a value that would fail the
    // column check it just passed.
    if (schema_.column(i).type == DataType::kDouble &&
        row[i].type() == DataType::kInt64) {
      row[i] = Value::Double(static_cast<double>(row[i].int_value()));
    }
    if (!ValueFitsColumn(row[i], schema_.column(i).type)) {
      return Status::Internal(StringPrintf(
          "normalized value no longer fits column '%s' of table '%s'",
          schema_.column(i).name.c_str(), name().c_str()));
    }
    if (row[i].type() == DataType::kString && !row[i].is_interned()) {
      row[i] = DictionaryFor(i)->InternValue(row[i].string_value());
    }
  }
  // Maintain any existing indexes.
  size_t pos = rows_.size();
  for (auto& idx : indexes_) {
    if (idx) idx->Insert(row[idx->column()], pos);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

void Table::InsertUnchecked(Row row) {
  InternRow(&row);
  rows_.push_back(std::move(row));
}

Status Table::CreateIndex(std::string_view column_name) {
  CONQUER_ASSIGN_OR_RETURN(size_t col, schema_.GetColumnIndex(column_name));
  if (indexes_.size() < schema_.num_columns()) {
    indexes_.resize(schema_.num_columns());
  }
  auto idx = std::make_unique<HashIndex>(col);
  // Size the key table from statistics when available, else assume unique.
  size_t expected = rows_.size();
  if (col < stats_.size() && stats_[col].num_distinct > 0) {
    expected = stats_[col].num_distinct;
  }
  idx->Reserve(expected);
  for (size_t i = 0; i < rows_.size(); ++i) {
    idx->Insert(rows_[i][col], i);
  }
  indexes_[col] = std::move(idx);
  return Status::OK();
}

const HashIndex* Table::GetIndex(size_t column) const {
  if (column >= indexes_.size()) return nullptr;
  return indexes_[column].get();
}

void Table::InternStrings() {
  for (Row& r : rows_) InternRow(&r);
}

void Table::AnalyzeStatistics() {
  // Maintenance passes may have written plain strings via mutable_row;
  // fold them into the dictionaries before counting (existing codes are
  // stable, so interned values in untouched rows are unaffected).
  InternStrings();
  stats_.assign(schema_.num_columns(), ColumnStats{});
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    std::unordered_set<Value, ValueHash> distinct;
    for (const Row& r : rows_) {
      if (r[c].is_null()) {
        ++stats_[c].num_nulls;
      } else {
        distinct.insert(r[c]);
      }
    }
    stats_[c].num_distinct = distinct.size();
  }
}

const ColumnStats& Table::column_stats(size_t column) const {
  static const ColumnStats kZero;
  if (column >= stats_.size()) return kZero;
  return stats_[column];
}

}  // namespace conquer
