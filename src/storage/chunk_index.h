#ifndef CONQUER_STORAGE_CHUNK_INDEX_H_
#define CONQUER_STORAGE_CHUNK_INDEX_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "catalog/schema.h"
#include "storage/chunk.h"
#include "storage/dictionary.h"
#include "types/value.h"

namespace conquer {

/// \brief Per-chunk secondary index over one column, keyed on the column's
/// physical representation (dictionary codes for strings, raw int64 for
/// integers/dates/bools, normalized bit patterns for doubles).
///
/// Each chunk owns an independent slice: two parallel arrays (normalized
/// key, chunk-local row) sorted by (key, row), probed with binary search.
/// Slices are compact (8 + 4 bytes per row) and stay resident under the
/// buffer pool's budget by design, like zone maps: probing an index must
/// never fault column payloads in.
///
/// Maintenance is incremental:
///   - Append feeds the tail slice (the new entry is queued unsorted and
///     folded in by the next probe).
///   - An in-place write (Table::SetValue) invalidates only the touched
///     chunk's slice; the next probe of that chunk rebuilds it from the
///     pinned column payload (the one probe path that faults I/O).
///   - Rechunk/AdoptChunks drop every slice (positions are chunk-relative).
///
/// Probes return a *superset guarantee*, not exactness: every row whose
/// stored value compares equal to the probe under the engine's scan
/// semantics (Value::Compare; NaN handled via a wildcard list) is returned,
/// and callers re-verify candidates against the full predicate. This keeps
/// the normalization rules simple and makes index-on/index-off execution
/// bit-identical.
///
/// Thread-safety: probes run concurrently from parallel queries while lazy
/// tail sorts and rebuilds mutate slice state, so every slice operation
/// takes the per-index mutex. Writes (which append/invalidate) run behind
/// the engine's exclusive admission ticket but share the same lock for
/// simplicity.
class ChunkIndex {
 public:
  /// What a probe value resolved to against this index's key space.
  struct ProbeSpec {
    enum class Kind {
      kKey,   ///< probe the normalized key
      kNull,  ///< probe the NULL rows (join semantics: NULL matches NULL)
      kNone,  ///< provably no stored value can compare equal
    };
    Kind kind = Kind::kNone;
    uint64_t key = 0;
  };

  ChunkIndex(size_t column, DataType type)
      : column_(column), type_(type) {}

  size_t column() const { return column_; }
  DataType type() const { return type_; }

  /// Resolves `v` (a predicate literal or a join key value) to a probe over
  /// this index. `join_semantics` selects hash-join equality (NULL matches
  /// NULL, NaN matches only NaN) over scan equality (NULL matches nothing,
  /// a NaN-valued row compares equal to everything). Sets `*unsupported`
  /// when no sound probe exists (the caller must fall back to scanning):
  /// NaN literals under scan semantics, and doubles too large to map to a
  /// unique int64 key.
  ProbeSpec ResolveProbe(const Value& v, const StringDictionary* dict,
                         bool join_semantics, bool* unsupported) const;

  /// Grows the slice vector to cover `n` chunks (new slices empty+valid).
  void EnsureChunks(size_t n);

  /// Feeds one appended row into the tail slice, reading the stored
  /// (post intern/widen) representation straight from the chunk's column
  /// payload, which the caller guarantees is resident.
  void AppendStored(size_t chunk, uint32_t local_row, const ColumnVector& cv);

  /// Marks chunk `c`'s slice stale after an in-place write; the next probe
  /// of that chunk rebuilds it from the pinned payload.
  void InvalidateChunk(size_t c);

  /// True when chunk `c`'s slice is valid (probeable without a rebuild).
  bool ChunkValid(size_t c) const;

  /// Probes chunk `c`. Returns false when the slice is invalid (caller must
  /// pin the chunk and call RebuildAndLookup); on success appends matching
  /// chunk-local rows to `out` in ascending order. `scan_semantics` merges
  /// the NaN wildcard rows (rows that compare equal to every probe under
  /// Value::Compare).
  bool TryLookup(size_t c, const ProbeSpec& probe, bool scan_semantics,
                 std::vector<uint32_t>* out) const;

  /// Rebuilds chunk `c`'s slice from the (pinned) column payload, then
  /// performs the lookup. `cv` must be this index's column of chunk `c`.
  void RebuildAndLookup(size_t c, const ColumnVector& cv,
                        const ProbeSpec& probe, bool scan_semantics,
                        std::vector<uint32_t>* out) const;

  /// Rebuilds every invalid slice from `cv_of(c)` (used by CreateIndex and
  /// test helpers). Caller pins chunks as the callback materializes them.
  void RebuildChunk(size_t c, const ColumnVector& cv) const;

  /// Sum of per-chunk distinct keys at last build/sort — an upper bound on
  /// the column's NDV used as a planner fallback estimate.
  size_t approx_num_keys() const;

  uint64_t MemoryBytes() const;

  /// Normalizes one stored double to its key bit pattern (-0.0 folds into
  /// +0.0 so the two compare-equal zeros share a key). NaNs are not keyed
  /// (they live in the wildcard list); callers must check first.
  static uint64_t DoubleKey(double d) {
    if (d == 0.0) d = 0.0;  // -0.0 -> +0.0
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d), "bit-cast size");
    __builtin_memcpy(&bits, &d, sizeof(bits));
    return bits;
  }

 private:
  /// One chunk's key->rows table: parallel (key, row) arrays sorted by
  /// (key, row), plus the rows binary search cannot serve (NULLs, NaNs).
  struct Slice {
    std::vector<uint64_t> keys;
    std::vector<uint32_t> rows;       ///< parallel to keys, chunk-local
    std::vector<uint32_t> nulls;      ///< NULL rows, ascending
    std::vector<uint32_t> wildcards;  ///< NaN rows (scan-equal to anything)
    size_t sorted_limit = 0;  ///< prefix of keys/rows in sorted order
    bool valid = true;        ///< false after an in-place write
    size_t distinct = 0;      ///< distinct keys at last sort (estimate)
  };

  /// Requires mu_ held. Folds the unsorted tail in and recounts distinct.
  void SortSliceLocked(Slice* s) const;
  /// Requires mu_ held. Repopulates `s` from the raw column payload.
  void RebuildSliceLocked(Slice* s, const ColumnVector& cv) const;
  /// Requires mu_ held. Appends `probe`'s matches (ascending) to `out`.
  void LookupSliceLocked(const Slice& s, const ProbeSpec& probe,
                         bool scan_semantics, std::vector<uint32_t>* out) const;
  /// Normalizes one stored (non-null) payload entry to its key; false when
  /// the value is a NaN (wildcard, not keyed).
  bool KeyOfStored(const ColumnVector& cv, size_t row, uint64_t* key) const;

  size_t column_;
  DataType type_;
  mutable std::mutex mu_;
  mutable std::vector<Slice> slices_;
};

}  // namespace conquer

#endif  // CONQUER_STORAGE_CHUNK_INDEX_H_
