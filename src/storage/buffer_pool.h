#ifndef CONQUER_STORAGE_BUFFER_POOL_H_
#define CONQUER_STORAGE_BUFFER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/chunk.h"

namespace conquer {

class Table;

/// \brief I/O work one pin (or the evictions it forced) performed.
///
/// Accumulated into caller-owned counters so scans can surface
/// `chunks_loaded=` / `chunks_evicted=` / `io_read_ms=` in EXPLAIN ANALYZE.
struct PinStats {
  uint64_t chunks_loaded = 0;
  uint64_t chunks_evicted = 0;
  double io_read_seconds = 0;

  void Add(const PinStats& o) {
    chunks_loaded += o.chunks_loaded;
    chunks_evicted += o.chunks_evicted;
    io_read_seconds += o.io_read_seconds;
  }
};

/// \brief RAII pin keeping one chunk's column payload resident.
///
/// While any pin on a chunk is alive the buffer pool will not evict it, so
/// raw column pointers (`fixed_data()` etc.) stay valid. Obtained through
/// `Table::PinChunk` (or `BufferPool::Pin`); destruction unpins. A pin from
/// a table with no pool attached is a no-op wrapper around the chunk.
class ChunkPin {
 public:
  ChunkPin() = default;
  ChunkPin(ChunkPin&& other) noexcept
      : pool_(other.pool_), chunk_(other.chunk_) {
    other.pool_ = nullptr;
    other.chunk_ = nullptr;
  }
  ChunkPin& operator=(ChunkPin&& other) noexcept;
  ChunkPin(const ChunkPin&) = delete;
  ChunkPin& operator=(const ChunkPin&) = delete;
  ~ChunkPin() { Reset(); }

  /// Releases the pin early (idempotent).
  void Reset();

  const Chunk* get() const { return chunk_; }
  const Chunk& operator*() const { return *chunk_; }
  const Chunk* operator->() const { return chunk_; }
  explicit operator bool() const { return chunk_ != nullptr; }

 private:
  friend class BufferPool;
  friend class Table;
  ChunkPin(BufferPool* pool, Chunk* chunk) : pool_(pool), chunk_(chunk) {}

  BufferPool* pool_ = nullptr;  ///< null = unmanaged (no pool attached)
  Chunk* chunk_ = nullptr;
};

/// \brief Pin/evict buffer manager enforcing a hard byte budget over the
/// column payloads of every registered chunk.
///
/// Chunks live in three states: resident, evicted-clean (payload re-readable
/// from its backing segment block) and evicted-dirty (never: dirty chunks
/// are spilled to the pool's anonymous spill file *at eviction time*, so an
/// evicted chunk is always clean). Eviction scans the LRU list of unpinned
/// resident chunks and prefers chunks with a still-valid backing (drop, no
/// write) over dirty ones (serialize + spill, then drop).
///
/// What the budget covers: column payloads only. Zone maps, MVCC stamps,
/// dictionaries and per-chunk secondary index slices (ChunkIndex) stay
/// resident by design — pruning, visibility checks and index probes must
/// never fault I/O (the one exception is rebuilding a slice invalidated by
/// an in-place write, which pins its chunk), and interned string Values
/// point into the dictionaries. Pinned chunks and a chunk larger than the whole
/// budget are exempt while needed, so the budget is hard for the steady
/// state but allows transient overshoot equal to the pinned working set.
///
/// Thread-safety: pool state (LRU list, accounting, residency flags) lives
/// behind a single mutex, but chunk loads and dirty spills run their file
/// I/O *outside* it: the operation marks its chunk io-busy under the lock,
/// releases the lock for the read/decode (or serialize/write), and
/// re-acquires it to publish the result. Concurrent pins of distinct chunks
/// therefore fault in parallel; only operations on the same chunk serialize
/// (waiters block on a pool condvar until the busy flag clears). The pin
/// count is what makes concurrently scanning morsels safe: column data is
/// only read between Pin and Reset.
class BufferPool {
 public:
  struct Stats {
    uint64_t chunks_loaded = 0;   ///< payload faults from backing files
    uint64_t chunks_evicted = 0;  ///< payload drops (clean + spilled)
    uint64_t chunks_spilled = 0;  ///< dirty evictions that wrote the spill file
    uint64_t spill_file_bytes = 0;  ///< bytes allocated in the spill file
    uint64_t resident_bytes = 0;  ///< payload bytes currently charged
    uint64_t peak_resident_bytes = 0;  ///< high-water mark of resident_bytes
    uint64_t budget_bytes = 0;    ///< 0 = unlimited
    uint64_t registered_chunks = 0;
    double io_read_seconds = 0;
    double io_write_seconds = 0;
  };

  /// `budget_bytes` of 0 means unlimited (nothing is ever evicted).
  explicit BufferPool(uint64_t budget_bytes = 0);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Installs a new budget and immediately evicts down to it (0 disables
  /// eviction; already-evicted chunks stay on disk until pinned).
  void SetBudget(uint64_t bytes);
  uint64_t budget() const;

  Stats stats() const;

  /// Takes ownership of residency management for `chunk` (called by Table
  /// when a chunk is created or adopted). The chunk may already be evicted
  /// (binary loader hands over segment-backed chunks).
  void Register(Chunk* chunk);

  /// Severs the pool link (called by ~Chunk). The chunk must be unpinned.
  void Unregister(Chunk* chunk);

  /// Ensures the chunk's payload is resident (faulting it in from its
  /// backing block if evicted) and pins it. Deltas of any load/eviction this
  /// call performed are added to `*stats` when non-null. I/O failure on the
  /// pool's own files is unrecoverable and aborts with a diagnostic.
  ChunkPin Pin(Chunk* chunk, PinStats* stats = nullptr);

  /// Marks the chunk's payload as diverged from its backing block; the next
  /// eviction must spill it again. Call after any column mutation (append or
  /// in-place write) of a registered chunk.
  void MarkDirty(Chunk* chunk);

  /// Re-points `chunk`'s backing at `backing` — an extent the caller
  /// guarantees holds exactly the chunk's current payload bytes — and marks
  /// it clean. Used by the segment writer to checkpoint a table after a
  /// save. Waits out any in-flight fault/spill on the chunk and releases a
  /// previous spill extent. Caller must ensure no concurrent writers.
  void RebindBacking(Chunk* chunk, ChunkBacking backing);

  /// Default budget for new databases: the CONQUER_MEMORY_BUDGET environment
  /// variable (accepts ParseByteSize forms), or 0 (unlimited) when unset.
  /// Lets CI force evictions across an entire test suite.
  static uint64_t DefaultBudgetFromEnv();

 private:
  friend class ChunkPin;

  /// A released spill extent available for reuse by a later spill.
  struct SpillExtent {
    uint64_t offset;
    uint64_t alloc;
  };

  void Unpin(Chunk* chunk);

  /// Faults `chunk`'s payload in from backing_. Enters with `lk` held,
  /// drops it for the read/decode, exits with it re-acquired.
  void LoadChunk(std::unique_lock<std::mutex>& lk, Chunk* chunk,
                 PinStats* stats);
  /// Evicts LRU victims (clean first) until the charged bytes fit the
  /// budget or nothing evictable remains. `lk` must be held; dirty spills
  /// release it for their file I/O.
  void EnforceBudget(std::unique_lock<std::mutex>& lk, PinStats* stats);
  /// Serializes `chunk` and writes it to the spill file, reusing its
  /// previous spill extent (or a freed one) when the payload fits. Enters
  /// and exits with `lk` held, drops it for the serialize/write.
  void SpillChunk(std::unique_lock<std::mutex>& lk, Chunk* chunk);
  /// Requires mu_ held. Re-measures `chunk`'s payload bytes.
  void RefreshAccountingLocked(Chunk* chunk);
  /// Requires mu_ held. Lazily creates the anonymous spill file.
  std::shared_ptr<SegmentFile> SpillFileLocked();
  /// Requires mu_ held. Returns `backing`'s extent to the spill free list
  /// when it points into the spill file (no-op otherwise).
  void ReleaseSpillExtentLocked(const ChunkBacking& backing);
  /// Requires mu_ held. First-fit grab of a freed spill extent that holds
  /// `need` bytes; false when none fits (caller reserves fresh space).
  bool TakeSpillExtentLocked(uint64_t need, uint64_t* offset,
                             uint64_t* alloc);

  mutable std::mutex mu_;
  /// Signalled whenever a chunk's io-busy flag clears; Pin and
  /// RebindBacking wait on it to serialize same-chunk operations.
  std::condition_variable io_cv_;
  uint64_t budget_ = 0;
  uint64_t resident_bytes_ = 0;
  uint64_t registered_chunks_ = 0;
  Stats stats_{};
  /// Unpinned resident chunks, least-recently-unpinned first.
  std::list<Chunk*> lru_;
  std::shared_ptr<SegmentFile> spill_;
  /// Spill extents no longer referenced by any chunk (their owner died,
  /// re-spilled elsewhere, or was checkpointed to a segment file). Extents
  /// are reused whole — payloads are near-uniform chunk serializations, so
  /// first-fit without splitting keeps the file bounded.
  std::vector<SpillExtent> spill_free_;
};

/// Parses a human byte size: plain bytes or a k/m/g suffix (binary units,
/// case-insensitive, optional trailing "b"), or "unlimited"/"none" for 0.
/// Returns false on malformed input.
bool ParseByteSize(std::string_view text, uint64_t* bytes);

}  // namespace conquer

#endif  // CONQUER_STORAGE_BUFFER_POOL_H_
