#ifndef CONQUER_STORAGE_TABLE_H_
#define CONQUER_STORAGE_TABLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/flat_hash.h"
#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/chunk.h"
#include "storage/chunk_index.h"
#include "storage/dictionary.h"
#include "storage/histogram.h"
#include "types/value.h"

namespace conquer {

/// \brief Per-column statistics gathered by Table::AnalyzeStatistics
/// (the RUNSTATS analogue from the paper's experimental setup).
struct ColumnStats {
  size_t num_distinct = 0;
  size_t num_nulls = 0;
  /// Equi-depth value distribution for numeric columns (empty for strings
  /// and never-analyzed columns); drives planner selectivity estimates.
  Histogram histogram;
};

/// \brief In-memory chunked columnar table.
///
/// Rows are stored across fixed-capacity chunks (kDefaultChunkCapacity rows
/// each; all chunks except the last are full, so a global row position maps
/// to (pos / capacity, pos % capacity)). Within a chunk every column is a
/// contiguous typed vector: strings as dense dictionary codes into the
/// per-column StringDictionary, numerics/dates as raw arrays. Each
/// chunk×column carries a ZoneMap (min/max, null count, all-distinct flag)
/// maintained on insert, which scans use to skip whole chunks.
///
/// All writes intern strings eagerly — including in-place SetValue — so
/// dictionaries, zone maps and the dictionary fast path of filters are never
/// stale. Secondary indexes are per-chunk (see ChunkIndex): appends feed the
/// tail chunk's slice and SetValue invalidates only the touched chunk, which
/// the next probe lazily rebuilds; a stale slice is never consultable.
class Table {
 public:
  static constexpr size_t kDefaultChunkCapacity = 64 * 1024;

  explicit Table(TableSchema schema,
                 size_t chunk_capacity = kDefaultChunkCapacity);

  // Movable for construction-time handoff (tests, loaders). The atomic
  // committed-version counter transfers with relaxed ordering: a move must
  // not race with concurrent readers or in-flight writes.
  Table(Table&& other) noexcept;
  Table& operator=(Table&& other) noexcept;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.table_name(); }

  size_t num_rows() const { return num_rows_; }

  // ---- Chunk-level access (vectorized scans). ----
  size_t num_chunks() const { return chunks_.size(); }
  /// Raw chunk reference: resident metadata (num_rows, zone maps, MVCC
  /// stamps) is always safe to read; column payloads of a pool-managed
  /// chunk require a ChunkPin (see PinChunk).
  const Chunk& chunk(size_t i) const { return *chunks_[i]; }
  /// Persistence-side mutable access (the segment writer re-points chunk
  /// backings after a save); executor code must go through PinChunk.
  Chunk* mutable_chunk(size_t i) { return chunks_[i].get(); }
  size_t chunk_capacity() const { return chunk_capacity_; }

  // ---- Out-of-core management. ----

  /// Hands residency management of every chunk (current and future) to
  /// `pool`. Call once, right after construction (the engine attaches its
  /// per-database pool in CreateTable). Pass nullptr for standalone
  /// always-resident tables.
  void AttachBufferPool(BufferPool* pool);
  BufferPool* buffer_pool() const { return pool_; }

  /// Pins chunk `i`'s column payload into memory (faulting it in if
  /// evicted) for the lifetime of the returned pin. Without an attached
  /// pool this is a cheap no-op wrapper. `stats`, when non-null, receives
  /// the I/O this pin performed (scan counters).
  ChunkPin PinChunk(size_t i, PinStats* stats = nullptr) const {
    Chunk* ch = chunks_[i].get();
    return pool_ != nullptr ? pool_->Pin(ch, stats) : ChunkPin(nullptr, ch);
  }

  /// Binary-loader handoff: replaces the (empty) storage with pre-built
  /// chunks — possibly evicted ones backed by a segment file — and restores
  /// the committed-version watermark. Indexes and statistics reset;
  /// dictionaries must already be populated (codes in the chunks reference
  /// them). Registers every chunk with the attached pool.
  void AdoptChunks(std::vector<std::unique_ptr<Chunk>> chunks,
                   size_t chunk_capacity, size_t num_rows,
                   uint64_t committed_version);

  /// Dictionary of column `c` for loaders that must repopulate it before
  /// AdoptChunks; nullptr for non-string columns.
  StringDictionary* mutable_dictionary(size_t column) {
    return dicts_[column].get();
  }

  // ---- Row-level access (maintenance passes, persistence, tests). ----
  /// Materializes row `i` BY VALUE (the storage is columnar; there is no
  /// resident Row to reference). Strings come back interned.
  Row row(size_t i) const;
  /// Materializes every row, in order (persistence / test convenience).
  std::vector<Row> rows() const;
  /// Materializes row `i` into a caller-owned buffer (no allocation when
  /// the buffer already has the right arity).
  void GetRowInto(size_t i, Row* out) const;
  /// The single value at (row, col); cheaper than materializing the row.
  Value ValueAt(size_t row, size_t col) const;

  /// Overwrites one cell in place (maintenance passes: identifier
  /// propagation, probability assignment). Strings are re-interned
  /// immediately and the zone map stays conservative (null count exact,
  /// min/max widened), so scans never consult stale statistics. An index on
  /// `col` invalidates only the touched chunk's slice; the next probe of
  /// that chunk rebuilds it lazily.
  void SetValue(size_t row, size_t col, const Value& v);

  /// Appends a row after arity and type checks (numeric widening allowed:
  /// an INT64 value may populate a DOUBLE column). Storage normalizes the
  /// values: widened numerics are stored as doubles and strings interned.
  Status Insert(Row row);

  /// Appends without validation (caller guarantees schema conformance);
  /// still interns string values so bulk generators feed the dictionary.
  void InsertUnchecked(const Row& row);

  void Reserve(size_t n) { reserve_hint_ = n; }
  void Clear();

  // ---- MVCC write versioning. ----
  //
  // Writes run exclusively (behind the engine's exclusive admission ticket),
  // so version stamping itself needs no synchronization; only the committed
  // version counter is atomic so readers can pin a snapshot without a lock.
  // A scan admitted at snapshot S sees exactly the row versions with
  // begin <= S < end; bulk-loaded rows carry the implicit range
  // [0, kVersionMax) and are visible everywhere.

  /// The latest committed version; scans pin this as their snapshot.
  uint64_t committed_version() const {
    return committed_version_.load(std::memory_order_acquire);
  }

  /// The version a new write should stamp (committed + 1). The write is
  /// invisible to concurrent snapshots until CommitWrite publishes it.
  uint64_t BeginWrite() const {
    return committed_version_.load(std::memory_order_relaxed) + 1;
  }

  /// Publishes version `v`; subsequent snapshots include its rows.
  void CommitWrite(uint64_t v) {
    committed_version_.store(v, std::memory_order_release);
  }

  /// Physically reverts every stamp made at version `v` after a failed
  /// write: rows inserted at `v` become permanent tombstones (begin pushed
  /// to kVersionMax, visible at no snapshot) and rows stamped dead at `v`
  /// are resurrected (end restored to kVersionMax). Without this, the next
  /// write would reuse `v` — BeginWrite is committed+1 and the abort never
  /// advanced it — and its commit would publish the aborted stamps. Runs
  /// under the same exclusive ticket as the write it aborts.
  void AbortWrite(uint64_t v);

  /// Inserts a row version first visible at `begin_version` (same checks
  /// and index maintenance as Insert).
  Status InsertVersioned(Row row, uint64_t begin_version);

  /// Stamps row `pos` dead as of version `v` (DELETE, or the old version
  /// under UPDATE).
  void MarkRowDead(size_t pos, uint64_t v);

  /// True when global row position `pos` is visible at `snapshot`.
  bool RowVisibleAt(size_t pos, uint64_t snapshot) const {
    return chunks_[pos / chunk_capacity_]->RowVisible(pos % chunk_capacity_,
                                                      snapshot);
  }

  /// All row positions visible at `snapshot`, in position order.
  std::vector<size_t> VisibleRowPositions(uint64_t snapshot) const;

  /// Rebuilds the chunked storage with a new per-chunk capacity (row order,
  /// positions and dictionaries are preserved; zone maps are recomputed
  /// exactly and per-chunk index slices are rebuilt against the new chunk
  /// geometry). Used by tests to sweep chunk geometries.
  void Rechunk(size_t capacity);

  /// Builds (or rebuilds) a per-chunk secondary index on the named column.
  Status CreateIndex(std::string_view column_name);

  /// Index on the given column position, or nullptr.
  const ChunkIndex* GetIndex(size_t column) const;

  /// Probes chunk `c` of `column`'s index and appends the matching
  /// chunk-local rows (ascending) to `out`. The fast path reads only the
  /// resident slice; a slice invalidated by SetValue (or appended without
  /// maintenance) pins the chunk — faulting its payload, counted in
  /// `stats` — and rebuilds first. The index must exist.
  void IndexProbeChunk(size_t column, const ChunkIndex::ProbeSpec& probe,
                       bool scan_semantics, size_t c,
                       std::vector<uint32_t>* out, PinStats* stats) const;

  /// Recomputes per-column distinct/null counts, builds equi-depth
  /// histograms for numeric columns, and re-tightens every chunk's zone
  /// maps (min/max exact again after in-place writes, and the all-distinct
  /// flags are restored).
  void AnalyzeStatistics();

  /// Statistics for a column; zeros if AnalyzeStatistics was never run.
  const ColumnStats& column_stats(size_t column) const;

  /// The string dictionary of a column (created with the table for string
  /// columns), or nullptr for non-string columns. Scans use it to resolve
  /// predicate constants to interned pointers/codes.
  const StringDictionary* dictionary(size_t column) const {
    return dicts_[column].get();
  }

 private:
  /// The chunk accepting the next append (created on demand).
  Chunk* AppendChunk();
  /// Appends one schema-conforming row to storage (no index maintenance).
  void AppendToStorage(const Row& row);
  /// Feeds the freshly appended row at global position `pos` into every
  /// index's tail slice (reads the resident append chunk's payload).
  void MaintainIndexesOnAppend(size_t pos);

  TableSchema schema_;
  BufferPool* pool_ = nullptr;  ///< residency manager (may be null)
  size_t chunk_capacity_ = kDefaultChunkCapacity;
  std::atomic<uint64_t> committed_version_{0};
  size_t num_rows_ = 0;
  size_t reserve_hint_ = 0;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::unique_ptr<ChunkIndex>> indexes_;
  std::vector<ColumnStats> stats_;
  std::vector<std::unique_ptr<StringDictionary>> dicts_;
  /// Keeps the chunk under active append resident between inserts: without
  /// it a sub-chunk budget evicts (spills) the tail after every row and
  /// bulk loads degrade to one write + one read of the whole payload per
  /// row. Moving to the next tail chunk releases the previous pin; declared
  /// after chunks_ so destruction unpins before the chunk dies.
  ChunkPin append_pin_;
};

/// \brief Keeps the chunk containing the most recently touched row pinned.
///
/// Row-sequential loops (maintenance passes, persistence, oracles) call
/// `Touch(row)` before `ValueAt`/`SetValue`/`GetRowInto`. Without it each
/// per-row call pins and immediately unpins, so a budget smaller than one
/// chunk evicts (spilling if dirty) and refaults the whole payload per row
/// — quadratic I/O. The cursor holds the current chunk's pin until the loop
/// crosses a chunk boundary; the per-call pins inside the Table methods
/// then always hit a resident chunk. Stack-local, single-threaded use only.
class RowCursor {
 public:
  explicit RowCursor(const Table* table) : table_(table) {}

  void Touch(size_t row) {
    const size_t c = row / table_->chunk_capacity();
    if (c != chunk_) {
      pin_ = table_->PinChunk(c);
      chunk_ = c;
    }
  }

  void Reset() {
    pin_.Reset();
    chunk_ = static_cast<size_t>(-1);
  }

 private:
  const Table* table_;
  ChunkPin pin_;
  size_t chunk_ = static_cast<size_t>(-1);
};

}  // namespace conquer

#endif  // CONQUER_STORAGE_TABLE_H_
