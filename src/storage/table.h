#ifndef CONQUER_STORAGE_TABLE_H_
#define CONQUER_STORAGE_TABLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/flat_hash.h"
#include "common/result.h"
#include "storage/chunk.h"
#include "storage/dictionary.h"
#include "types/value.h"

namespace conquer {

/// \brief Hash index over a single column: value -> row positions.
///
/// Built eagerly from the table contents; used by the planner for
/// index-nested-loop joins and point lookups on identifier columns.
/// Backed by an open-addressing flat table (no per-node allocations,
/// reserved up-front from table statistics).
class HashIndex {
 public:
  explicit HashIndex(size_t column) : column_(column) {}

  size_t column() const { return column_; }

  /// Pre-sizes the key table (pass the column's expected distinct count).
  void Reserve(size_t expected_keys) { map_.Reserve(expected_keys); }

  void Insert(const Value& key, size_t row_pos) {
    map_.TryEmplaceHashed(key.Hash(), key).first->push_back(row_pos);
  }

  /// Row positions whose indexed column equals `key` (empty if none).
  const std::vector<size_t>& Lookup(const Value& key) const;

  size_t num_keys() const { return map_.size(); }

 private:
  size_t column_;
  FlatHashMap<Value, std::vector<size_t>, ValueHash> map_;
};

/// \brief Per-column statistics gathered by Table::AnalyzeStatistics
/// (the RUNSTATS analogue from the paper's experimental setup).
struct ColumnStats {
  size_t num_distinct = 0;
  size_t num_nulls = 0;
};

/// \brief In-memory chunked columnar table.
///
/// Rows are stored across fixed-capacity chunks (kDefaultChunkCapacity rows
/// each; all chunks except the last are full, so a global row position maps
/// to (pos / capacity, pos % capacity)). Within a chunk every column is a
/// contiguous typed vector: strings as dense dictionary codes into the
/// per-column StringDictionary, numerics/dates as raw arrays. Each
/// chunk×column carries a ZoneMap (min/max, null count, all-distinct flag)
/// maintained on insert, which scans use to skip whole chunks.
///
/// All writes intern strings eagerly — including in-place SetValue — so
/// dictionaries, zone maps and the dictionary fast path of filters are never
/// stale. SetValue drops any hash index on the written column (the next
/// CreateIndex rebuilds it); it never leaves a stale index consultable.
class Table {
 public:
  static constexpr size_t kDefaultChunkCapacity = 64 * 1024;

  explicit Table(TableSchema schema,
                 size_t chunk_capacity = kDefaultChunkCapacity);

  // Movable for construction-time handoff (tests, loaders). The atomic
  // committed-version counter transfers with relaxed ordering: a move must
  // not race with concurrent readers or in-flight writes.
  Table(Table&& other) noexcept;
  Table& operator=(Table&& other) noexcept;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.table_name(); }

  size_t num_rows() const { return num_rows_; }

  // ---- Chunk-level access (vectorized scans). ----
  size_t num_chunks() const { return chunks_.size(); }
  const Chunk& chunk(size_t i) const { return *chunks_[i]; }
  size_t chunk_capacity() const { return chunk_capacity_; }

  // ---- Row-level access (maintenance passes, persistence, tests). ----
  /// Materializes row `i` BY VALUE (the storage is columnar; there is no
  /// resident Row to reference). Strings come back interned.
  Row row(size_t i) const;
  /// Materializes every row, in order (persistence / test convenience).
  std::vector<Row> rows() const;
  /// Materializes row `i` into a caller-owned buffer (no allocation when
  /// the buffer already has the right arity).
  void GetRowInto(size_t i, Row* out) const;
  /// The single value at (row, col); cheaper than materializing the row.
  Value ValueAt(size_t row, size_t col) const;

  /// Overwrites one cell in place (maintenance passes: identifier
  /// propagation, probability assignment). Strings are re-interned
  /// immediately and the zone map stays conservative (null count exact,
  /// min/max widened), so scans never consult stale statistics. Any hash
  /// index on `col` is dropped eagerly; re-run CreateIndex to restore it.
  void SetValue(size_t row, size_t col, const Value& v);

  /// Appends a row after arity and type checks (numeric widening allowed:
  /// an INT64 value may populate a DOUBLE column). Storage normalizes the
  /// values: widened numerics are stored as doubles and strings interned.
  Status Insert(Row row);

  /// Appends without validation (caller guarantees schema conformance);
  /// still interns string values so bulk generators feed the dictionary.
  void InsertUnchecked(const Row& row);

  void Reserve(size_t n) { reserve_hint_ = n; }
  void Clear();

  // ---- MVCC write versioning. ----
  //
  // Writes run exclusively (behind the engine's exclusive admission ticket),
  // so version stamping itself needs no synchronization; only the committed
  // version counter is atomic so readers can pin a snapshot without a lock.
  // A scan admitted at snapshot S sees exactly the row versions with
  // begin <= S < end; bulk-loaded rows carry the implicit range
  // [0, kVersionMax) and are visible everywhere.

  /// The latest committed version; scans pin this as their snapshot.
  uint64_t committed_version() const {
    return committed_version_.load(std::memory_order_acquire);
  }

  /// The version a new write should stamp (committed + 1). The write is
  /// invisible to concurrent snapshots until CommitWrite publishes it.
  uint64_t BeginWrite() const {
    return committed_version_.load(std::memory_order_relaxed) + 1;
  }

  /// Publishes version `v`; subsequent snapshots include its rows.
  void CommitWrite(uint64_t v) {
    committed_version_.store(v, std::memory_order_release);
  }

  /// Physically reverts every stamp made at version `v` after a failed
  /// write: rows inserted at `v` become permanent tombstones (begin pushed
  /// to kVersionMax, visible at no snapshot) and rows stamped dead at `v`
  /// are resurrected (end restored to kVersionMax). Without this, the next
  /// write would reuse `v` — BeginWrite is committed+1 and the abort never
  /// advanced it — and its commit would publish the aborted stamps. Runs
  /// under the same exclusive ticket as the write it aborts.
  void AbortWrite(uint64_t v);

  /// Inserts a row version first visible at `begin_version` (same checks
  /// and index maintenance as Insert).
  Status InsertVersioned(Row row, uint64_t begin_version);

  /// Stamps row `pos` dead as of version `v` (DELETE, or the old version
  /// under UPDATE).
  void MarkRowDead(size_t pos, uint64_t v);

  /// True when global row position `pos` is visible at `snapshot`.
  bool RowVisibleAt(size_t pos, uint64_t snapshot) const {
    return chunks_[pos / chunk_capacity_]->RowVisible(pos % chunk_capacity_,
                                                      snapshot);
  }

  /// All row positions visible at `snapshot`, in position order.
  std::vector<size_t> VisibleRowPositions(uint64_t snapshot) const;

  /// Rebuilds the chunked storage with a new per-chunk capacity (row order,
  /// positions, dictionaries and indexes are preserved; zone maps are
  /// recomputed exactly). Used by tests to sweep chunk geometries.
  void Rechunk(size_t capacity);

  /// Builds (or rebuilds) a hash index on the named column.
  Status CreateIndex(std::string_view column_name);

  /// Index on the given column position, or nullptr.
  const HashIndex* GetIndex(size_t column) const;

  /// Recomputes per-column distinct/null counts and re-tightens every
  /// chunk's zone maps (min/max exact again after in-place writes, and the
  /// all-distinct flags are restored).
  void AnalyzeStatistics();

  /// Statistics for a column; zeros if AnalyzeStatistics was never run.
  const ColumnStats& column_stats(size_t column) const;

  /// The string dictionary of a column (created with the table for string
  /// columns), or nullptr for non-string columns. Scans use it to resolve
  /// predicate constants to interned pointers/codes.
  const StringDictionary* dictionary(size_t column) const {
    return dicts_[column].get();
  }

 private:
  /// The chunk accepting the next append (created on demand).
  Chunk* AppendChunk();
  /// Appends one schema-conforming row to storage (no index maintenance).
  void AppendToStorage(const Row& row);

  TableSchema schema_;
  size_t chunk_capacity_ = kDefaultChunkCapacity;
  std::atomic<uint64_t> committed_version_{0};
  size_t num_rows_ = 0;
  size_t reserve_hint_ = 0;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::unique_ptr<HashIndex>> indexes_;
  std::vector<ColumnStats> stats_;
  std::vector<std::unique_ptr<StringDictionary>> dicts_;
};

}  // namespace conquer

#endif  // CONQUER_STORAGE_TABLE_H_
