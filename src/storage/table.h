#ifndef CONQUER_STORAGE_TABLE_H_
#define CONQUER_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "types/value.h"

namespace conquer {

/// \brief One tuple: a vector of values aligned with a schema.
using Row = std::vector<Value>;

/// \brief Hash index over a single column: value -> row positions.
///
/// Built eagerly from the table contents; used by the planner for
/// index-nested-loop joins and point lookups on identifier columns.
class HashIndex {
 public:
  explicit HashIndex(size_t column) : column_(column) {}

  size_t column() const { return column_; }

  void Insert(const Value& key, size_t row_pos) {
    map_[key].push_back(row_pos);
  }

  /// Row positions whose indexed column equals `key` (empty if none).
  const std::vector<size_t>& Lookup(const Value& key) const;

  size_t num_keys() const { return map_.size(); }

 private:
  size_t column_;
  std::unordered_map<Value, std::vector<size_t>, ValueHash> map_;
};

/// \brief Per-column statistics gathered by Table::AnalyzeStatistics
/// (the RUNSTATS analogue from the paper's experimental setup).
struct ColumnStats {
  size_t num_distinct = 0;
  size_t num_nulls = 0;
};

/// \brief In-memory row-store table.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.table_name(); }

  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Mutable row access for in-place maintenance passes (identifier
  /// propagation, probability assignment). Invalidates indexes/statistics:
  /// callers must re-run CreateIndex / AnalyzeStatistics afterwards.
  Row* mutable_row(size_t i) { return &rows_[i]; }

  /// Appends a row after arity and type checks (numeric widening allowed:
  /// an INT64 value may populate a DOUBLE column).
  Status Insert(Row row);

  /// Appends without validation; caller guarantees schema conformance.
  void InsertUnchecked(Row row) { rows_.push_back(std::move(row)); }

  void Reserve(size_t n) { rows_.reserve(n); }
  void Clear() {
    rows_.clear();
    indexes_.clear();
    stats_.clear();
  }

  /// Builds (or rebuilds) a hash index on the named column.
  Status CreateIndex(std::string_view column_name);

  /// Index on the given column position, or nullptr.
  const HashIndex* GetIndex(size_t column) const;

  /// Recomputes per-column distinct/null counts.
  void AnalyzeStatistics();

  /// Statistics for a column; zeros if AnalyzeStatistics was never run.
  const ColumnStats& column_stats(size_t column) const;

 private:
  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<std::unique_ptr<HashIndex>> indexes_;
  std::vector<ColumnStats> stats_;
};

}  // namespace conquer

#endif  // CONQUER_STORAGE_TABLE_H_
