#ifndef CONQUER_STORAGE_TABLE_H_
#define CONQUER_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/flat_hash.h"
#include "common/result.h"
#include "storage/dictionary.h"
#include "types/value.h"

namespace conquer {

/// \brief One tuple: a vector of values aligned with a schema.
using Row = std::vector<Value>;

/// \brief Hash index over a single column: value -> row positions.
///
/// Built eagerly from the table contents; used by the planner for
/// index-nested-loop joins and point lookups on identifier columns.
/// Backed by an open-addressing flat table (no per-node allocations,
/// reserved up-front from table statistics).
class HashIndex {
 public:
  explicit HashIndex(size_t column) : column_(column) {}

  size_t column() const { return column_; }

  /// Pre-sizes the key table (pass the column's expected distinct count).
  void Reserve(size_t expected_keys) { map_.Reserve(expected_keys); }

  void Insert(const Value& key, size_t row_pos) {
    map_.TryEmplaceHashed(key.Hash(), key).first->push_back(row_pos);
  }

  /// Row positions whose indexed column equals `key` (empty if none).
  const std::vector<size_t>& Lookup(const Value& key) const;

  size_t num_keys() const { return map_.size(); }

 private:
  size_t column_;
  FlatHashMap<Value, std::vector<size_t>, ValueHash> map_;
};

/// \brief Per-column statistics gathered by Table::AnalyzeStatistics
/// (the RUNSTATS analogue from the paper's experimental setup).
struct ColumnStats {
  size_t num_distinct = 0;
  size_t num_nulls = 0;
};

/// \brief In-memory row-store table.
///
/// String columns are dictionary-encoded: Insert/InsertUnchecked intern
/// every string into a per-column StringDictionary and store interned
/// references in the row, so downstream joins/aggregations hash and compare
/// strings as integers. Maintenance passes writing plain strings through
/// mutable_row() are re-interned by the next AnalyzeStatistics.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.table_name(); }

  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Mutable row access for in-place maintenance passes (identifier
  /// propagation, probability assignment). Invalidates indexes/statistics:
  /// callers must re-run CreateIndex / AnalyzeStatistics afterwards (which
  /// also re-interns any plain strings the pass wrote).
  Row* mutable_row(size_t i) { return &rows_[i]; }

  /// Appends a row after arity and type checks (numeric widening allowed:
  /// an INT64 value may populate a DOUBLE column). The stored row is
  /// normalized: widened numerics are re-validated and strings interned
  /// *after* widening, in one pass.
  Status Insert(Row row);

  /// Appends without validation (caller guarantees schema conformance);
  /// still interns string values so bulk generators feed the dictionary.
  void InsertUnchecked(Row row);

  void Reserve(size_t n) { rows_.reserve(n); }
  void Clear() {
    rows_.clear();
    indexes_.clear();
    stats_.clear();
    dicts_.clear();
  }

  /// Builds (or rebuilds) a hash index on the named column.
  Status CreateIndex(std::string_view column_name);

  /// Index on the given column position, or nullptr.
  const HashIndex* GetIndex(size_t column) const;

  /// Recomputes per-column distinct/null counts; also re-interns any plain
  /// string values written through mutable_row (codes of already-interned
  /// strings are stable).
  void AnalyzeStatistics();

  /// Statistics for a column; zeros if AnalyzeStatistics was never run.
  const ColumnStats& column_stats(size_t column) const;

  /// The string dictionary of a column, or nullptr (non-string column, or
  /// no string seen yet). Scans use it to resolve predicate constants to
  /// interned pointers.
  const StringDictionary* dictionary(size_t column) const {
    return column < dicts_.size() ? dicts_[column].get() : nullptr;
  }

  /// Interns every plain (non-interned) string value in place. Idempotent.
  void InternStrings();

 private:
  /// Lazily creates the dictionary of a string column.
  StringDictionary* DictionaryFor(size_t column);
  /// Interns string values of `row` into the column dictionaries.
  void InternRow(Row* row);

  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<std::unique_ptr<HashIndex>> indexes_;
  std::vector<ColumnStats> stats_;
  std::vector<std::unique_ptr<StringDictionary>> dicts_;
};

}  // namespace conquer

#endif  // CONQUER_STORAGE_TABLE_H_
