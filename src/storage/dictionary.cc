#include "storage/dictionary.h"

#include <functional>

namespace conquer {

namespace {
// The raw hash fed to the lookup table. Computed over the view; the hash
// stored for Value::Hash compatibility is std::hash<std::string> over the
// owned copy (the two may differ by implementation — each is used only in
// its own domain).
size_t ViewHash(std::string_view s) { return std::hash<std::string_view>()(s); }
}  // namespace

uint32_t StringDictionary::InternLocked(std::string_view s) {
  const size_t raw = ViewHash(s);
  if (const uint32_t* code = lookup_.FindHashed(raw, s)) return *code;
  entries_.emplace_back(s);
  hashes_.push_back(std::hash<std::string>()(entries_.back()));
  const uint32_t code = static_cast<uint32_t>(entries_.size() - 1);
  // Key the lookup by a view into the deque-owned copy, not the caller's
  // transient buffer.
  *lookup_.TryEmplaceHashed(raw, std::string_view(entries_.back())).first =
      code;
  return code;
}

uint32_t StringDictionary::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  return InternLocked(s);
}

Value StringDictionary::InternValue(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t code = InternLocked(s);
  return Value::Interned(&entries_[code], hashes_[code]);
}

uint32_t StringDictionary::Find(std::string_view s) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t* code = lookup_.FindHashed(ViewHash(s), s);
  return code != nullptr ? *code : kInvalidCode;
}

uint64_t StringDictionary::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t bytes = lookup_.StructureBytes() +
                   hashes_.capacity() * sizeof(size_t) +
                   entries_.size() * sizeof(std::string);
  for (const std::string& s : entries_) bytes += s.capacity();
  return bytes;
}

}  // namespace conquer
