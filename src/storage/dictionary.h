#ifndef CONQUER_STORAGE_DICTIONARY_H_
#define CONQUER_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>

#include "common/flat_hash.h"
#include "types/value.h"

namespace conquer {

/// \brief Per-column string interning pool.
///
/// Every distinct string of a column is stored once; rows carry
/// `Value::Interned` references (stable `const std::string*` plus the
/// precomputed hash), so string equality in joins and group-bys is a pointer
/// compare and hashing is an array lookup instead of a byte scan.
///
/// Codes are dense and assigned in first-intern order; an existing string's
/// code never changes (`AnalyzeStatistics` may re-intern rows freely).
/// Entry storage is a deque so the `std::string*` handed to values stays
/// valid as the dictionary grows.
///
/// Thread-safety: Intern/InternValue/Find/size/MemoryBytes are mutually
/// thread-safe (one mutex). The per-code accessors (StringAt/HashAt/
/// ValueAt) are lock-free and must not run concurrently with interning —
/// they index `hashes_`, which can reallocate on growth. The serving
/// layer's admission control enforces exactly that split: writes (which
/// intern) run exclusively, queries (which only Find and decode codes)
/// share. The query path never interns: a literal that misses the
/// dictionary proves no stored row can match it.
class StringDictionary {
 public:
  static constexpr uint32_t kInvalidCode = 0xffffffffu;

  /// Code of `s`, interning it first if absent.
  uint32_t Intern(std::string_view s);

  /// Code of `s` without interning, or kInvalidCode. Predicate constants
  /// resolve through this: a miss proves no row of the column can match.
  uint32_t Find(std::string_view s) const;

  /// Precondition for the accessors: `code < size()` and no concurrent
  /// interning (see class comment).
  const std::string* StringAt(uint32_t code) const { return &entries_[code]; }
  size_t HashAt(uint32_t code) const { return hashes_[code]; }

  /// The interned Value for a code (what scans place into rows).
  Value ValueAt(uint32_t code) const {
    return Value::Interned(&entries_[code], hashes_[code]);
  }

  /// Interns `s` and returns its interned Value in one step (one lock).
  Value InternValue(std::string_view s);

  /// Number of distinct strings interned so far.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  /// Approximate heap footprint (entries + hash array + lookup table).
  uint64_t MemoryBytes() const;

 private:
  /// Requires mu_ held.
  uint32_t InternLocked(std::string_view s);

  mutable std::mutex mu_;            ///< guards all three containers
  std::deque<std::string> entries_;  ///< deque: grow never moves strings
  std::vector<size_t> hashes_;      ///< std::hash<std::string> per entry
  /// Lookup keyed by views into entries_ (stable), valued by code.
  FlatHashMap<std::string_view, uint32_t> lookup_;
};

}  // namespace conquer

#endif  // CONQUER_STORAGE_DICTIONARY_H_
