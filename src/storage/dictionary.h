#ifndef CONQUER_STORAGE_DICTIONARY_H_
#define CONQUER_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "common/flat_hash.h"
#include "types/value.h"

namespace conquer {

/// \brief Per-column string interning pool.
///
/// Every distinct string of a column is stored once; rows carry
/// `Value::Interned` references (stable `const std::string*` plus the
/// precomputed hash), so string equality in joins and group-bys is a pointer
/// compare and hashing is an array lookup instead of a byte scan.
///
/// Codes are dense and assigned in first-intern order; an existing string's
/// code never changes (`AnalyzeStatistics` may re-intern rows freely).
/// Entry storage is a deque so the `std::string*` handed to values stays
/// valid as the dictionary grows. Writes are not thread-safe; interning
/// happens at load/insert/analyze time, while parallel query execution only
/// reads.
class StringDictionary {
 public:
  static constexpr uint32_t kInvalidCode = 0xffffffffu;

  /// Code of `s`, interning it first if absent.
  uint32_t Intern(std::string_view s);

  /// Code of `s` without interning, or kInvalidCode. Predicate constants
  /// resolve through this: a miss proves no row of the column can match.
  uint32_t Find(std::string_view s) const;

  /// Precondition for the accessors: `code < size()`.
  const std::string* StringAt(uint32_t code) const { return &entries_[code]; }
  size_t HashAt(uint32_t code) const { return hashes_[code]; }

  /// The interned Value for a code (what scans place into rows).
  Value ValueAt(uint32_t code) const {
    return Value::Interned(&entries_[code], hashes_[code]);
  }

  /// Interns `s` and returns its interned Value in one step.
  Value InternValue(std::string_view s) { return ValueAt(Intern(s)); }

  /// Number of distinct strings interned so far.
  size_t size() const { return entries_.size(); }

  /// Approximate heap footprint (entries + hash array + lookup table).
  uint64_t MemoryBytes() const;

 private:
  std::deque<std::string> entries_;  ///< deque: grow never moves strings
  std::vector<size_t> hashes_;      ///< std::hash<std::string> per entry
  /// Lookup keyed by views into entries_ (stable), valued by code.
  FlatHashMap<std::string_view, uint32_t> lookup_;
};

}  // namespace conquer

#endif  // CONQUER_STORAGE_DICTIONARY_H_
