#include "storage/chunk_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace conquer {

namespace {

/// Largest double magnitude for which `(double)v == d` has the unique
/// solution `v == (int64_t)d` over int64. Below 2^53 every int64 in range
/// converts exactly, and no |v| >= 2^53 can round down into the range; a
/// 2^52 cutoff leaves comfortable margin.
constexpr double kExactIntDouble = 4503599627370496.0;  // 2^52

bool IsIntegerBacked(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDate ||
         t == DataType::kBool;
}

}  // namespace

ChunkIndex::ProbeSpec ChunkIndex::ResolveProbe(const Value& v,
                                               const StringDictionary* dict,
                                               bool join_semantics,
                                               bool* unsupported) const {
  *unsupported = false;
  ProbeSpec spec;
  if (v.is_null()) {
    // Scan equality (`col = NULL`) matches nothing; the hash-join key
    // equality of this engine (TotalCompare == 0) matches NULL with NULL.
    spec.kind = join_semantics ? ProbeSpec::Kind::kNull : ProbeSpec::Kind::kNone;
    return spec;
  }
  switch (type_) {
    case DataType::kString: {
      if (v.type() != DataType::kString) return spec;  // cross-class: kNone
      const uint32_t code = dict->Find(v.string_value());
      if (code == StringDictionary::kInvalidCode) return spec;
      spec.kind = ProbeSpec::Kind::kKey;
      spec.key = code;
      return spec;
    }
    case DataType::kBool: {
      if (v.type() != DataType::kBool) return spec;
      spec.kind = ProbeSpec::Kind::kKey;
      spec.key = v.bool_value() ? 1 : 0;
      return spec;
    }
    case DataType::kDate: {
      if (v.type() != DataType::kDate) return spec;
      spec.kind = ProbeSpec::Kind::kKey;
      spec.key = static_cast<uint64_t>(v.date_value());
      return spec;
    }
    case DataType::kInt64: {
      if (v.type() == DataType::kInt64) {
        spec.kind = ProbeSpec::Kind::kKey;
        spec.key = static_cast<uint64_t>(v.int_value());
        return spec;
      }
      if (v.type() == DataType::kDouble) {
        const double d = v.double_value();
        if (std::isnan(d)) {
          // Scan equality compares NaN equal to every numeric (Compare is
          // (a>b)-(a<b)); no key probe is sound. Hash-join equality never
          // pairs NaN with an integer (the buckets differ), so kNone.
          if (!join_semantics) *unsupported = true;
          return spec;
        }
        if (std::trunc(d) != d) return spec;  // non-integral: kNone
        if (std::fabs(d) > kExactIntDouble) {
          *unsupported = true;  // multiple int64s may round onto d
          return spec;
        }
        spec.kind = ProbeSpec::Kind::kKey;
        spec.key = static_cast<uint64_t>(static_cast<int64_t>(d));
        return spec;
      }
      return spec;
    }
    case DataType::kDouble: {
      if (join_semantics) {
        // Join-key probes against double columns would have to replicate
        // hash-bucket NaN pairing; the planner never requests them.
        *unsupported = true;
        return spec;
      }
      double d;
      if (v.type() == DataType::kDouble) {
        d = v.double_value();
      } else if (v.type() == DataType::kInt64) {
        d = static_cast<double>(v.int_value());
      } else {
        return spec;  // cross-class: kNone
      }
      if (std::isnan(d)) {
        *unsupported = true;  // NaN literal scan-matches every stored value
        return spec;
      }
      spec.kind = ProbeSpec::Kind::kKey;
      spec.key = DoubleKey(d);
      return spec;
    }
    default:
      return spec;
  }
}

void ChunkIndex::EnsureChunks(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slices_.size() < n) slices_.resize(n);
}

bool ChunkIndex::KeyOfStored(const ColumnVector& cv, size_t row,
                             uint64_t* key) const {
  if (IsIntegerBacked(type_)) {
    *key = static_cast<uint64_t>(cv.fixed_data()[row]);
    return true;
  }
  if (type_ == DataType::kDouble) {
    const double d = cv.double_data()[row];
    if (std::isnan(d)) return false;  // wildcard, not keyed
    *key = DoubleKey(d);
    return true;
  }
  *key = cv.code_data()[row];  // kString
  return true;
}

void ChunkIndex::AppendStored(size_t chunk, uint32_t local_row,
                              const ColumnVector& cv) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slices_.size() <= chunk) slices_.resize(chunk + 1);
  Slice& s = slices_[chunk];
  if (!s.valid) return;  // the pending rebuild re-reads every row
  if (cv.is_null(local_row)) {
    s.nulls.push_back(local_row);
    return;
  }
  uint64_t key;
  if (!KeyOfStored(cv, local_row, &key)) {
    s.wildcards.push_back(local_row);
    return;
  }
  s.keys.push_back(key);
  s.rows.push_back(local_row);
}

void ChunkIndex::InvalidateChunk(size_t c) {
  std::lock_guard<std::mutex> lock(mu_);
  if (c >= slices_.size()) return;
  Slice& s = slices_[c];
  s.valid = false;
  s.keys.clear();
  s.rows.clear();
  s.nulls.clear();
  s.wildcards.clear();
  s.sorted_limit = 0;
  s.distinct = 0;
}

bool ChunkIndex::ChunkValid(size_t c) const {
  std::lock_guard<std::mutex> lock(mu_);
  // A chunk beyond the slice vector was appended without index maintenance
  // (bulk InsertUnchecked); it needs a rebuild just like an invalidated one.
  return c < slices_.size() && slices_[c].valid;
}

void ChunkIndex::SortSliceLocked(Slice* s) const {
  if (s->sorted_limit == s->keys.size()) return;
  std::vector<std::pair<uint64_t, uint32_t>> entries(s->keys.size());
  for (size_t i = 0; i < s->keys.size(); ++i) {
    entries[i] = {s->keys[i], s->rows[i]};
  }
  std::sort(entries.begin(), entries.end());
  size_t distinct = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i == 0 || entries[i].first != entries[i - 1].first) ++distinct;
    s->keys[i] = entries[i].first;
    s->rows[i] = entries[i].second;
  }
  s->sorted_limit = s->keys.size();
  s->distinct = distinct;
}

void ChunkIndex::RebuildSliceLocked(Slice* s, const ColumnVector& cv) const {
  s->keys.clear();
  s->rows.clear();
  s->nulls.clear();
  s->wildcards.clear();
  const size_t n = cv.size();
  s->keys.reserve(n);
  s->rows.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    if (cv.is_null(r)) {
      s->nulls.push_back(static_cast<uint32_t>(r));
      continue;
    }
    uint64_t key;
    if (!KeyOfStored(cv, r, &key)) {
      s->wildcards.push_back(static_cast<uint32_t>(r));
      continue;
    }
    s->keys.push_back(key);
    s->rows.push_back(static_cast<uint32_t>(r));
  }
  s->sorted_limit = 0;
  s->valid = true;
  SortSliceLocked(s);
}

void ChunkIndex::LookupSliceLocked(const Slice& s, const ProbeSpec& probe,
                                   bool scan_semantics,
                                   std::vector<uint32_t>* out) const {
  if (probe.kind == ProbeSpec::Kind::kNull) {
    out->insert(out->end(), s.nulls.begin(), s.nulls.end());
    return;
  }
  const uint32_t* begin = nullptr;
  const uint32_t* end = nullptr;
  if (probe.kind == ProbeSpec::Kind::kKey && !s.keys.empty()) {
    auto lo = std::lower_bound(s.keys.begin(), s.keys.end(), probe.key);
    auto hi = std::upper_bound(lo, s.keys.end(), probe.key);
    begin = s.rows.data() + (lo - s.keys.begin());
    end = s.rows.data() + (hi - s.keys.begin());
  }
  // NaN-valued rows compare equal to every numeric literal under scan
  // semantics; merge them in (both streams are ascending and disjoint).
  if (scan_semantics && !s.wildcards.empty()) {
    const size_t base = out->size();
    out->resize(base + (end - begin) + s.wildcards.size());
    std::merge(begin, end, s.wildcards.begin(), s.wildcards.end(),
               out->begin() + base);
    return;
  }
  out->insert(out->end(), begin, end);
}

bool ChunkIndex::TryLookup(size_t c, const ProbeSpec& probe,
                           bool scan_semantics,
                           std::vector<uint32_t>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (c >= slices_.size() || !slices_[c].valid) return false;
  SortSliceLocked(&slices_[c]);
  LookupSliceLocked(slices_[c], probe, scan_semantics, out);
  return true;
}

void ChunkIndex::RebuildAndLookup(size_t c, const ColumnVector& cv,
                                  const ProbeSpec& probe, bool scan_semantics,
                                  std::vector<uint32_t>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (slices_.size() <= c) slices_.resize(c + 1);
  // Double-checked under the lock: a concurrent probe may have rebuilt the
  // slice while this caller was pinning the chunk.
  if (!slices_[c].valid) RebuildSliceLocked(&slices_[c], cv);
  SortSliceLocked(&slices_[c]);
  LookupSliceLocked(slices_[c], probe, scan_semantics, out);
}

void ChunkIndex::RebuildChunk(size_t c, const ColumnVector& cv) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (slices_.size() <= c) slices_.resize(c + 1);
  RebuildSliceLocked(&slices_[c], cv);
}

size_t ChunkIndex::approx_num_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const Slice& s : slices_) total += s.distinct;
  return std::max<size_t>(1, total);
}

uint64_t ChunkIndex::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t bytes = 0;
  for (const Slice& s : slices_) {
    bytes += s.keys.capacity() * sizeof(uint64_t) +
             s.rows.capacity() * sizeof(uint32_t) +
             s.nulls.capacity() * sizeof(uint32_t) +
             s.wildcards.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace conquer
