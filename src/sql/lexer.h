#ifndef CONQUER_SQL_LEXER_H_
#define CONQUER_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace conquer {

/// \brief Tokenizes a SQL string.
///
/// Keywords are recognized case-insensitively and reported upper-cased.
/// Comments: `-- to end of line`. Returns InvalidArgument with the byte
/// offset on any unrecognized character or unterminated literal.
class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  /// Tokenizes the entire input; the last token is kEof.
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> NextToken();
  void SkipWhitespaceAndComments();

  std::string_view sql_;
  size_t pos_ = 0;
};

}  // namespace conquer

#endif  // CONQUER_SQL_LEXER_H_
