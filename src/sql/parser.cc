#include "sql/parser.h"

#include "common/str_util.h"
#include "sql/lexer.h"

namespace conquer {

bool Parser::Match(TokenType t) {
  if (Peek().type == t) {
    ++pos_;
    return true;
  }
  return false;
}

bool Parser::MatchKeyword(const char* kw) {
  if (Peek().IsKeyword(kw)) {
    ++pos_;
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType t, const char* what) {
  if (Peek().type != t) {
    return ErrorHere(std::string("expected ") + what);
  }
  ++pos_;
  return Status::OK();
}

Status Parser::ExpectKeyword(const char* kw) {
  if (!Peek().IsKeyword(kw)) {
    return ErrorHere(std::string("expected keyword ") + kw);
  }
  ++pos_;
  return Status::OK();
}

Status Parser::ErrorHere(const std::string& msg) const {
  const Token& tok = Peek();
  std::string got = tok.type == TokenType::kEof ? "end of input"
                                                : "'" + tok.text + "'";
  if (got == "''") got = "token";
  return Status::InvalidArgument(
      StringPrintf("%s at offset %zu (got %s)", msg.c_str(), tok.position,
                   got.c_str()));
}

Result<std::unique_ptr<SelectStatement>> Parser::Parse(std::string_view sql) {
  Lexer lexer(sql);
  CONQUER_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  CONQUER_ASSIGN_OR_RETURN(auto stmt, parser.ParseSelect());
  if (parser.Peek().type != TokenType::kEof) {
    return parser.ErrorHere("unexpected trailing input");
  }
  return stmt;
}

Result<ParsedStatement> Parser::ParseStatement(std::string_view sql) {
  Lexer lexer(sql);
  CONQUER_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  ParsedStatement parsed;
  if (parser.MatchKeyword("EXPLAIN")) {
    parsed.explain = parser.MatchKeyword("ANALYZE") ? ExplainMode::kAnalyze
                                                    : ExplainMode::kPlan;
  }
  if (parser.Peek().IsKeyword("INSERT") || parser.Peek().IsKeyword("UPDATE") ||
      parser.Peek().IsKeyword("DELETE")) {
    if (parsed.explain != ExplainMode::kNone) {
      return parser.ErrorHere("EXPLAIN is not supported for write statements");
    }
    if (parser.Peek().IsKeyword("INSERT")) {
      parsed.kind = StatementKind::kInsert;
      CONQUER_ASSIGN_OR_RETURN(parsed.insert, parser.ParseInsert());
    } else if (parser.Peek().IsKeyword("UPDATE")) {
      parsed.kind = StatementKind::kUpdate;
      CONQUER_ASSIGN_OR_RETURN(parsed.update, parser.ParseUpdate());
    } else {
      parsed.kind = StatementKind::kDelete;
      CONQUER_ASSIGN_OR_RETURN(parsed.del, parser.ParseDelete());
    }
  } else {
    CONQUER_ASSIGN_OR_RETURN(parsed.select, parser.ParseSelect());
  }
  if (parser.Peek().type != TokenType::kEof) {
    return parser.ErrorHere("unexpected trailing input");
  }
  return parsed;
}

Result<std::unique_ptr<InsertStatement>> Parser::ParseInsert() {
  CONQUER_RETURN_NOT_OK(ExpectKeyword("INSERT"));
  CONQUER_RETURN_NOT_OK(ExpectKeyword("INTO"));
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected table name after INSERT INTO");
  }
  auto stmt = std::make_unique<InsertStatement>();
  stmt->table_name = Advance().text;

  if (Match(TokenType::kLParen)) {
    while (true) {
      if (Peek().type != TokenType::kIdentifier) {
        return ErrorHere("expected column name in INSERT column list");
      }
      stmt->columns.push_back(Advance().text);
      if (!Match(TokenType::kComma)) break;
    }
    CONQUER_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
  }

  CONQUER_RETURN_NOT_OK(ExpectKeyword("VALUES"));
  while (true) {
    CONQUER_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after VALUES"));
    std::vector<ExprPtr> row;
    while (true) {
      CONQUER_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      row.push_back(std::move(e));
      if (!Match(TokenType::kComma)) break;
    }
    CONQUER_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    if (!stmt->columns.empty() && row.size() != stmt->columns.size()) {
      return ErrorHere("VALUES tuple arity does not match the column list");
    }
    stmt->rows.push_back(std::move(row));
    if (!Match(TokenType::kComma)) break;
  }
  return stmt;
}

Result<std::unique_ptr<UpdateStatement>> Parser::ParseUpdate() {
  CONQUER_RETURN_NOT_OK(ExpectKeyword("UPDATE"));
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected table name after UPDATE");
  }
  auto stmt = std::make_unique<UpdateStatement>();
  stmt->table_name = Advance().text;

  CONQUER_RETURN_NOT_OK(ExpectKeyword("SET"));
  while (true) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected column name in SET list");
    }
    Assignment a;
    a.column = Advance().text;
    CONQUER_RETURN_NOT_OK(Expect(TokenType::kEq, "'=' in SET assignment"));
    CONQUER_ASSIGN_OR_RETURN(a.value, ParseExpr());
    stmt->assignments.push_back(std::move(a));
    if (!Match(TokenType::kComma)) break;
  }

  if (MatchKeyword("WHERE")) {
    CONQUER_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return stmt;
}

Result<std::unique_ptr<DeleteStatement>> Parser::ParseDelete() {
  CONQUER_RETURN_NOT_OK(ExpectKeyword("DELETE"));
  CONQUER_RETURN_NOT_OK(ExpectKeyword("FROM"));
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected table name after DELETE FROM");
  }
  auto stmt = std::make_unique<DeleteStatement>();
  stmt->table_name = Advance().text;
  if (MatchKeyword("WHERE")) {
    CONQUER_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return stmt;
}

Result<std::unique_ptr<SelectStatement>> Parser::ParseSelect() {
  CONQUER_RETURN_NOT_OK(ExpectKeyword("SELECT"));
  auto stmt = std::make_unique<SelectStatement>();
  stmt->distinct = MatchKeyword("DISTINCT");

  // SELECT list. `SELECT *` expands during binding; represent it as an empty
  // select list with distinct flag preserved — but an explicit marker is
  // clearer, so use a single item with column_name "*" is avoided; instead we
  // treat bare '*' as "all columns" via an empty list + flag.
  if (Peek().type == TokenType::kStar) {
    Advance();
    // Empty select_list means "all columns of all FROM tables".
  } else {
    while (true) {
      SelectItem item;
      CONQUER_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("AS")) {
        if (Peek().type != TokenType::kIdentifier) {
          return ErrorHere("expected alias after AS");
        }
        item.alias = Advance().text;
      } else if (Peek().type == TokenType::kIdentifier) {
        item.alias = Advance().text;
      }
      stmt->select_list.push_back(std::move(item));
      if (!Match(TokenType::kComma)) break;
    }
  }

  CONQUER_RETURN_NOT_OK(ExpectKeyword("FROM"));
  while (true) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected table name in FROM");
    }
    TableRef ref;
    ref.table_name = Advance().text;
    if (MatchKeyword("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return ErrorHere("expected alias after AS");
      }
      ref.alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Advance().text;
    }
    stmt->from.push_back(std::move(ref));
    if (!Match(TokenType::kComma)) break;
  }

  if (MatchKeyword("WHERE")) {
    CONQUER_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }

  if (MatchKeyword("GROUP")) {
    CONQUER_RETURN_NOT_OK(ExpectKeyword("BY"));
    while (true) {
      CONQUER_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->group_by.push_back(std::move(e));
      if (!Match(TokenType::kComma)) break;
    }
  }

  if (MatchKeyword("HAVING")) {
    return ErrorHere("HAVING is not supported");
  }

  if (MatchKeyword("ORDER")) {
    CONQUER_RETURN_NOT_OK(ExpectKeyword("BY"));
    while (true) {
      OrderItem item;
      CONQUER_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.descending = true;
      } else {
        MatchKeyword("ASC");
      }
      stmt->order_by.push_back(std::move(item));
      if (!Match(TokenType::kComma)) break;
    }
  }

  if (MatchKeyword("LIMIT")) {
    if (Peek().type != TokenType::kIntLiteral) {
      return ErrorHere("expected integer after LIMIT");
    }
    stmt->limit = Advance().int_value;
  }

  stmt->num_params = num_params_;
  return stmt;
}

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  CONQUER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (MatchKeyword("OR")) {
    CONQUER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = Expr::MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  CONQUER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (MatchKeyword("AND")) {
    CONQUER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = Expr::MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    CONQUER_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
    return Expr::MakeUnary(UnaryOp::kNot, std::move(e));
  }
  return ParsePredicate();
}

Result<ExprPtr> Parser::ParsePredicate() {
  CONQUER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

  // IS [NOT] NULL
  if (MatchKeyword("IS")) {
    bool negated = MatchKeyword("NOT");
    CONQUER_RETURN_NOT_OK(ExpectKeyword("NULL"));
    return Expr::MakeUnary(negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                           std::move(lhs));
  }

  bool negated = false;
  if (Peek().IsKeyword("NOT") &&
      (PeekAhead(1).IsKeyword("LIKE") || PeekAhead(1).IsKeyword("BETWEEN") ||
       PeekAhead(1).IsKeyword("IN"))) {
    Advance();
    negated = true;
  }

  if (MatchKeyword("LIKE")) {
    CONQUER_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
    ExprPtr like =
        Expr::MakeBinary(BinaryOp::kLike, std::move(lhs), std::move(pattern));
    if (negated) return Expr::MakeUnary(UnaryOp::kNot, std::move(like));
    return like;
  }

  if (MatchKeyword("BETWEEN")) {
    CONQUER_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    CONQUER_RETURN_NOT_OK(ExpectKeyword("AND"));
    CONQUER_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    // x BETWEEN a AND b  ==>  x >= a AND x <= b
    ExprPtr ge =
        Expr::MakeBinary(BinaryOp::kGe, lhs->Clone(), std::move(lo));
    ExprPtr le = Expr::MakeBinary(BinaryOp::kLe, std::move(lhs), std::move(hi));
    ExprPtr both =
        Expr::MakeBinary(BinaryOp::kAnd, std::move(ge), std::move(le));
    if (negated) return Expr::MakeUnary(UnaryOp::kNot, std::move(both));
    return both;
  }

  if (MatchKeyword("IN")) {
    CONQUER_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after IN"));
    // x IN (v1, v2, ...)  ==>  x = v1 OR x = v2 OR ...
    ExprPtr disjunction;
    while (true) {
      CONQUER_ASSIGN_OR_RETURN(ExprPtr v, ParseAdditive());
      ExprPtr eq = Expr::MakeBinary(BinaryOp::kEq, lhs->Clone(), std::move(v));
      if (disjunction) {
        disjunction = Expr::MakeBinary(BinaryOp::kOr, std::move(disjunction),
                                       std::move(eq));
      } else {
        disjunction = std::move(eq);
      }
      if (!Match(TokenType::kComma)) break;
    }
    CONQUER_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    if (negated) return Expr::MakeUnary(UnaryOp::kNot, std::move(disjunction));
    return disjunction;
  }

  // Plain comparison (optional — a bare additive expression is also valid,
  // e.g. in the SELECT list).
  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kEq:
      op = BinaryOp::kEq;
      break;
    case TokenType::kNe:
      op = BinaryOp::kNe;
      break;
    case TokenType::kLt:
      op = BinaryOp::kLt;
      break;
    case TokenType::kLe:
      op = BinaryOp::kLe;
      break;
    case TokenType::kGt:
      op = BinaryOp::kGt;
      break;
    case TokenType::kGe:
      op = BinaryOp::kGe;
      break;
    default:
      return lhs;
  }
  Advance();
  CONQUER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
  return Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
}

Result<ExprPtr> Parser::ParseAdditive() {
  CONQUER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  while (true) {
    BinaryOp op;
    if (Peek().type == TokenType::kPlus) {
      op = BinaryOp::kAdd;
    } else if (Peek().type == TokenType::kMinus) {
      op = BinaryOp::kSub;
    } else {
      break;
    }
    Advance();
    CONQUER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  CONQUER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (true) {
    BinaryOp op;
    if (Peek().type == TokenType::kStar) {
      op = BinaryOp::kMul;
    } else if (Peek().type == TokenType::kSlash) {
      op = BinaryOp::kDiv;
    } else {
      break;
    }
    Advance();
    CONQUER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
    lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Peek().type == TokenType::kMinus) {
    Advance();
    CONQUER_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
    // Fold negation of numeric literals so "-3" is a literal, not an op.
    if (e->kind == Expr::Kind::kLiteral) {
      if (e->literal.type() == DataType::kInt64) {
        return Expr::MakeLiteral(Value::Int(-e->literal.int_value()));
      }
      if (e->literal.type() == DataType::kDouble) {
        return Expr::MakeLiteral(Value::Double(-e->literal.double_value()));
      }
    }
    return Expr::MakeUnary(UnaryOp::kNeg, std::move(e));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();

  switch (tok.type) {
    case TokenType::kIntLiteral: {
      Token t = Advance();
      return Expr::MakeLiteral(Value::Int(t.int_value));
    }
    case TokenType::kDoubleLiteral: {
      Token t = Advance();
      return Expr::MakeLiteral(Value::Double(t.double_value));
    }
    case TokenType::kStringLiteral: {
      Token t = Advance();
      return Expr::MakeLiteral(Value::String(std::move(t.text)));
    }
    case TokenType::kParam: {
      Advance();
      return Expr::MakeParameter(num_params_++);
    }
    case TokenType::kLParen: {
      Advance();
      CONQUER_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      CONQUER_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return e;
    }
    case TokenType::kKeyword: {
      if (tok.IsKeyword("NULL")) {
        Advance();
        return Expr::MakeLiteral(Value::Null());
      }
      if (tok.IsKeyword("TRUE")) {
        Advance();
        return Expr::MakeLiteral(Value::Bool(true));
      }
      if (tok.IsKeyword("FALSE")) {
        Advance();
        return Expr::MakeLiteral(Value::Bool(false));
      }
      if (tok.IsKeyword("DATE")) {
        Advance();
        if (Peek().type != TokenType::kStringLiteral) {
          return ErrorHere("expected string after DATE");
        }
        Token t = Advance();
        CONQUER_ASSIGN_OR_RETURN(int64_t days, ParseDate(t.text));
        return Expr::MakeLiteral(Value::Date(days));
      }
      AggFunc agg = AggFunc::kNone;
      if (tok.IsKeyword("SUM")) agg = AggFunc::kSum;
      else if (tok.IsKeyword("COUNT")) agg = AggFunc::kCount;
      else if (tok.IsKeyword("AVG")) agg = AggFunc::kAvg;
      else if (tok.IsKeyword("MIN")) agg = AggFunc::kMin;
      else if (tok.IsKeyword("MAX")) agg = AggFunc::kMax;
      if (agg != AggFunc::kNone) {
        Advance();
        CONQUER_RETURN_NOT_OK(
            Expect(TokenType::kLParen, "'(' after aggregate function"));
        if (agg == AggFunc::kCount && Peek().type == TokenType::kStar) {
          Advance();
          CONQUER_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
          return Expr::MakeAggregate(AggFunc::kCount, nullptr);
        }
        CONQUER_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        CONQUER_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        return Expr::MakeAggregate(agg, std::move(arg));
      }
      if (tok.IsKeyword("EXISTS")) {
        return ErrorHere("subqueries (EXISTS) are not supported");
      }
      return ErrorHere("unexpected keyword in expression");
    }
    case TokenType::kIdentifier: {
      Token t = Advance();
      if (Match(TokenType::kDot)) {
        if (Peek().type != TokenType::kIdentifier) {
          return ErrorHere("expected column name after '.'");
        }
        Token col = Advance();
        return Expr::MakeColumnRef(std::move(t.text), std::move(col.text));
      }
      return Expr::MakeColumnRef("", std::move(t.text));
    }
    default:
      return ErrorHere("expected expression");
  }
}

}  // namespace conquer
