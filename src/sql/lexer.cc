#include "sql/lexer.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <sstream>
#include <unordered_set>

#include "common/str_util.h"

namespace conquer {

namespace {
const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "DISTINCT", "FROM",    "WHERE", "GROUP", "BY",    "ORDER",
      "ASC",    "DESC",     "LIMIT",   "AND",   "OR",    "NOT",   "LIKE",
      "BETWEEN", "IN",      "IS",      "NULL",  "AS",    "DATE",  "TRUE",
      "FALSE",  "SUM",      "COUNT",   "AVG",   "MIN",   "MAX",   "HAVING",
      "JOIN",   "ON",       "INNER",   "EXISTS", "EXPLAIN", "ANALYZE"};
  return kKeywords;
}

/// The write-statement words are soft keywords: they lex as plain
/// identifiers (so SELECT workloads that predate the write path can keep
/// columns or tables named `values`, `set`, ... without quoting), and the
/// parser recognizes them in keyword position through Token::IsKeyword.
const std::unordered_set<std::string>& SoftKeywords() {
  static const std::unordered_set<std::string> kSoft = {
      "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE"};
  return kSoft;
}
}  // namespace

bool Token::IsKeyword(const char* kw) const {
  if (type == TokenType::kKeyword) return EqualsIgnoreCase(text, kw);
  return type == TokenType::kIdentifier && !quoted &&
         EqualsIgnoreCase(text, kw) && SoftKeywords().count(kw) > 0;
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Locale-independent double parsing. std::strtod honors LC_NUMERIC (a
// German locale reads "0.5" as 0), which would make probability literals
// parse differently per client environment. std::from_chars always uses
// the C locale; older standard libraries without floating-point from_chars
// fall back to an istringstream pinned to the classic locale.
double ParseDoubleLiteral(const std::string& spelling) {
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  double out = 0.0;
  auto [ptr, ec] = std::from_chars(spelling.data(),
                                   spelling.data() + spelling.size(), out);
  (void)ptr;
  if (ec == std::errc()) return out;
  return 0.0;
#else
  std::istringstream in(spelling);
  in.imbue(std::locale::classic());
  double out = 0.0;
  in >> out;
  return out;
#endif
}

int64_t ParseIntLiteral(const std::string& spelling) {
  int64_t out = 0;
  std::from_chars(spelling.data(), spelling.data() + spelling.size(), out);
  return out;
}
}  // namespace

void Lexer::SkipWhitespaceAndComments() {
  while (pos_ < sql_.size()) {
    char c = sql_[pos_];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos_;
    } else if (c == '-' && pos_ + 1 < sql_.size() && sql_[pos_ + 1] == '-') {
      while (pos_ < sql_.size() && sql_[pos_] != '\n') ++pos_;
    } else {
      break;
    }
  }
}

Result<Token> Lexer::NextToken() {
  SkipWhitespaceAndComments();
  Token tok;
  tok.position = pos_;
  if (pos_ >= sql_.size()) {
    tok.type = TokenType::kEof;
    return tok;
  }
  char c = sql_[pos_];

  if (IsIdentStart(c)) {
    size_t start = pos_;
    while (pos_ < sql_.size() && IsIdentChar(sql_[pos_])) ++pos_;
    std::string word(sql_.substr(start, pos_ - start));
    std::string upper = ToUpper(word);
    if (Keywords().count(upper) > 0) {
      tok.type = TokenType::kKeyword;
      tok.text = upper;
    } else {
      tok.type = TokenType::kIdentifier;
      tok.text = word;
    }
    return tok;
  }

  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && pos_ + 1 < sql_.size() &&
       std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
    size_t start = pos_;
    bool is_double = false;
    while (pos_ < sql_.size() &&
           std::isdigit(static_cast<unsigned char>(sql_[pos_]))) {
      ++pos_;
    }
    if (pos_ < sql_.size() && sql_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < sql_.size() &&
             std::isdigit(static_cast<unsigned char>(sql_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < sql_.size() && (sql_[pos_] == 'e' || sql_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < sql_.size() && (sql_[pos_] == '+' || sql_[pos_] == '-')) ++pos_;
      while (pos_ < sql_.size() &&
             std::isdigit(static_cast<unsigned char>(sql_[pos_]))) {
        ++pos_;
      }
    }
    std::string spelling(sql_.substr(start, pos_ - start));
    tok.text = spelling;
    if (is_double) {
      tok.type = TokenType::kDoubleLiteral;
      tok.double_value = ParseDoubleLiteral(spelling);
    } else {
      tok.type = TokenType::kIntLiteral;
      tok.int_value = ParseIntLiteral(spelling);
    }
    return tok;
  }

  if (c == '\'') {
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= sql_.size()) {
        return Status::InvalidArgument(StringPrintf(
            "unterminated string literal at offset %zu", tok.position));
      }
      char ch = sql_[pos_];
      if (ch == '\'') {
        if (pos_ + 1 < sql_.size() && sql_[pos_ + 1] == '\'') {
          out += '\'';
          pos_ += 2;
        } else {
          ++pos_;
          break;
        }
      } else {
        out += ch;
        ++pos_;
      }
    }
    tok.type = TokenType::kStringLiteral;
    tok.text = std::move(out);
    return tok;
  }

  if (c == '"') {
    ++pos_;
    size_t start = pos_;
    while (pos_ < sql_.size() && sql_[pos_] != '"') ++pos_;
    if (pos_ >= sql_.size()) {
      return Status::InvalidArgument(StringPrintf(
          "unterminated quoted identifier at offset %zu", tok.position));
    }
    tok.type = TokenType::kIdentifier;
    tok.text = std::string(sql_.substr(start, pos_ - start));
    tok.quoted = true;  // "values" stays an identifier even in keyword spots
    ++pos_;
    return tok;
  }

  ++pos_;
  switch (c) {
    case ',':
      tok.type = TokenType::kComma;
      return tok;
    case '.':
      tok.type = TokenType::kDot;
      return tok;
    case '(':
      tok.type = TokenType::kLParen;
      return tok;
    case ')':
      tok.type = TokenType::kRParen;
      return tok;
    case '*':
      tok.type = TokenType::kStar;
      return tok;
    case '?':
      tok.type = TokenType::kParam;
      return tok;
    case '+':
      tok.type = TokenType::kPlus;
      return tok;
    case '-':
      tok.type = TokenType::kMinus;
      return tok;
    case '/':
      tok.type = TokenType::kSlash;
      return tok;
    case '=':
      tok.type = TokenType::kEq;
      return tok;
    case '!':
      if (pos_ < sql_.size() && sql_[pos_] == '=') {
        ++pos_;
        tok.type = TokenType::kNe;
        return tok;
      }
      return Status::InvalidArgument(
          StringPrintf("unexpected '!' at offset %zu", tok.position));
    case '<':
      if (pos_ < sql_.size() && sql_[pos_] == '=') {
        ++pos_;
        tok.type = TokenType::kLe;
      } else if (pos_ < sql_.size() && sql_[pos_] == '>') {
        ++pos_;
        tok.type = TokenType::kNe;
      } else {
        tok.type = TokenType::kLt;
      }
      return tok;
    case '>':
      if (pos_ < sql_.size() && sql_[pos_] == '=') {
        ++pos_;
        tok.type = TokenType::kGe;
      } else {
        tok.type = TokenType::kGt;
      }
      return tok;
    default:
      return Status::InvalidArgument(
          StringPrintf("unexpected character '%c' at offset %zu", c,
                       tok.position));
  }
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> out;
  while (true) {
    CONQUER_ASSIGN_OR_RETURN(Token tok, NextToken());
    bool eof = tok.type == TokenType::kEof;
    out.push_back(std::move(tok));
    if (eof) break;
  }
  return out;
}

}  // namespace conquer
