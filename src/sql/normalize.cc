#include "sql/normalize.h"

#include <vector>

#include "sql/lexer.h"

namespace conquer {

namespace {

/// Canonical spelling of a token. String literals are re-quoted with ''
/// escaping so the key is unambiguous against identifiers.
std::string TokenSpelling(const Token& tok) {
  switch (tok.type) {
    case TokenType::kEof:
      return "";
    case TokenType::kIdentifier:
    case TokenType::kKeyword:
    case TokenType::kIntLiteral:
    case TokenType::kDoubleLiteral:
      return tok.text;
    case TokenType::kStringLiteral: {
      std::string out = "'";
      for (char c : tok.text) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
    case TokenType::kParam:
      return "?";
    case TokenType::kComma:
      return ",";
    case TokenType::kDot:
      return ".";
    case TokenType::kLParen:
      return "(";
    case TokenType::kRParen:
      return ")";
    case TokenType::kStar:
      return "*";
    case TokenType::kPlus:
      return "+";
    case TokenType::kMinus:
      return "-";
    case TokenType::kSlash:
      return "/";
    case TokenType::kEq:
      return "=";
    case TokenType::kNe:
      return "<>";
    case TokenType::kLt:
      return "<";
    case TokenType::kLe:
      return "<=";
    case TokenType::kGt:
      return ">";
    case TokenType::kGe:
      return ">=";
  }
  return "";
}

/// Tokens that glue to their neighbour without a separating space. Purely
/// cosmetic — the key would work space-separated — but `t.col` and `f(x)`
/// read naturally in cache statistics and logs.
bool GluesRight(TokenType t) {
  return t == TokenType::kDot || t == TokenType::kLParen;
}
bool GluesLeft(TokenType t) {
  return t == TokenType::kDot || t == TokenType::kComma ||
         t == TokenType::kLParen || t == TokenType::kRParen;
}

}  // namespace

Result<std::string> NormalizeSql(std::string_view sql) {
  Lexer lexer(sql);
  CONQUER_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  std::string out;
  out.reserve(sql.size());
  TokenType prev = TokenType::kEof;
  bool first = true;
  for (const Token& tok : tokens) {
    if (tok.type == TokenType::kEof) break;
    if (!first && !GluesRight(prev) && !GluesLeft(tok.type)) out += ' ';
    out += TokenSpelling(tok);
    prev = tok.type;
    first = false;
  }
  return out;
}

}  // namespace conquer
