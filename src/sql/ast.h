#ifndef CONQUER_SQL_AST_H_
#define CONQUER_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "types/value.h"

namespace conquer {

/// Binary operators, in increasing binding strength groups.
enum class BinaryOp {
  kOr,
  kAnd,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLike,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

/// SQL spelling of a binary operator ("=", "AND", ...).
const char* BinaryOpToString(BinaryOp op);

/// True for =, <>, <, <=, >, >=, LIKE.
bool IsComparisonOp(BinaryOp op);

enum class UnaryOp {
  kNot,
  kNeg,
  kIsNull,
  kIsNotNull,
};

/// Aggregate functions supported in the SELECT list.
enum class AggFunc {
  kNone = 0,
  kSum,
  kCount,  ///< COUNT(expr) or COUNT(*) (operand == nullptr)
  kAvg,
  kMin,
  kMax,
};

const char* AggFuncToString(AggFunc f);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// \brief Expression tree node.
///
/// One struct with a Kind tag (rather than a class hierarchy) keeps cloning,
/// printing and binder annotation straightforward; the expression grammar is
/// small and fixed.
struct Expr {
  enum class Kind {
    kColumnRef,  ///< [table_alias.]column_name
    kLiteral,    ///< literal
    kBinary,     ///< left op right
    kUnary,      ///< op left
    kAggregate,  ///< agg(left), left == nullptr for COUNT(*)
    kParameter,  ///< '?' placeholder; becomes kLiteral at bind-time
  };

  Kind kind;

  // kColumnRef
  std::string table_alias;  ///< empty when unqualified
  std::string column_name;

  // kLiteral
  Value literal;

  // kBinary / kUnary / kAggregate
  BinaryOp bop = BinaryOp::kEq;
  UnaryOp uop = UnaryOp::kNot;
  AggFunc agg = AggFunc::kNone;
  ExprPtr left;
  ExprPtr right;

  // kParameter
  int param_index = -1;  ///< 0-based position of the '?' in the statement

  // ---- Binder annotations (set by plan/binder.cc) ----
  int from_index = -1;    ///< kColumnRef: index into the FROM list
  int column_index = -1;  ///< kColumnRef: column position within that table
  int slot = -1;          ///< kColumnRef: slot in the concatenated join row
  DataType resolved_type = DataType::kNull;

  // ---- Factory helpers ----
  static ExprPtr MakeColumnRef(std::string table_alias, std::string column);
  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r);
  static ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
  static ExprPtr MakeAggregate(AggFunc f, ExprPtr operand);
  static ExprPtr MakeParameter(int index);

  /// Deep copy, including binder annotations.
  ExprPtr Clone() const;

  /// SQL text of the expression (parenthesized conservatively).
  std::string ToString() const;

  /// True if any node in the tree is an aggregate call.
  bool ContainsAggregate() const;

  /// Structural equality ignoring binder annotations; used to match
  /// ORDER BY / GROUP BY expressions against SELECT items.
  bool StructurallyEquals(const Expr& other) const;
};

/// \brief One SELECT-list entry: expression plus optional alias.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  ///< empty when none given

  SelectItem Clone() const;
  /// Name the output column takes: alias, column name, or expression text.
  std::string OutputName() const;
};

/// \brief One FROM-list entry: base table with optional alias.
struct TableRef {
  std::string table_name;
  std::string alias;  ///< defaults to table_name when absent

  const std::string& effective_alias() const {
    return alias.empty() ? table_name : alias;
  }
};

/// \brief One ORDER BY entry.
struct OrderItem {
  ExprPtr expr;
  bool descending = false;

  OrderItem Clone() const;
};

/// \brief Parsed SELECT statement of the supported subset:
///
///   SELECT [DISTINCT] items FROM t1 [a1], ... [WHERE pred]
///   [GROUP BY exprs] [ORDER BY exprs [ASC|DESC], ...] [LIMIT n]
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> select_list;
  std::vector<TableRef> from;
  ExprPtr where;  ///< nullptr when absent
  std::vector<ExprPtr> group_by;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  ///< -1 = no limit

  /// Number of '?' parameter placeholders (lexical order assigns indices).
  int num_params = 0;

  std::unique_ptr<SelectStatement> Clone() const;

  /// Round-trips the statement to SQL text.
  std::string ToString() const;
};

/// \brief Parsed INSERT statement:
///
///   INSERT INTO t [(c1, ...)] VALUES (e1, ...) [, (e1, ...)]*
///
/// Value expressions may not reference columns (no source row exists yet);
/// arithmetic over literals is allowed.
struct InsertStatement {
  std::string table_name;
  std::vector<std::string> columns;        ///< empty = full schema order
  std::vector<std::vector<ExprPtr>> rows;  ///< one expr list per VALUES tuple

  std::unique_ptr<InsertStatement> Clone() const;
  std::string ToString() const;
};

/// \brief One `col = expr` pair in an UPDATE SET list.
struct Assignment {
  std::string column;
  ExprPtr value;  ///< may reference columns of the updated table

  Assignment Clone() const;
};

/// \brief Parsed UPDATE statement: UPDATE t SET a = e, ... [WHERE pred]
struct UpdateStatement {
  std::string table_name;
  std::vector<Assignment> assignments;
  ExprPtr where;  ///< nullptr when absent

  std::unique_ptr<UpdateStatement> Clone() const;
  std::string ToString() const;
};

/// \brief Parsed DELETE statement: DELETE FROM t [WHERE pred]
struct DeleteStatement {
  std::string table_name;
  ExprPtr where;  ///< nullptr = delete every row

  std::unique_ptr<DeleteStatement> Clone() const;
  std::string ToString() const;
};

/// Splits a predicate tree into its top-level AND conjuncts.
void CollectConjuncts(const Expr* pred, std::vector<const Expr*>* out);

}  // namespace conquer

#endif  // CONQUER_SQL_AST_H_
