#ifndef CONQUER_SQL_NORMALIZE_H_
#define CONQUER_SQL_NORMALIZE_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace conquer {

/// \brief Canonical text form of a statement, used as the plan-cache key.
///
/// Two statements that differ only in whitespace, comments, keyword case or
/// operator spelling (`!=` vs `<>`) normalize to the same string:
///
///   "select  A from T where x!=3 -- c"  ->  "SELECT A FROM T WHERE x <> 3"
///
/// Literal values stay in the key (a cached entry embeds its constants);
/// prepared statements keep their `?` placeholders, so every execution of
/// the same prepared statement shares one cache entry regardless of the
/// bound values. Identifier case is preserved — the catalog is
/// case-insensitive, but folding identifiers here could only merge keys,
/// never split them, and preserving case keeps keys readable in stats.
///
/// Returns InvalidArgument on text the lexer rejects (the caller falls
/// through to the parser for a real error message).
Result<std::string> NormalizeSql(std::string_view sql);

}  // namespace conquer

#endif  // CONQUER_SQL_NORMALIZE_H_
