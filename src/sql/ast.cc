#include "sql/ast.h"

#include <cassert>

namespace conquer {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kLike:
      return "LIKE";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kLike:
      return true;
    default:
      return false;
  }
}

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

ExprPtr Expr::MakeColumnRef(std::string table_alias, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumnRef;
  e->table_alias = std::move(table_alias);
  e->column_name = std::move(column);
  return e;
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->bop = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

ExprPtr Expr::MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->uop = op;
  e->left = std::move(operand);
  return e;
}

ExprPtr Expr::MakeAggregate(AggFunc f, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAggregate;
  e->agg = f;
  e->left = std::move(operand);
  return e;
}

ExprPtr Expr::MakeParameter(int index) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kParameter;
  e->param_index = index;
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->table_alias = table_alias;
  e->column_name = column_name;
  e->literal = literal;
  e->bop = bop;
  e->uop = uop;
  e->agg = agg;
  e->param_index = param_index;
  if (left) e->left = left->Clone();
  if (right) e->right = right->Clone();
  e->from_index = from_index;
  e->column_index = column_index;
  e->slot = slot;
  e->resolved_type = resolved_type;
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kColumnRef:
      return table_alias.empty() ? column_name
                                 : table_alias + "." + column_name;
    case Kind::kLiteral:
      return literal.ToSqlLiteral();
    case Kind::kBinary: {
      std::string l = left->ToString();
      std::string r = right->ToString();
      // Parenthesize nested binary operands conservatively; column refs and
      // literals never need parens.
      auto wrap = [](const Expr& e, const std::string& s) {
        if (e.kind == Kind::kBinary) return "(" + s + ")";
        return s;
      };
      return wrap(*left, l) + " " + BinaryOpToString(bop) + " " +
             wrap(*right, r);
    }
    case Kind::kUnary: {
      // Bind the operand to a named lvalue: the rvalue-string overload of
      // operator+ routes through insert(), which GCC 12 -O3 flags with a
      // false-positive -Wrestrict (PR105329).
      std::string inner = left->ToString();
      switch (uop) {
        case UnaryOp::kNot:
          return "NOT (" + inner + ")";
        case UnaryOp::kNeg:
          return "-(" + inner + ")";
        case UnaryOp::kIsNull:
          return "(" + inner + ") IS NULL";
        case UnaryOp::kIsNotNull:
          return "(" + inner + ") IS NOT NULL";
      }
      return "?";
    }
    case Kind::kAggregate: {
      std::string arg = left ? left->ToString() : "*";
      return std::string(AggFuncToString(agg)) + "(" + arg + ")";
    }
    case Kind::kParameter:
      return "?";
  }
  return "?";
}

bool Expr::ContainsAggregate() const {
  if (kind == Kind::kAggregate) return true;
  if (left && left->ContainsAggregate()) return true;
  if (right && right->ContainsAggregate()) return true;
  return false;
}

bool Expr::StructurallyEquals(const Expr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kColumnRef:
      // After binding, slots identify columns; before binding compare names.
      if (slot >= 0 && other.slot >= 0) return slot == other.slot;
      return table_alias == other.table_alias &&
             column_name == other.column_name;
    case Kind::kLiteral:
      return literal.TotalCompare(other.literal) == 0;
    case Kind::kBinary:
      return bop == other.bop && left->StructurallyEquals(*other.left) &&
             right->StructurallyEquals(*other.right);
    case Kind::kUnary:
      return uop == other.uop && left->StructurallyEquals(*other.left);
    case Kind::kAggregate:
      if (agg != other.agg) return false;
      if ((left == nullptr) != (other.left == nullptr)) return false;
      return left == nullptr || left->StructurallyEquals(*other.left);
    case Kind::kParameter:
      return param_index == other.param_index;
  }
  return false;
}

SelectItem SelectItem::Clone() const {
  SelectItem out;
  out.expr = expr->Clone();
  out.alias = alias;
  return out;
}

std::string SelectItem::OutputName() const {
  if (!alias.empty()) return alias;
  if (expr->kind == Expr::Kind::kColumnRef) return expr->column_name;
  return expr->ToString();
}

OrderItem OrderItem::Clone() const {
  OrderItem out;
  out.expr = expr->Clone();
  out.descending = descending;
  return out;
}

std::unique_ptr<SelectStatement> SelectStatement::Clone() const {
  auto out = std::make_unique<SelectStatement>();
  out->distinct = distinct;
  for (const auto& item : select_list) out->select_list.push_back(item.Clone());
  out->from = from;
  if (where) out->where = where->Clone();
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  for (const auto& o : order_by) out->order_by.push_back(o.Clone());
  out->limit = limit;
  out->num_params = num_params;
  return out;
}

std::string SelectStatement::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < select_list.size(); ++i) {
    if (i > 0) out += ", ";
    out += select_list[i].expr->ToString();
    if (!select_list[i].alias.empty()) out += " AS " + select_list[i].alias;
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].table_name;
    if (!from[i].alias.empty() && from[i].alias != from[i].table_name) {
      out += " " + from[i].alias;
    }
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

std::unique_ptr<InsertStatement> InsertStatement::Clone() const {
  auto out = std::make_unique<InsertStatement>();
  out->table_name = table_name;
  out->columns = columns;
  out->rows.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<ExprPtr> cloned;
    cloned.reserve(row.size());
    for (const auto& e : row) cloned.push_back(e->Clone());
    out->rows.push_back(std::move(cloned));
  }
  return out;
}

std::string InsertStatement::ToString() const {
  std::string out = "INSERT INTO " + table_name;
  if (!columns.empty()) {
    out += " (";
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += columns[i];
    }
    out += ")";
  }
  out += " VALUES ";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) out += ", ";
    out += "(";
    for (size_t i = 0; i < rows[r].size(); ++i) {
      if (i > 0) out += ", ";
      out += rows[r][i]->ToString();
    }
    out += ")";
  }
  return out;
}

Assignment Assignment::Clone() const {
  Assignment out;
  out.column = column;
  out.value = value->Clone();
  return out;
}

std::unique_ptr<UpdateStatement> UpdateStatement::Clone() const {
  auto out = std::make_unique<UpdateStatement>();
  out->table_name = table_name;
  for (const auto& a : assignments) out->assignments.push_back(a.Clone());
  if (where) out->where = where->Clone();
  return out;
}

std::string UpdateStatement::ToString() const {
  std::string out = "UPDATE " + table_name + " SET ";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i > 0) out += ", ";
    out += assignments[i].column + " = " + assignments[i].value->ToString();
  }
  if (where) out += " WHERE " + where->ToString();
  return out;
}

std::unique_ptr<DeleteStatement> DeleteStatement::Clone() const {
  auto out = std::make_unique<DeleteStatement>();
  out->table_name = table_name;
  if (where) out->where = where->Clone();
  return out;
}

std::string DeleteStatement::ToString() const {
  std::string out = "DELETE FROM " + table_name;
  if (where) out += " WHERE " + where->ToString();
  return out;
}

void CollectConjuncts(const Expr* pred, std::vector<const Expr*>* out) {
  if (pred == nullptr) return;
  if (pred->kind == Expr::Kind::kBinary && pred->bop == BinaryOp::kAnd) {
    CollectConjuncts(pred->left.get(), out);
    CollectConjuncts(pred->right.get(), out);
  } else {
    out->push_back(pred);
  }
}

}  // namespace conquer
