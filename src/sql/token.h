#ifndef CONQUER_SQL_TOKEN_H_
#define CONQUER_SQL_TOKEN_H_

#include <string>

namespace conquer {

/// \brief Lexical token categories of the SQL subset.
enum class TokenType {
  kEof = 0,
  kIdentifier,   ///< bare or "quoted" identifier
  kKeyword,      ///< reserved word, normalized to upper case in `text`
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  ///< contents with quotes stripped and '' unescaped
  kParam,          ///< '?' prepared-statement parameter placeholder
  // punctuation / operators
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,      ///< =
  kNe,      ///< <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
};

/// \brief One token with its source position (for error messages).
struct Token {
  TokenType type = TokenType::kEof;
  std::string text;     ///< identifier/keyword text or literal spelling
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t position = 0;  ///< byte offset in the SQL string

  bool IsKeyword(const char* kw) const;
};

}  // namespace conquer

#endif  // CONQUER_SQL_TOKEN_H_
