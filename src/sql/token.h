#ifndef CONQUER_SQL_TOKEN_H_
#define CONQUER_SQL_TOKEN_H_

#include <string>

namespace conquer {

/// \brief Lexical token categories of the SQL subset.
enum class TokenType {
  kEof = 0,
  kIdentifier,   ///< bare or "quoted" identifier
  kKeyword,      ///< reserved word, normalized to upper case in `text`
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  ///< contents with quotes stripped and '' unescaped
  kParam,          ///< '?' prepared-statement parameter placeholder
  // punctuation / operators
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,      ///< =
  kNe,      ///< <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
};

/// \brief One token with its source position (for error messages).
struct Token {
  TokenType type = TokenType::kEof;
  std::string text;     ///< identifier/keyword text or literal spelling
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t position = 0;  ///< byte offset in the SQL string
  bool quoted = false;  ///< identifier was "quoted" (never a keyword)

  /// True when this token spells keyword `kw` (upper-case) — either as a
  /// reserved word, or as an unquoted identifier matching one of the soft
  /// keywords (the write-statement words INSERT/INTO/VALUES/UPDATE/SET/
  /// DELETE, which stay usable as column and table names).
  bool IsKeyword(const char* kw) const;
};

}  // namespace conquer

#endif  // CONQUER_SQL_TOKEN_H_
