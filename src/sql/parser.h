#ifndef CONQUER_SQL_PARSER_H_
#define CONQUER_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace conquer {

/// \brief Recursive-descent parser for the supported SQL subset.
///
/// Grammar (informal):
///   select    := SELECT [DISTINCT] items FROM tables [WHERE expr]
///                [GROUP BY exprs] [ORDER BY order_items] [LIMIT int]
///   items     := '*' | item (',' item)*
///   item      := expr [[AS] alias]
///   tables    := table (',' table)*           -- comma joins only
///   table     := ident [[AS] alias]
///   expr      := or_expr
///   or_expr   := and_expr (OR and_expr)*
///   and_expr  := not_expr (AND not_expr)*
///   not_expr  := NOT not_expr | predicate
///   predicate := additive [cmp additive | [NOT] LIKE string |
///                [NOT] BETWEEN additive AND additive |
///                [NOT] IN '(' literal (',' literal)* ')' |
///                IS [NOT] NULL]
///   additive  := multiplicative (('+'|'-') multiplicative)*
///   mult      := unary (('*'|'/') unary)*
///   unary     := '-' unary | primary
///   primary   := literal | DATE string | agg '(' expr|'*' ')' |
///                ident ['.' ident] | '(' expr ')'
///
/// BETWEEN/IN/NOT LIKE are desugared into AND/OR/NOT during parsing, so the
/// downstream planner only sees the core operator set.
///
/// A statement may be prefixed with `EXPLAIN` (plan only) or
/// `EXPLAIN ANALYZE` (execute and report per-operator statistics); use
/// ParseStatement to receive the mode alongside the SELECT.

/// How a statement asked to be explained.
enum class ExplainMode {
  kNone,     ///< plain SELECT
  kPlan,     ///< EXPLAIN: print the physical plan, do not execute
  kAnalyze,  ///< EXPLAIN ANALYZE: execute, print plan + runtime counters
};

/// What kind of top-level statement was parsed.
enum class StatementKind {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
};

/// \brief A parsed top-level statement: optional EXPLAIN prefix + one of
/// SELECT / INSERT / UPDATE / DELETE (exactly one pointer is set, per
/// `kind`). EXPLAIN applies only to SELECT.
struct ParsedStatement {
  ExplainMode explain = ExplainMode::kNone;
  StatementKind kind = StatementKind::kSelect;
  std::unique_ptr<SelectStatement> select;
  std::unique_ptr<InsertStatement> insert;
  std::unique_ptr<UpdateStatement> update;
  std::unique_ptr<DeleteStatement> del;

  bool is_write() const { return kind != StatementKind::kSelect; }
};

class Parser {
 public:
  /// Parses one SELECT statement; trailing semicolon allowed. Rejects
  /// EXPLAIN prefixes (see ParseStatement).
  static Result<std::unique_ptr<SelectStatement>> Parse(std::string_view sql);

  /// Parses `[EXPLAIN [ANALYZE]] SELECT ...` or a write statement
  /// (INSERT / UPDATE / DELETE; EXPLAIN of a write is rejected).
  static Result<ParsedStatement> ParseStatement(std::string_view sql);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStatement>> ParseSelect();
  Result<std::unique_ptr<InsertStatement>> ParseInsert();
  Result<std::unique_ptr<UpdateStatement>> ParseUpdate();
  Result<std::unique_ptr<DeleteStatement>> ParseDelete();
  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParsePredicate();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAhead(size_t n) const {
    size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Advance() { return tokens_[pos_++]; }
  bool Match(TokenType t);
  bool MatchKeyword(const char* kw);
  Status Expect(TokenType t, const char* what);
  Status ExpectKeyword(const char* kw);
  Status ErrorHere(const std::string& msg) const;

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int num_params_ = 0;  ///< '?' placeholders seen, in lexical order
};

}  // namespace conquer

#endif  // CONQUER_SQL_PARSER_H_
