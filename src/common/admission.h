#ifndef CONQUER_COMMON_ADMISSION_H_
#define CONQUER_COMMON_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace conquer {

/// \brief FIFO-fair shared/exclusive admission gate.
///
/// The serving layer's concurrency throttle: at most `max_shared` shared
/// holders (queries) run at once — so N clients multiplex onto the one
/// TaskPool morsel scheduler instead of oversubscribing it — and an
/// exclusive holder (DDL, bulk write, pool resize) runs alone.
///
/// Admission is strictly in arrival order: every acquirer takes a ticket
/// and is admitted only when it reaches the head of the ticket queue and
/// its mode is compatible (shared: no exclusive holder and a free slot;
/// exclusive: nothing else active). Head-of-line ordering is what makes
/// the gate fair — a stream of short queries cannot starve an exclusive
/// acquirer, and early arrivals are never overtaken.
class AdmissionGate {
 public:
  /// `max_shared` is clamped to at least 1.
  explicit AdmissionGate(size_t max_shared);

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// Blocks until admitted as one of up to `max_shared` shared holders.
  void AcquireShared();
  void ReleaseShared();

  /// Blocks until admitted as the sole holder.
  void AcquireExclusive();
  void ReleaseExclusive();

  size_t max_shared() const { return max_shared_; }

  /// Counters for observability; `waited` counts acquisitions that could
  /// not be admitted immediately (the queue-depth signal).
  struct Stats {
    uint64_t admitted = 0;
    uint64_t waited = 0;
    size_t active_now = 0;
    size_t waiting_now = 0;
    size_t peak_active = 0;
  };
  Stats stats() const;

 private:
  bool SharedAdmissible() const {
    return !exclusive_held_ && active_shared_ < max_shared_;
  }
  bool ExclusiveAdmissible() const {
    return !exclusive_held_ && active_shared_ == 0;
  }

  const size_t max_shared_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_ticket_ = 0;  ///< ticket handed to the next arrival
  uint64_t head_ = 0;         ///< ticket currently eligible for admission
  size_t active_shared_ = 0;
  bool exclusive_held_ = false;
  uint64_t admitted_ = 0;
  uint64_t waited_ = 0;
  size_t waiting_now_ = 0;
  size_t peak_active_ = 0;
};

/// RAII shared admission.
class SharedAdmission {
 public:
  explicit SharedAdmission(AdmissionGate* gate) : gate_(gate) {
    gate_->AcquireShared();
  }
  ~SharedAdmission() { gate_->ReleaseShared(); }
  SharedAdmission(const SharedAdmission&) = delete;
  SharedAdmission& operator=(const SharedAdmission&) = delete;

 private:
  AdmissionGate* gate_;
};

/// RAII exclusive admission.
class ExclusiveAdmission {
 public:
  explicit ExclusiveAdmission(AdmissionGate* gate) : gate_(gate) {
    gate_->AcquireExclusive();
  }
  ~ExclusiveAdmission() { gate_->ReleaseExclusive(); }
  ExclusiveAdmission(const ExclusiveAdmission&) = delete;
  ExclusiveAdmission& operator=(const ExclusiveAdmission&) = delete;

 private:
  AdmissionGate* gate_;
};

}  // namespace conquer

#endif  // CONQUER_COMMON_ADMISSION_H_
