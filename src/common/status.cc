#include "common/status.h"

namespace conquer {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotRewritable:
      return "Not rewritable";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kInternal:
      return "Internal error";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace conquer
