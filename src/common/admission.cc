#include "common/admission.h"

#include <algorithm>

namespace conquer {

AdmissionGate::AdmissionGate(size_t max_shared)
    : max_shared_(std::max<size_t>(1, max_shared)) {}

void AdmissionGate::AcquireShared() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t ticket = next_ticket_++;
  if (ticket != head_ || !SharedAdmissible()) {
    ++waited_;
    ++waiting_now_;
    cv_.wait(lock, [&] { return ticket == head_ && SharedAdmissible(); });
    --waiting_now_;
  }
  ++head_;
  ++active_shared_;
  peak_active_ = std::max(peak_active_, active_shared_);
  ++admitted_;
  lock.unlock();
  // Consecutive shared tickets can be admitted together; wake the queue.
  cv_.notify_all();
}

void AdmissionGate::ReleaseShared() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_shared_;
  }
  cv_.notify_all();
}

void AdmissionGate::AcquireExclusive() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t ticket = next_ticket_++;
  if (ticket != head_ || !ExclusiveAdmissible()) {
    ++waited_;
    ++waiting_now_;
    cv_.wait(lock, [&] { return ticket == head_ && ExclusiveAdmissible(); });
    --waiting_now_;
  }
  ++head_;
  exclusive_held_ = true;
  ++admitted_;
}

void AdmissionGate::ReleaseExclusive() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    exclusive_held_ = false;
  }
  cv_.notify_all();
}

AdmissionGate::Stats AdmissionGate::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.admitted = admitted_;
  s.waited = waited_;
  s.active_now = active_shared_ + (exclusive_held_ ? 1 : 0);
  s.waiting_now = waiting_now_;
  s.peak_active = peak_active_;
  return s;
}

}  // namespace conquer
