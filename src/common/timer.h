#ifndef CONQUER_COMMON_TIMER_H_
#define CONQUER_COMMON_TIMER_H_

#include <chrono>

namespace conquer {

/// \brief Simple wall-clock stopwatch used by the benchmark harness.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace conquer

#endif  // CONQUER_COMMON_TIMER_H_
