#include "common/task_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace conquer {

TaskPool::TaskPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Workers only exit once the queue is empty (see WorkerLoop), so any
  // TaskGroup waiting on queued work has been satisfied by now.
}

void TaskPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool TaskPool::RunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void TaskPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void TaskGroup::Submit(std::function<Status()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  auto task = [this, fn = std::move(fn)]() {
    Status s = cancelled() ? Status::OK() : fn();
    Finish(std::move(s));
  };
  if (pool_ == nullptr) {
    task();
  } else {
    pool_->Enqueue(std::move(task));
  }
}

Status TaskGroup::Wait() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (pending_ == 0) return first_error_;
    }
    // Drain queued work on this thread first: with every worker busy (or
    // when the waiter *is* a worker, as happens for nested groups) this is
    // what guarantees forward progress.
    if (pool_ != nullptr && pool_->RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(mu_);
    if (pending_ == 0) return first_error_;
    // Tasks of this group are in flight on other threads; sleep until one
    // finishes. The timeout re-checks the pool queue in the rare race where
    // a task was enqueued after RunOneTask saw an empty queue.
    done_cv_.wait_for(lock, std::chrono::milliseconds(2));
  }
}

void TaskGroup::Finish(Status s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!s.ok() && first_error_.ok()) {
    first_error_ = std::move(s);
    cancelled_.store(true, std::memory_order_relaxed);
  }
  --pending_;
  if (pending_ == 0) done_cv_.notify_all();
}

}  // namespace conquer
