#ifndef CONQUER_COMMON_STATUS_H_
#define CONQUER_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace conquer {

/// \brief Error categories used across the library.
///
/// Follows the Arrow/RocksDB convention: public APIs do not throw; they
/// return a Status (or a Result<T>, see result.h) that callers must check.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed (bad SQL, bad schema).
  kNotFound,          ///< Named table/column/index does not exist.
  kAlreadyExists,     ///< Attempt to create an object that already exists.
  kOutOfRange,        ///< Index or parameter outside the permitted range.
  kNotRewritable,     ///< Query falls outside the rewritable class (Dfn 7).
  kResourceExhausted, ///< A configured limit (e.g. candidate cap) was hit.
  kTypeError,         ///< Ill-typed expression or value operation.
  kInternal,          ///< Invariant violation; indicates a library bug.
};

/// \brief Human-readable name of a StatusCode (e.g. "Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: either OK or an error code with a message.
///
/// Cheap to copy in the OK case (no allocation). Usage:
/// \code
///   Status s = db.CreateTable(schema);
///   if (!s.ok()) return s;
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotRewritable(std::string msg) {
    return Status(StatusCode::kNotRewritable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Propagates a non-OK Status to the caller.
#define CONQUER_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::conquer::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                      \
  } while (0)

}  // namespace conquer

#endif  // CONQUER_COMMON_STATUS_H_
