#ifndef CONQUER_COMMON_BLOOM_H_
#define CONQUER_COMMON_BLOOM_H_

#include <cstdint>
#include <vector>

#include "common/flat_hash.h"

namespace conquer {

/// \brief Split-block Bloom filter (cache-line blocks).
///
/// Keys live in exactly one 64-byte block: the block index is a
/// multiply-shift range reduction of the splitmix64-mixed hash, and eight
/// bits — one per 64-bit word of the block — are derived from the low 48
/// bits of the same mixed hash. A membership probe therefore touches a
/// single cache line, which is what makes pushing the filter into a scan
/// cheaper than letting the join reject the row.
///
/// Sized at roughly 32 keys per 512-bit block (~16 bits/key, false-positive
/// rate well under 1%). An Init(0) filter is a single zero block, so a probe
/// against an empty build side rejects every key.
class BlockedBloomFilter {
 public:
  /// (Re)initializes for `expected_keys` insertions; all bits cleared.
  void Init(size_t expected_keys) {
    size_t blocks = 1;
    while (blocks * 32 < expected_keys) blocks <<= 1;
    blocks_.assign(blocks, Block{});
  }

  bool initialized() const { return !blocks_.empty(); }

  void Add(uint64_t hash) {
    const uint64_t h = HashMix(hash);
    Block& b = blocks_[BlockIndex(h)];
    for (int i = 0; i < 8; ++i) {
      b.words[i] |= uint64_t{1} << ((h >> (i * 6)) & 63);
    }
  }

  bool MayContain(uint64_t hash) const {
    const uint64_t h = HashMix(hash);
    const Block& b = blocks_[BlockIndex(h)];
    for (int i = 0; i < 8; ++i) {
      if ((b.words[i] & (uint64_t{1} << ((h >> (i * 6)) & 63))) == 0) {
        return false;
      }
    }
    return true;
  }

  uint64_t MemoryBytes() const { return blocks_.size() * sizeof(Block); }

 private:
  struct alignas(64) Block {
    uint64_t words[8] = {};
  };

  /// Multiply-shift range reduction over the full mixed hash: independent of
  /// the low 48 bits that pick the in-block bit positions.
  size_t BlockIndex(uint64_t h) const {
    return static_cast<size_t>(
        (static_cast<unsigned __int128>(h) * blocks_.size()) >> 64);
  }

  std::vector<Block> blocks_;
};

}  // namespace conquer

#endif  // CONQUER_COMMON_BLOOM_H_
