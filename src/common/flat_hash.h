#ifndef CONQUER_COMMON_FLAT_HASH_H_
#define CONQUER_COMMON_FLAT_HASH_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace conquer {

/// Finalizing mixer (splitmix64): spreads entropy of a raw hash over all 64
/// bits. Flat tables index with the *low* bits of the mixed hash while the
/// partitioned parallel operators route with the *high* bits, so bucket
/// choice inside a partition stays independent of partition choice.
inline uint64_t HashMix(uint64_t h) {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

/// Partition index from a mixed hash: the top bits, so it never correlates
/// with the in-table probe position (low bits). `num_partitions` need not be
/// a power of two.
inline size_t HashPartition(uint64_t mixed, size_t num_partitions) {
  // Multiply-shift map of the high 32 bits onto [0, num_partitions).
  return static_cast<size_t>(((mixed >> 32) * num_partitions) >> 32);
}

/// \brief Open-addressing hash map: linear probing, power-of-two capacity,
/// precomputed 64-bit hashes stored next to the entries.
///
/// Designed for the executor's build-then-probe pattern (hash join builds,
/// aggregation group tables, hash indexes):
///   - no erase, hence no tombstones — rehash is a clean reinsertion;
///   - `*Hashed` entry points accept a caller-computed raw hash so a key is
///     hashed exactly once even when the same hash also routes the key to a
///     parallel partition;
///   - pointers to mapped values are stable only while no insert happens,
///     which the operators respect (probe/finalize phases never insert).
///
/// Not thread-safe; each parallel partition owns a private map.
template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class FlatHashMap {
 public:
  struct Entry {
    uint64_t hash;  ///< mixed hash of `key`
    K key;
    V value;
  };

  FlatHashMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Number of slots currently allocated (power of two, or 0).
  size_t capacity() const { return slots_.size(); }

  void clear() {
    slots_.clear();
    entries_.clear();
    size_ = 0;
  }

  /// Pre-sizes the table for `n` entries so inserts never rehash below that
  /// count. Call with table statistics (row counts) before a build phase.
  void Reserve(size_t n) {
    entries_.reserve(n);
    size_t want = NextPow2(n * 4 / 3 + 1);
    if (want > slots_.size()) Rehash(want);
  }

  /// Finds the mapped value, or nullptr.
  V* Find(const K& key) { return FindHashed(hasher_(key), key); }
  const V* Find(const K& key) const {
    return const_cast<FlatHashMap*>(this)->FindHashed(hasher_(key), key);
  }

  /// Find with a caller-computed *raw* hash (the map applies its own mixer).
  V* FindHashed(uint64_t raw_hash, const K& key) {
    if (size_ == 0) return nullptr;
    const uint64_t h = HashMix(raw_hash);
    const size_t mask = slots_.size() - 1;
    for (size_t i = h & mask;; i = (i + 1) & mask) {
      uint32_t s = slots_[i];
      if (s == kEmptySlot) return nullptr;
      Entry& e = entries_[s];
      if (e.hash == h && eq_(e.key, key)) return &e.value;
    }
  }
  const V* FindHashed(uint64_t raw_hash, const K& key) const {
    return const_cast<FlatHashMap*>(this)->FindHashed(raw_hash, key);
  }

  /// Inserts a default-constructed value under `key` unless present.
  /// Returns {value pointer, inserted}. The pointer is invalidated by the
  /// next insert.
  std::pair<V*, bool> TryEmplace(K key) {
    uint64_t raw = hasher_(key);
    return TryEmplaceHashed(raw, std::move(key));
  }

  /// TryEmplace with a caller-computed raw hash (hash-once pattern).
  std::pair<V*, bool> TryEmplaceHashed(uint64_t raw_hash, K key) {
    if (NeedsGrow()) Rehash(slots_.empty() ? kMinSlots : slots_.size() * 2);
    const uint64_t h = HashMix(raw_hash);
    const size_t mask = slots_.size() - 1;
    for (size_t i = h & mask;; i = (i + 1) & mask) {
      uint32_t s = slots_[i];
      if (s == kEmptySlot) {
        entries_.push_back(Entry{h, std::move(key), V{}});
        slots_[i] = static_cast<uint32_t>(entries_.size() - 1);
        ++size_;
        return {&entries_.back().value, true};
      }
      Entry& e = entries_[s];
      if (e.hash == h && eq_(e.key, key)) return {&e.value, false};
    }
  }

  /// Entries in insertion order (stable across rehashes: a rehash moves only
  /// the slot directory, never the entry array).
  const std::vector<Entry>& entries() const { return entries_; }
  std::vector<Entry>& mutable_entries() { return entries_; }

  /// Approximate heap footprint of the table structure itself (slot
  /// directory + entry array), excluding key/value payload allocations.
  uint64_t StructureBytes() const {
    return slots_.capacity() * sizeof(uint32_t) +
           entries_.capacity() * sizeof(Entry);
  }

 private:
  static constexpr uint32_t kEmptySlot = 0xffffffffu;
  static constexpr size_t kMinSlots = 16;

  static size_t NextPow2(size_t n) {
    size_t p = kMinSlots;
    while (p < n) p <<= 1;
    return p;
  }

  bool NeedsGrow() const {
    // Max load factor 3/4; entries are indexed by uint32_t.
    assert(entries_.size() < kEmptySlot);
    return slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3;
  }

  void Rehash(size_t new_slots) {
    slots_.assign(new_slots, kEmptySlot);
    const size_t mask = new_slots - 1;
    // No tombstones to skip: every entry is live, reinsert by stored hash.
    for (uint32_t s = 0; s < entries_.size(); ++s) {
      size_t i = entries_[s].hash & mask;
      while (slots_[i] != kEmptySlot) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<uint32_t> slots_;  ///< probe directory: index into entries_
  std::vector<Entry> entries_;   ///< dense storage in insertion order
  size_t size_ = 0;
  [[no_unique_address]] Hash hasher_;
  [[no_unique_address]] Eq eq_;
};

}  // namespace conquer

#endif  // CONQUER_COMMON_FLAT_HASH_H_
