#ifndef CONQUER_COMMON_RNG_H_
#define CONQUER_COMMON_RNG_H_

#include <cstdint>

namespace conquer {

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// All data generators in the library take an explicit seed so that every
/// experiment table is reproducible run-to-run. Not cryptographically secure.
class Rng {
 public:
  /// Seeds via splitmix64 expansion of the given 64-bit seed.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
};

}  // namespace conquer

#endif  // CONQUER_COMMON_RNG_H_
