#ifndef CONQUER_COMMON_TASK_POOL_H_
#define CONQUER_COMMON_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace conquer {

/// \brief Fixed-size worker-thread pool with a FIFO task queue.
///
/// The pool is the shared execution substrate for morsel-driven parallel
/// operators: a Database owns one pool sized by Database::SetThreads and
/// every query executed against it schedules its morsel/partition tasks
/// here. Tasks are opaque void() callables; error propagation and
/// completion tracking live in TaskGroup.
///
/// Destruction is graceful: remaining queued tasks are *executed* (not
/// dropped) before the workers join, so no TaskGroup can be left waiting
/// on a task that will never run.
class TaskPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit TaskPool(size_t num_threads);

  /// Drains the queue, then joins all workers.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Tasks queued but not yet claimed by a worker (observability: the
  /// serving layer reports it as scheduler backlog).
  size_t num_queued() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  friend class TaskGroup;

  /// Appends a task to the queue and wakes one worker.
  void Enqueue(std::function<void()> task);

  /// Runs one queued task on the calling thread; false when the queue was
  /// empty. Used by TaskGroup::Wait so that a waiter (possibly itself a
  /// pool worker running a task that spawned a nested group) helps drain
  /// the queue instead of deadlocking on exhausted workers.
  bool RunOneTask();

  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
};

/// \brief A batch of related tasks with barrier semantics and
/// first-error-wins Status propagation.
///
/// Usage (one query phase):
/// \code
///   TaskGroup group(pool);            // pool == nullptr -> run inline
///   for (int w = 0; w < workers; ++w)
///     group.Submit([&, w]() -> Status { ...morsel loop... });
///   CONQUER_RETURN_NOT_OK(group.Wait());
/// \endcode
///
/// The first task to complete with a non-OK Status records it and flips
/// `cancelled()`; tasks that start afterwards are skipped (their callable
/// never runs) and long-running tasks may poll `cancelled()` to stop
/// early. Wait() returns the recorded error. A group is reusable after
/// Wait() and empty groups return OK immediately.
class TaskGroup {
 public:
  /// With a null pool every Submit runs the task inline on the caller.
  explicit TaskGroup(TaskPool* pool) : pool_(pool) {}

  /// Waits for any outstanding tasks (errors are dropped at this point;
  /// call Wait() explicitly to observe them).
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `fn` on the pool (or runs it inline without one).
  void Submit(std::function<Status()> fn);

  /// Blocks until every submitted task has finished; returns the first
  /// error recorded (OK when all succeeded). Helps execute queued pool
  /// tasks while waiting, so nested groups cannot deadlock the pool.
  Status Wait();

  /// True once any task has failed; new and polling tasks short-circuit.
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  void Finish(Status s);

  TaskPool* pool_;
  std::mutex mu_;
  std::condition_variable done_cv_;
  size_t pending_ = 0;
  Status first_error_;
  std::atomic<bool> cancelled_{false};
};

}  // namespace conquer

#endif  // CONQUER_COMMON_TASK_POOL_H_
