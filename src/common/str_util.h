#ifndef CONQUER_COMMON_STR_UTIL_H_
#define CONQUER_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace conquer {

/// ASCII lower-casing (SQL keywords and identifiers are case-insensitive).
std::string ToLower(std::string_view s);

/// ASCII upper-casing.
std::string ToUpper(std::string_view s);

/// True if `a` equals `b` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// SQL LIKE match with '%' (any run) and '_' (any one char) wildcards.
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace conquer

#endif  // CONQUER_COMMON_STR_UTIL_H_
