#ifndef CONQUER_COMMON_RESULT_H_
#define CONQUER_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace conquer {

/// \brief Holds either a value of type T or an error Status.
///
/// The value-or-error idiom used throughout the library, mirroring
/// arrow::Result. A Result constructed from an OK status is a library bug.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from a non-OK status (implicit, enables `return status;`).
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Evaluates an expression yielding Result<T>; on error returns the Status,
/// otherwise assigns the value to `lhs`.
#define CONQUER_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define CONQUER_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  CONQUER_ASSIGN_OR_RETURN_IMPL(                                              \
      CONQUER_CONCAT_(_conquer_result_, __LINE__), lhs, rexpr)

#define CONQUER_CONCAT_INNER_(a, b) a##b
#define CONQUER_CONCAT_(a, b) CONQUER_CONCAT_INNER_(a, b)

}  // namespace conquer

#endif  // CONQUER_COMMON_RESULT_H_
