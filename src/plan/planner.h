#ifndef CONQUER_PLAN_PLANNER_H_
#define CONQUER_PLAN_PLANNER_H_

#include <memory>
#include <vector>

#include "exec/exec_context.h"
#include "exec/operator.h"
#include "plan/binder.h"

namespace conquer {

/// \brief Planner knobs.
struct PlannerOptions {
  enum class JoinOrdering {
    /// Greedy: repeatedly join the smallest connected table (fast, the
    /// default).
    kGreedy,
    /// Selinger-style dynamic programming over left-deep orders, minimizing
    /// the summed intermediate-result estimate. Exponential in the FROM
    /// count; falls back to greedy beyond `max_dp_tables`.
    kDynamicProgramming,
  };
  JoinOrdering join_ordering = JoinOrdering::kGreedy;
  int max_dp_tables = 14;
};

/// \brief Builds a physical operator tree from a bound query.
///
/// Pipeline: per-table scans with pushed-down single-table predicates
/// (hash-index point lookups when available) -> equi-join ordering (greedy
/// or DP per options; hash joins, cross product only when no join edge
/// connects) -> residual filters as soon as their tables are joined ->
/// aggregation or projection -> DISTINCT -> ORDER BY -> hidden-column strip
/// -> LIMIT.
class Planner {
 public:
  /// Plans `q`; the returned operator tree borrows expressions from `q`, so
  /// the BoundQuery must outlive execution. When `exec` is non-null it is
  /// borrowed by the parallel-capable operators (scan / hash join / hash
  /// aggregate) and must outlive execution too; a null pool inside it — or
  /// a null `exec` — yields strictly sequential operators.
  static Result<OperatorPtr> Plan(const BoundQuery& q,
                                  const PlannerOptions& options = {},
                                  const ExecContext* exec = nullptr);
};

}  // namespace conquer

#endif  // CONQUER_PLAN_PLANNER_H_
