#ifndef CONQUER_PLAN_BINDER_H_
#define CONQUER_PLAN_BINDER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "sql/ast.h"

namespace conquer {

/// \brief A SELECT statement resolved against a catalog.
///
/// Column references are annotated with (from_index, column_index) and a
/// global `slot` in the concatenated join row: table `i` of the FROM list
/// occupies slots [slot_offsets[i], slot_offsets[i] + arity_i). `SELECT *`
/// has been expanded, ORDER BY aliases resolved, and every expression
/// type-checked.
struct BoundQuery {
  std::unique_ptr<SelectStatement> stmt;
  std::vector<Table*> tables;        ///< parallel to stmt->from
  std::vector<size_t> slot_offsets;  ///< parallel to stmt->from
  size_t total_slots = 0;

  /// True when the query computes aggregates (explicitly or via GROUP BY).
  bool is_aggregate = false;

  /// For each ORDER BY item: the index of the SELECT item it sorts on.
  /// Items beyond the original SELECT list are hidden sort columns that are
  /// stripped from the final result (`num_visible_columns`).
  std::vector<size_t> order_by_output_columns;
  size_t num_visible_columns = 0;

  /// Output column names, parallel to stmt->select_list.
  std::vector<std::string> output_names;
  /// Output column types, parallel to stmt->select_list.
  std::vector<DataType> output_types;

  /// Deep copy, including every binder annotation, sharing the same Table
  /// pointers. A cached bound query is cloned per execution because the
  /// physical plan borrows expressions from its BoundQuery (and parameter
  /// substitution mutates the clone); the cache's master copy is never
  /// executed directly. Table pointers stay valid only while the catalog
  /// is unchanged — the plan cache's epoch check enforces that.
  BoundQuery Clone() const;
};

/// Replaces every '?' placeholder in the (bound) statement with the
/// corresponding constant from `params`, coercing to the type the binder
/// inferred (INT64 widens to DOUBLE, strings parse as DATE where a date is
/// expected). InvalidArgument on arity mismatch, TypeError on an
/// incompatible value. NULL binds to any parameter type.
Status BindParameters(SelectStatement* stmt, const std::vector<Value>& params);

/// \brief A resolved INSERT: value expressions are literal-only (bound and
/// type-checked against the target columns), `column_map[i]` is the schema
/// position the i-th VALUES entry populates.
struct BoundInsert {
  Table* table = nullptr;
  std::vector<size_t> column_map;
  std::vector<std::vector<ExprPtr>> rows;
};

/// \brief A resolved UPDATE: assignment values and WHERE are bound against
/// the target table (slots are schema column positions), so they evaluate
/// directly over a materialized row.
struct BoundUpdate {
  Table* table = nullptr;
  std::vector<std::pair<size_t, ExprPtr>> assignments;  ///< (column, value)
  ExprPtr where;  ///< nullptr = every row
};

/// \brief A resolved DELETE (WHERE bound as in BoundUpdate).
struct BoundDelete {
  Table* table = nullptr;
  ExprPtr where;  ///< nullptr = every row
};

/// \brief Resolves and validates a parsed statement against the catalog.
///
/// The binder consumes the statement (it may rewrite parts of it, e.g.
/// expanding `*` and appending hidden ORDER BY columns).
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  Result<BoundQuery> Bind(std::unique_ptr<SelectStatement> stmt);

  Result<BoundInsert> BindInsert(std::unique_ptr<InsertStatement> stmt);
  Result<BoundUpdate> BindUpdate(std::unique_ptr<UpdateStatement> stmt);
  Result<BoundDelete> BindDelete(std::unique_ptr<DeleteStatement> stmt);

  /// Binds a single expression against an existing bound FROM list.
  /// Exposed for the rewriting layer, which post-processes bound queries.
  Status BindExpr(Expr* e, const BoundQuery& q);

 private:
  Status BindExprInternal(Expr* e, const BoundQuery& q, bool allow_aggregates);
  Status ResolveColumnRef(Expr* e, const BoundQuery& q);
  Result<DataType> InferType(Expr* e);
  /// A single-table scope for binding write-statement expressions: slots
  /// coincide with schema column positions.
  Result<BoundQuery> BindWriteScope(const std::string& table_name);

  const Catalog* catalog_;
};

}  // namespace conquer

#endif  // CONQUER_PLAN_BINDER_H_
