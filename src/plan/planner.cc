#include "plan/planner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>

#include "exec/operators.h"

namespace conquer {

namespace {

/// Cost-model crossover between an index probe and the vectorized scan: a
/// probe materializes matches row-at-a-time (plus a per-chunk lookup),
/// which measures out to roughly kIndexCostFactor times the per-row cost of
/// the streaming scan. The index therefore wins only when the equality is
/// expected to keep at most 1-in-kIndexCostFactor rows.
constexpr double kIndexCostFactor = 8.0;

/// An index nested-loop join must amortize one multi-chunk index probe per
/// outer row; require the inner side to be at least this many times larger
/// than the outer estimate before abandoning the hash join.
constexpr double kInljBuildFactor = 16.0;

/// Numeric image of a literal for histogram probes; false for NULL,
/// strings and NaN (none has an ordering position in the histogram).
bool LiteralAsDouble(const Value& v, double* x) {
  if (v.is_null() || v.type() == DataType::kString) return false;
  const double d = v.AsDouble();
  if (std::isnan(d)) return false;
  *x = d;
  return true;
}

void CollectFromIndices(const Expr& e, std::set<int>* out) {
  if (e.kind == Expr::Kind::kColumnRef) {
    out->insert(e.from_index);
    return;
  }
  if (e.left) CollectFromIndices(*e.left, out);
  if (e.right) CollectFromIndices(*e.right, out);
}

/// Marks every wide slot some expression reads (column pruning input).
void CollectSlots(const Expr& e, std::vector<bool>* referenced) {
  if (e.kind == Expr::Kind::kColumnRef) {
    (*referenced)[e.slot] = true;
    return;
  }
  if (e.left) CollectSlots(*e.left, referenced);
  if (e.right) CollectSlots(*e.right, referenced);
}

/// Splits a binary comparison into (column, literal), normalizing the
/// operator as if the column were on the left (`5 < col` reads `col > 5`).
/// Returns false unless the conjunct has exactly that shape.
bool SplitColumnLiteral(const Expr& e, const Expr** col, const Expr** lit,
                        BinaryOp* op) {
  *op = e.bop;
  if (e.left->kind == Expr::Kind::kColumnRef &&
      e.right->kind == Expr::Kind::kLiteral) {
    *col = e.left.get();
    *lit = e.right.get();
    return true;
  }
  if (e.right->kind == Expr::Kind::kColumnRef &&
      e.left->kind == Expr::Kind::kLiteral) {
    *col = e.right.get();
    *lit = e.left.get();
    switch (e.bop) {
      case BinaryOp::kLt: *op = BinaryOp::kGt; break;
      case BinaryOp::kLe: *op = BinaryOp::kGe; break;
      case BinaryOp::kGt: *op = BinaryOp::kLt; break;
      case BinaryOp::kGe: *op = BinaryOp::kLe; break;
      default: break;
    }
    return true;
  }
  return false;
}

/// Single-conjunct selectivity: equi-depth histograms (built by ANALYZE)
/// estimate `=`, `<`, `<=`, `>`, `>=` and BETWEEN (two range conjuncts);
/// NDV covers equality on unanalyzed or string columns; fixed fractions
/// remain the last resort.
double EstimateSelectivity(const Expr& e, const std::vector<Table*>& tables) {
  if (e.kind != Expr::Kind::kBinary) return 0.5;
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  BinaryOp op = e.bop;
  const Histogram* hist = nullptr;
  double x = 0.0;
  switch (e.bop) {
    case BinaryOp::kEq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      if (SplitColumnLiteral(e, &col, &lit, &op)) {
        const Table* t = tables[col->from_index];
        const Histogram& h = t->column_stats(col->column_index).histogram;
        if (!h.empty() && h.total() > 0 &&
            LiteralAsDouble(lit->literal, &x)) {
          hist = &h;
        }
      }
      break;
    default:
      break;
  }
  switch (op) {
    case BinaryOp::kEq: {
      if (hist != nullptr) {
        return std::clamp(
            hist->EstimateEqual(x) / static_cast<double>(hist->total()), 0.0,
            1.0);
      }
      // col = literal: 1/NDV when statistics exist.
      if (col != nullptr) {
        const Table* t = tables[col->from_index];
        size_t ndv = t->column_stats(col->column_index).num_distinct;
        if (ndv > 0) return 1.0 / static_cast<double>(ndv);
      }
      return 0.05;
    }
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (hist != nullptr) {
        const double total = static_cast<double>(hist->total());
        double rows = 0.0;
        switch (op) {
          case BinaryOp::kLt: rows = hist->EstimateLess(x); break;
          case BinaryOp::kLe: rows = hist->EstimateLessEqual(x); break;
          case BinaryOp::kGt: rows = total - hist->EstimateLessEqual(x); break;
          default: rows = total - hist->EstimateLess(x); break;
        }
        return std::clamp(rows / total, 0.0, 1.0);
      }
      return 0.33;
    }
    case BinaryOp::kNe:
      return 0.9;
    case BinaryOp::kLike:
      return 0.25;
    case BinaryOp::kAnd: {
      return EstimateSelectivity(*e.left, tables) *
             EstimateSelectivity(*e.right, tables);
    }
    case BinaryOp::kOr: {
      double a = EstimateSelectivity(*e.left, tables);
      double b = EstimateSelectivity(*e.right, tables);
      return std::min(1.0, a + b);
    }
    default:
      return 0.5;
  }
}

/// One equi-join predicate between two FROM tables.
struct JoinEdge {
  int left_from;
  int left_slot;
  int right_from;
  int right_slot;
  bool used = false;
};

ExprPtr AndCombine(ExprPtr a, ExprPtr b) {
  if (!a) return b;
  if (!b) return a;
  return Expr::MakeBinary(BinaryOp::kAnd, std::move(a), std::move(b));
}

/// A point-lookup candidate: `col = literal` on an indexed column whose
/// probe is sound for the literal (ChunkIndex::ResolveProbe). Recording a
/// candidate does NOT consume the conjunct — it stays in the table filter,
/// so cardinality estimates are access-path independent and the IndexScanOp
/// re-applies the full predicate to its candidate rows.
struct IndexLookup {
  size_t column = SIZE_MAX;  ///< table-local indexed column; SIZE_MAX = none
  Value key;
  double eq_sel = 1.0;  ///< estimated selectivity of the equality conjunct
};

/// Per-edge join selectivity from distinct-value statistics: the classic
/// 1/max(NDV_left, NDV_right); 0.05 when statistics are missing.
double EdgeSelectivity(const BoundQuery& q, const JoinEdge& e) {
  auto ndv_of = [&q](int from, int slot) -> size_t {
    size_t col = static_cast<size_t>(slot) - q.slot_offsets[from];
    return q.tables[from]->column_stats(col).num_distinct;
  };
  size_t l = ndv_of(e.left_from, e.left_slot);
  size_t r = ndv_of(e.right_from, e.right_slot);
  size_t m = std::max(l, r);
  if (m == 0) return 0.05;
  return 1.0 / static_cast<double>(m);
}

/// Selinger-style left-deep join ordering over bitmask subsets: minimizes
/// the summed estimated cardinality of every intermediate result. Returns
/// the table sequence, or empty when n exceeds the configured bound.
std::vector<int> DpJoinOrder(const BoundQuery& q,
                             const std::vector<double>& est,
                             const std::vector<JoinEdge>& edges, int n,
                             int max_dp_tables) {
  if (n < 2 || n > max_dp_tables || n > 20) return {};
  const uint32_t full = (1u << n) - 1;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  struct State {
    double cost = kInf;   // sum of intermediate result sizes
    double rows = 0.0;    // estimated rows of this subset's join
    int last = -1;        // table joined last
  };
  std::vector<State> best(full + 1);
  for (int i = 0; i < n; ++i) {
    best[1u << i] = {0.0, est[i], i};
  }
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (best[mask].cost == kInf) continue;
    for (int t = 0; t < n; ++t) {
      uint32_t bit = 1u << t;
      if (mask & bit) continue;
      double sel = 1.0;
      bool connected = false;
      for (const JoinEdge& e : edges) {
        bool joins_t = false;
        if (e.left_from == t && (mask & (1u << e.right_from))) joins_t = true;
        if (e.right_from == t && (mask & (1u << e.left_from))) joins_t = true;
        if (joins_t) {
          connected = true;
          sel *= EdgeSelectivity(q, e);
        }
      }
      // Discourage (but allow) cross products: they keep selectivity 1.
      if (!connected && mask != full) {
        // Only consider a cross product when nothing connects at all;
        // skipping here keeps the DP from exploring useless orders, and the
        // final fallback below handles fully disconnected queries.
        bool t_connects_anything = false;
        for (const JoinEdge& e : edges) {
          t_connects_anything = t_connects_anything || e.left_from == t ||
                                e.right_from == t;
        }
        if (t_connects_anything) continue;
      }
      double rows = std::max(1.0, best[mask].rows * est[t] * sel);
      double cost = best[mask].cost + rows;
      uint32_t next = mask | bit;
      if (cost < best[next].cost) {
        best[next] = {cost, rows, t};
      }
    }
  }
  if (best[full].cost == kInf) return {};  // disconnected beyond repair
  std::vector<int> order(n);
  uint32_t mask = full;
  for (int i = n - 1; i >= 0; --i) {
    order[i] = best[mask].last;
    mask &= ~(1u << best[mask].last);
  }
  return order;
}

}  // namespace

Result<OperatorPtr> Planner::Plan(const BoundQuery& q,
                                  const PlannerOptions& options,
                                  const ExecContext* exec) {
  const SelectStatement& stmt = *q.stmt;
  size_t n = stmt.from.size();

  // ---- Column pruning: which wide slots does the query actually read? ----
  // Every expression the executor evaluates on a wide row comes from the
  // WHERE clause, the select list, GROUP BY, or ORDER BY; scans materialize
  // only these slots and joins copy only these slots, leaving the rest NULL.
  std::vector<bool> referenced(q.total_slots, false);
  if (stmt.where) CollectSlots(*stmt.where, &referenced);
  for (const auto& item : stmt.select_list) {
    CollectSlots(*item.expr, &referenced);
  }
  for (const auto& g : stmt.group_by) CollectSlots(*g, &referenced);
  for (const auto& o : stmt.order_by) CollectSlots(*o.expr, &referenced);

  // ---- Classify WHERE conjuncts. ----
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(stmt.where.get(), &conjuncts);

  std::vector<ExprPtr> table_filters(n);  // single-table predicates
  std::vector<JoinEdge> edges;
  struct Residual {
    const Expr* expr;
    std::set<int> tables;
    bool applied = false;
  };
  std::vector<Residual> residuals;
  std::vector<IndexLookup> lookups(n);

  for (const Expr* c : conjuncts) {
    std::set<int> refs;
    CollectFromIndices(*c, &refs);
    if (refs.empty()) {
      // Constant predicate: keep as residual applied at the first chance.
      residuals.push_back({c, refs, false});
      continue;
    }
    if (refs.size() == 1) {
      int t = *refs.begin();
      // Candidate for an index point lookup? Recorded, not consumed: the
      // conjunct still joins the table filter below, so estimates and the
      // residual predicate are identical whichever access path wins.
      if (c->kind == Expr::Kind::kBinary && c->bop == BinaryOp::kEq &&
          lookups[t].column == SIZE_MAX) {
        const Expr* col = nullptr;
        const Expr* lit = nullptr;
        BinaryOp op;
        if (SplitColumnLiteral(*c, &col, &lit, &op) &&
            !lit->literal.is_null()) {
          const ChunkIndex* idx = q.tables[t]->GetIndex(col->column_index);
          if (idx != nullptr) {
            bool unsupported = false;
            idx->ResolveProbe(lit->literal,
                              q.tables[t]->dictionary(col->column_index),
                              /*join_semantics=*/false, &unsupported);
            if (!unsupported) {
              lookups[t].column = col->column_index;
              lookups[t].key = lit->literal;
              lookups[t].eq_sel = EstimateSelectivity(*c, q.tables);
            }
          }
        }
      }
      table_filters[t] = AndCombine(std::move(table_filters[t]), c->Clone());
      continue;
    }
    if (refs.size() == 2 && c->kind == Expr::Kind::kBinary &&
        c->bop == BinaryOp::kEq &&
        c->left->kind == Expr::Kind::kColumnRef &&
        c->right->kind == Expr::Kind::kColumnRef) {
      edges.push_back({c->left->from_index, c->left->slot,
                       c->right->from_index, c->right->slot, false});
      continue;
    }
    residuals.push_back({c, refs, false});
  }

  // ---- Per-table scans and cardinality estimates. ----
  std::vector<OperatorPtr> scans(n);
  // Raw scan pointers survive the moves into the join tree; runtime filters
  // are attached through them as joins above each scan are constructed.
  std::vector<SeqScanOp*> seq_scans(n, nullptr);
  std::vector<double> est(n);
  std::vector<std::pair<size_t, size_t>> ranges(n);
  const bool enable_index = exec == nullptr || exec->enable_index_scan;
  // Per-table filter clones surviving the move into the scan: an index
  // nested-loop join chosen later needs the inner table's predicate again.
  std::vector<ExprPtr> inner_filters(n);
  for (size_t i = 0; i < n; ++i) {
    const Table* t = q.tables[i];
    ranges[i] = {q.slot_offsets[i], t->schema().num_columns()};
    // The estimate is access-path independent (the index candidate's
    // equality is part of the filter), so join ordering and build-side
    // choices cannot drift between index-on and index-off plans.
    double rows = static_cast<double>(t->num_rows());
    if (table_filters[i]) {
      rows *= EstimateSelectivity(*table_filters[i], q.tables);
      inner_filters[i] = table_filters[i]->Clone();
    }
    est[i] = std::max(rows, 1.0);
    // Cost-based access path: probe the index only when the equality is
    // estimated selective enough to beat the vectorized full scan.
    const bool use_index = enable_index && lookups[i].column != SIZE_MAX &&
                           lookups[i].eq_sel * kIndexCostFactor <= 1.0;
    if (use_index) {
      auto scan = std::make_unique<IndexScanOp>(
          t, lookups[i].column, lookups[i].key, q.slot_offsets[i],
          q.total_slots, std::move(table_filters[i]), exec);
      scan->set_est_rows(est[i]);
      scans[i] = std::move(scan);
    } else {
      auto scan = std::make_unique<SeqScanOp>(t, q.slot_offsets[i],
                                              q.total_slots,
                                              std::move(table_filters[i]),
                                              exec, &referenced);
      scan->set_est_rows(est[i]);
      seq_scans[i] = scan.get();
      scans[i] = std::move(scan);
    }
  }

  const bool push_runtime_filters =
      exec == nullptr || exec->enable_runtime_filters;
  // Pushes one Bloom filter per join key from `join` into the SeqScan that
  // owns each probe-side key slot. Safe because every scan in the probe
  // subtree opens only after the join's build completes (FillRuntimeFilters
  // runs between the two), and a Bloom filter only drops rows the join
  // itself would reject.
  auto attach_runtime_filters = [&](HashJoinOp* join,
                                    const std::vector<int>& probe_keys) {
    if (!push_runtime_filters) return;
    for (size_t k = 0; k < probe_keys.size(); ++k) {
      const size_t slot = static_cast<size_t>(probe_keys[k]);
      for (size_t t = 0; t < n; ++t) {
        if (seq_scans[t] == nullptr) continue;
        if (slot < ranges[t].first || slot >= ranges[t].first + ranges[t].second) {
          continue;
        }
        auto rf = std::make_shared<RuntimeFilter>();
        join->AddRuntimeFilterTarget(rf, k);
        seq_scans[t]->AddRuntimeFilter(std::move(rf), slot - ranges[t].first);
        break;
      }
    }
  };

  // ---- Join ordering. ----
  // When dynamic programming is selected (and feasible), the full table
  // sequence is fixed up front; otherwise each step picks greedily.
  std::vector<int> fixed_order;
  if (options.join_ordering == PlannerOptions::JoinOrdering::kDynamicProgramming) {
    fixed_order = DpJoinOrder(q, est, edges, static_cast<int>(n),
                              options.max_dp_tables);
  }
  size_t order_step = 0;

  std::set<int> joined;
  std::vector<std::pair<size_t, size_t>> joined_ranges;
  // Start from the DP choice or the smallest estimated table.
  int first = 0;
  if (!fixed_order.empty()) {
    first = fixed_order[order_step++];
  } else {
    for (size_t i = 1; i < n; ++i) {
      if (est[i] < est[first]) first = static_cast<int>(i);
    }
  }
  OperatorPtr plan = std::move(scans[first]);
  joined.insert(first);
  joined_ranges.push_back(ranges[first]);
  double plan_est = est[first];

  auto apply_ready_residuals = [&](OperatorPtr p) {
    for (auto& r : residuals) {
      if (r.applied) continue;
      bool ready = true;
      for (int t : r.tables) ready = ready && joined.count(t) > 0;
      if (ready) {
        p = std::make_unique<FilterOp>(std::move(p), r.expr->Clone());
        r.applied = true;
      }
    }
    return p;
  };
  plan = apply_ready_residuals(std::move(plan));

  while (joined.size() < n) {
    int best = -1;
    if (!fixed_order.empty()) {
      best = fixed_order[order_step++];
    } else {
      // Greedy: the smallest table connected to the joined set by an edge.
      for (const JoinEdge& e : edges) {
        int other = -1;
        if (joined.count(e.left_from) && !joined.count(e.right_from)) {
          other = e.right_from;
        } else if (joined.count(e.right_from) && !joined.count(e.left_from)) {
          other = e.left_from;
        }
        if (other >= 0 && (best < 0 || est[other] < est[best])) best = other;
      }
    }
    bool cross = false;
    if (best < 0) {
      // No connecting edge: cross product with the smallest remaining table.
      cross = true;
      for (size_t i = 0; i < n; ++i) {
        if (joined.count(static_cast<int>(i))) continue;
        if (best < 0 || est[i] < est[best]) best = static_cast<int>(i);
      }
    } else if (!fixed_order.empty()) {
      // The DP order may join a table with no edge into the current set
      // (cross product by decision); detect that for key gathering.
      bool connected = false;
      for (const JoinEdge& e : edges) {
        connected = connected ||
                    (e.left_from == best && joined.count(e.right_from)) ||
                    (e.right_from == best && joined.count(e.left_from));
      }
      cross = !connected;
    }

    std::vector<int> new_keys, old_keys;
    double step_sel = 1.0;  // product of the consumed edges' selectivities
    if (!cross) {
      for (JoinEdge& e : edges) {
        if (e.used) continue;
        if (e.left_from == best && joined.count(e.right_from)) {
          new_keys.push_back(e.left_slot);
          old_keys.push_back(e.right_slot);
          e.used = true;
          step_sel *= EdgeSelectivity(q, e);
        } else if (e.right_from == best && joined.count(e.left_from)) {
          new_keys.push_back(e.right_slot);
          old_keys.push_back(e.left_slot);
          e.used = true;
          step_sel *= EdgeSelectivity(q, e);
        }
      }
    }

    // Referenced slots each side populates: the emitted row copies exactly
    // these (unreferenced slots stay NULL all the way up the plan).
    auto referenced_slots =
        [&referenced](const std::vector<std::pair<size_t, size_t>>& rs) {
          std::vector<uint32_t> out;
          for (const auto& [offset, len] : rs) {
            for (size_t i = 0; i < len; ++i) {
              if (referenced[offset + i]) {
                out.push_back(static_cast<uint32_t>(offset + i));
              }
            }
          }
          return out;
        };
    std::vector<uint32_t> new_slots = referenced_slots({ranges[best]});
    std::vector<uint32_t> old_slots = referenced_slots(joined_ranges);

    // Build on the smaller side. Scans of base tables have known estimates;
    // the running plan uses its rolling estimate.
    OperatorPtr next;
    if (est[best] <= plan_est) {
      auto join = std::make_unique<HashJoinOp>(
          std::move(scans[best]), std::move(plan), new_keys, old_keys,
          std::move(new_slots), std::move(old_slots), exec);
      attach_runtime_filters(join.get(), old_keys);
      next = std::move(join);
    } else {
      // The running plan is the (much) smaller side. When the new table is
      // a seq-scan with an index on its single join key, probe that index
      // per outer row instead of building a hash table over — and scanning
      // — the big side: out of core, only chunks holding matches fault in.
      // Double join keys stay on the hash join (their NaN bucket semantics
      // have no sound index probe).
      if (enable_index && !cross && new_keys.size() == 1 &&
          seq_scans[best] != nullptr &&
          plan_est * kInljBuildFactor <= est[best]) {
        const size_t col =
            static_cast<size_t>(new_keys[0]) - q.slot_offsets[best];
        const Table* t = q.tables[best];
        if (t->GetIndex(col) != nullptr &&
            t->schema().column(col).type != DataType::kDouble) {
          auto join = std::make_unique<IndexNestedLoopJoinOp>(
              std::move(plan), t, col, old_keys[0], q.slot_offsets[best],
              q.total_slots,
              inner_filters[best] ? inner_filters[best]->Clone() : nullptr,
              std::move(old_slots), std::move(new_slots), exec);
          // The replaced scan is gone: it must neither receive runtime
          // filters nor be mistaken for a live operator below.
          seq_scans[best] = nullptr;
          scans[best].reset();
          next = std::move(join);
        }
      }
      if (!next) {
        auto join = std::make_unique<HashJoinOp>(
            std::move(plan), std::move(scans[best]), old_keys, new_keys,
            std::move(old_slots), std::move(new_slots), exec);
        attach_runtime_filters(join.get(), new_keys);
        next = std::move(join);
      }
    }
    plan = std::move(next);
    joined.insert(best);
    joined_ranges.push_back(ranges[best]);
    // NDV-based rolling estimate (the DP cost model's EdgeSelectivity): the
    // old 1/max(rows) formula collapsed every join to min(inputs), which on
    // duplicate-heavy data underestimated the running plan by orders of
    // magnitude and made later joins build on the (huge) plan side.
    plan_est = std::max(1.0, plan_est * est[best] * (cross ? 1.0 : step_sel));
    plan->set_est_rows(plan_est);

    // Edges that became internal to the joined set turn into filters.
    for (JoinEdge& e : edges) {
      if (e.used) continue;
      if (joined.count(e.left_from) && joined.count(e.right_from)) {
        ExprPtr lhs = std::make_unique<Expr>();
        lhs->kind = Expr::Kind::kColumnRef;
        lhs->slot = e.left_slot;
        ExprPtr rhs = std::make_unique<Expr>();
        rhs->kind = Expr::Kind::kColumnRef;
        rhs->slot = e.right_slot;
        plan = std::make_unique<FilterOp>(
            std::move(plan),
            Expr::MakeBinary(BinaryOp::kEq, std::move(lhs), std::move(rhs)));
        e.used = true;
      }
    }
    plan = apply_ready_residuals(std::move(plan));
  }

  // ---- Aggregation or projection to narrow rows. ----
  std::vector<const Expr*> items;
  for (const auto& item : stmt.select_list) items.push_back(item.expr.get());

  if (q.is_aggregate) {
    std::vector<const Expr*> keys;
    for (const auto& g : stmt.group_by) keys.push_back(g.get());
    plan = std::make_unique<HashAggregateOp>(std::move(plan), keys, items,
                                             exec);
  } else {
    plan = std::make_unique<ProjectOp>(std::move(plan), items);
  }

  if (stmt.distinct) {
    plan = std::make_unique<DistinctOp>(std::move(plan));
  }

  if (!stmt.order_by.empty()) {
    std::vector<SortKey> keys;
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      keys.push_back(
          {q.order_by_output_columns[i], stmt.order_by[i].descending});
    }
    plan = std::make_unique<SortOp>(std::move(plan), std::move(keys));
  }

  if (q.num_visible_columns < stmt.select_list.size()) {
    plan = std::make_unique<StripColumnsOp>(std::move(plan),
                                            q.num_visible_columns);
  }

  if (stmt.limit >= 0) {
    plan = std::make_unique<LimitOp>(std::move(plan), stmt.limit);
  }

  return plan;
}

}  // namespace conquer
