#include "plan/binder.h"

#include <cassert>

#include "common/str_util.h"

namespace conquer {

namespace {

/// True when every column reference in `e` appears (as a subexpression)
/// inside one of the grouping expressions — i.e. `e` is a function of the
/// group key. The common case (e IS a grouping expression) is caught first.
bool IsGroupInvariant(const Expr& e, const std::vector<ExprPtr>& group_by) {
  for (const auto& g : group_by) {
    if (e.StructurallyEquals(*g)) return true;
  }
  switch (e.kind) {
    case Expr::Kind::kLiteral:
    case Expr::Kind::kParameter:  // substituted with a constant at execution
      return true;
    case Expr::Kind::kColumnRef:
      return false;  // not matched by any group expression above
    case Expr::Kind::kBinary:
      return IsGroupInvariant(*e.left, group_by) &&
             IsGroupInvariant(*e.right, group_by);
    case Expr::Kind::kUnary:
      return IsGroupInvariant(*e.left, group_by);
    case Expr::Kind::kAggregate:
      return true;  // aggregates are per-group by definition
  }
  return false;
}

/// Coerces a caller-supplied parameter value to the binder-inferred type.
/// `target == kNull` means the statement never pinned the type; the value
/// passes through as-is.
Result<Value> CoerceParam(const Value& v, DataType target, int index) {
  if (v.is_null() || target == DataType::kNull || v.type() == target) {
    return v;
  }
  if (target == DataType::kDouble && v.type() == DataType::kInt64) {
    return Value::Double(static_cast<double>(v.int_value()));
  }
  if (target == DataType::kDate && v.type() == DataType::kString) {
    CONQUER_ASSIGN_OR_RETURN(int64_t days, ParseDate(v.string_value()));
    return Value::Date(days);
  }
  return Status::TypeError(StringPrintf(
      "parameter %d expects %s, got %s", index + 1, DataTypeToString(target),
      DataTypeToString(v.type())));
}

Status SubstituteParams(Expr* e, const std::vector<Value>& params) {
  if (e == nullptr) return Status::OK();
  if (e->kind == Expr::Kind::kParameter) {
    if (e->param_index < 0 ||
        static_cast<size_t>(e->param_index) >= params.size()) {
      return Status::Internal("parameter index out of range");
    }
    CONQUER_ASSIGN_OR_RETURN(
        Value v, CoerceParam(params[e->param_index], e->resolved_type,
                             e->param_index));
    DataType pinned = e->resolved_type;
    e->kind = Expr::Kind::kLiteral;
    e->literal = std::move(v);
    e->resolved_type =
        pinned != DataType::kNull ? pinned : e->literal.type();
    return Status::OK();
  }
  CONQUER_RETURN_NOT_OK(SubstituteParams(e->left.get(), params));
  return SubstituteParams(e->right.get(), params);
}

}  // namespace

BoundQuery BoundQuery::Clone() const {
  BoundQuery out;
  out.stmt = stmt != nullptr ? stmt->Clone() : nullptr;
  out.tables = tables;
  out.slot_offsets = slot_offsets;
  out.total_slots = total_slots;
  out.is_aggregate = is_aggregate;
  out.order_by_output_columns = order_by_output_columns;
  out.num_visible_columns = num_visible_columns;
  out.output_names = output_names;
  out.output_types = output_types;
  return out;
}

Status BindParameters(SelectStatement* stmt,
                      const std::vector<Value>& params) {
  if (static_cast<int>(params.size()) != stmt->num_params) {
    return Status::InvalidArgument(StringPrintf(
        "statement has %d parameter(s), %zu value(s) bound",
        stmt->num_params, params.size()));
  }
  for (auto& item : stmt->select_list) {
    CONQUER_RETURN_NOT_OK(SubstituteParams(item.expr.get(), params));
  }
  CONQUER_RETURN_NOT_OK(SubstituteParams(stmt->where.get(), params));
  for (auto& g : stmt->group_by) {
    CONQUER_RETURN_NOT_OK(SubstituteParams(g.get(), params));
  }
  for (auto& o : stmt->order_by) {
    CONQUER_RETURN_NOT_OK(SubstituteParams(o.expr.get(), params));
  }
  stmt->num_params = 0;
  return Status::OK();
}

Status Binder::ResolveColumnRef(Expr* e, const BoundQuery& q) {
  assert(e->kind == Expr::Kind::kColumnRef);
  int found_from = -1;
  int found_col = -1;
  for (size_t i = 0; i < q.stmt->from.size(); ++i) {
    const TableRef& ref = q.stmt->from[i];
    if (!e->table_alias.empty() &&
        !EqualsIgnoreCase(e->table_alias, ref.effective_alias())) {
      continue;
    }
    auto col = q.tables[i]->schema().FindColumn(e->column_name);
    if (!col) continue;
    if (found_from >= 0) {
      return Status::InvalidArgument("ambiguous column reference '" +
                                     e->ToString() + "'");
    }
    found_from = static_cast<int>(i);
    found_col = static_cast<int>(*col);
  }
  if (found_from < 0) {
    return Status::NotFound("unknown column '" + e->ToString() + "'");
  }
  e->from_index = found_from;
  e->column_index = found_col;
  e->slot = static_cast<int>(q.slot_offsets[found_from]) + found_col;
  e->resolved_type =
      q.tables[found_from]->schema().column(found_col).type;
  return Status::OK();
}

Result<DataType> Binder::InferType(Expr* e) {
  switch (e->kind) {
    case Expr::Kind::kColumnRef:
      return e->resolved_type;  // set by ResolveColumnRef
    case Expr::Kind::kLiteral:
      return e->literal.type();
    case Expr::Kind::kParameter:
      // kNull until a surrounding expression infers the type (below); a
      // parameter whose type is never pinned accepts any bound value.
      return e->resolved_type;
    case Expr::Kind::kUnary: {
      DataType operand = e->left->resolved_type;
      switch (e->uop) {
        case UnaryOp::kNot:
          if (operand != DataType::kBool && operand != DataType::kNull) {
            return Status::TypeError("NOT requires a boolean operand, got " +
                                     std::string(DataTypeToString(operand)));
          }
          return DataType::kBool;
        case UnaryOp::kNeg:
          if (operand != DataType::kInt64 && operand != DataType::kDouble) {
            return Status::TypeError("unary '-' requires a numeric operand");
          }
          return operand;
        case UnaryOp::kIsNull:
        case UnaryOp::kIsNotNull:
          return DataType::kBool;
      }
      return Status::Internal("unhandled unary op");
    }
    case Expr::Kind::kBinary: {
      // Infer '?' parameter types from the sibling operand: in `col = ?`
      // the parameter takes the column's type; in `x AND ?` it is boolean;
      // in `name LIKE ?` it is a string. `? = ?` has no type source.
      const bool l_param = e->left->kind == Expr::Kind::kParameter;
      const bool r_param = e->right->kind == Expr::Kind::kParameter;
      if (l_param && r_param) {
        return Status::TypeError(
            "cannot infer parameter types in '" + e->ToString() +
            "': both operands are placeholders");
      }
      if (l_param || r_param) {
        Expr* param = l_param ? e->left.get() : e->right.get();
        const Expr* other = l_param ? e->right.get() : e->left.get();
        if (param->resolved_type == DataType::kNull) {
          if (e->bop == BinaryOp::kAnd || e->bop == BinaryOp::kOr) {
            param->resolved_type = DataType::kBool;
          } else if (e->bop == BinaryOp::kLike) {
            param->resolved_type = DataType::kString;
          } else {
            param->resolved_type = other->resolved_type;
          }
        }
      }
      DataType lt = e->left->resolved_type;
      DataType rt = e->right->resolved_type;
      switch (e->bop) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          if ((lt != DataType::kBool && lt != DataType::kNull) ||
              (rt != DataType::kBool && rt != DataType::kNull)) {
            return Status::TypeError(
                std::string(BinaryOpToString(e->bop)) +
                " requires boolean operands in '" + e->ToString() + "'");
          }
          return DataType::kBool;
        case BinaryOp::kLike:
          if ((lt != DataType::kString && lt != DataType::kNull) ||
              (rt != DataType::kString && rt != DataType::kNull)) {
            return Status::TypeError("LIKE requires string operands in '" +
                                     e->ToString() + "'");
          }
          return DataType::kBool;
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          if (!TypesComparable(lt, rt)) {
            return Status::TypeError(
                StringPrintf("cannot compare %s with %s in '%s'",
                             DataTypeToString(lt), DataTypeToString(rt),
                             e->ToString().c_str()));
          }
          return DataType::kBool;
        case BinaryOp::kAdd:
        case BinaryOp::kSub: {
          // DATE +/- INT64 -> DATE; otherwise numeric.
          if (lt == DataType::kDate && rt == DataType::kInt64) {
            return DataType::kDate;
          }
          if (e->bop == BinaryOp::kSub && lt == DataType::kDate &&
              rt == DataType::kDate) {
            return DataType::kInt64;  // day difference
          }
          [[fallthrough]];
        }
        case BinaryOp::kMul: {
          bool l_num = lt == DataType::kInt64 || lt == DataType::kDouble;
          bool r_num = rt == DataType::kInt64 || rt == DataType::kDouble;
          if (!l_num || !r_num) {
            return Status::TypeError(
                StringPrintf("arithmetic requires numeric operands in '%s' "
                             "(%s %s %s)",
                             e->ToString().c_str(), DataTypeToString(lt),
                             BinaryOpToString(e->bop), DataTypeToString(rt)));
          }
          if (lt == DataType::kDouble || rt == DataType::kDouble) {
            return DataType::kDouble;
          }
          return DataType::kInt64;
        }
        case BinaryOp::kDiv: {
          bool l_num = lt == DataType::kInt64 || lt == DataType::kDouble;
          bool r_num = rt == DataType::kInt64 || rt == DataType::kDouble;
          if (!l_num || !r_num) {
            return Status::TypeError("division requires numeric operands");
          }
          return DataType::kDouble;  // always exact-ish division
        }
      }
      return Status::Internal("unhandled binary op");
    }
    case Expr::Kind::kAggregate: {
      switch (e->agg) {
        case AggFunc::kCount:
          return DataType::kInt64;
        case AggFunc::kSum: {
          DataType at = e->left->resolved_type;
          if (at != DataType::kInt64 && at != DataType::kDouble) {
            return Status::TypeError("SUM requires a numeric argument");
          }
          return at;
        }
        case AggFunc::kAvg: {
          DataType at = e->left->resolved_type;
          if (at != DataType::kInt64 && at != DataType::kDouble) {
            return Status::TypeError("AVG requires a numeric argument");
          }
          return DataType::kDouble;
        }
        case AggFunc::kMin:
        case AggFunc::kMax:
          return e->left->resolved_type;
        case AggFunc::kNone:
          break;
      }
      return Status::Internal("unhandled aggregate");
    }
  }
  return Status::Internal("unhandled expression kind");
}

Status Binder::BindExprInternal(Expr* e, const BoundQuery& q,
                                bool allow_aggregates) {
  if (e->kind == Expr::Kind::kAggregate) {
    if (!allow_aggregates) {
      return Status::InvalidArgument(
          "aggregate function not allowed here: '" + e->ToString() + "'");
    }
    // Aggregate arguments must not nest aggregates.
    if (e->left != nullptr) {
      CONQUER_RETURN_NOT_OK(BindExprInternal(e->left.get(), q, false));
    }
  } else {
    if (e->left) {
      CONQUER_RETURN_NOT_OK(
          BindExprInternal(e->left.get(), q, allow_aggregates));
    }
    if (e->right) {
      CONQUER_RETURN_NOT_OK(
          BindExprInternal(e->right.get(), q, allow_aggregates));
    }
    if (e->kind == Expr::Kind::kColumnRef) {
      CONQUER_RETURN_NOT_OK(ResolveColumnRef(e, q));
    }
  }
  CONQUER_ASSIGN_OR_RETURN(e->resolved_type, InferType(e));
  return Status::OK();
}

Status Binder::BindExpr(Expr* e, const BoundQuery& q) {
  return BindExprInternal(e, q, /*allow_aggregates=*/true);
}

namespace {

/// Writes execute once, immediately — there is no prepare/execute split, so
/// '?' placeholders have nothing to bind against.
Status RequireNoParams(const Expr& e) {
  if (e.kind == Expr::Kind::kParameter) {
    return Status::InvalidArgument(
        "'?' parameters are not supported in write statements");
  }
  if (e.left) CONQUER_RETURN_NOT_OK(RequireNoParams(*e.left));
  if (e.right) return RequireNoParams(*e.right);
  return Status::OK();
}

/// INSERT values evaluate before any source row exists.
Status RequireConstant(const Expr& e) {
  if (e.kind == Expr::Kind::kColumnRef) {
    return Status::InvalidArgument(
        "INSERT values cannot reference columns: '" + e.ToString() + "'");
  }
  if (e.left) CONQUER_RETURN_NOT_OK(RequireConstant(*e.left));
  if (e.right) return RequireConstant(*e.right);
  return Status::OK();
}

/// Binds one write-statement value expression targeting schema column `col`:
/// no aggregates, no parameters, DATE columns accept string literals, and
/// the resolved type must be storable in the column (INT64 widens to
/// DOUBLE; NULL fits everywhere).
Status BindWriteValue(Binder* binder, Expr* e, const BoundQuery& scope,
                      const ColumnDef& col) {
  CONQUER_RETURN_NOT_OK(RequireNoParams(*e));
  if (e->ContainsAggregate()) {
    return Status::InvalidArgument(
        "aggregates are not allowed in write statements: '" + e->ToString() +
        "'");
  }
  CONQUER_RETURN_NOT_OK(binder->BindExpr(e, scope));
  if (col.type == DataType::kDate && e->kind == Expr::Kind::kLiteral &&
      e->literal.type() == DataType::kString) {
    CONQUER_ASSIGN_OR_RETURN(int64_t days, ParseDate(e->literal.string_value()));
    e->literal = Value::Date(days);
    e->resolved_type = DataType::kDate;
  }
  DataType vt = e->resolved_type;
  if (vt != DataType::kNull && vt != col.type &&
      !(col.type == DataType::kDouble && vt == DataType::kInt64)) {
    return Status::TypeError(StringPrintf(
        "value of type %s does not fit column '%s' (%s)", DataTypeToString(vt),
        col.name.c_str(), DataTypeToString(col.type)));
  }
  return Status::OK();
}

}  // namespace

Result<BoundQuery> Binder::BindWriteScope(const std::string& table_name) {
  BoundQuery q;
  q.stmt = std::make_unique<SelectStatement>();
  TableRef ref;
  ref.table_name = table_name;
  q.stmt->from.push_back(std::move(ref));
  CONQUER_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(table_name));
  q.slot_offsets.push_back(0);
  q.total_slots = table->schema().num_columns();
  q.tables.push_back(table);
  return q;
}

Result<BoundInsert> Binder::BindInsert(std::unique_ptr<InsertStatement> stmt) {
  CONQUER_ASSIGN_OR_RETURN(BoundQuery scope, BindWriteScope(stmt->table_name));
  BoundInsert out;
  out.table = scope.tables[0];
  const TableSchema& schema = out.table->schema();

  if (stmt->columns.empty()) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      out.column_map.push_back(c);
    }
  } else {
    for (const std::string& name : stmt->columns) {
      CONQUER_ASSIGN_OR_RETURN(size_t c, schema.GetColumnIndex(name));
      for (size_t prev : out.column_map) {
        if (prev == c) {
          return Status::InvalidArgument("duplicate column '" + name +
                                         "' in INSERT column list");
        }
      }
      out.column_map.push_back(c);
    }
  }

  for (auto& row : stmt->rows) {
    if (row.size() != out.column_map.size()) {
      return Status::InvalidArgument(StringPrintf(
          "INSERT expects %zu value(s) per tuple, got %zu",
          out.column_map.size(), row.size()));
    }
    for (size_t i = 0; i < row.size(); ++i) {
      CONQUER_RETURN_NOT_OK(RequireConstant(*row[i]));
      CONQUER_RETURN_NOT_OK(BindWriteValue(this, row[i].get(), scope,
                                           schema.column(out.column_map[i])));
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

Result<BoundUpdate> Binder::BindUpdate(std::unique_ptr<UpdateStatement> stmt) {
  CONQUER_ASSIGN_OR_RETURN(BoundQuery scope, BindWriteScope(stmt->table_name));
  BoundUpdate out;
  out.table = scope.tables[0];
  const TableSchema& schema = out.table->schema();

  for (auto& a : stmt->assignments) {
    CONQUER_ASSIGN_OR_RETURN(size_t c, schema.GetColumnIndex(a.column));
    for (const auto& prev : out.assignments) {
      if (prev.first == c) {
        return Status::InvalidArgument("column '" + a.column +
                                       "' assigned twice in UPDATE");
      }
    }
    CONQUER_RETURN_NOT_OK(
        BindWriteValue(this, a.value.get(), scope, schema.column(c)));
    out.assignments.emplace_back(c, std::move(a.value));
  }

  if (stmt->where) {
    CONQUER_RETURN_NOT_OK(RequireNoParams(*stmt->where));
    CONQUER_RETURN_NOT_OK(BindExprInternal(stmt->where.get(), scope, false));
    DataType wt = stmt->where->resolved_type;
    if (wt != DataType::kBool && wt != DataType::kNull) {
      return Status::TypeError("WHERE clause is not boolean");
    }
    out.where = std::move(stmt->where);
  }
  return out;
}

Result<BoundDelete> Binder::BindDelete(std::unique_ptr<DeleteStatement> stmt) {
  CONQUER_ASSIGN_OR_RETURN(BoundQuery scope, BindWriteScope(stmt->table_name));
  BoundDelete out;
  out.table = scope.tables[0];
  if (stmt->where) {
    CONQUER_RETURN_NOT_OK(RequireNoParams(*stmt->where));
    CONQUER_RETURN_NOT_OK(BindExprInternal(stmt->where.get(), scope, false));
    DataType wt = stmt->where->resolved_type;
    if (wt != DataType::kBool && wt != DataType::kNull) {
      return Status::TypeError("WHERE clause is not boolean");
    }
    out.where = std::move(stmt->where);
  }
  return out;
}

Result<BoundQuery> Binder::Bind(std::unique_ptr<SelectStatement> stmt) {
  BoundQuery q;
  q.stmt = std::move(stmt);

  if (q.stmt->from.empty()) {
    return Status::InvalidArgument("FROM list is empty");
  }

  // Resolve FROM tables and assign slot ranges in FROM order.
  for (size_t i = 0; i < q.stmt->from.size(); ++i) {
    const TableRef& ref = q.stmt->from[i];
    CONQUER_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(ref.table_name));
    // Reject duplicate effective aliases.
    for (size_t j = 0; j < i; ++j) {
      if (EqualsIgnoreCase(q.stmt->from[j].effective_alias(),
                           ref.effective_alias())) {
        return Status::InvalidArgument("duplicate table alias '" +
                                       ref.effective_alias() + "' in FROM");
      }
    }
    q.slot_offsets.push_back(q.total_slots);
    q.total_slots += table->schema().num_columns();
    q.tables.push_back(table);
  }

  // Expand SELECT *.
  if (q.stmt->select_list.empty()) {
    for (size_t i = 0; i < q.stmt->from.size(); ++i) {
      const TableSchema& schema = q.tables[i]->schema();
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        SelectItem item;
        item.expr = Expr::MakeColumnRef(q.stmt->from[i].effective_alias(),
                                        schema.column(c).name);
        q.stmt->select_list.push_back(std::move(item));
      }
    }
  }

  // Bind SELECT items (aggregates allowed).
  bool has_aggregate = false;
  for (auto& item : q.stmt->select_list) {
    CONQUER_RETURN_NOT_OK(BindExprInternal(item.expr.get(), q, true));
    has_aggregate = has_aggregate || item.expr->ContainsAggregate();
  }

  // Bind WHERE (no aggregates) and require a boolean predicate.
  if (q.stmt->where) {
    CONQUER_RETURN_NOT_OK(BindExprInternal(q.stmt->where.get(), q, false));
    DataType wt = q.stmt->where->resolved_type;
    if (wt != DataType::kBool && wt != DataType::kNull) {
      return Status::TypeError("WHERE clause is not boolean");
    }
  }

  // Bind GROUP BY (no aggregates inside keys).
  for (auto& g : q.stmt->group_by) {
    CONQUER_RETURN_NOT_OK(BindExprInternal(g.get(), q, false));
  }

  q.is_aggregate = has_aggregate || !q.stmt->group_by.empty();
  if (q.is_aggregate) {
    // Every non-aggregate select item must be derivable from the group key.
    for (const auto& item : q.stmt->select_list) {
      if (item.expr->ContainsAggregate()) continue;
      if (!IsGroupInvariant(*item.expr, q.stmt->group_by)) {
        return Status::InvalidArgument(
            "'" + item.expr->ToString() +
            "' must appear in GROUP BY or be used in an aggregate");
      }
    }
  }

  q.num_visible_columns = q.stmt->select_list.size();

  // Bind ORDER BY: resolve against select aliases/items first; otherwise
  // append a hidden select column carrying the sort key.
  for (auto& item : q.stmt->order_by) {
    // Alias reference?
    if (item.expr->kind == Expr::Kind::kColumnRef &&
        item.expr->table_alias.empty()) {
      bool matched = false;
      for (size_t i = 0; i < q.num_visible_columns && !matched; ++i) {
        if (!q.stmt->select_list[i].alias.empty() &&
            EqualsIgnoreCase(q.stmt->select_list[i].alias,
                             item.expr->column_name)) {
          item.expr = q.stmt->select_list[i].expr->Clone();
          q.order_by_output_columns.push_back(i);
          matched = true;
        }
      }
      if (matched) continue;
    }
    CONQUER_RETURN_NOT_OK(BindExprInternal(item.expr.get(), q, true));
    if (item.expr->ContainsAggregate() && !q.is_aggregate) {
      return Status::InvalidArgument(
          "aggregate in ORDER BY of a non-aggregate query");
    }
    // Structural match against an existing select item?
    bool matched = false;
    for (size_t i = 0; i < q.stmt->select_list.size() && !matched; ++i) {
      if (item.expr->StructurallyEquals(*q.stmt->select_list[i].expr)) {
        q.order_by_output_columns.push_back(i);
        matched = true;
      }
    }
    if (matched) continue;
    if (q.is_aggregate && !IsGroupInvariant(*item.expr, q.stmt->group_by)) {
      return Status::InvalidArgument(
          "ORDER BY expression '" + item.expr->ToString() +
          "' is neither grouped nor aggregated");
    }
    // Hidden sort column.
    SelectItem hidden;
    hidden.expr = item.expr->Clone();
    q.order_by_output_columns.push_back(q.stmt->select_list.size());
    q.stmt->select_list.push_back(std::move(hidden));
  }

  // Output metadata for the visible and hidden columns.
  for (const auto& item : q.stmt->select_list) {
    q.output_names.push_back(item.OutputName());
    q.output_types.push_back(item.expr->resolved_type);
  }
  return q;
}

}  // namespace conquer
