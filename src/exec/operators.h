#ifndef CONQUER_EXEC_OPERATORS_H_
#define CONQUER_EXEC_OPERATORS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "exec/batch.h"
#include "exec/eval.h"
#include "exec/exec_context.h"
#include "exec/operator.h"
#include "exec/runtime_filter.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace conquer {

/// \brief Full scan of a base table into wide rows.
///
/// Each produced row has `total_slots` entries; the table's columns occupy
/// [slot_offset, slot_offset + arity). An optional pushed-down predicate
/// (bound to the wide layout) filters during the scan.
///
/// The scan walks the table chunk by chunk. Per chunk it first consults the
/// zone maps: when they prove no row can match the pushed-down predicate the
/// whole chunk is skipped (metrics: chunks_skipped). Surviving chunks are
/// filtered column-at-a-time (FilterChunkSelection) and then through any
/// runtime Bloom filters pushed down from ancestor hash joins (metrics:
/// bloom_filtered); only rows passing everything are materialized into wide
/// rows.
///
/// With an ExecContext that has a TaskPool and any filter, the per-chunk
/// filtering runs morsel-parallel at Open() — a morsel is a whole chunk, so
/// zone-map pruning composes with the TaskPool — and Next() streams matches
/// in chunk order, so the output row order is identical to the sequential
/// scan for every thread count.
class SeqScanOp : public Operator {
 public:
  /// `referenced_slots`, when given, is the planner's bitmap (indexed by
  /// wide slot) of slots some expression in the query actually reads; the
  /// scan then materializes only those of its columns and leaves the rest
  /// NULL (column pruning). Pass nullptr to materialize every column.
  SeqScanOp(const Table* table, size_t slot_offset, size_t total_slots,
            ExprPtr pushed_filter, const ExecContext* exec = nullptr,
            const std::vector<bool>* referenced_slots = nullptr);

  /// Registers a runtime semi-join filter over table-local column `column`
  /// (planner wiring; the producing join fills it before this scan opens).
  void AddRuntimeFilter(RuntimeFilterPtr filter, size_t column) {
    runtime_filters_.push_back({std::move(filter), column});
  }

  std::string Describe() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;

 private:
  struct ScanFilter {
    RuntimeFilterPtr filter;
    size_t column;  ///< table-local column the Bloom filter keys on
  };

  /// Computes the surviving positions of one chunk: zone-map skip test
  /// (on resident metadata, *before* the chunk payload is pinned — a
  /// skipped chunk costs zero I/O), then chunk-native predicate and runtime
  /// Bloom filters under a pin. Counters are caller-owned so parallel
  /// workers can accumulate locally.
  /// When `keep_pin` is non-null it receives the chunk pin this call took
  /// (reset on the skip path), so a sequential caller can reuse it for
  /// emission instead of faulting the chunk in a second time under a tight
  /// memory budget.
  Status FilterChunk(size_t chunk_index, SelVector* sel, uint64_t* dict_hits,
                     uint64_t* chunks_skipped, uint64_t* bloom_dropped,
                     PinStats* pin_stats, ChunkPin* keep_pin = nullptr) const;
  /// Parallel pre-filter: fills chunk_matches_ with passing positions,
  /// one claimable unit per chunk.
  Status ParallelFilter();
  void MaterializeWide(size_t chunk_index, uint32_t row, Row* out) const;
  /// Holds the emission-path pin on `chunk_index` (rows are materialized
  /// from raw columns, which must be resident). Cached across calls: the
  /// pin only moves when emission crosses a chunk boundary.
  void EnsureEmitPinned(size_t chunk_index);
  /// Folds faulting I/O counters into this operator's metrics.
  void AddPinStats(const PinStats& ps);

  const Table* table_;
  size_t slot_offset_;
  size_t total_slots_;
  ExprPtr filter_;  ///< may be null; bound to the wide layout (for Describe)
  /// `filter_` rebased to table-local slots, so the predicate runs on the
  /// chunk columns *before* wide materialization (and with dictionary
  /// access).
  ExprPtr local_filter_;
  bool prune_ = false;  ///< true when materialize_cols_ limits the copy
  /// Table-local column indices to materialize (column pruning).
  std::vector<uint32_t> materialize_cols_;
  const ExecContext* exec_;
  std::vector<ScanFilter> runtime_filters_;
  /// MVCC snapshot pinned at Open; rows outside it are filtered with the
  /// selection vector (before predicates, after zone-map skip — zones cover
  /// dead versions too, so skipping stays conservative).
  uint64_t snapshot_ = 0;
  bool parallel_ = false;
  /// Parallel path: surviving positions per chunk (chunk-local indices).
  std::vector<SelVector> chunk_matches_;
  /// Streaming cursor: chunk being emitted and position within its matches.
  size_t chunk_cursor_ = 0;
  size_t match_cursor_ = 0;
  /// Sequential path: matches of the chunk currently being emitted.
  SelVector sel_scratch_;
  size_t current_chunk_ = 0;
  size_t next_chunk_ = 0;  ///< next chunk the sequential path will filter
  /// Emission-path pin (see EnsureEmitPinned); released at Close.
  ChunkPin emit_pin_;
  size_t emit_pin_chunk_ = SIZE_MAX;
};

/// \brief Point lookup via a per-chunk secondary index, producing wide rows.
///
/// Used when a pushed-down predicate contains `col = literal` on an indexed
/// column and the cost model estimates the match fraction small enough to
/// beat the vectorized scan. The operator walks the table chunk by chunk:
/// zone maps can rule a chunk out on resident metadata (same test SeqScanOp
/// uses, so the two access paths skip identical chunks), then the chunk's
/// index slice is probed for candidate positions (metrics: index_probes /
/// index_rows). Only chunks with candidates that survive the MVCC
/// visibility check are pinned — an out-of-core point lookup faults in just
/// the chunks containing visible matches.
///
/// `filter` is the *full* pushed-down predicate, including the equality
/// conjunct the probe consumed: every emitted row re-passes it, so index-on
/// and index-off plans return bit-identical rows (candidates are a
/// superset; order is ascending position, i.e. scan order).
class IndexScanOp : public Operator {
 public:
  IndexScanOp(const Table* table, size_t column, Value key,
              size_t slot_offset, size_t total_slots, ExprPtr filter,
              const ExecContext* exec = nullptr);

  std::string Describe() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  const Table* table_;
  size_t column_;  ///< table-local indexed column
  Value key_;
  size_t slot_offset_;
  size_t total_slots_;
  ExprPtr filter_;        ///< bound to the wide layout (for Describe)
  ExprPtr local_filter_;  ///< rebased to table-local slots
  const ExecContext* exec_;
  /// MVCC snapshot pinned at Open. Index slices cover every physical row
  /// (including dead versions — in-place writes invalidate, and rebuilds
  /// re-read all rows), so candidates are post-filtered by visibility.
  uint64_t snapshot_ = 0;
  /// `key_` normalized to the column's stored representation at Open.
  ChunkIndex::ProbeSpec probe_;
  size_t num_chunks_ = 0;
  size_t chunk_cursor_ = 0;   ///< next chunk to probe
  size_t current_chunk_ = 0;  ///< chunk the positions below belong to
  /// Visible candidate positions (chunk-local) of the current chunk.
  std::vector<uint32_t> positions_;
  std::vector<uint32_t> candidates_;  ///< probe scratch (pre-visibility)
  size_t pos_cursor_ = 0;
  Row row_scratch_;  ///< reused table-local materialization buffer
  /// Pin on the chunk being emitted; taken only once a chunk is known to
  /// hold a visible candidate, released when emission leaves the chunk.
  ChunkPin pin_;
  size_t pin_chunk_ = SIZE_MAX;
};

/// \brief Filters wide rows by a bound predicate.
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate);

  std::string Describe() const override;
  std::vector<const Operator*> Children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
  RowBatch child_batch_;
  SelVector sel_;
};

/// \brief In-memory hash equi-join of two wide-row inputs.
///
/// The build (left) input is drained into a hash table keyed on its join
/// slots; probe rows stream through. Outputs merge the two wide rows (each
/// populates disjoint slot ranges). With empty key lists this degrades to a
/// cross product.
///
/// Metrics: open_seconds is the build phase; build_rows / hash_entries /
/// peak_memory_bytes describe the build table; probe_rows counts rows pulled
/// from the probe input during Next().
///
/// With an ExecContext the build is hash-partitioned: workers extract join
/// keys morsel-parallel, then each of `num_partitions` partition tables is
/// built by exactly one worker, inserting its rows in global build order.
/// Bucket row order therefore matches the sequential build, and the probe
/// (which routes each key to its partition) produces bit-identical output
/// for every thread count.
class HashJoinOp : public Operator {
 public:
  /// `build_slots` / `probe_slots` are the wide slots the build resp. probe
  /// subtree populates *and* some query expression reads (the planner
  /// intersects the subtree's slot ranges with its referenced-slot bitmap);
  /// emitted rows copy exactly these slots and leave every other slot NULL.
  HashJoinOp(OperatorPtr build, OperatorPtr probe,
             std::vector<int> build_key_slots, std::vector<int> probe_key_slots,
             std::vector<uint32_t> build_slots, std::vector<uint32_t> probe_slots,
             const ExecContext* exec = nullptr);

  /// Registers a runtime filter this join fills from the distinct build-side
  /// values of key column `key_index` once its build phase completes —
  /// before the probe subtree (which holds the consuming scan) opens.
  void AddRuntimeFilterTarget(RuntimeFilterPtr filter, size_t key_index) {
    filter_targets_.push_back({std::move(filter), key_index});
  }

  std::string Describe() const override;
  std::vector<const Operator*> Children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;

 private:
  struct KeyHash {
    size_t operator()(const std::vector<Value>& key) const;
  };
  struct KeyEq {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
  };
  using BuildTable =
      FlatHashMap<std::vector<Value>, std::vector<Row>, KeyHash, KeyEq>;

  struct FilterTarget {
    RuntimeFilterPtr filter;
    size_t key_index;  ///< position in build_keys_ the filter keys on
  };

  /// Fills every registered runtime filter from the built partitions'
  /// distinct keys and marks them ready (called between build and probe
  /// open).
  void FillRuntimeFilters();
  Result<bool> AdvanceProbe();
  /// Looks up `probe_row` in the build table: extracts the key, hashes it
  /// once (the hash both routes to a partition and probes its flat table)
  /// and returns the matching build rows, or nullptr.
  const std::vector<Row>* ProbeLookup(const Row& probe_row);
  /// Partitioned parallel build over the drained build rows.
  Status ParallelBuild(std::vector<Row> rows);
  /// Streams one build row into the single sequential partition.
  void InsertBuildRow(Row row, uint64_t* table_bytes);
  /// Writes the joined row for (probe_row, build_row) into `dst`, copying
  /// only the referenced probe/build slots. Slots outside both sets are
  /// NULL in every emitted row, so a recycled `dst` (same width, last
  /// written by this operator) needs no re-clearing.
  void EmitRow(const Row& probe_row, const Row& build_row, Row* dst) const;

  OperatorPtr build_;
  OperatorPtr probe_;
  std::vector<int> build_keys_;
  std::vector<int> probe_keys_;
  /// Referenced wide slots the build side populates; copied on match.
  std::vector<uint32_t> build_slots_;
  /// Referenced wide slots the probe side populates; copied on match.
  std::vector<uint32_t> probe_slots_;
  const ExecContext* exec_;
  std::vector<FilterTarget> filter_targets_;

  /// One table per hash partition; sequential builds use a single partition.
  std::vector<BuildTable> partitions_;
  size_t num_partitions_ = 1;
  Row probe_row_;  ///< scalar-path probe row (batch path probes in place)
  /// Batch-path probe row with pending matches; points into probe_batch_,
  /// valid until that batch is refilled (which only happens once the
  /// matches are exhausted).
  const Row* probe_current_ = nullptr;
  const std::vector<Row>* current_matches_ = nullptr;
  size_t match_cursor_ = 0;
  size_t build_rows_ = 0;
  std::vector<Value> probe_key_;  ///< scratch, reused across probe rows
  RowBatch probe_batch_;          ///< batch-path probe input buffer
  size_t probe_cursor_ = 0;
};

/// \brief Index nested-loop equi-join: a tiny build (outer) input probing a
/// base table's per-chunk index instead of scanning the table.
///
/// Drop-in replacement for a HashJoinOp whose build side is estimated tiny
/// and whose probe side is a scan of an indexed table: the outer input is
/// drained at Open, each outer key is resolved to an index probe
/// (join-semantics: NULL matches NULL, exactly like this engine's hash-join
/// key equality), and candidate inner positions are collected chunk by
/// chunk — zone maps rule chunks out on resident metadata, so an
/// out-of-core join faults in only chunks holding matches.
///
/// Bit-identity with the hash join it replaces: the hash join streams the
/// probe (inner table) side in scan order, emitting each inner row against
/// its matching build rows in build order. This operator therefore sorts
/// the collected (inner position, outer index) pairs and emits in exactly
/// that order; inner rows are re-checked against MVCC visibility and the
/// pushed-down inner predicate before emission, so the output matches the
/// hash join row for row.
class IndexNestedLoopJoinOp : public Operator {
 public:
  /// `outer_key_slot` is the wide slot of the outer join key;
  /// `inner_column` the indexed table-local column of `inner`.
  /// `inner_filter` is the predicate the planner would have pushed into the
  /// inner scan (wide layout; may be null). `outer_slots` / `inner_slots`
  /// are the referenced wide slots each side contributes (HashJoinOp
  /// conventions).
  IndexNestedLoopJoinOp(OperatorPtr outer, const Table* inner,
                        size_t inner_column, int outer_key_slot,
                        size_t inner_slot_offset, size_t total_slots,
                        ExprPtr inner_filter,
                        std::vector<uint32_t> outer_slots,
                        std::vector<uint32_t> inner_slots,
                        const ExecContext* exec = nullptr);

  std::string Describe() const override;
  std::vector<const Operator*> Children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  /// One candidate match: inner physical position x outer row index.
  /// Ordered by (pos, outer) — the hash join's probe-major emission order.
  using PairPos = std::pair<uint64_t, uint32_t>;

  /// Index probes for one outer key, appending (pos, outer) candidates.
  Status ProbeOuter(uint32_t outer_idx, PinStats* pin_stats);
  /// Fallback for keys the index cannot probe exactly (e.g. an int column
  /// probed with a huge double): linear scan of every chunk comparing
  /// stored values under join key equality (TotalCompare == 0).
  Status LinearProbe(const Value& key, uint32_t outer_idx,
                     PinStats* pin_stats);
  void EnsurePinned(size_t chunk, PinStats* pin_stats);

  OperatorPtr outer_;
  const Table* inner_;
  size_t inner_column_;
  int outer_key_slot_;
  size_t inner_slot_offset_;
  size_t total_slots_;
  ExprPtr inner_filter_;        ///< wide layout (for Describe)
  ExprPtr inner_local_filter_;  ///< rebased to inner-table-local slots
  std::vector<uint32_t> outer_slots_;
  std::vector<uint32_t> inner_slots_;
  const ExecContext* exec_;
  uint64_t snapshot_ = 0;
  std::vector<Row> outer_rows_;
  std::vector<PairPos> pairs_;  ///< sorted candidates
  size_t cursor_ = 0;
  /// Verdict cache for runs of pairs sharing one inner position: whether
  /// the row passed visibility + inner filter, and its materialized values.
  uint64_t verdict_pos_ = ~0ull;
  bool verdict_keep_ = false;
  Row inner_scratch_;  ///< inner table-local row of verdict_pos_
  ChunkPin pin_;
  size_t pin_chunk_ = SIZE_MAX;
  std::vector<uint32_t> candidates_;  ///< per-chunk probe scratch
};

/// \brief Projects wide rows to narrow output rows (one value per item).
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<const Expr*> exprs);

  std::string Describe() const override;
  std::vector<const Operator*> Children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  std::vector<const Expr*> exprs_;  ///< owned by the bound statement
  RowBatch child_batch_;
};

/// \brief Hash aggregation: GROUP BY keys + aggregate select items.
///
/// Consumes wide rows, produces narrow rows ordered as the select list.
/// Non-aggregate items are evaluated on the first row of each group (the
/// binder guarantees they are group-invariant).
///
/// Metrics: open_seconds is the accumulate phase; hash_entries is the number
/// of groups; peak_memory_bytes estimates the group table footprint.
///
/// With an ExecContext the accumulate phase is partitioned: the input is
/// buffered, group keys are computed morsel-parallel, and each of
/// `num_partitions` partitions (chosen by key hash, so a group lives in
/// exactly one partition) is accumulated by one worker in global input
/// order. Because every group's values are added in the same order as the
/// sequential accumulate, floating-point aggregates (the clean-answer
/// SUM(prob) path) are bit-identical for every thread count; the final
/// merge just concatenates partitions and restores global first-seen group
/// order by sorting on each group's first input row.
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, std::vector<const Expr*> group_exprs,
                  std::vector<const Expr*> select_items,
                  const ExecContext* exec = nullptr);

  std::string Describe() const override;
  std::vector<const Operator*> Children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  struct AggState {
    double sum = 0.0;
    int64_t isum = 0;
    int64_t count = 0;
    Value min_max;  ///< running MIN or MAX
    bool saw_value = false;
  };
  struct Group {
    /// Values of group-invariant select items not covered by the key
    /// (kInvariantEval items), in plan order.
    std::vector<Value> extra_values;
    /// First wide row of the group; kept only when some aggregate item
    /// mixes column references with its aggregates.
    Row representative;
    std::vector<AggState> aggs;  ///< parallel to agg_calls_
    /// Global input position of the row that created the group; the
    /// deterministic output-order sort key (sequential first-seen order).
    uint64_t first_row = 0;
  };
  struct KeyHash {
    size_t operator()(const std::vector<Value>& key) const;
  };
  struct KeyEq {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
  };
  /// How each select item is produced at output time.
  struct ItemPlan {
    enum class Source {
      kFromKey,        ///< item structurally equals group_exprs_[index]
      kInvariantEval,  ///< group-invariant; evaluated once per group
      kFinalize,       ///< contains aggregates; finalized from AggStates
    };
    Source source;
    size_t index = 0;  ///< key position or extra_values position
  };

  using GroupMap = FlatHashMap<std::vector<Value>, Group, KeyHash, KeyEq>;
  /// One output group; collected from the partition tables *after* all
  /// accumulation (flat-table value pointers are stable only once inserts
  /// stop) and sorted by first_row to restore sequential first-seen order.
  struct OutEntry {
    const std::vector<Value>* key;
    const Group* group;
    uint64_t first_row;
  };

  /// Evaluates the group key of `row` and accumulates sequentially. Probes
  /// with a reusable scratch key first and only materializes a key vector on
  /// the first row of each group (the hot path for low-cardinality inputs).
  Status Accumulate(const Row& row, uint64_t row_index);
  /// Accumulates `row` into `map` under the precomputed `key` and its raw
  /// hash (hash-once: the same hash routed the row to its partition).
  Status AccumulateRow(GroupMap* map, uint64_t raw_hash,
                       std::vector<Value> key, const Row& row,
                       uint64_t row_index);
  /// One-time group setup on first-seen row (representative, invariant
  /// select items, agg state sizing).
  Status InitGroup(Group* group, const Row& row, uint64_t row_index);
  /// Folds `row` into the running aggregate states of `group`.
  Status UpdateGroup(Group* group, const Row& row);
  /// Partitioned parallel accumulate over the buffered input rows.
  Status ParallelAccumulate(const std::vector<Row>& rows);
  /// Rebuilds output_order_ from the partition tables (post-accumulate).
  void BuildOutputOrder();
  Result<Value> Finalize(const Expr& e, const Group& group) const;
  Result<std::vector<Value>> GroupKey(const Row& row) const;
  /// GroupKey into a caller-owned vector (cleared first); lets the
  /// sequential path reuse one scratch allocation across all input rows.
  Status GroupKeyInto(const Row& row, std::vector<Value>* key) const;

  OperatorPtr child_;
  std::vector<const Expr*> group_exprs_;
  std::vector<const Expr*> select_items_;
  const ExecContext* exec_;
  std::vector<ItemPlan> item_plans_;  ///< parallel to select_items_
  bool needs_representative_ = false;
  size_t num_invariant_evals_ = 0;
  /// All aggregate sub-expressions found in the select items, in discovery
  /// order; AggState vectors are parallel to this.
  std::vector<const Expr*> agg_calls_;

  /// Group tables, one per hash partition (a single one when sequential).
  std::vector<GroupMap> partition_groups_;
  /// Scratch key for the sequential accumulate probe (reused every row).
  std::vector<Value> key_scratch_;
  size_t num_partitions_ = 1;
  std::vector<OutEntry> output_order_;
  size_t cursor_ = 0;
  bool no_input_ = false;  ///< true when child yielded zero rows
};

/// Sort key on a narrow output row.
struct SortKey {
  size_t column;
  bool descending;
};

/// \brief Full in-memory sort of narrow rows.
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<SortKey> keys);

  std::string Describe() const override;
  std::vector<const Operator*> Children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t cursor_ = 0;
};

/// \brief Duplicate elimination over narrow rows (SELECT DISTINCT).
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child);

  std::string Describe() const override;
  std::vector<const Operator*> Children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;

 private:
  struct RowHash {
    size_t operator()(const Row& r) const;
  };
  struct RowEq {
    bool operator()(const Row& a, const Row& b) const;
  };
  OperatorPtr child_;
  FlatHashMap<Row, bool, RowHash, RowEq> seen_;
  RowBatch child_batch_;
};

/// \brief Emits at most `limit` rows.
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, int64_t limit);

  std::string Describe() const override;
  std::vector<const Operator*> Children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  int64_t limit_;
  int64_t produced_ = 0;
  RowBatch child_batch_;
};

/// \brief Strips hidden trailing sort columns from narrow rows.
class StripColumnsOp : public Operator {
 public:
  StripColumnsOp(OperatorPtr child, size_t num_visible);

  std::string Describe() const override;
  std::vector<const Operator*> Children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  size_t num_visible_;
};

}  // namespace conquer

#endif  // CONQUER_EXEC_OPERATORS_H_
