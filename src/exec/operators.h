#ifndef CONQUER_EXEC_OPERATORS_H_
#define CONQUER_EXEC_OPERATORS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/eval.h"
#include "exec/exec_context.h"
#include "exec/operator.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace conquer {

/// \brief Full scan of a base table into wide rows.
///
/// Each produced row has `total_slots` entries; the table's columns occupy
/// [slot_offset, slot_offset + arity). An optional pushed-down predicate
/// (bound to the wide layout) filters during the scan.
///
/// With an ExecContext that has a TaskPool and a pushed-down predicate, the
/// predicate is evaluated morsel-parallel at Open(): workers claim morsels
/// from a shared counter and record the passing row positions per morsel.
/// Next() then streams matches in morsel order, so the output row order is
/// identical to the sequential scan for every thread count.
class SeqScanOp : public Operator {
 public:
  SeqScanOp(const Table* table, size_t slot_offset, size_t total_slots,
            ExprPtr pushed_filter, const ExecContext* exec = nullptr);

  std::string Describe() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  /// Parallel pre-filter: fills morsel_matches_ with passing row positions.
  Status ParallelFilter();
  void MaterializeWide(size_t row_pos, Row* out) const;

  const Table* table_;
  size_t slot_offset_;
  size_t total_slots_;
  ExprPtr filter_;  ///< may be null
  const ExecContext* exec_;
  size_t cursor_ = 0;
  bool parallel_ = false;
  std::vector<std::vector<uint32_t>> morsel_matches_;
  size_t morsel_cursor_ = 0;
  size_t match_cursor_ = 0;
};

/// \brief Point lookup via a hash index, producing wide rows.
///
/// Used when a pushed-down predicate contains `col = literal` on an indexed
/// column; remaining conjuncts are applied as a residual filter.
class IndexScanOp : public Operator {
 public:
  IndexScanOp(const Table* table, const HashIndex* index, Value key,
              size_t slot_offset, size_t total_slots, ExprPtr residual_filter);

  std::string Describe() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;

 private:
  const Table* table_;
  const HashIndex* index_;
  Value key_;
  size_t slot_offset_;
  size_t total_slots_;
  ExprPtr filter_;
  const std::vector<size_t>* matches_ = nullptr;
  size_t cursor_ = 0;
};

/// \brief Filters wide rows by a bound predicate.
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate);

  std::string Describe() const override;
  std::vector<const Operator*> Children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

/// \brief In-memory hash equi-join of two wide-row inputs.
///
/// The build (left) input is drained into a hash table keyed on its join
/// slots; probe rows stream through. Outputs merge the two wide rows (each
/// populates disjoint slot ranges). With empty key lists this degrades to a
/// cross product.
///
/// Metrics: open_seconds is the build phase; build_rows / hash_entries /
/// peak_memory_bytes describe the build table; probe_rows counts rows pulled
/// from the probe input during Next().
///
/// With an ExecContext the build is hash-partitioned: workers extract join
/// keys morsel-parallel, then each of `num_partitions` partition tables is
/// built by exactly one worker, inserting its rows in global build order.
/// Bucket row order therefore matches the sequential build, and the probe
/// (which routes each key to its partition) produces bit-identical output
/// for every thread count.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr build, OperatorPtr probe,
             std::vector<int> build_key_slots, std::vector<int> probe_key_slots,
             std::vector<std::pair<size_t, size_t>> build_filled_ranges,
             const ExecContext* exec = nullptr);

  std::string Describe() const override;
  std::vector<const Operator*> Children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  struct KeyHash {
    size_t operator()(const std::vector<Value>& key) const;
  };
  struct KeyEq {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
  };
  using BuildTable =
      std::unordered_map<std::vector<Value>, std::vector<Row>, KeyHash, KeyEq>;

  Result<bool> AdvanceProbe();
  /// Partitioned parallel build over the drained build rows.
  Status ParallelBuild(std::vector<Row> rows);

  OperatorPtr build_;
  OperatorPtr probe_;
  std::vector<int> build_keys_;
  std::vector<int> probe_keys_;
  /// Slot ranges the build side populates; copied into probe rows on match.
  std::vector<std::pair<size_t, size_t>> build_ranges_;
  const ExecContext* exec_;

  /// One table per hash partition; sequential builds use a single partition.
  std::vector<BuildTable> partitions_;
  size_t num_partitions_ = 1;
  Row probe_row_;
  const std::vector<Row>* current_matches_ = nullptr;
  size_t match_cursor_ = 0;
  size_t build_rows_ = 0;
};

/// \brief Projects wide rows to narrow output rows (one value per item).
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<const Expr*> exprs);

  std::string Describe() const override;
  std::vector<const Operator*> Children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  std::vector<const Expr*> exprs_;  ///< owned by the bound statement
};

/// \brief Hash aggregation: GROUP BY keys + aggregate select items.
///
/// Consumes wide rows, produces narrow rows ordered as the select list.
/// Non-aggregate items are evaluated on the first row of each group (the
/// binder guarantees they are group-invariant).
///
/// Metrics: open_seconds is the accumulate phase; hash_entries is the number
/// of groups; peak_memory_bytes estimates the group table footprint.
///
/// With an ExecContext the accumulate phase is partitioned: the input is
/// buffered, group keys are computed morsel-parallel, and each of
/// `num_partitions` partitions (chosen by key hash, so a group lives in
/// exactly one partition) is accumulated by one worker in global input
/// order. Because every group's values are added in the same order as the
/// sequential accumulate, floating-point aggregates (the clean-answer
/// SUM(prob) path) are bit-identical for every thread count; the final
/// merge just concatenates partitions and restores global first-seen group
/// order by sorting on each group's first input row.
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, std::vector<const Expr*> group_exprs,
                  std::vector<const Expr*> select_items,
                  const ExecContext* exec = nullptr);

  std::string Describe() const override;
  std::vector<const Operator*> Children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  struct AggState {
    double sum = 0.0;
    int64_t isum = 0;
    int64_t count = 0;
    Value min_max;  ///< running MIN or MAX
    bool saw_value = false;
  };
  struct Group {
    /// Values of group-invariant select items not covered by the key
    /// (kInvariantEval items), in plan order.
    std::vector<Value> extra_values;
    /// First wide row of the group; kept only when some aggregate item
    /// mixes column references with its aggregates.
    Row representative;
    std::vector<AggState> aggs;  ///< parallel to agg_calls_
  };
  struct KeyHash {
    size_t operator()(const std::vector<Value>& key) const;
  };
  struct KeyEq {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
  };
  /// How each select item is produced at output time.
  struct ItemPlan {
    enum class Source {
      kFromKey,        ///< item structurally equals group_exprs_[index]
      kInvariantEval,  ///< group-invariant; evaluated once per group
      kFinalize,       ///< contains aggregates; finalized from AggStates
    };
    Source source;
    size_t index = 0;  ///< key position or extra_values position
  };

  using GroupMap = std::unordered_map<std::vector<Value>, Group, KeyHash, KeyEq>;
  /// One output group in partition-local discovery order; `first_row` is
  /// the global input position that created the group (used to restore the
  /// sequential first-seen output order after a parallel accumulate).
  struct OutEntry {
    const std::vector<Value>* key;
    const Group* group;
    uint64_t first_row;
  };

  /// Evaluates the group key of `row` and accumulates sequentially.
  Status Accumulate(const Row& row, uint64_t row_index);
  /// Accumulates `row` into `map` under the precomputed `key`.
  Status AccumulateRow(GroupMap* map, std::vector<Value> key, const Row& row,
                       uint64_t row_index, std::vector<OutEntry>* order);
  /// Partitioned parallel accumulate over the buffered input rows.
  Status ParallelAccumulate(const std::vector<Row>& rows);
  Result<Value> Finalize(const Expr& e, const Group& group) const;
  Result<std::vector<Value>> GroupKey(const Row& row) const;

  OperatorPtr child_;
  std::vector<const Expr*> group_exprs_;
  std::vector<const Expr*> select_items_;
  const ExecContext* exec_;
  std::vector<ItemPlan> item_plans_;  ///< parallel to select_items_
  bool needs_representative_ = false;
  size_t num_invariant_evals_ = 0;
  /// All aggregate sub-expressions found in the select items, in discovery
  /// order; AggState vectors are parallel to this.
  std::vector<const Expr*> agg_calls_;

  /// Group tables, one per hash partition (a single one when sequential).
  std::vector<GroupMap> partition_groups_;
  size_t num_partitions_ = 1;
  std::vector<OutEntry> output_order_;
  size_t cursor_ = 0;
  bool no_input_ = false;  ///< true when child yielded zero rows
};

/// Sort key on a narrow output row.
struct SortKey {
  size_t column;
  bool descending;
};

/// \brief Full in-memory sort of narrow rows.
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<SortKey> keys);

  std::string Describe() const override;
  std::vector<const Operator*> Children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t cursor_ = 0;
};

/// \brief Duplicate elimination over narrow rows (SELECT DISTINCT).
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child);

  std::string Describe() const override;
  std::vector<const Operator*> Children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  struct RowHash {
    size_t operator()(const Row& r) const;
  };
  struct RowEq {
    bool operator()(const Row& a, const Row& b) const;
  };
  OperatorPtr child_;
  std::unordered_map<Row, bool, RowHash, RowEq> seen_;
};

/// \brief Emits at most `limit` rows.
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, int64_t limit);

  std::string Describe() const override;
  std::vector<const Operator*> Children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  int64_t limit_;
  int64_t produced_ = 0;
};

/// \brief Strips hidden trailing sort columns from narrow rows.
class StripColumnsOp : public Operator {
 public:
  StripColumnsOp(OperatorPtr child, size_t num_visible);

  std::string Describe() const override;
  std::vector<const Operator*> Children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* out) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  size_t num_visible_;
};

}  // namespace conquer

#endif  // CONQUER_EXEC_OPERATORS_H_
