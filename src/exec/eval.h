#ifndef CONQUER_EXEC_EVAL_H_
#define CONQUER_EXEC_EVAL_H_

#include "common/result.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace conquer {

/// \brief Evaluates a bound, aggregate-free expression on a row.
///
/// SQL three-valued logic: a comparison with a NULL operand yields NULL;
/// AND/OR follow Kleene logic; arithmetic with NULL yields NULL. Column
/// references read `row[expr.slot]`.
Result<Value> EvalExpr(const Expr& e, const Row& row);

/// \brief Evaluates a predicate for filtering: NULL counts as "not passed".
Result<bool> EvalPredicate(const Expr& e, const Row& row);

}  // namespace conquer

#endif  // CONQUER_EXEC_EVAL_H_
