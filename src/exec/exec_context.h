#ifndef CONQUER_EXEC_EXEC_CONTEXT_H_
#define CONQUER_EXEC_EXEC_CONTEXT_H_

#include <cstddef>

#include "common/task_pool.h"

namespace conquer {

/// \brief Per-database execution settings shared by all parallel-capable
/// operators (morsel-driven scan, partitioned hash build, partitioned
/// aggregation).
///
/// A null `pool` (the default, and what Database::SetThreads(1) restores)
/// means strictly sequential execution — operators take their original
/// single-threaded code paths and produce output bit-identical to the
/// pre-parallel engine. With a pool, operators split their input into
/// `morsel_size`-row morsels claimed dynamically by `pool->num_threads()`
/// worker tasks, and hash state is split into `num_partitions` partitions
/// by key hash. `num_partitions` is deliberately independent of the thread
/// count: each group/bucket lives in exactly one partition and every
/// partition accumulates its rows in global input order, which keeps
/// floating-point sums (the clean-answer SUM(prob) path) bit-identical for
/// every thread count, including 1.
struct ExecContext {
  TaskPool* pool = nullptr;

  /// Rows per morsel; also the granularity below which operators do not
  /// bother going parallel (inputs under 2 morsels run sequentially).
  size_t morsel_size = 1024;

  /// Hash-partition fanout for parallel join builds and aggregations.
  size_t num_partitions = 32;

  /// Rows per RowBatch in the batch-at-a-time executor path. The root
  /// consumer seeds its batch with this capacity and operators propagate it
  /// down the pipeline. Output is bit-identical for every batch size.
  size_t batch_size = 1024;

  /// Let scans skip whole chunks whose zone maps prove no row can match the
  /// pushed-down predicate. Pruning only drops provably-dead chunks, so
  /// results are identical either way (A/B knob for tests and benchmarks).
  bool enable_zone_pruning = true;

  /// Let the planner push hash-join build-side Bloom filters into
  /// probe-side scans (runtime semi-join filtering). Filters only drop rows
  /// the join would reject, so results are identical either way.
  bool enable_runtime_filters = true;

  /// Let the planner pick index access paths (IndexScan point lookups and
  /// index-nested-loop joins) where the cost model favors them. Index
  /// probes return candidate supersets that are re-verified against the
  /// full predicate, and the physical operators preserve scan row order,
  /// so results are bit-identical either way (A/B knob for the
  /// differential fuzzer and benchmarks).
  bool enable_index_scan = true;

  /// Sentinel for snapshot_override: scans pin the table's latest committed
  /// version at Open. (No real snapshot can be UINT64_MAX — a row version
  /// never begins there.)
  static constexpr uint64_t kSnapshotLatest = ~0ull;

  /// MVCC snapshot scans read instead of the latest committed version.
  /// Test knob for visibility assertions; written only while no query is in
  /// flight (writes run behind the exclusive admission ticket).
  uint64_t snapshot_override = kSnapshotLatest;

  /// Worker tasks a parallel phase schedules (the pool size, or 1).
  size_t parallelism() const {
    return pool != nullptr ? pool->num_threads() : 1;
  }

  /// True when an operator with `rows` input rows should parallelize.
  bool ShouldParallelize(size_t rows) const {
    return pool != nullptr && pool->num_threads() > 1 &&
           rows >= morsel_size * 2;
  }
};

}  // namespace conquer

#endif  // CONQUER_EXEC_EXEC_CONTEXT_H_
