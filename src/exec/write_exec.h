#ifndef CONQUER_EXEC_WRITE_EXEC_H_
#define CONQUER_EXEC_WRITE_EXEC_H_

#include <vector>

#include "common/result.h"
#include "plan/binder.h"
#include "storage/table.h"
#include "types/value.h"

namespace conquer {

/// \brief Outcome of one write statement.
struct WriteResult {
  int64_t rows_matched = 0;  ///< rows the WHERE predicate selected
  int64_t rows_changed = 0;  ///< rows inserted / updated / deleted
  /// Values of `id_column` in every touched row version (old and new, in
  /// touch order, duplicates preserved); empty when id_column < 0. The
  /// engine's write hook renormalizes exactly these clusters.
  std::vector<Value> touched_ids;
};

/// \brief MVCC write executors.
///
/// All three run under the engine's exclusive admission ticket: no reader is
/// concurrently open, so stamping is plain (non-atomic) storage writes. The
/// caller allocates `version = table->BeginWrite()` and publishes it with
/// `table->CommitWrite(version)` after the executor (and any maintenance
/// hook) returns; readers admitted before the commit pinned the previous
/// snapshot and never see the new stamps. The executors may fail midway
/// with stamps already applied (e.g. a later VALUES tuple fails its type
/// check) — on any error the caller must `table->AbortWrite(version)` so
/// the partial stamps are not published by a later commit.
///
/// UPDATE and DELETE evaluate their predicate over the rows visible at
/// `version - 1` (the snapshot being superseded); UPDATE stamps the old
/// version dead and appends the modified copy beginning at `version`.
/// `id_column` (>= 0 for registered dirty tables) selects which column's
/// values are collected into WriteResult::touched_ids.

Result<WriteResult> ExecuteInsert(Table* table, const BoundInsert& ins,
                                  uint64_t version, int id_column);

Result<WriteResult> ExecuteUpdate(Table* table, const BoundUpdate& upd,
                                  uint64_t version, int id_column);

Result<WriteResult> ExecuteDelete(Table* table, const BoundDelete& del,
                                  uint64_t version, int id_column);

}  // namespace conquer

#endif  // CONQUER_EXEC_WRITE_EXEC_H_
