#ifndef CONQUER_EXEC_RESULT_SET_H_
#define CONQUER_EXEC_RESULT_SET_H_

#include <string>
#include <vector>

#include "storage/table.h"
#include "types/value.h"

namespace conquer {

/// \brief Materialized query result: column metadata plus rows.
struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<DataType> column_types;
  std::vector<Row> rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_columns() const { return column_names.size(); }

  /// Index of the named column (case-insensitive), or -1.
  int FindColumn(std::string_view name) const;

  /// ASCII-art table (for examples and debugging). Caps at `max_rows`.
  std::string ToString(size_t max_rows = 50) const;

  /// True if some row equals `row` under Value::TotalCompare.
  bool ContainsRow(const Row& row) const;
};

}  // namespace conquer

#endif  // CONQUER_EXEC_RESULT_SET_H_
