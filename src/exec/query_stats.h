#ifndef CONQUER_EXEC_QUERY_STATS_H_
#define CONQUER_EXEC_QUERY_STATS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exec/operator.h"

namespace conquer {

/// \brief One node of an executed plan: its description, the counters it
/// collected, and its children. `self_seconds` is the node's total time
/// minus its children's totals (children run inside the parent's pull).
struct PlanNodeStats {
  std::string description;
  OperatorMetrics metrics;
  double self_seconds = 0.0;
  std::vector<PlanNodeStats> children;
};

/// \brief End-to-end statistics of one Database::Query call: phase timings
/// (parse/bind/plan/exec), result size, the estimated peak of materialized
/// operator state, and the executed plan annotated with per-operator
/// counters. This is what EXPLAIN ANALYZE renders and what the Fig. 8/9
/// bench binaries use to attribute rewritten-query overhead to the added
/// HashAggregate.
struct QueryStats {
  double parse_seconds = 0.0;
  double bind_seconds = 0.0;
  double plan_seconds = 0.0;
  double exec_seconds = 0.0;
  uint64_t rows_returned = 0;
  /// Sum of the operators' estimated materialized state (hash tables, sort
  /// buffers). An estimate, not an RSS measurement.
  uint64_t peak_memory_bytes = 0;
  PlanNodeStats plan;

  double total_seconds() const {
    return parse_seconds + bind_seconds + plan_seconds + exec_seconds;
  }

  /// Sum of self time over all plan nodes whose description starts with
  /// `op_prefix` (e.g. "HashAggregate", "HashJoin", "Sort").
  double OperatorSelfSeconds(std::string_view op_prefix) const;

  /// Fraction of exec time spent (self) in operators matching `op_prefix`;
  /// 0 when exec_seconds is 0.
  double OperatorShare(std::string_view op_prefix) const;

  /// Rows produced by operators matching `op_prefix` (first match wins,
  /// pre-order); 0 when absent.
  uint64_t OperatorRows(std::string_view op_prefix) const;

  /// Human-readable report: phase summary plus the annotated plan tree.
  std::string ToString() const;
};

/// Harvests per-operator counters from an executed plan (call after the
/// Next() loop; metrics survive Close()).
PlanNodeStats CollectPlanStats(const Operator& root);

/// Renders an annotated plan tree, EXPLAIN ANALYZE style:
///   HashAggregate(...)  (rows=42 nexts=43 time=1.20ms self=0.80ms ...)
std::string RenderAnalyzedPlan(const PlanNodeStats& root);

/// Sum of peak_memory_bytes over the whole tree.
uint64_t EstimatePlanPeakMemory(const PlanNodeStats& root);

}  // namespace conquer

#endif  // CONQUER_EXEC_QUERY_STATS_H_
