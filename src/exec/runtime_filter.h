#ifndef CONQUER_EXEC_RUNTIME_FILTER_H_
#define CONQUER_EXEC_RUNTIME_FILTER_H_

#include <atomic>
#include <memory>

#include "common/bloom.h"

namespace conquer {

/// \brief A semi-join filter flowing from a hash join's build side into a
/// probe-side base-table scan.
///
/// The planner creates one per (join, key column), shared between the
/// producing HashJoinOp and the consuming SeqScanOp. The join fills the
/// Bloom filter with the distinct build-side key values after its build
/// phase and flips `ready`; the scan — which a join always opens *after*
/// its build is drained, for every nesting of joins — then drops probe rows
/// whose key cannot be in the build table before wide materialization.
///
/// Safety: the filter only ever *drops* rows, and only rows whose join key
/// is provably absent from the build side (Bloom filters have no false
/// negatives) or NULL (which an inner equi-join drops anyway). False
/// positives merely pass a row the join will reject. Surviving rows keep
/// their scan order, so downstream results — including floating-point
/// SUM(prob) accumulation order — are bit-identical with or without the
/// filter.
struct RuntimeFilter {
  BlockedBloomFilter bloom;
  std::atomic<bool> ready{false};
};

using RuntimeFilterPtr = std::shared_ptr<RuntimeFilter>;

}  // namespace conquer

#endif  // CONQUER_EXEC_RUNTIME_FILTER_H_
