#include "exec/write_exec.h"

#include "exec/eval.h"

namespace conquer {

namespace {

/// Row positions visible at `snapshot` whose materialized row passes
/// `where` (nullptr = all visible rows). Collected fully before any
/// mutation so appends made by the caller cannot re-enter the scan.
Result<std::vector<size_t>> MatchingRows(const Table& table, const Expr* where,
                                         uint64_t snapshot) {
  std::vector<size_t> matches;
  Row scratch;
  RowCursor cursor(&table);
  for (size_t pos : table.VisibleRowPositions(snapshot)) {
    if (where != nullptr) {
      cursor.Touch(pos);
      table.GetRowInto(pos, &scratch);
      CONQUER_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*where, scratch));
      if (!pass) continue;
    }
    matches.push_back(pos);
  }
  return matches;
}

void CollectId(const Table& table, size_t pos, int id_column,
               std::vector<Value>* out) {
  if (id_column >= 0) {
    out->push_back(table.ValueAt(pos, static_cast<size_t>(id_column)));
  }
}

}  // namespace

Result<WriteResult> ExecuteInsert(Table* table, const BoundInsert& ins,
                                  uint64_t version, int id_column) {
  WriteResult result;
  static const Row kNoRow;
  for (const auto& exprs : ins.rows) {
    Row full(table->schema().num_columns(), Value::Null());
    for (size_t i = 0; i < exprs.size(); ++i) {
      CONQUER_ASSIGN_OR_RETURN(Value v, EvalExpr(*exprs[i], kNoRow));
      full[ins.column_map[i]] = std::move(v);
    }
    const size_t pos = table->num_rows();
    CONQUER_RETURN_NOT_OK(table->InsertVersioned(std::move(full), version));
    CollectId(*table, pos, id_column, &result.touched_ids);
    ++result.rows_changed;
  }
  result.rows_matched = result.rows_changed;
  return result;
}

Result<WriteResult> ExecuteUpdate(Table* table, const BoundUpdate& upd,
                                  uint64_t version, int id_column) {
  CONQUER_ASSIGN_OR_RETURN(
      std::vector<size_t> matches,
      MatchingRows(*table, upd.where.get(), version - 1));
  WriteResult result;
  result.rows_matched = static_cast<int64_t>(matches.size());
  Row old_row;
  for (size_t pos : matches) {
    table->GetRowInto(pos, &old_row);
    // All assignment values evaluate against the OLD row (SQL semantics:
    // `SET a = b, b = a` swaps).
    Row new_row = old_row;
    for (const auto& [col, expr] : upd.assignments) {
      CONQUER_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, old_row));
      new_row[col] = std::move(v);
    }
    CollectId(*table, pos, id_column, &result.touched_ids);
    table->MarkRowDead(pos, version);
    const size_t new_pos = table->num_rows();
    CONQUER_RETURN_NOT_OK(table->InsertVersioned(std::move(new_row), version));
    CollectId(*table, new_pos, id_column, &result.touched_ids);
    ++result.rows_changed;
  }
  return result;
}

Result<WriteResult> ExecuteDelete(Table* table, const BoundDelete& del,
                                  uint64_t version, int id_column) {
  CONQUER_ASSIGN_OR_RETURN(
      std::vector<size_t> matches,
      MatchingRows(*table, del.where.get(), version - 1));
  WriteResult result;
  result.rows_matched = static_cast<int64_t>(matches.size());
  for (size_t pos : matches) {
    CollectId(*table, pos, id_column, &result.touched_ids);
    table->MarkRowDead(pos, version);
    ++result.rows_changed;
  }
  return result;
}

}  // namespace conquer
