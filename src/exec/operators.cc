#include "exec/operators.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "common/str_util.h"
#include "common/task_pool.h"

namespace conquer {

namespace {
size_t HashValues(const std::vector<Value>& vals) {
  size_t h = 0x811c9dc5u;
  for (const Value& v : vals) {
    h ^= v.Hash();
    h *= 0x01000193u;
  }
  return h;
}

bool ValuesEqual(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].TotalCompare(b[i]) != 0) return false;
  }
  return true;
}
}  // namespace

uint64_t EstimateRowBytes(const Row& row) {
  uint64_t bytes = sizeof(Row) + row.capacity() * sizeof(Value);
  for (const Value& v : row) {
    if (v.type() == DataType::kString) bytes += v.string_value().capacity();
  }
  return bytes;
}

std::string ExplainPlan(const Operator& root) {
  std::string out;
  struct Frame {
    const Operator* op;
    int depth;
  };
  std::vector<Frame> stack = {{&root, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    out += std::string(static_cast<size_t>(f.depth) * 2, ' ') +
           f.op->Describe() + "\n";
    auto children = f.op->Children();
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back({*it, f.depth + 1});
    }
  }
  return out;
}

// ---------------------------------------------------------------- SeqScanOp

SeqScanOp::SeqScanOp(const Table* table, size_t slot_offset,
                     size_t total_slots, ExprPtr pushed_filter,
                     const ExecContext* exec)
    : table_(table),
      slot_offset_(slot_offset),
      total_slots_(total_slots),
      filter_(std::move(pushed_filter)),
      exec_(exec) {}

void SeqScanOp::MaterializeWide(size_t row_pos, Row* out) const {
  const Row& src = table_->row(row_pos);
  out->assign(total_slots_, Value::Null());
  for (size_t c = 0; c < src.size(); ++c) {
    (*out)[slot_offset_ + c] = src[c];
  }
}

Status SeqScanOp::ParallelFilter() {
  const size_t n = table_->num_rows();
  const size_t morsel = exec_->morsel_size;
  const size_t num_morsels = (n + morsel - 1) / morsel;
  morsel_matches_.assign(num_morsels, {});
  const size_t workers = std::min(exec_->parallelism(), num_morsels);
  mutable_metrics().parallel_degree = static_cast<uint32_t>(workers);
  mutable_metrics().worker_rows.assign(workers, 0);

  std::atomic<size_t> next_morsel{0};
  TaskGroup group(exec_->pool);
  for (size_t w = 0; w < workers; ++w) {
    group.Submit([this, w, n, morsel, num_morsels, &next_morsel,
                  &group]() -> Status {
      Row wide;
      uint64_t scanned = 0;
      while (!group.cancelled()) {
        size_t m = next_morsel.fetch_add(1, std::memory_order_relaxed);
        if (m >= num_morsels) break;
        std::vector<uint32_t>& matches = morsel_matches_[m];
        const size_t end = std::min(n, (m + 1) * morsel);
        for (size_t r = m * morsel; r < end; ++r) {
          MaterializeWide(r, &wide);
          CONQUER_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*filter_, wide));
          if (pass) matches.push_back(static_cast<uint32_t>(r));
          ++scanned;
        }
      }
      mutable_metrics().worker_rows[w] = scanned;
      return Status::OK();
    });
  }
  return group.Wait();
}

Status SeqScanOp::OpenImpl() {
  cursor_ = 0;
  morsel_cursor_ = 0;
  match_cursor_ = 0;
  morsel_matches_.clear();
  parallel_ = filter_ != nullptr && exec_ != nullptr &&
              exec_->ShouldParallelize(table_->num_rows());
  if (parallel_) return ParallelFilter();
  return Status::OK();
}

Result<bool> SeqScanOp::NextImpl(Row* out) {
  if (parallel_) {
    // Stream the pre-filtered positions in morsel order: same output order
    // as the sequential scan.
    while (morsel_cursor_ < morsel_matches_.size()) {
      const std::vector<uint32_t>& matches = morsel_matches_[morsel_cursor_];
      if (match_cursor_ >= matches.size()) {
        ++morsel_cursor_;
        match_cursor_ = 0;
        continue;
      }
      MaterializeWide(matches[match_cursor_++], out);
      return true;
    }
    return false;
  }
  while (cursor_ < table_->num_rows()) {
    MaterializeWide(cursor_++, out);
    if (filter_) {
      CONQUER_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*filter_, *out));
      if (!pass) continue;
    }
    return true;
  }
  return false;
}

std::string SeqScanOp::Describe() const {
  std::string out = "SeqScan(" + table_->name();
  if (filter_) out += ", filter: " + filter_->ToString();
  out += ")";
  return out;
}

// --------------------------------------------------------------- IndexScanOp

IndexScanOp::IndexScanOp(const Table* table, const HashIndex* index, Value key,
                         size_t slot_offset, size_t total_slots,
                         ExprPtr residual_filter)
    : table_(table),
      index_(index),
      key_(std::move(key)),
      slot_offset_(slot_offset),
      total_slots_(total_slots),
      filter_(std::move(residual_filter)) {}

Status IndexScanOp::OpenImpl() {
  matches_ = &index_->Lookup(key_);
  cursor_ = 0;
  return Status::OK();
}

Result<bool> IndexScanOp::NextImpl(Row* out) {
  while (matches_ != nullptr && cursor_ < matches_->size()) {
    const Row& src = table_->row((*matches_)[cursor_++]);
    out->assign(total_slots_, Value::Null());
    for (size_t c = 0; c < src.size(); ++c) {
      (*out)[slot_offset_ + c] = src[c];
    }
    if (filter_) {
      CONQUER_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*filter_, *out));
      if (!pass) continue;
    }
    return true;
  }
  return false;
}

std::string IndexScanOp::Describe() const {
  std::string out = "IndexScan(" + table_->name() + ", " +
                    table_->schema().column(index_->column()).name + " = " +
                    key_.ToSqlLiteral();
  if (filter_) out += ", filter: " + filter_->ToString();
  out += ")";
  return out;
}

// ------------------------------------------------------------------ FilterOp

FilterOp::FilterOp(OperatorPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Status FilterOp::OpenImpl() { return child_->Open(); }

Result<bool> FilterOp::NextImpl(Row* out) {
  while (true) {
    CONQUER_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    CONQUER_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, *out));
    if (pass) return true;
  }
}

void FilterOp::CloseImpl() { child_->Close(); }

std::string FilterOp::Describe() const {
  return "Filter(" + predicate_->ToString() + ")";
}

std::vector<const Operator*> FilterOp::Children() const {
  return {child_.get()};
}

// ---------------------------------------------------------------- HashJoinOp

size_t HashJoinOp::KeyHash::operator()(const std::vector<Value>& key) const {
  return HashValues(key);
}
bool HashJoinOp::KeyEq::operator()(const std::vector<Value>& a,
                                   const std::vector<Value>& b) const {
  return ValuesEqual(a, b);
}

HashJoinOp::HashJoinOp(OperatorPtr build, OperatorPtr probe,
                       std::vector<int> build_key_slots,
                       std::vector<int> probe_key_slots,
                       std::vector<std::pair<size_t, size_t>> build_ranges,
                       const ExecContext* exec)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      build_keys_(std::move(build_key_slots)),
      probe_keys_(std::move(probe_key_slots)),
      build_ranges_(std::move(build_ranges)),
      exec_(exec) {
  assert(build_keys_.size() == probe_keys_.size());
}

Status HashJoinOp::ParallelBuild(std::vector<Row> rows) {
  const size_t n = rows.size();
  const size_t morsel = exec_->morsel_size;
  const size_t num_morsels = (n + morsel - 1) / morsel;
  num_partitions_ = std::max<size_t>(1, exec_->num_partitions);
  partitions_.assign(num_partitions_, BuildTable{});

  // Phase 1 (morsel-parallel): extract join keys and route each row to its
  // hash partition. by_part[m][p] lists the row positions of morsel m that
  // fall in partition p, preserving input order.
  std::vector<std::vector<Value>> keys(n);
  std::vector<std::vector<std::vector<uint32_t>>> by_part(
      num_morsels, std::vector<std::vector<uint32_t>>(num_partitions_));
  const size_t workers = std::min(exec_->parallelism(), num_morsels);
  std::atomic<size_t> next_morsel{0};
  {
    TaskGroup group(exec_->pool);
    for (size_t w = 0; w < workers; ++w) {
      group.Submit([this, n, morsel, num_morsels, &rows, &keys, &by_part,
                    &next_morsel, &group]() -> Status {
        while (!group.cancelled()) {
          size_t m = next_morsel.fetch_add(1, std::memory_order_relaxed);
          if (m >= num_morsels) break;
          const size_t end = std::min(n, (m + 1) * morsel);
          for (size_t r = m * morsel; r < end; ++r) {
            std::vector<Value>& key = keys[r];
            key.reserve(build_keys_.size());
            bool has_null_key = false;
            for (int slot : build_keys_) {
              key.push_back(rows[r][slot]);
              has_null_key = has_null_key || rows[r][slot].is_null();
            }
            // NULL join keys never match anything in SQL; drop at build.
            if (has_null_key) continue;
            size_t p = HashValues(key) % num_partitions_;
            by_part[m][p].push_back(static_cast<uint32_t>(r));
          }
        }
        return Status::OK();
      });
    }
    CONQUER_RETURN_NOT_OK(group.Wait());
  }

  // Phase 2 (partition-parallel): each partition is built by exactly one
  // worker, inserting rows in global build order — bucket row order is
  // identical to the sequential build whatever the thread count.
  const size_t part_workers = std::min(exec_->parallelism(), num_partitions_);
  mutable_metrics().parallel_degree = static_cast<uint32_t>(part_workers);
  mutable_metrics().worker_rows.assign(part_workers, 0);
  std::atomic<size_t> next_part{0};
  std::atomic<uint64_t> table_bytes{0};
  std::atomic<uint64_t> inserted{0};
  {
    TaskGroup group(exec_->pool);
    for (size_t w = 0; w < part_workers; ++w) {
      group.Submit([this, w, num_morsels, &rows, &keys, &by_part, &next_part,
                    &table_bytes, &inserted, &group]() -> Status {
        uint64_t my_rows = 0;
        uint64_t my_bytes = 0;
        while (!group.cancelled()) {
          size_t p = next_part.fetch_add(1, std::memory_order_relaxed);
          if (p >= num_partitions_) break;
          BuildTable& table = partitions_[p];
          for (size_t m = 0; m < num_morsels; ++m) {
            for (uint32_t r : by_part[m][p]) {
              my_bytes += EstimateRowBytes(rows[r]) +
                          keys[r].size() * sizeof(Value);
              table[std::move(keys[r])].push_back(std::move(rows[r]));
              ++my_rows;
            }
          }
        }
        mutable_metrics().worker_rows[w] = my_rows;
        table_bytes.fetch_add(my_bytes, std::memory_order_relaxed);
        inserted.fetch_add(my_rows, std::memory_order_relaxed);
        return Status::OK();
      });
    }
    CONQUER_RETURN_NOT_OK(group.Wait());
  }
  build_rows_ = inserted.load();
  mutable_metrics().peak_memory_bytes = table_bytes.load();
  return Status::OK();
}

Status HashJoinOp::OpenImpl() {
  partitions_.clear();
  num_partitions_ = 1;
  build_rows_ = 0;
  CONQUER_RETURN_NOT_OK(build_->Open());
  Row row;
  // Drain the build input. With a parallel context the rows are buffered
  // and bulk-built; otherwise they stream into the single partition table.
  const bool buffer_rows = exec_ != nullptr && exec_->pool != nullptr &&
                           exec_->pool->num_threads() > 1;
  std::vector<Row> buffered;
  partitions_.assign(1, BuildTable{});
  uint64_t table_bytes = 0;
  while (true) {
    CONQUER_ASSIGN_OR_RETURN(bool more, build_->Next(&row));
    if (!more) break;
    mutable_metrics().build_rows += 1;
    if (buffer_rows) {
      buffered.push_back(std::move(row));
      continue;
    }
    std::vector<Value> key;
    key.reserve(build_keys_.size());
    bool has_null_key = false;
    for (int slot : build_keys_) {
      key.push_back(row[slot]);
      has_null_key = has_null_key || row[slot].is_null();
    }
    // NULL join keys never match anything in SQL; drop them at build.
    if (has_null_key) continue;
    table_bytes += EstimateRowBytes(row) + key.size() * sizeof(Value);
    partitions_[0][std::move(key)].push_back(row);
    ++build_rows_;
  }
  build_->Close();
  if (buffer_rows) {
    if (exec_->ShouldParallelize(buffered.size())) {
      CONQUER_RETURN_NOT_OK(ParallelBuild(std::move(buffered)));
    } else {
      // Too small to fan out: sequential insert of the buffered rows.
      for (Row& r : buffered) {
        std::vector<Value> key;
        key.reserve(build_keys_.size());
        bool has_null_key = false;
        for (int slot : build_keys_) {
          key.push_back(r[slot]);
          has_null_key = has_null_key || r[slot].is_null();
        }
        if (has_null_key) continue;
        table_bytes += EstimateRowBytes(r) + key.size() * sizeof(Value);
        partitions_[0][std::move(key)].push_back(std::move(r));
        ++build_rows_;
      }
    }
  }
  mutable_metrics().hash_entries = build_rows_;
  if (num_partitions_ == 1) mutable_metrics().peak_memory_bytes = table_bytes;
  CONQUER_RETURN_NOT_OK(probe_->Open());
  current_matches_ = nullptr;
  match_cursor_ = 0;
  return Status::OK();
}

Result<bool> HashJoinOp::AdvanceProbe() {
  while (true) {
    CONQUER_ASSIGN_OR_RETURN(bool more, probe_->Next(&probe_row_));
    if (!more) return false;
    mutable_metrics().probe_rows += 1;
    std::vector<Value> key;
    key.reserve(probe_keys_.size());
    bool has_null_key = false;
    for (int slot : probe_keys_) {
      key.push_back(probe_row_[slot]);
      has_null_key = has_null_key || probe_row_[slot].is_null();
    }
    if (has_null_key) continue;
    const BuildTable& table =
        partitions_[num_partitions_ == 1 ? 0
                                         : HashValues(key) % num_partitions_];
    auto it = table.find(key);
    if (it == table.end()) continue;
    current_matches_ = &it->second;
    match_cursor_ = 0;
    return true;
  }
}

Result<bool> HashJoinOp::NextImpl(Row* out) {
  while (true) {
    if (current_matches_ == nullptr ||
        match_cursor_ >= current_matches_->size()) {
      CONQUER_ASSIGN_OR_RETURN(bool more, AdvanceProbe());
      if (!more) return false;
    }
    const Row& build_row = (*current_matches_)[match_cursor_++];
    *out = probe_row_;
    for (const auto& [offset, len] : build_ranges_) {
      for (size_t i = 0; i < len; ++i) {
        (*out)[offset + i] = build_row[offset + i];
      }
    }
    return true;
  }
}

void HashJoinOp::CloseImpl() {
  partitions_.clear();
  probe_->Close();
}

std::string HashJoinOp::Describe() const {
  if (build_keys_.empty()) return "CrossJoin()";
  std::string out = "HashJoin(build slots: ";
  for (size_t i = 0; i < build_keys_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(build_keys_[i]);
  }
  out += " = probe slots: ";
  for (size_t i = 0; i < probe_keys_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(probe_keys_[i]);
  }
  out += ")";
  return out;
}

std::vector<const Operator*> HashJoinOp::Children() const {
  return {build_.get(), probe_.get()};
}

// ----------------------------------------------------------------- ProjectOp

ProjectOp::ProjectOp(OperatorPtr child, std::vector<const Expr*> exprs)
    : child_(std::move(child)), exprs_(std::move(exprs)) {}

Status ProjectOp::OpenImpl() { return child_->Open(); }

Result<bool> ProjectOp::NextImpl(Row* out) {
  Row wide;
  CONQUER_ASSIGN_OR_RETURN(bool more, child_->Next(&wide));
  if (!more) return false;
  out->clear();
  out->reserve(exprs_.size());
  for (const Expr* e : exprs_) {
    CONQUER_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, wide));
    out->push_back(std::move(v));
  }
  return true;
}

void ProjectOp::CloseImpl() { child_->Close(); }

std::string ProjectOp::Describe() const {
  std::string out = "Project(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  out += ")";
  return out;
}

std::vector<const Operator*> ProjectOp::Children() const {
  return {child_.get()};
}

// ----------------------------------------------------------- HashAggregateOp

size_t HashAggregateOp::KeyHash::operator()(
    const std::vector<Value>& key) const {
  return HashValues(key);
}
bool HashAggregateOp::KeyEq::operator()(const std::vector<Value>& a,
                                        const std::vector<Value>& b) const {
  return ValuesEqual(a, b);
}

namespace {
void CollectAggCalls(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::kAggregate) {
    out->push_back(e);
    return;  // no nested aggregates (binder enforces)
  }
  CollectAggCalls(e->left.get(), out);
  CollectAggCalls(e->right.get(), out);
}

/// True when `e` has a column reference outside any aggregate call — the
/// case where finalization must re-evaluate against a stored group row.
bool HasColumnRefOutsideAggregate(const Expr& e) {
  if (e.kind == Expr::Kind::kAggregate) return false;
  if (e.kind == Expr::Kind::kColumnRef) return true;
  if (e.left && HasColumnRefOutsideAggregate(*e.left)) return true;
  if (e.right && HasColumnRefOutsideAggregate(*e.right)) return true;
  return false;
}
}  // namespace

HashAggregateOp::HashAggregateOp(OperatorPtr child,
                                 std::vector<const Expr*> group_exprs,
                                 std::vector<const Expr*> select_items,
                                 const ExecContext* exec)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      select_items_(std::move(select_items)),
      exec_(exec) {
  for (const Expr* item : select_items_) {
    CollectAggCalls(item, &agg_calls_);
  }
  // Plan each output item: serve it from the group key when it matches a
  // grouping expression (the common case for the clean-answer rewriting,
  // which groups by exactly the SELECT attributes), evaluate it once per
  // group when group-invariant, or finalize it from aggregate state.
  for (const Expr* item : select_items_) {
    if (item->ContainsAggregate()) {
      item_plans_.push_back({ItemPlan::Source::kFinalize, 0});
      if (HasColumnRefOutsideAggregate(*item)) needs_representative_ = true;
      continue;
    }
    bool matched = false;
    for (size_t g = 0; g < group_exprs_.size() && !matched; ++g) {
      if (item->StructurallyEquals(*group_exprs_[g])) {
        item_plans_.push_back({ItemPlan::Source::kFromKey, g});
        matched = true;
      }
    }
    if (!matched) {
      item_plans_.push_back(
          {ItemPlan::Source::kInvariantEval, num_invariant_evals_++});
    }
  }
}

Result<std::vector<Value>> HashAggregateOp::GroupKey(const Row& row) const {
  std::vector<Value> key;
  key.reserve(group_exprs_.size());
  for (const Expr* g : group_exprs_) {
    CONQUER_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, row));
    key.push_back(std::move(v));
  }
  return key;
}

Status HashAggregateOp::Accumulate(const Row& row, uint64_t row_index) {
  CONQUER_ASSIGN_OR_RETURN(std::vector<Value> key, GroupKey(row));
  return AccumulateRow(&partition_groups_[0], std::move(key), row, row_index,
                       &output_order_);
}

Status HashAggregateOp::AccumulateRow(GroupMap* map, std::vector<Value> key,
                                      const Row& row, uint64_t row_index,
                                      std::vector<OutEntry>* order) {
  auto [it, inserted] = map->try_emplace(std::move(key));
  Group& group = it->second;
  if (inserted) {
    if (needs_representative_) group.representative = row;
    if (num_invariant_evals_ > 0) {
      group.extra_values.reserve(num_invariant_evals_);
      for (size_t i = 0; i < select_items_.size(); ++i) {
        if (item_plans_[i].source == ItemPlan::Source::kInvariantEval) {
          CONQUER_ASSIGN_OR_RETURN(Value v, EvalExpr(*select_items_[i], row));
          group.extra_values.push_back(std::move(v));
        }
      }
    }
    group.aggs.resize(agg_calls_.size());
    order->push_back({&it->first, &group, row_index});
  }
  for (size_t i = 0; i < agg_calls_.size(); ++i) {
    const Expr& call = *agg_calls_[i];
    AggState& st = group.aggs[i];
    if (call.agg == AggFunc::kCount && call.left == nullptr) {
      ++st.count;
      continue;
    }
    CONQUER_ASSIGN_OR_RETURN(Value v, EvalExpr(*call.left, row));
    if (v.is_null()) continue;  // SQL aggregates skip NULLs
    st.saw_value = true;
    switch (call.agg) {
      case AggFunc::kCount:
        ++st.count;
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        ++st.count;
        if (v.type() == DataType::kInt64) {
          st.isum += v.int_value();
        }
        st.sum += v.AsDouble();
        break;
      case AggFunc::kMin:
        if (!st.min_max.is_null()) {
          if (v.Compare(st.min_max) < 0) st.min_max = v;
        } else {
          st.min_max = v;
        }
        break;
      case AggFunc::kMax:
        if (!st.min_max.is_null()) {
          if (v.Compare(st.min_max) > 0) st.min_max = v;
        } else {
          st.min_max = v;
        }
        break;
      case AggFunc::kNone:
        return Status::Internal("kNone aggregate call");
    }
  }
  return Status::OK();
}

Result<Value> HashAggregateOp::Finalize(const Expr& e,
                                        const Group& group) const {
  if (e.kind == Expr::Kind::kAggregate) {
    // Find this call's state (pointer identity within agg_calls_).
    size_t idx = agg_calls_.size();
    for (size_t i = 0; i < agg_calls_.size(); ++i) {
      if (agg_calls_[i] == &e) {
        idx = i;
        break;
      }
    }
    if (idx == agg_calls_.size()) {
      return Status::Internal("aggregate call not registered");
    }
    const AggState& st = group.aggs[idx];
    switch (e.agg) {
      case AggFunc::kCount:
        return Value::Int(st.count);
      case AggFunc::kSum:
        if (!st.saw_value) return Value::Null();
        if (e.resolved_type == DataType::kInt64) return Value::Int(st.isum);
        return Value::Double(st.sum);
      case AggFunc::kAvg:
        if (!st.saw_value || st.count == 0) return Value::Null();
        return Value::Double(st.sum / static_cast<double>(st.count));
      case AggFunc::kMin:
      case AggFunc::kMax:
        return st.min_max;  // NULL when the group had only NULLs
      case AggFunc::kNone:
        break;
    }
    return Status::Internal("unhandled aggregate finalize");
  }
  if (e.kind == Expr::Kind::kLiteral) return e.literal;
  if (e.kind == Expr::Kind::kColumnRef) {
    return EvalExpr(e, group.representative);
  }
  // Composite expression over aggregates / group keys: recurse and combine.
  if (e.kind == Expr::Kind::kBinary || e.kind == Expr::Kind::kUnary) {
    if (!e.ContainsAggregate()) {
      return EvalExpr(e, group.representative);
    }
    // Rebuild a literal-only copy with aggregate children replaced by their
    // finalized values, then evaluate.
    Expr copy;
    copy.kind = e.kind;
    copy.bop = e.bop;
    copy.uop = e.uop;
    copy.resolved_type = e.resolved_type;
    CONQUER_ASSIGN_OR_RETURN(Value lv, Finalize(*e.left, group));
    copy.left = Expr::MakeLiteral(std::move(lv));
    if (e.right) {
      CONQUER_ASSIGN_OR_RETURN(Value rv, Finalize(*e.right, group));
      copy.right = Expr::MakeLiteral(std::move(rv));
    }
    static const Row kEmptyRow;
    return EvalExpr(copy, kEmptyRow);
  }
  return Status::Internal("unhandled select item in aggregate finalize");
}

Status HashAggregateOp::ParallelAccumulate(const std::vector<Row>& rows) {
  const size_t n = rows.size();
  const size_t morsel = exec_->morsel_size;
  const size_t num_morsels = (n + morsel - 1) / morsel;
  num_partitions_ = std::max<size_t>(1, exec_->num_partitions);
  partition_groups_.assign(num_partitions_, GroupMap{});

  // Phase 1 (morsel-parallel): evaluate group keys and route each row to
  // its hash partition, preserving input order within every (morsel,
  // partition) list.
  std::vector<std::vector<Value>> keys(n);
  std::vector<std::vector<std::vector<uint32_t>>> by_part(
      num_morsels, std::vector<std::vector<uint32_t>>(num_partitions_));
  const size_t workers = std::min(exec_->parallelism(), num_morsels);
  std::atomic<size_t> next_morsel{0};
  {
    TaskGroup group(exec_->pool);
    for (size_t w = 0; w < workers; ++w) {
      group.Submit([this, n, morsel, num_morsels, &rows, &keys, &by_part,
                    &next_morsel, &group]() -> Status {
        while (!group.cancelled()) {
          size_t m = next_morsel.fetch_add(1, std::memory_order_relaxed);
          if (m >= num_morsels) break;
          const size_t end = std::min(n, (m + 1) * morsel);
          for (size_t r = m * morsel; r < end; ++r) {
            CONQUER_ASSIGN_OR_RETURN(keys[r], GroupKey(rows[r]));
            size_t p = HashValues(keys[r]) % num_partitions_;
            by_part[m][p].push_back(static_cast<uint32_t>(r));
          }
        }
        return Status::OK();
      });
    }
    CONQUER_RETURN_NOT_OK(group.Wait());
  }

  // Phase 2 (partition-parallel): each partition accumulates its rows in
  // global input order. All rows of one group share a partition, so the
  // per-group addition order equals the sequential accumulate — float
  // aggregates (SUM(prob)) come out bit-identical for any thread count.
  const size_t part_workers = std::min(exec_->parallelism(), num_partitions_);
  mutable_metrics().parallel_degree = static_cast<uint32_t>(part_workers);
  mutable_metrics().worker_rows.assign(part_workers, 0);
  std::vector<std::vector<OutEntry>> part_entries(num_partitions_);
  std::atomic<size_t> next_part{0};
  {
    TaskGroup group(exec_->pool);
    for (size_t w = 0; w < part_workers; ++w) {
      group.Submit([this, w, num_morsels, &rows, &keys, &by_part,
                    &part_entries, &next_part, &group]() -> Status {
        uint64_t my_rows = 0;
        while (!group.cancelled()) {
          size_t p = next_part.fetch_add(1, std::memory_order_relaxed);
          if (p >= num_partitions_) break;
          for (size_t m = 0; m < num_morsels; ++m) {
            for (uint32_t r : by_part[m][p]) {
              CONQUER_RETURN_NOT_OK(AccumulateRow(&partition_groups_[p],
                                                  std::move(keys[r]), rows[r],
                                                  r, &part_entries[p]));
              ++my_rows;
            }
          }
        }
        mutable_metrics().worker_rows[w] = my_rows;
        return Status::OK();
      });
    }
    CONQUER_RETURN_NOT_OK(group.Wait());
  }

  // Final merge: concatenate partitions and restore global first-seen
  // order. first_row is the deterministic tie-free sort key.
  size_t total = 0;
  for (const auto& entries : part_entries) total += entries.size();
  output_order_.reserve(total);
  for (auto& entries : part_entries) {
    output_order_.insert(output_order_.end(), entries.begin(), entries.end());
  }
  std::sort(output_order_.begin(), output_order_.end(),
            [](const OutEntry& a, const OutEntry& b) {
              return a.first_row < b.first_row;
            });
  return Status::OK();
}

Status HashAggregateOp::OpenImpl() {
  partition_groups_.assign(1, GroupMap{});
  num_partitions_ = 1;
  output_order_.clear();
  cursor_ = 0;
  CONQUER_RETURN_NOT_OK(child_->Open());
  Row row;
  size_t n = 0;
  uint64_t buffered_bytes = 0;
  // With a parallel context, buffer the input and bulk-accumulate;
  // otherwise accumulate streaming (no extra memory).
  const bool buffer_rows = exec_ != nullptr && exec_->pool != nullptr &&
                           exec_->pool->num_threads() > 1;
  std::vector<Row> buffered;
  while (true) {
    CONQUER_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
    if (!more) break;
    if (buffer_rows) {
      buffered_bytes += EstimateRowBytes(row);
      buffered.push_back(std::move(row));
    } else {
      CONQUER_RETURN_NOT_OK(Accumulate(row, n));
    }
    ++n;
  }
  child_->Close();
  no_input_ = (n == 0);
  if (buffer_rows) {
    if (exec_->ShouldParallelize(buffered.size())) {
      CONQUER_RETURN_NOT_OK(ParallelAccumulate(buffered));
    } else {
      for (size_t r = 0; r < buffered.size(); ++r) {
        CONQUER_RETURN_NOT_OK(Accumulate(buffered[r], r));
      }
    }
  }
  size_t num_groups = 0;
  uint64_t table_bytes = buffer_rows ? buffered_bytes : 0;
  for (const GroupMap& groups : partition_groups_) {
    num_groups += groups.size();
    for (const auto& [key, group] : groups) {
      table_bytes += key.size() * sizeof(Value) + sizeof(Group) +
                     group.aggs.size() * sizeof(AggState);
      for (const Value& v : key) {
        if (v.type() == DataType::kString)
          table_bytes += v.string_value().capacity();
      }
      if (!group.representative.empty()) {
        table_bytes += EstimateRowBytes(group.representative);
      }
      table_bytes += group.extra_values.size() * sizeof(Value);
    }
  }
  mutable_metrics().hash_entries = num_groups;
  mutable_metrics().peak_memory_bytes = table_bytes;
  return Status::OK();
}

Result<bool> HashAggregateOp::NextImpl(Row* out) {
  // SQL corner case: an aggregate query with no GROUP BY produces exactly one
  // row even on empty input (SUM -> NULL, COUNT -> 0).
  if (no_input_ && group_exprs_.empty() && cursor_ == 0) {
    ++cursor_;
    out->clear();
    Group empty;
    empty.aggs.resize(agg_calls_.size());
    for (const Expr* item : select_items_) {
      CONQUER_ASSIGN_OR_RETURN(Value v, Finalize(*item, empty));
      out->push_back(std::move(v));
    }
    return true;
  }
  if (cursor_ >= output_order_.size()) return false;
  const OutEntry& entry = output_order_[cursor_++];
  out->clear();
  out->reserve(select_items_.size());
  for (size_t i = 0; i < select_items_.size(); ++i) {
    switch (item_plans_[i].source) {
      case ItemPlan::Source::kFromKey:
        out->push_back((*entry.key)[item_plans_[i].index]);
        break;
      case ItemPlan::Source::kInvariantEval:
        out->push_back(entry.group->extra_values[item_plans_[i].index]);
        break;
      case ItemPlan::Source::kFinalize: {
        CONQUER_ASSIGN_OR_RETURN(Value v,
                                 Finalize(*select_items_[i], *entry.group));
        out->push_back(std::move(v));
        break;
      }
    }
  }
  return true;
}

void HashAggregateOp::CloseImpl() {
  partition_groups_.clear();
  output_order_.clear();
}

std::string HashAggregateOp::Describe() const {
  std::string out = "HashAggregate(keys: ";
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_exprs_[i]->ToString();
  }
  out += "; aggs: " + std::to_string(agg_calls_.size()) + ")";
  return out;
}

std::vector<const Operator*> HashAggregateOp::Children() const {
  return {child_.get()};
}

// -------------------------------------------------------------------- SortOp

SortOp::SortOp(OperatorPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {}

Status SortOp::OpenImpl() {
  rows_.clear();
  cursor_ = 0;
  CONQUER_RETURN_NOT_OK(child_->Open());
  Row row;
  while (true) {
    CONQUER_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
    if (!more) break;
    rows_.push_back(std::move(row));
  }
  child_->Close();
  uint64_t buffered = 0;
  for (const Row& r : rows_) buffered += EstimateRowBytes(r);
  mutable_metrics().peak_memory_bytes = buffered;
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     for (const SortKey& k : keys_) {
                       int c = a[k.column].TotalCompare(b[k.column]);
                       if (c != 0) return k.descending ? c > 0 : c < 0;
                     }
                     return false;
                   });
  return Status::OK();
}

Result<bool> SortOp::NextImpl(Row* out) {
  if (cursor_ >= rows_.size()) return false;
  *out = std::move(rows_[cursor_++]);
  return true;
}

void SortOp::CloseImpl() { rows_.clear(); }

std::string SortOp::Describe() const {
  std::string out = "Sort(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "#" + std::to_string(keys_[i].column) +
           (keys_[i].descending ? " DESC" : " ASC");
  }
  out += ")";
  return out;
}

std::vector<const Operator*> SortOp::Children() const {
  return {child_.get()};
}

// ---------------------------------------------------------------- DistinctOp

size_t DistinctOp::RowHash::operator()(const Row& r) const {
  return HashValues(r);
}
bool DistinctOp::RowEq::operator()(const Row& a, const Row& b) const {
  return ValuesEqual(a, b);
}

DistinctOp::DistinctOp(OperatorPtr child) : child_(std::move(child)) {}

Status DistinctOp::OpenImpl() {
  seen_.clear();
  return child_->Open();
}

Result<bool> DistinctOp::NextImpl(Row* out) {
  while (true) {
    CONQUER_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    auto [it, inserted] = seen_.try_emplace(*out, true);
    (void)it;
    if (inserted) {
      mutable_metrics().hash_entries = seen_.size();
      mutable_metrics().peak_memory_bytes += EstimateRowBytes(*out);
      return true;
    }
  }
}

void DistinctOp::CloseImpl() {
  seen_.clear();
  child_->Close();
}

std::string DistinctOp::Describe() const { return "Distinct()"; }

std::vector<const Operator*> DistinctOp::Children() const {
  return {child_.get()};
}

// ------------------------------------------------------------------- LimitOp

LimitOp::LimitOp(OperatorPtr child, int64_t limit)
    : child_(std::move(child)), limit_(limit) {}

Status LimitOp::OpenImpl() {
  produced_ = 0;
  return child_->Open();
}

Result<bool> LimitOp::NextImpl(Row* out) {
  if (produced_ >= limit_) return false;
  CONQUER_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  ++produced_;
  return true;
}

void LimitOp::CloseImpl() { child_->Close(); }

std::string LimitOp::Describe() const {
  return "Limit(" + std::to_string(limit_) + ")";
}

std::vector<const Operator*> LimitOp::Children() const {
  return {child_.get()};
}

// ------------------------------------------------------------ StripColumnsOp

StripColumnsOp::StripColumnsOp(OperatorPtr child, size_t num_visible)
    : child_(std::move(child)), num_visible_(num_visible) {}

Status StripColumnsOp::OpenImpl() { return child_->Open(); }

Result<bool> StripColumnsOp::NextImpl(Row* out) {
  CONQUER_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  out->resize(num_visible_);
  return true;
}

void StripColumnsOp::CloseImpl() { child_->Close(); }

std::string StripColumnsOp::Describe() const {
  return "StripColumns(keep " + std::to_string(num_visible_) + ")";
}

std::vector<const Operator*> StripColumnsOp::Children() const {
  return {child_.get()};
}

}  // namespace conquer
