#include "exec/operators.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <numeric>

#include "common/str_util.h"
#include "common/task_pool.h"
#include "exec/eval_batch.h"

namespace conquer {

namespace {
size_t HashValues(const std::vector<Value>& vals) {
  size_t h = 0x811c9dc5u;
  for (const Value& v : vals) {
    h ^= v.Hash();
    h *= 0x01000193u;
  }
  return h;
}

bool ValuesEqual(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].TotalCompare(b[i]) != 0) return false;
  }
  return true;
}

/// Shifts every column-reference slot in the tree by `delta` (used to rebase
/// a wide-layout predicate onto raw table rows: slot -= slot_offset).
void ShiftSlots(Expr* e, int delta) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::kColumnRef) e->slot += delta;
  ShiftSlots(e->left.get(), delta);
  ShiftSlots(e->right.get(), delta);
}

ExprPtr RebaseFilter(const Expr* filter, size_t slot_offset) {
  if (filter == nullptr) return nullptr;
  ExprPtr local = filter->Clone();
  ShiftSlots(local.get(), -static_cast<int>(slot_offset));
  return local;
}

/// Heap bytes of a Value beyond its inline footprint. Interned strings are
/// shared with the table dictionary, so they cost the holder nothing.
uint64_t ValueHeapBytes(const Value& v) {
  if (v.type() == DataType::kString && !v.is_interned()) {
    return v.string_value().capacity();
  }
  return 0;
}
}  // namespace

uint64_t EstimateRowBytes(const Row& row) {
  uint64_t bytes = sizeof(Row) + row.capacity() * sizeof(Value);
  for (const Value& v : row) bytes += ValueHeapBytes(v);
  return bytes;
}

std::string ExplainPlan(const Operator& root) {
  std::string out;
  struct Frame {
    const Operator* op;
    int depth;
  };
  std::vector<Frame> stack = {{&root, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    out += std::string(static_cast<size_t>(f.depth) * 2, ' ') +
           f.op->Describe() + "\n";
    auto children = f.op->Children();
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back({*it, f.depth + 1});
    }
  }
  return out;
}

// ---------------------------------------------------------------- SeqScanOp

SeqScanOp::SeqScanOp(const Table* table, size_t slot_offset,
                     size_t total_slots, ExprPtr pushed_filter,
                     const ExecContext* exec,
                     const std::vector<bool>* referenced_slots)
    : table_(table),
      slot_offset_(slot_offset),
      total_slots_(total_slots),
      filter_(std::move(pushed_filter)),
      local_filter_(RebaseFilter(filter_.get(), slot_offset)),
      exec_(exec) {
  if (referenced_slots != nullptr) {
    prune_ = true;
    for (size_t c = 0; c < table_->schema().num_columns(); ++c) {
      if ((*referenced_slots)[slot_offset_ + c]) {
        materialize_cols_.push_back(static_cast<uint32_t>(c));
      }
    }
  }
}

void SeqScanOp::MaterializeWide(size_t chunk_index, uint32_t row,
                                Row* out) const {
  const Chunk& ch = table_->chunk(chunk_index);
  // A recycled row of the right width only ever held this scan's
  // materialized slots; the NULLs elsewhere are intact, so only those
  // slots are rewritten.
  if (out->size() != total_slots_) out->assign(total_slots_, Value::Null());
  if (prune_) {
    for (uint32_t c : materialize_cols_) {
      (*out)[slot_offset_ + c] =
          ch.column(c).GetValue(row, table_->dictionary(c));
    }
    return;
  }
  for (size_t c = 0; c < ch.num_columns(); ++c) {
    (*out)[slot_offset_ + c] = ch.column(c).GetValue(row, table_->dictionary(c));
  }
}

Status SeqScanOp::FilterChunk(size_t chunk_index, SelVector* sel,
                              uint64_t* dict_hits, uint64_t* chunks_skipped,
                              uint64_t* bloom_dropped, PinStats* pin_stats,
                              ChunkPin* keep_pin) const {
  const Chunk& ch = table_->chunk(chunk_index);
  sel->clear();
  const bool prune_chunks =
      exec_ == nullptr || exec_->enable_zone_pruning;
  // Zone maps are resident metadata: the skip test runs before the payload
  // pin, so a pruned chunk never faults its columns in from disk.
  if (local_filter_ && prune_chunks &&
      ZoneMapCanSkip(*local_filter_, *table_, ch)) {
    ++*chunks_skipped;
    if (keep_pin != nullptr) keep_pin->Reset();
    return Status::OK();
  }
  ChunkPin pin = table_->PinChunk(chunk_index, pin_stats);
  sel->resize(ch.num_rows());
  std::iota(sel->begin(), sel->end(), 0u);
  // Snapshot visibility before predicates: a stamped chunk may hold dead
  // (deleted / superseded) versions or rows newer than this scan's pinned
  // snapshot.
  if (ch.has_versions()) {
    size_t out = 0;
    for (uint32_t i : *sel) {
      if (ch.RowVisible(i, snapshot_)) (*sel)[out++] = i;
    }
    sel->resize(out);
  }
  if (local_filter_) {
    CONQUER_RETURN_NOT_OK(
        FilterChunkSelection(*local_filter_, *table_, chunk_index, sel,
                             dict_hits));
  }
  // Runtime semi-join filters: drop rows whose join key provably cannot be
  // in the build side (NULL keys can never join either). Order among
  // survivors is preserved, so output is bit-identical with filters off.
  for (const ScanFilter& rf : runtime_filters_) {
    if (sel->empty()) break;
    if (!rf.filter->ready.load(std::memory_order_acquire)) continue;
    const ColumnVector& cv = ch.column(rf.column);
    const StringDictionary* dict = table_->dictionary(rf.column);
    size_t out = 0;
    for (uint32_t i : *sel) {
      if (!cv.is_null(i) &&
          rf.filter->bloom.MayContain(cv.GetValue(i, dict).Hash())) {
        (*sel)[out++] = i;
      } else {
        ++*bloom_dropped;
      }
    }
    sel->resize(out);
  }
  if (keep_pin != nullptr) *keep_pin = std::move(pin);
  return Status::OK();
}

Status SeqScanOp::ParallelFilter() {
  const size_t num_chunks = table_->num_chunks();
  chunk_matches_.assign(num_chunks, {});
  const size_t workers = std::min(exec_->parallelism(), num_chunks);
  mutable_metrics().parallel_degree = static_cast<uint32_t>(workers);
  mutable_metrics().worker_rows.assign(workers, 0);

  std::atomic<size_t> next_chunk{0};
  std::atomic<uint64_t> dict_hits{0};
  std::atomic<uint64_t> chunks_skipped{0};
  std::atomic<uint64_t> bloom_dropped{0};
  std::atomic<uint64_t> chunks_loaded{0};
  std::atomic<uint64_t> chunks_evicted{0};
  std::atomic<uint64_t> io_read_nanos{0};
  TaskGroup group(exec_->pool);
  for (size_t w = 0; w < workers; ++w) {
    group.Submit([this, w, num_chunks, &next_chunk, &dict_hits,
                  &chunks_skipped, &bloom_dropped, &chunks_loaded,
                  &chunks_evicted, &io_read_nanos, &group]() -> Status {
      uint64_t scanned = 0;
      uint64_t my_hits = 0, my_skipped = 0, my_bloom = 0;
      PinStats my_pins;
      while (!group.cancelled()) {
        size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks) break;
        // A morsel is a whole chunk: zone-map pruning decides per claim,
        // and only surviving positions are ever materialized into wide
        // rows.
        const uint64_t skipped_before = my_skipped;
        CONQUER_RETURN_NOT_OK(FilterChunk(c, &chunk_matches_[c], &my_hits,
                                          &my_skipped, &my_bloom, &my_pins));
        if (my_skipped == skipped_before) {
          scanned += table_->chunk(c).num_rows();
        }
      }
      mutable_metrics().worker_rows[w] = scanned;
      dict_hits.fetch_add(my_hits, std::memory_order_relaxed);
      chunks_skipped.fetch_add(my_skipped, std::memory_order_relaxed);
      bloom_dropped.fetch_add(my_bloom, std::memory_order_relaxed);
      chunks_loaded.fetch_add(my_pins.chunks_loaded,
                              std::memory_order_relaxed);
      chunks_evicted.fetch_add(my_pins.chunks_evicted,
                               std::memory_order_relaxed);
      io_read_nanos.fetch_add(
          static_cast<uint64_t>(my_pins.io_read_seconds * 1e9),
          std::memory_order_relaxed);
      return Status::OK();
    });
  }
  Status s = group.Wait();
  mutable_metrics().dict_hits += dict_hits.load();
  mutable_metrics().chunks_skipped += chunks_skipped.load();
  mutable_metrics().bloom_filtered += bloom_dropped.load();
  mutable_metrics().chunks_loaded += chunks_loaded.load();
  mutable_metrics().chunks_evicted += chunks_evicted.load();
  mutable_metrics().io_read_seconds +=
      static_cast<double>(io_read_nanos.load()) * 1e-9;
  return s;
}

void SeqScanOp::AddPinStats(const PinStats& ps) {
  mutable_metrics().chunks_loaded += ps.chunks_loaded;
  mutable_metrics().chunks_evicted += ps.chunks_evicted;
  mutable_metrics().io_read_seconds += ps.io_read_seconds;
}

void SeqScanOp::EnsureEmitPinned(size_t chunk_index) {
  if (emit_pin_ && emit_pin_chunk_ == chunk_index) return;
  PinStats ps;
  emit_pin_ = table_->PinChunk(chunk_index, &ps);
  emit_pin_chunk_ = chunk_index;
  AddPinStats(ps);
}

Status SeqScanOp::OpenImpl() {
  snapshot_ = (exec_ != nullptr &&
               exec_->snapshot_override != ExecContext::kSnapshotLatest)
                  ? exec_->snapshot_override
                  : table_->committed_version();
  chunk_cursor_ = 0;
  match_cursor_ = 0;
  chunk_matches_.clear();
  sel_scratch_.clear();
  current_chunk_ = 0;
  next_chunk_ = 0;
  emit_pin_.Reset();
  emit_pin_chunk_ = SIZE_MAX;
  const bool has_filter = filter_ != nullptr || !runtime_filters_.empty();
  parallel_ = has_filter && exec_ != nullptr &&
              exec_->ShouldParallelize(table_->num_rows());
  if (parallel_) return ParallelFilter();
  return Status::OK();
}

/// Sequential path: advances to the next chunk with surviving rows, leaving
/// its matches in sel_scratch_. Returns false at end of table.
Result<bool> SeqScanOp::NextImpl(Row* out) {
  if (parallel_) {
    // Stream the pre-filtered positions in chunk order: same output order
    // as the sequential scan.
    while (chunk_cursor_ < chunk_matches_.size()) {
      const SelVector& matches = chunk_matches_[chunk_cursor_];
      if (match_cursor_ >= matches.size()) {
        ++chunk_cursor_;
        match_cursor_ = 0;
        continue;
      }
      EnsureEmitPinned(chunk_cursor_);
      MaterializeWide(chunk_cursor_, matches[match_cursor_++], out);
      return true;
    }
    return false;
  }
  while (true) {
    if (match_cursor_ < sel_scratch_.size()) {
      EnsureEmitPinned(current_chunk_);
      MaterializeWide(current_chunk_, sel_scratch_[match_cursor_++], out);
      return true;
    }
    if (next_chunk_ >= table_->num_chunks()) return false;
    current_chunk_ = next_chunk_++;
    match_cursor_ = 0;
    uint64_t hits = 0, skipped = 0, bloom = 0;
    PinStats pins;
    CONQUER_RETURN_NOT_OK(FilterChunk(current_chunk_, &sel_scratch_, &hits,
                                      &skipped, &bloom, &pins, &emit_pin_));
    emit_pin_chunk_ = emit_pin_ ? current_chunk_ : SIZE_MAX;
    mutable_metrics().dict_hits += hits;
    mutable_metrics().chunks_skipped += skipped;
    mutable_metrics().bloom_filtered += bloom;
    AddPinStats(pins);
  }
}

Result<bool> SeqScanOp::NextBatchImpl(RowBatch* out) {
  // Rows are materialized in place (recycling each wide row's buffer when
  // the consumer left it behind) instead of cleared and re-pushed.
  size_t filled = 0;
  if (parallel_) {
    while (filled < out->capacity && chunk_cursor_ < chunk_matches_.size()) {
      const SelVector& matches = chunk_matches_[chunk_cursor_];
      if (match_cursor_ >= matches.size()) {
        ++chunk_cursor_;
        match_cursor_ = 0;
        continue;
      }
      EnsureEmitPinned(chunk_cursor_);
      if (filled == out->rows.size()) out->rows.emplace_back();
      MaterializeWide(chunk_cursor_, matches[match_cursor_++],
                      &out->rows[filled++]);
    }
    out->rows.resize(filled);
    return filled > 0;
  }
  while (filled < out->capacity) {
    if (match_cursor_ < sel_scratch_.size()) {
      EnsureEmitPinned(current_chunk_);
      if (filled == out->rows.size()) out->rows.emplace_back();
      MaterializeWide(current_chunk_, sel_scratch_[match_cursor_++],
                      &out->rows[filled++]);
      continue;
    }
    if (next_chunk_ >= table_->num_chunks()) break;
    current_chunk_ = next_chunk_++;
    match_cursor_ = 0;
    uint64_t hits = 0, skipped = 0, bloom = 0;
    PinStats pins;
    CONQUER_RETURN_NOT_OK(FilterChunk(current_chunk_, &sel_scratch_, &hits,
                                      &skipped, &bloom, &pins, &emit_pin_));
    emit_pin_chunk_ = emit_pin_ ? current_chunk_ : SIZE_MAX;
    mutable_metrics().dict_hits += hits;
    mutable_metrics().chunks_skipped += skipped;
    mutable_metrics().bloom_filtered += bloom;
    AddPinStats(pins);
  }
  out->rows.resize(filled);
  return filled > 0;
}

void SeqScanOp::CloseImpl() {
  emit_pin_.Reset();
  emit_pin_chunk_ = SIZE_MAX;
}

std::string SeqScanOp::Describe() const {
  std::string out = "SeqScan(" + table_->name();
  if (filter_) out += ", filter: " + filter_->ToString();
  out += ")";
  return out;
}

// --------------------------------------------------------------- IndexScanOp

IndexScanOp::IndexScanOp(const Table* table, size_t column, Value key,
                         size_t slot_offset, size_t total_slots,
                         ExprPtr filter, const ExecContext* exec)
    : table_(table),
      column_(column),
      key_(std::move(key)),
      slot_offset_(slot_offset),
      total_slots_(total_slots),
      filter_(std::move(filter)),
      local_filter_(RebaseFilter(filter_.get(), slot_offset)),
      exec_(exec) {}

Status IndexScanOp::OpenImpl() {
  snapshot_ = (exec_ != nullptr &&
               exec_->snapshot_override != ExecContext::kSnapshotLatest)
                  ? exec_->snapshot_override
                  : table_->committed_version();
  const ChunkIndex* idx = table_->GetIndex(column_);
  if (idx == nullptr) {
    return Status::Internal("IndexScanOp: column is not indexed");
  }
  bool unsupported = false;
  probe_ = idx->ResolveProbe(key_, table_->dictionary(column_),
                             /*join_semantics=*/false, &unsupported);
  if (unsupported) {
    // ResolveProbe is deterministic in (key, column type); the planner runs
    // it before choosing this access path, so this cannot happen in a
    // planner-built tree.
    return Status::Internal("IndexScanOp: key has no sound index probe");
  }
  num_chunks_ = table_->num_chunks();
  chunk_cursor_ = 0;
  current_chunk_ = 0;
  positions_.clear();
  pos_cursor_ = 0;
  pin_.Reset();
  pin_chunk_ = SIZE_MAX;
  return Status::OK();
}

Result<bool> IndexScanOp::NextImpl(Row* out) {
  while (true) {
    while (pos_cursor_ < positions_.size()) {
      const uint32_t local = positions_[pos_cursor_++];
      // Only chunks known to hold a visible candidate reach this point, so
      // the pin (and any payload fault) is paid per matching chunk, never
      // for chunks the probe ruled out.
      if (!pin_ || pin_chunk_ != current_chunk_) {
        PinStats ps;
        pin_ = table_->PinChunk(current_chunk_, &ps);
        pin_chunk_ = current_chunk_;
        mutable_metrics().chunks_loaded += ps.chunks_loaded;
        mutable_metrics().chunks_evicted += ps.chunks_evicted;
        mutable_metrics().io_read_seconds += ps.io_read_seconds;
      }
      const size_t pos = current_chunk_ * table_->chunk_capacity() + local;
      table_->GetRowInto(pos, &row_scratch_);
      if (local_filter_) {
        // Re-check the full pushed-down predicate (including the equality
        // the probe consumed): candidates are a superset, and re-applying
        // the whole filter keeps this path bit-identical to a SeqScan.
        CONQUER_ASSIGN_OR_RETURN(bool pass,
                                 EvalPredicate(*local_filter_, row_scratch_));
        if (!pass) continue;
      }
      out->assign(total_slots_, Value::Null());
      for (size_t c = 0; c < row_scratch_.size(); ++c) {
        (*out)[slot_offset_ + c] = row_scratch_[c];
      }
      return true;
    }
    if (probe_.kind == ChunkIndex::ProbeSpec::Kind::kNone) return false;
    if (chunk_cursor_ >= num_chunks_) return false;
    const size_t c = chunk_cursor_++;
    positions_.clear();
    pos_cursor_ = 0;
    const Chunk& ch = table_->chunk(c);
    if (ch.num_rows() == 0) continue;
    // Same zone-map test (and the same knob) as SeqScanOp, so both access
    // paths skip exactly the same chunks under every flag configuration.
    const bool prune_chunks = exec_ == nullptr || exec_->enable_zone_pruning;
    if (local_filter_ && prune_chunks &&
        ZoneMapCanSkip(*local_filter_, *table_, ch)) {
      ++mutable_metrics().chunks_skipped;
      continue;
    }
    candidates_.clear();
    PinStats ps;
    table_->IndexProbeChunk(column_, probe_, /*scan_semantics=*/true, c,
                            &candidates_, &ps);
    mutable_metrics().chunks_loaded += ps.chunks_loaded;
    mutable_metrics().chunks_evicted += ps.chunks_evicted;
    mutable_metrics().io_read_seconds += ps.io_read_seconds;
    ++mutable_metrics().index_probes;
    mutable_metrics().index_rows += candidates_.size();
    if (candidates_.empty()) continue;
    // Visibility reads resident version stamps — still no payload I/O.
    if (ch.has_versions()) {
      for (uint32_t local : candidates_) {
        if (ch.RowVisible(local, snapshot_)) positions_.push_back(local);
      }
    } else {
      positions_.swap(candidates_);
    }
    current_chunk_ = c;
  }
}

void IndexScanOp::CloseImpl() {
  pin_.Reset();
  pin_chunk_ = SIZE_MAX;
}

std::string IndexScanOp::Describe() const {
  std::string out = "IndexScan(" + table_->name() + ", " +
                    table_->schema().column(column_).name + " = " +
                    key_.ToSqlLiteral();
  if (filter_) out += ", filter: " + filter_->ToString();
  out += ")";
  return out;
}

// ------------------------------------------------------------------ FilterOp

FilterOp::FilterOp(OperatorPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Status FilterOp::OpenImpl() { return child_->Open(); }

Result<bool> FilterOp::NextImpl(Row* out) {
  while (true) {
    CONQUER_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    CONQUER_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, *out));
    if (pass) return true;
  }
}

Result<bool> FilterOp::NextBatchImpl(RowBatch* out) {
  out->rows.clear();
  while (out->rows.empty()) {
    child_batch_.capacity = out->capacity;
    CONQUER_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&child_batch_));
    if (!more) return false;
    sel_.resize(child_batch_.rows.size());
    std::iota(sel_.begin(), sel_.end(), 0u);
    uint64_t hits = 0;
    CONQUER_RETURN_NOT_OK(FilterSelection(*predicate_, child_batch_.rows,
                                          /*table=*/nullptr, &sel_, &hits));
    mutable_metrics().dict_hits += hits;
    for (uint32_t i : sel_) {
      out->rows.push_back(std::move(child_batch_.rows[i]));
    }
  }
  return true;
}

void FilterOp::CloseImpl() { child_->Close(); }

std::string FilterOp::Describe() const {
  return "Filter(" + predicate_->ToString() + ")";
}

std::vector<const Operator*> FilterOp::Children() const {
  return {child_.get()};
}

// ---------------------------------------------------------------- HashJoinOp

size_t HashJoinOp::KeyHash::operator()(const std::vector<Value>& key) const {
  return HashValues(key);
}
bool HashJoinOp::KeyEq::operator()(const std::vector<Value>& a,
                                   const std::vector<Value>& b) const {
  return ValuesEqual(a, b);
}

HashJoinOp::HashJoinOp(OperatorPtr build, OperatorPtr probe,
                       std::vector<int> build_key_slots,
                       std::vector<int> probe_key_slots,
                       std::vector<uint32_t> build_slots,
                       std::vector<uint32_t> probe_slots,
                       const ExecContext* exec)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      build_keys_(std::move(build_key_slots)),
      probe_keys_(std::move(probe_key_slots)),
      build_slots_(std::move(build_slots)),
      probe_slots_(std::move(probe_slots)),
      exec_(exec) {
  assert(build_keys_.size() == probe_keys_.size());
}

void HashJoinOp::EmitRow(const Row& probe_row, const Row& build_row,
                         Row* dst) const {
  // Only the referenced probe/build slots ever hold values; everything else
  // is NULL in probe_row, build_row and (by this invariant) a recycled dst.
  if (dst->size() != probe_row.size()) dst->assign(probe_row.size(), Value());
  for (uint32_t s : probe_slots_) (*dst)[s] = probe_row[s];
  for (uint32_t s : build_slots_) (*dst)[s] = build_row[s];
}

Status HashJoinOp::ParallelBuild(std::vector<Row> rows) {
  const size_t n = rows.size();
  const size_t morsel = exec_->morsel_size;
  const size_t num_morsels = (n + morsel - 1) / morsel;
  num_partitions_ = std::max<size_t>(1, exec_->num_partitions);
  partitions_.assign(num_partitions_, BuildTable{});

  // Phase 1 (morsel-parallel): extract join keys, hash each key once, and
  // route each row to its hash partition. The same raw hash later probes
  // the partition's flat table: HashPartition routes with the *high* bits
  // of the mixed hash while the table indexes with the low bits, so the two
  // decisions stay independent. by_part[m][p] lists the row positions of
  // morsel m that fall in partition p, preserving input order.
  std::vector<std::vector<Value>> keys(n);
  std::vector<uint64_t> hashes(n);
  std::vector<std::vector<std::vector<uint32_t>>> by_part(
      num_morsels, std::vector<std::vector<uint32_t>>(num_partitions_));
  const size_t workers = std::min(exec_->parallelism(), num_morsels);
  std::atomic<size_t> next_morsel{0};
  {
    TaskGroup group(exec_->pool);
    for (size_t w = 0; w < workers; ++w) {
      group.Submit([this, n, morsel, num_morsels, &rows, &keys, &hashes,
                    &by_part, &next_morsel, &group]() -> Status {
        while (!group.cancelled()) {
          size_t m = next_morsel.fetch_add(1, std::memory_order_relaxed);
          if (m >= num_morsels) break;
          const size_t end = std::min(n, (m + 1) * morsel);
          for (size_t r = m * morsel; r < end; ++r) {
            std::vector<Value>& key = keys[r];
            key.reserve(build_keys_.size());
            bool has_null_key = false;
            for (int slot : build_keys_) {
              key.push_back(rows[r][slot]);
              has_null_key = has_null_key || rows[r][slot].is_null();
            }
            // NULL join keys never match anything in SQL; drop at build.
            if (has_null_key) continue;
            hashes[r] = HashValues(key);
            size_t p = HashPartition(HashMix(hashes[r]), num_partitions_);
            by_part[m][p].push_back(static_cast<uint32_t>(r));
          }
        }
        return Status::OK();
      });
    }
    CONQUER_RETURN_NOT_OK(group.Wait());
  }

  // Phase 2 (partition-parallel): each partition is built by exactly one
  // worker, inserting rows in global build order — bucket row order is
  // identical to the sequential build whatever the thread count.
  const size_t part_workers = std::min(exec_->parallelism(), num_partitions_);
  mutable_metrics().parallel_degree = static_cast<uint32_t>(part_workers);
  mutable_metrics().worker_rows.assign(part_workers, 0);
  std::atomic<size_t> next_part{0};
  std::atomic<uint64_t> table_bytes{0};
  std::atomic<uint64_t> inserted{0};
  {
    TaskGroup group(exec_->pool);
    for (size_t w = 0; w < part_workers; ++w) {
      group.Submit([this, w, num_morsels, &rows, &keys, &hashes, &by_part,
                    &next_part, &table_bytes, &inserted, &group]() -> Status {
        uint64_t my_rows = 0;
        uint64_t my_bytes = 0;
        while (!group.cancelled()) {
          size_t p = next_part.fetch_add(1, std::memory_order_relaxed);
          if (p >= num_partitions_) break;
          BuildTable& table = partitions_[p];
          size_t routed = 0;
          for (size_t m = 0; m < num_morsels; ++m) routed += by_part[m][p].size();
          table.Reserve(routed);  // keys per partition <= rows routed to it
          for (size_t m = 0; m < num_morsels; ++m) {
            for (uint32_t r : by_part[m][p]) {
              my_bytes += EstimateRowBytes(rows[r]) +
                          keys[r].size() * sizeof(Value);
              table.TryEmplaceHashed(hashes[r], std::move(keys[r]))
                  .first->push_back(std::move(rows[r]));
              ++my_rows;
            }
          }
          my_bytes += table.StructureBytes();
        }
        mutable_metrics().worker_rows[w] = my_rows;
        table_bytes.fetch_add(my_bytes, std::memory_order_relaxed);
        inserted.fetch_add(my_rows, std::memory_order_relaxed);
        return Status::OK();
      });
    }
    CONQUER_RETURN_NOT_OK(group.Wait());
  }
  build_rows_ = inserted.load();
  mutable_metrics().peak_memory_bytes = table_bytes.load();
  return Status::OK();
}

void HashJoinOp::InsertBuildRow(Row row, uint64_t* table_bytes) {
  std::vector<Value> key;
  key.reserve(build_keys_.size());
  bool has_null_key = false;
  for (int slot : build_keys_) {
    key.push_back(row[slot]);
    has_null_key = has_null_key || row[slot].is_null();
  }
  // NULL join keys never match anything in SQL; drop them at build.
  if (has_null_key) return;
  *table_bytes += EstimateRowBytes(row) + key.size() * sizeof(Value);
  const uint64_t raw = HashValues(key);
  partitions_[0]
      .TryEmplaceHashed(raw, std::move(key))
      .first->push_back(std::move(row));
  ++build_rows_;
}

void HashJoinOp::FillRuntimeFilters() {
  if (filter_targets_.empty()) return;
  size_t total_keys = 0;
  for (const BuildTable& part : partitions_) total_keys += part.size();
  for (FilterTarget& target : filter_targets_) {
    target.filter->bloom.Init(total_keys);
    for (const BuildTable& part : partitions_) {
      for (const auto& entry : part.entries()) {
        // Single-column hash: the consuming scan hashes its key column the
        // same way, so membership tests line up even for composite joins.
        target.filter->bloom.Add(entry.key[target.key_index].Hash());
      }
    }
    target.filter->ready.store(true, std::memory_order_release);
  }
}

Status HashJoinOp::OpenImpl() {
  partitions_.clear();
  num_partitions_ = 1;
  build_rows_ = 0;
  // Re-execution starts from a clean slate: consumers must not observe a
  // stale filter from the previous run while this build is in progress.
  for (FilterTarget& target : filter_targets_) {
    target.filter->ready.store(false, std::memory_order_release);
  }
  CONQUER_RETURN_NOT_OK(build_->Open());
  // Drain the build input batch-at-a-time. With a parallel context the rows
  // are buffered and bulk-built; otherwise they stream into the single
  // partition table.
  const bool buffer_rows = exec_ != nullptr && exec_->pool != nullptr &&
                           exec_->pool->num_threads() > 1;
  std::vector<Row> buffered;
  partitions_.assign(1, BuildTable{});
  uint64_t table_bytes = 0;
  RowBatch batch;
  batch.capacity =
      exec_ != nullptr ? std::max<size_t>(1, exec_->batch_size) : batch.capacity;
  while (true) {
    CONQUER_ASSIGN_OR_RETURN(bool more, build_->NextBatch(&batch));
    if (!more) break;
    mutable_metrics().build_rows += batch.rows.size();
    for (Row& row : batch.rows) {
      if (buffer_rows) {
        buffered.push_back(std::move(row));
      } else {
        InsertBuildRow(std::move(row), &table_bytes);
      }
    }
  }
  build_->Close();
  if (buffer_rows) {
    if (exec_->ShouldParallelize(buffered.size())) {
      CONQUER_RETURN_NOT_OK(ParallelBuild(std::move(buffered)));
    } else {
      // Too small to fan out: sequential insert of the buffered rows.
      for (Row& r : buffered) InsertBuildRow(std::move(r), &table_bytes);
    }
  }
  mutable_metrics().hash_entries = build_rows_;
  if (num_partitions_ == 1) {
    mutable_metrics().peak_memory_bytes =
        table_bytes + partitions_[0].StructureBytes();
  }
  // The build side is final; publish its keys to any probe-side scans
  // before they open (scans in the probe subtree open strictly after this).
  FillRuntimeFilters();
  CONQUER_RETURN_NOT_OK(probe_->Open());
  current_matches_ = nullptr;
  probe_current_ = nullptr;
  match_cursor_ = 0;
  probe_batch_.clear();
  probe_cursor_ = 0;
  return Status::OK();
}

const std::vector<Row>* HashJoinOp::ProbeLookup(const Row& probe_row) {
  probe_key_.clear();
  bool has_null_key = false;
  for (int slot : probe_keys_) {
    probe_key_.push_back(probe_row[slot]);
    has_null_key = has_null_key || probe_row[slot].is_null();
  }
  if (has_null_key) return nullptr;
  // Hash once: the raw hash routes to the partition (high mixed bits) and
  // probes its flat table (low mixed bits).
  const uint64_t raw = HashValues(probe_key_);
  const BuildTable& table =
      partitions_[num_partitions_ == 1
                      ? 0
                      : HashPartition(HashMix(raw), num_partitions_)];
  return table.FindHashed(raw, probe_key_);
}

Result<bool> HashJoinOp::AdvanceProbe() {
  while (true) {
    CONQUER_ASSIGN_OR_RETURN(bool more, probe_->Next(&probe_row_));
    if (!more) return false;
    mutable_metrics().probe_rows += 1;
    const std::vector<Row>* hit = ProbeLookup(probe_row_);
    if (hit == nullptr) continue;
    current_matches_ = hit;
    match_cursor_ = 0;
    return true;
  }
}

Result<bool> HashJoinOp::NextImpl(Row* out) {
  while (true) {
    if (current_matches_ == nullptr ||
        match_cursor_ >= current_matches_->size()) {
      CONQUER_ASSIGN_OR_RETURN(bool more, AdvanceProbe());
      if (!more) return false;
    }
    const Row& build_row = (*current_matches_)[match_cursor_++];
    EmitRow(probe_row_, build_row, out);
    return true;
  }
}

Result<bool> HashJoinOp::NextBatchImpl(RowBatch* out) {
  // Assign output rows in place instead of clear()+push_back: a consumer
  // that reads the batch without moving rows out (e.g. a streaming
  // aggregate) lets each wide row's buffer be recycled across calls, so the
  // steady state emits with zero per-row allocation.
  size_t n = 0;
  while (n < out->capacity) {
    if (current_matches_ != nullptr &&
        match_cursor_ < current_matches_->size()) {
      const Row& build_row = (*current_matches_)[match_cursor_++];
      if (n == out->rows.size()) out->rows.emplace_back();
      EmitRow(*probe_current_, build_row, &out->rows[n++]);
      continue;
    }
    current_matches_ = nullptr;
    if (probe_cursor_ >= probe_batch_.rows.size()) {
      probe_batch_.capacity = out->capacity;
      CONQUER_ASSIGN_OR_RETURN(bool more, probe_->NextBatch(&probe_batch_));
      if (!more) break;
      probe_cursor_ = 0;
    }
    // Probe in place: the row stays inside probe_batch_ (so the child can
    // recycle its buffer on the next fill) and is read via pointer while
    // its matches are emitted.
    const Row& pr = probe_batch_.rows[probe_cursor_++];
    mutable_metrics().probe_rows += 1;
    const std::vector<Row>* hit = ProbeLookup(pr);
    if (hit == nullptr) continue;
    probe_current_ = &pr;
    current_matches_ = hit;
    match_cursor_ = 0;
  }
  out->rows.resize(n);
  return n > 0;
}

void HashJoinOp::CloseImpl() {
  partitions_.clear();
  probe_->Close();
}

std::string HashJoinOp::Describe() const {
  if (build_keys_.empty()) return "CrossJoin()";
  std::string out = "HashJoin(build slots: ";
  for (size_t i = 0; i < build_keys_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(build_keys_[i]);
  }
  out += " = probe slots: ";
  for (size_t i = 0; i < probe_keys_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(probe_keys_[i]);
  }
  out += ")";
  return out;
}

std::vector<const Operator*> HashJoinOp::Children() const {
  return {build_.get(), probe_.get()};
}

// ----------------------------------------------- IndexNestedLoopJoinOp

IndexNestedLoopJoinOp::IndexNestedLoopJoinOp(
    OperatorPtr outer, const Table* inner, size_t inner_column,
    int outer_key_slot, size_t inner_slot_offset, size_t total_slots,
    ExprPtr inner_filter, std::vector<uint32_t> outer_slots,
    std::vector<uint32_t> inner_slots, const ExecContext* exec)
    : outer_(std::move(outer)),
      inner_(inner),
      inner_column_(inner_column),
      outer_key_slot_(outer_key_slot),
      inner_slot_offset_(inner_slot_offset),
      total_slots_(total_slots),
      inner_filter_(std::move(inner_filter)),
      inner_local_filter_(RebaseFilter(inner_filter_.get(), inner_slot_offset)),
      outer_slots_(std::move(outer_slots)),
      inner_slots_(std::move(inner_slots)),
      exec_(exec) {}

void IndexNestedLoopJoinOp::EnsurePinned(size_t chunk, PinStats* pin_stats) {
  if (pin_ && pin_chunk_ == chunk) return;
  pin_ = inner_->PinChunk(chunk, pin_stats);
  pin_chunk_ = chunk;
}

Status IndexNestedLoopJoinOp::LinearProbe(const Value& key, uint32_t outer_idx,
                                          PinStats* pin_stats) {
  // Join key equality is hash-bucket + TotalCompare == 0. For the keys that
  // land here (an int64 column probed with a double beyond 2^52) a
  // TotalCompare match implies the double images — and therefore the
  // hashes — agree, so TotalCompare alone reproduces the hash join's
  // verdict exactly.
  const size_t cap = inner_->chunk_capacity();
  const StringDictionary* dict = inner_->dictionary(inner_column_);
  for (size_t c = 0; c < inner_->num_chunks(); ++c) {
    const Chunk& ch = inner_->chunk(c);
    const size_t n = ch.num_rows();
    if (n == 0) continue;
    ChunkPin pin = inner_->PinChunk(c, pin_stats);
    const ColumnVector& cv = ch.column(inner_column_);
    for (size_t r = 0; r < n; ++r) {
      if (cv.GetValue(r, dict).TotalCompare(key) == 0) {
        pairs_.emplace_back(static_cast<uint64_t>(c) * cap + r, outer_idx);
      }
    }
  }
  return Status::OK();
}

Status IndexNestedLoopJoinOp::ProbeOuter(uint32_t outer_idx,
                                         PinStats* pin_stats) {
  const Value& key = outer_rows_[outer_idx][static_cast<size_t>(outer_key_slot_)];
  const ChunkIndex* idx = inner_->GetIndex(inner_column_);
  bool unsupported = false;
  const ChunkIndex::ProbeSpec probe =
      idx->ResolveProbe(key, inner_->dictionary(inner_column_),
                        /*join_semantics=*/true, &unsupported);
  if (unsupported) return LinearProbe(key, outer_idx, pin_stats);
  if (probe.kind == ChunkIndex::ProbeSpec::Kind::kNone) return Status::OK();
  const size_t cap = inner_->chunk_capacity();
  for (size_t c = 0; c < inner_->num_chunks(); ++c) {
    const Chunk& ch = inner_->chunk(c);
    if (ch.num_rows() == 0) continue;
    // Zone maps (resident metadata) rule the chunk out before any payload
    // pin. Conservative: zones bound every stored value under TotalCompare
    // order, and the probe key is same-class comparable with them, so a
    // skipped chunk provably holds no join match. (No NaN caveat: double
    // columns never take a key probe under join semantics.)
    const ZoneMap& zone = ch.zone(inner_column_);
    if (probe.kind == ChunkIndex::ProbeSpec::Kind::kNull) {
      if (zone.null_count == 0) continue;
    } else if (!zone.has_values() || key.TotalCompare(zone.min) < 0 ||
               key.TotalCompare(zone.max) > 0) {
      continue;
    }
    candidates_.clear();
    inner_->IndexProbeChunk(inner_column_, probe, /*scan_semantics=*/false, c,
                            &candidates_, pin_stats);
    ++mutable_metrics().index_probes;
    mutable_metrics().index_rows += candidates_.size();
    for (uint32_t local : candidates_) {
      pairs_.emplace_back(static_cast<uint64_t>(c) * cap + local, outer_idx);
    }
  }
  return Status::OK();
}

Status IndexNestedLoopJoinOp::OpenImpl() {
  CONQUER_RETURN_NOT_OK(outer_->Open());
  snapshot_ = (exec_ != nullptr &&
               exec_->snapshot_override != ExecContext::kSnapshotLatest)
                  ? exec_->snapshot_override
                  : inner_->committed_version();
  outer_rows_.clear();
  pairs_.clear();
  cursor_ = 0;
  verdict_pos_ = ~0ull;
  verdict_keep_ = false;
  pin_.Reset();
  pin_chunk_ = SIZE_MAX;
  Row row;
  while (true) {
    CONQUER_ASSIGN_OR_RETURN(bool more, outer_->Next(&row));
    if (!more) break;
    outer_rows_.push_back(std::move(row));
  }
  outer_->Close();
  mutable_metrics().build_rows = outer_rows_.size();
  uint64_t outer_bytes = 0;
  for (const Row& r : outer_rows_) outer_bytes += EstimateRowBytes(r);
  PinStats ps;
  for (uint32_t i = 0; i < outer_rows_.size(); ++i) {
    CONQUER_RETURN_NOT_OK(ProbeOuter(i, &ps));
  }
  mutable_metrics().chunks_loaded += ps.chunks_loaded;
  mutable_metrics().chunks_evicted += ps.chunks_evicted;
  mutable_metrics().io_read_seconds += ps.io_read_seconds;
  // (pos, outer) order IS the replaced hash join's emission order: the
  // probe side streamed in scan order, each row matched against build rows
  // in build order.
  std::sort(pairs_.begin(), pairs_.end());
  mutable_metrics().peak_memory_bytes =
      outer_bytes + pairs_.capacity() * sizeof(PairPos);
  return Status::OK();
}

Result<bool> IndexNestedLoopJoinOp::NextImpl(Row* out) {
  while (cursor_ < pairs_.size()) {
    const PairPos p = pairs_[cursor_++];
    if (p.first != verdict_pos_) {
      // New inner position: decide once whether the row survives MVCC
      // visibility and the pushed-down inner predicate; runs of pairs on
      // the same position (several outer duplicates) reuse the verdict and
      // the materialized inner row.
      verdict_pos_ = p.first;
      verdict_keep_ = false;
      const size_t cap = inner_->chunk_capacity();
      const size_t c = static_cast<size_t>(p.first / cap);
      const uint32_t local = static_cast<uint32_t>(p.first % cap);
      if (inner_->chunk(c).RowVisible(local, snapshot_)) {
        PinStats ps;
        EnsurePinned(c, &ps);
        mutable_metrics().chunks_loaded += ps.chunks_loaded;
        mutable_metrics().chunks_evicted += ps.chunks_evicted;
        mutable_metrics().io_read_seconds += ps.io_read_seconds;
        inner_->GetRowInto(p.first, &inner_scratch_);
        bool pass = true;
        if (inner_local_filter_) {
          CONQUER_ASSIGN_OR_RETURN(
              pass, EvalPredicate(*inner_local_filter_, inner_scratch_));
        }
        verdict_keep_ = pass;
        if (pass) ++mutable_metrics().probe_rows;
      }
    }
    if (!verdict_keep_) continue;
    const Row& outer_row = outer_rows_[p.second];
    // Exactly outer_slots_ + inner_slots_ are written on every emission, so
    // a recycled row of the right width (last written by this operator)
    // needs no re-clearing — HashJoinOp::EmitRow conventions.
    if (out->size() != total_slots_) out->assign(total_slots_, Value::Null());
    for (uint32_t s : outer_slots_) (*out)[s] = outer_row[s];
    for (uint32_t s : inner_slots_) {
      (*out)[s] = inner_scratch_[s - inner_slot_offset_];
    }
    return true;
  }
  return false;
}

void IndexNestedLoopJoinOp::CloseImpl() {
  pin_.Reset();
  pin_chunk_ = SIZE_MAX;
  outer_rows_.clear();
  pairs_.clear();
}

std::string IndexNestedLoopJoinOp::Describe() const {
  std::string out = "IndexNestedLoopJoin(" + inner_->name() + ", " +
                    inner_->schema().column(inner_column_).name +
                    " = outer slot " + std::to_string(outer_key_slot_);
  if (inner_filter_) out += ", filter: " + inner_filter_->ToString();
  out += ")";
  return out;
}

std::vector<const Operator*> IndexNestedLoopJoinOp::Children() const {
  return {outer_.get()};
}

// ----------------------------------------------------------------- ProjectOp

ProjectOp::ProjectOp(OperatorPtr child, std::vector<const Expr*> exprs)
    : child_(std::move(child)), exprs_(std::move(exprs)) {}

Status ProjectOp::OpenImpl() { return child_->Open(); }

Result<bool> ProjectOp::NextImpl(Row* out) {
  Row wide;
  CONQUER_ASSIGN_OR_RETURN(bool more, child_->Next(&wide));
  if (!more) return false;
  out->clear();
  out->reserve(exprs_.size());
  for (const Expr* e : exprs_) {
    CONQUER_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, wide));
    out->push_back(std::move(v));
  }
  // Projection is the boundary where dictionary-interned strings leave the
  // executor: decode them into owning values.
  DecodeRowInPlace(out);
  return true;
}

Result<bool> ProjectOp::NextBatchImpl(RowBatch* out) {
  out->rows.clear();
  child_batch_.capacity = out->capacity;
  CONQUER_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&child_batch_));
  if (!more) return false;
  out->rows.reserve(child_batch_.rows.size());
  for (const Row& wide : child_batch_.rows) {
    Row narrow;
    narrow.reserve(exprs_.size());
    for (const Expr* e : exprs_) {
      CONQUER_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, wide));
      narrow.push_back(std::move(v));
    }
    DecodeRowInPlace(&narrow);
    out->rows.push_back(std::move(narrow));
  }
  return true;
}

void ProjectOp::CloseImpl() { child_->Close(); }

std::string ProjectOp::Describe() const {
  std::string out = "Project(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  out += ")";
  return out;
}

std::vector<const Operator*> ProjectOp::Children() const {
  return {child_.get()};
}

// ----------------------------------------------------------- HashAggregateOp

size_t HashAggregateOp::KeyHash::operator()(
    const std::vector<Value>& key) const {
  return HashValues(key);
}
bool HashAggregateOp::KeyEq::operator()(const std::vector<Value>& a,
                                        const std::vector<Value>& b) const {
  return ValuesEqual(a, b);
}

namespace {
void CollectAggCalls(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::kAggregate) {
    out->push_back(e);
    return;  // no nested aggregates (binder enforces)
  }
  CollectAggCalls(e->left.get(), out);
  CollectAggCalls(e->right.get(), out);
}

/// True when `e` has a column reference outside any aggregate call — the
/// case where finalization must re-evaluate against a stored group row.
bool HasColumnRefOutsideAggregate(const Expr& e) {
  if (e.kind == Expr::Kind::kAggregate) return false;
  if (e.kind == Expr::Kind::kColumnRef) return true;
  if (e.left && HasColumnRefOutsideAggregate(*e.left)) return true;
  if (e.right && HasColumnRefOutsideAggregate(*e.right)) return true;
  return false;
}
}  // namespace

HashAggregateOp::HashAggregateOp(OperatorPtr child,
                                 std::vector<const Expr*> group_exprs,
                                 std::vector<const Expr*> select_items,
                                 const ExecContext* exec)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      select_items_(std::move(select_items)),
      exec_(exec) {
  for (const Expr* item : select_items_) {
    CollectAggCalls(item, &agg_calls_);
  }
  // Plan each output item: serve it from the group key when it matches a
  // grouping expression (the common case for the clean-answer rewriting,
  // which groups by exactly the SELECT attributes), evaluate it once per
  // group when group-invariant, or finalize it from aggregate state.
  for (const Expr* item : select_items_) {
    if (item->ContainsAggregate()) {
      item_plans_.push_back({ItemPlan::Source::kFinalize, 0});
      if (HasColumnRefOutsideAggregate(*item)) needs_representative_ = true;
      continue;
    }
    bool matched = false;
    for (size_t g = 0; g < group_exprs_.size() && !matched; ++g) {
      if (item->StructurallyEquals(*group_exprs_[g])) {
        item_plans_.push_back({ItemPlan::Source::kFromKey, g});
        matched = true;
      }
    }
    if (!matched) {
      item_plans_.push_back(
          {ItemPlan::Source::kInvariantEval, num_invariant_evals_++});
    }
  }
}

Status HashAggregateOp::GroupKeyInto(const Row& row,
                                     std::vector<Value>* key) const {
  key->clear();
  key->reserve(group_exprs_.size());
  for (const Expr* g : group_exprs_) {
    // Plain column keys (the clean-answer rewriting groups by the SELECT
    // attributes) copy straight out of the row, skipping the evaluator.
    if (g->kind == Expr::Kind::kColumnRef) {
      key->push_back(row[g->slot]);
      continue;
    }
    CONQUER_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, row));
    key->push_back(std::move(v));
  }
  return Status::OK();
}

Result<std::vector<Value>> HashAggregateOp::GroupKey(const Row& row) const {
  std::vector<Value> key;
  CONQUER_RETURN_NOT_OK(GroupKeyInto(row, &key));
  return key;
}

Status HashAggregateOp::Accumulate(const Row& row, uint64_t row_index) {
  // Probe with the scratch key; only the first row of a group pays for a
  // fresh key vector (copied out of the scratch into the table).
  CONQUER_RETURN_NOT_OK(GroupKeyInto(row, &key_scratch_));
  const uint64_t raw = HashValues(key_scratch_);
  GroupMap& map = partition_groups_[0];
  Group* group = map.FindHashed(raw, key_scratch_);
  if (group == nullptr) {
    group = map.TryEmplaceHashed(raw, key_scratch_).first;
    CONQUER_RETURN_NOT_OK(InitGroup(group, row, row_index));
  }
  return UpdateGroup(group, row);
}

Status HashAggregateOp::AccumulateRow(GroupMap* map, uint64_t raw_hash,
                                      std::vector<Value> key, const Row& row,
                                      uint64_t row_index) {
  auto [group, inserted] = map->TryEmplaceHashed(raw_hash, std::move(key));
  if (inserted) {
    CONQUER_RETURN_NOT_OK(InitGroup(group, row, row_index));
  }
  return UpdateGroup(group, row);
}

Status HashAggregateOp::InitGroup(Group* group_ptr, const Row& row,
                                  uint64_t row_index) {
  Group& group = *group_ptr;
  group.first_row = row_index;
  if (needs_representative_) group.representative = row;
  if (num_invariant_evals_ > 0) {
    group.extra_values.reserve(num_invariant_evals_);
    for (size_t i = 0; i < select_items_.size(); ++i) {
      if (item_plans_[i].source == ItemPlan::Source::kInvariantEval) {
        CONQUER_ASSIGN_OR_RETURN(Value v, EvalExpr(*select_items_[i], row));
        group.extra_values.push_back(std::move(v));
      }
    }
  }
  group.aggs.resize(agg_calls_.size());
  return Status::OK();
}

Status HashAggregateOp::UpdateGroup(Group* group_ptr, const Row& row) {
  Group& group = *group_ptr;
  for (size_t i = 0; i < agg_calls_.size(); ++i) {
    const Expr& call = *agg_calls_[i];
    AggState& st = group.aggs[i];
    if (call.agg == AggFunc::kCount && call.left == nullptr) {
      ++st.count;
      continue;
    }
    CONQUER_ASSIGN_OR_RETURN(Value v, EvalExpr(*call.left, row));
    if (v.is_null()) continue;  // SQL aggregates skip NULLs
    st.saw_value = true;
    switch (call.agg) {
      case AggFunc::kCount:
        ++st.count;
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        ++st.count;
        if (v.type() == DataType::kInt64) {
          st.isum += v.int_value();
        }
        st.sum += v.AsDouble();
        break;
      case AggFunc::kMin:
        if (!st.min_max.is_null()) {
          if (v.Compare(st.min_max) < 0) st.min_max = v;
        } else {
          st.min_max = v;
        }
        break;
      case AggFunc::kMax:
        if (!st.min_max.is_null()) {
          if (v.Compare(st.min_max) > 0) st.min_max = v;
        } else {
          st.min_max = v;
        }
        break;
      case AggFunc::kNone:
        return Status::Internal("kNone aggregate call");
    }
  }
  return Status::OK();
}

Result<Value> HashAggregateOp::Finalize(const Expr& e,
                                        const Group& group) const {
  if (e.kind == Expr::Kind::kAggregate) {
    // Find this call's state (pointer identity within agg_calls_).
    size_t idx = agg_calls_.size();
    for (size_t i = 0; i < agg_calls_.size(); ++i) {
      if (agg_calls_[i] == &e) {
        idx = i;
        break;
      }
    }
    if (idx == agg_calls_.size()) {
      return Status::Internal("aggregate call not registered");
    }
    const AggState& st = group.aggs[idx];
    switch (e.agg) {
      case AggFunc::kCount:
        return Value::Int(st.count);
      case AggFunc::kSum:
        if (!st.saw_value) return Value::Null();
        if (e.resolved_type == DataType::kInt64) return Value::Int(st.isum);
        return Value::Double(st.sum);
      case AggFunc::kAvg:
        if (!st.saw_value || st.count == 0) return Value::Null();
        return Value::Double(st.sum / static_cast<double>(st.count));
      case AggFunc::kMin:
      case AggFunc::kMax:
        return st.min_max;  // NULL when the group had only NULLs
      case AggFunc::kNone:
        break;
    }
    return Status::Internal("unhandled aggregate finalize");
  }
  if (e.kind == Expr::Kind::kLiteral) return e.literal;
  if (e.kind == Expr::Kind::kColumnRef) {
    return EvalExpr(e, group.representative);
  }
  // Composite expression over aggregates / group keys: recurse and combine.
  if (e.kind == Expr::Kind::kBinary || e.kind == Expr::Kind::kUnary) {
    if (!e.ContainsAggregate()) {
      return EvalExpr(e, group.representative);
    }
    // Rebuild a literal-only copy with aggregate children replaced by their
    // finalized values, then evaluate.
    Expr copy;
    copy.kind = e.kind;
    copy.bop = e.bop;
    copy.uop = e.uop;
    copy.resolved_type = e.resolved_type;
    CONQUER_ASSIGN_OR_RETURN(Value lv, Finalize(*e.left, group));
    copy.left = Expr::MakeLiteral(std::move(lv));
    if (e.right) {
      CONQUER_ASSIGN_OR_RETURN(Value rv, Finalize(*e.right, group));
      copy.right = Expr::MakeLiteral(std::move(rv));
    }
    static const Row kEmptyRow;
    return EvalExpr(copy, kEmptyRow);
  }
  return Status::Internal("unhandled select item in aggregate finalize");
}

Status HashAggregateOp::ParallelAccumulate(const std::vector<Row>& rows) {
  const size_t n = rows.size();
  const size_t morsel = exec_->morsel_size;
  const size_t num_morsels = (n + morsel - 1) / morsel;
  num_partitions_ = std::max<size_t>(1, exec_->num_partitions);
  partition_groups_.assign(num_partitions_, GroupMap{});

  // Phase 1 (morsel-parallel): evaluate group keys, hash each key once, and
  // route each row to its hash partition (high mixed bits; the same raw
  // hash later indexes the partition's flat table through the low bits),
  // preserving input order within every (morsel, partition) list.
  std::vector<std::vector<Value>> keys(n);
  std::vector<uint64_t> hashes(n);
  std::vector<std::vector<std::vector<uint32_t>>> by_part(
      num_morsels, std::vector<std::vector<uint32_t>>(num_partitions_));
  const size_t workers = std::min(exec_->parallelism(), num_morsels);
  std::atomic<size_t> next_morsel{0};
  {
    TaskGroup group(exec_->pool);
    for (size_t w = 0; w < workers; ++w) {
      group.Submit([this, n, morsel, num_morsels, &rows, &keys, &hashes,
                    &by_part, &next_morsel, &group]() -> Status {
        while (!group.cancelled()) {
          size_t m = next_morsel.fetch_add(1, std::memory_order_relaxed);
          if (m >= num_morsels) break;
          const size_t end = std::min(n, (m + 1) * morsel);
          for (size_t r = m * morsel; r < end; ++r) {
            CONQUER_ASSIGN_OR_RETURN(keys[r], GroupKey(rows[r]));
            hashes[r] = HashValues(keys[r]);
            size_t p = HashPartition(HashMix(hashes[r]), num_partitions_);
            by_part[m][p].push_back(static_cast<uint32_t>(r));
          }
        }
        return Status::OK();
      });
    }
    CONQUER_RETURN_NOT_OK(group.Wait());
  }

  // Phase 2 (partition-parallel): each partition accumulates its rows in
  // global input order. All rows of one group share a partition, so the
  // per-group addition order equals the sequential accumulate — float
  // aggregates (SUM(prob)) come out bit-identical for any thread count.
  const size_t part_workers = std::min(exec_->parallelism(), num_partitions_);
  mutable_metrics().parallel_degree = static_cast<uint32_t>(part_workers);
  mutable_metrics().worker_rows.assign(part_workers, 0);
  std::atomic<size_t> next_part{0};
  {
    TaskGroup group(exec_->pool);
    for (size_t w = 0; w < part_workers; ++w) {
      group.Submit([this, w, num_morsels, &rows, &keys, &hashes, &by_part,
                    &next_part, &group]() -> Status {
        uint64_t my_rows = 0;
        while (!group.cancelled()) {
          size_t p = next_part.fetch_add(1, std::memory_order_relaxed);
          if (p >= num_partitions_) break;
          for (size_t m = 0; m < num_morsels; ++m) {
            for (uint32_t r : by_part[m][p]) {
              CONQUER_RETURN_NOT_OK(AccumulateRow(&partition_groups_[p],
                                                  hashes[r],
                                                  std::move(keys[r]), rows[r],
                                                  r));
              ++my_rows;
            }
          }
        }
        mutable_metrics().worker_rows[w] = my_rows;
        return Status::OK();
      });
    }
    CONQUER_RETURN_NOT_OK(group.Wait());
  }
  return Status::OK();
}

void HashAggregateOp::BuildOutputOrder() {
  // Collect groups only after every insert is done: flat-table value
  // pointers are stable from here on. Sorting on first_row restores the
  // sequential first-seen order (for a sequential accumulate the entries
  // are already in that order and the sort is a no-op).
  output_order_.clear();
  size_t total = 0;
  for (const GroupMap& groups : partition_groups_) total += groups.size();
  output_order_.reserve(total);
  for (const GroupMap& groups : partition_groups_) {
    for (const auto& e : groups.entries()) {
      output_order_.push_back({&e.key, &e.value, e.value.first_row});
    }
  }
  std::sort(output_order_.begin(), output_order_.end(),
            [](const OutEntry& a, const OutEntry& b) {
              return a.first_row < b.first_row;
            });
}

Status HashAggregateOp::OpenImpl() {
  partition_groups_.assign(1, GroupMap{});
  num_partitions_ = 1;
  output_order_.clear();
  cursor_ = 0;
  CONQUER_RETURN_NOT_OK(child_->Open());
  size_t n = 0;
  uint64_t buffered_bytes = 0;
  // With a parallel context, buffer the input and bulk-accumulate;
  // otherwise accumulate streaming (no extra memory).
  const bool buffer_rows = exec_ != nullptr && exec_->pool != nullptr &&
                           exec_->pool->num_threads() > 1;
  std::vector<Row> buffered;
  RowBatch batch;
  batch.capacity =
      exec_ != nullptr ? std::max<size_t>(1, exec_->batch_size) : batch.capacity;
  while (true) {
    CONQUER_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
    if (!more) break;
    for (Row& row : batch.rows) {
      if (buffer_rows) {
        buffered_bytes += EstimateRowBytes(row);
        buffered.push_back(std::move(row));
      } else {
        CONQUER_RETURN_NOT_OK(Accumulate(row, n));
      }
      ++n;
    }
  }
  child_->Close();
  no_input_ = (n == 0);
  if (buffer_rows) {
    if (exec_->ShouldParallelize(buffered.size())) {
      CONQUER_RETURN_NOT_OK(ParallelAccumulate(buffered));
    } else {
      for (size_t r = 0; r < buffered.size(); ++r) {
        CONQUER_RETURN_NOT_OK(Accumulate(buffered[r], r));
      }
    }
  }
  BuildOutputOrder();
  size_t num_groups = 0;
  uint64_t table_bytes = buffer_rows ? buffered_bytes : 0;
  for (const GroupMap& groups : partition_groups_) {
    num_groups += groups.size();
    table_bytes += groups.StructureBytes();
    for (const auto& e : groups.entries()) {
      const std::vector<Value>& key = e.key;
      const Group& group = e.value;
      table_bytes += key.size() * sizeof(Value) + sizeof(Group) +
                     group.aggs.size() * sizeof(AggState);
      for (const Value& v : key) table_bytes += ValueHeapBytes(v);
      if (!group.representative.empty()) {
        table_bytes += EstimateRowBytes(group.representative);
      }
      table_bytes += group.extra_values.size() * sizeof(Value);
    }
  }
  mutable_metrics().hash_entries = num_groups;
  mutable_metrics().peak_memory_bytes = table_bytes;
  return Status::OK();
}

Result<bool> HashAggregateOp::NextImpl(Row* out) {
  // SQL corner case: an aggregate query with no GROUP BY produces exactly one
  // row even on empty input (SUM -> NULL, COUNT -> 0).
  if (no_input_ && group_exprs_.empty() && cursor_ == 0) {
    ++cursor_;
    out->clear();
    Group empty;
    empty.aggs.resize(agg_calls_.size());
    for (const Expr* item : select_items_) {
      CONQUER_ASSIGN_OR_RETURN(Value v, Finalize(*item, empty));
      out->push_back(std::move(v));
    }
    DecodeRowInPlace(out);
    return true;
  }
  if (cursor_ >= output_order_.size()) return false;
  const OutEntry& entry = output_order_[cursor_++];
  out->clear();
  out->reserve(select_items_.size());
  for (size_t i = 0; i < select_items_.size(); ++i) {
    switch (item_plans_[i].source) {
      case ItemPlan::Source::kFromKey:
        out->push_back((*entry.key)[item_plans_[i].index]);
        break;
      case ItemPlan::Source::kInvariantEval:
        out->push_back(entry.group->extra_values[item_plans_[i].index]);
        break;
      case ItemPlan::Source::kFinalize: {
        CONQUER_ASSIGN_OR_RETURN(Value v,
                                 Finalize(*select_items_[i], *entry.group));
        out->push_back(std::move(v));
        break;
      }
    }
  }
  // Aggregation produces narrow output rows: the boundary where interned
  // strings (group keys) leave the executor.
  DecodeRowInPlace(out);
  return true;
}

void HashAggregateOp::CloseImpl() {
  partition_groups_.clear();
  output_order_.clear();
}

std::string HashAggregateOp::Describe() const {
  std::string out = "HashAggregate(keys: ";
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_exprs_[i]->ToString();
  }
  out += "; aggs: " + std::to_string(agg_calls_.size()) + ")";
  return out;
}

std::vector<const Operator*> HashAggregateOp::Children() const {
  return {child_.get()};
}

// -------------------------------------------------------------------- SortOp

SortOp::SortOp(OperatorPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {}

Status SortOp::OpenImpl() {
  rows_.clear();
  cursor_ = 0;
  CONQUER_RETURN_NOT_OK(child_->Open());
  RowBatch batch;
  while (true) {
    CONQUER_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
    if (!more) break;
    for (Row& row : batch.rows) rows_.push_back(std::move(row));
  }
  child_->Close();
  uint64_t buffered = 0;
  for (const Row& r : rows_) buffered += EstimateRowBytes(r);
  mutable_metrics().peak_memory_bytes = buffered;
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     for (const SortKey& k : keys_) {
                       int c = a[k.column].TotalCompare(b[k.column]);
                       if (c != 0) return k.descending ? c > 0 : c < 0;
                     }
                     return false;
                   });
  return Status::OK();
}

Result<bool> SortOp::NextImpl(Row* out) {
  if (cursor_ >= rows_.size()) return false;
  *out = std::move(rows_[cursor_++]);
  return true;
}

Result<bool> SortOp::NextBatchImpl(RowBatch* out) {
  out->rows.clear();
  while (out->rows.size() < out->capacity && cursor_ < rows_.size()) {
    out->rows.push_back(std::move(rows_[cursor_++]));
  }
  return !out->rows.empty();
}

void SortOp::CloseImpl() { rows_.clear(); }

std::string SortOp::Describe() const {
  std::string out = "Sort(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "#" + std::to_string(keys_[i].column) +
           (keys_[i].descending ? " DESC" : " ASC");
  }
  out += ")";
  return out;
}

std::vector<const Operator*> SortOp::Children() const {
  return {child_.get()};
}

// ---------------------------------------------------------------- DistinctOp

size_t DistinctOp::RowHash::operator()(const Row& r) const {
  return HashValues(r);
}
bool DistinctOp::RowEq::operator()(const Row& a, const Row& b) const {
  return ValuesEqual(a, b);
}

DistinctOp::DistinctOp(OperatorPtr child) : child_(std::move(child)) {}

Status DistinctOp::OpenImpl() {
  seen_.clear();
  return child_->Open();
}

Result<bool> DistinctOp::NextImpl(Row* out) {
  while (true) {
    CONQUER_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    auto [value_ptr, inserted] = seen_.TryEmplace(*out);
    (void)value_ptr;
    if (inserted) {
      mutable_metrics().hash_entries = seen_.size();
      mutable_metrics().peak_memory_bytes += EstimateRowBytes(*out);
      return true;
    }
  }
}

Result<bool> DistinctOp::NextBatchImpl(RowBatch* out) {
  out->rows.clear();
  while (out->rows.empty()) {
    child_batch_.capacity = out->capacity;
    CONQUER_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&child_batch_));
    if (!more) return false;
    for (Row& row : child_batch_.rows) {
      auto [value_ptr, inserted] = seen_.TryEmplace(row);
      (void)value_ptr;
      if (!inserted) continue;
      mutable_metrics().hash_entries = seen_.size();
      mutable_metrics().peak_memory_bytes += EstimateRowBytes(row);
      out->rows.push_back(std::move(row));
    }
  }
  return true;
}

void DistinctOp::CloseImpl() {
  seen_.clear();
  child_->Close();
}

std::string DistinctOp::Describe() const { return "Distinct()"; }

std::vector<const Operator*> DistinctOp::Children() const {
  return {child_.get()};
}

// ------------------------------------------------------------------- LimitOp

LimitOp::LimitOp(OperatorPtr child, int64_t limit)
    : child_(std::move(child)), limit_(limit) {}

Status LimitOp::OpenImpl() {
  produced_ = 0;
  return child_->Open();
}

Result<bool> LimitOp::NextImpl(Row* out) {
  if (produced_ >= limit_) return false;
  CONQUER_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  ++produced_;
  return true;
}

Result<bool> LimitOp::NextBatchImpl(RowBatch* out) {
  out->rows.clear();
  if (produced_ >= limit_) return false;
  // Cap the child pull at the remaining budget so no extra rows are drawn.
  child_batch_.capacity =
      std::min(out->capacity, static_cast<size_t>(limit_ - produced_));
  CONQUER_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&child_batch_));
  if (!more) return false;
  const size_t take = std::min(child_batch_.rows.size(),
                               static_cast<size_t>(limit_ - produced_));
  for (size_t i = 0; i < take; ++i) {
    out->rows.push_back(std::move(child_batch_.rows[i]));
  }
  produced_ += static_cast<int64_t>(take);
  return !out->rows.empty();
}

void LimitOp::CloseImpl() { child_->Close(); }

std::string LimitOp::Describe() const {
  return "Limit(" + std::to_string(limit_) + ")";
}

std::vector<const Operator*> LimitOp::Children() const {
  return {child_.get()};
}

// ------------------------------------------------------------ StripColumnsOp

StripColumnsOp::StripColumnsOp(OperatorPtr child, size_t num_visible)
    : child_(std::move(child)), num_visible_(num_visible) {}

Status StripColumnsOp::OpenImpl() { return child_->Open(); }

Result<bool> StripColumnsOp::NextImpl(Row* out) {
  CONQUER_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  out->resize(num_visible_);
  return true;
}

Result<bool> StripColumnsOp::NextBatchImpl(RowBatch* out) {
  CONQUER_ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
  if (!more) return false;
  for (Row& row : out->rows) row.resize(num_visible_);
  return true;
}

void StripColumnsOp::CloseImpl() { child_->Close(); }

std::string StripColumnsOp::Describe() const {
  return "StripColumns(keep " + std::to_string(num_visible_) + ")";
}

std::vector<const Operator*> StripColumnsOp::Children() const {
  return {child_.get()};
}

}  // namespace conquer
