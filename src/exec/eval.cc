#include "exec/eval.h"

#include <cassert>

#include "common/str_util.h"

namespace conquer {

namespace {

Result<Value> EvalBinary(const Expr& e, const Row& row) {
  // Kleene AND/OR need operand-aware NULL handling and short circuits.
  if (e.bop == BinaryOp::kAnd || e.bop == BinaryOp::kOr) {
    CONQUER_ASSIGN_OR_RETURN(Value l, EvalExpr(*e.left, row));
    bool is_and = e.bop == BinaryOp::kAnd;
    if (!l.is_null()) {
      if (is_and && !l.bool_value()) return Value::Bool(false);
      if (!is_and && l.bool_value()) return Value::Bool(true);
    }
    CONQUER_ASSIGN_OR_RETURN(Value r, EvalExpr(*e.right, row));
    if (!r.is_null()) {
      if (is_and && !r.bool_value()) return Value::Bool(false);
      if (!is_and && r.bool_value()) return Value::Bool(true);
    }
    if (l.is_null() || r.is_null()) return Value::Null();
    return Value::Bool(is_and);  // AND: both true; OR: both false -> false
  }

  CONQUER_ASSIGN_OR_RETURN(Value l, EvalExpr(*e.left, row));
  CONQUER_ASSIGN_OR_RETURN(Value r, EvalExpr(*e.right, row));
  if (l.is_null() || r.is_null()) return Value::Null();

  switch (e.bop) {
    case BinaryOp::kEq:
      return Value::Bool(l.Compare(r) == 0);
    case BinaryOp::kNe:
      return Value::Bool(l.Compare(r) != 0);
    case BinaryOp::kLt:
      return Value::Bool(l.Compare(r) < 0);
    case BinaryOp::kLe:
      return Value::Bool(l.Compare(r) <= 0);
    case BinaryOp::kGt:
      return Value::Bool(l.Compare(r) > 0);
    case BinaryOp::kGe:
      return Value::Bool(l.Compare(r) >= 0);
    case BinaryOp::kLike:
      // The binder rejects non-string LIKE in SQL, but expressions built
      // programmatically bypass it; without this check string_value() on an
      // INT/DATE operand is undefined behaviour.
      if (l.type() != DataType::kString || r.type() != DataType::kString) {
        return Status::TypeError(
            std::string("LIKE requires string operands, got ") +
            DataTypeToString(l.type()) + " and " + DataTypeToString(r.type()));
      }
      return Value::Bool(LikeMatch(l.string_value(), r.string_value()));
    case BinaryOp::kAdd:
    case BinaryOp::kSub: {
      // DATE arithmetic.
      if (l.type() == DataType::kDate && r.type() == DataType::kInt64) {
        int64_t d = e.bop == BinaryOp::kAdd ? l.date_value() + r.int_value()
                                            : l.date_value() - r.int_value();
        return Value::Date(d);
      }
      if (e.bop == BinaryOp::kSub && l.type() == DataType::kDate &&
          r.type() == DataType::kDate) {
        return Value::Int(l.date_value() - r.date_value());
      }
      if (l.type() == DataType::kInt64 && r.type() == DataType::kInt64) {
        int64_t v = e.bop == BinaryOp::kAdd ? l.int_value() + r.int_value()
                                            : l.int_value() - r.int_value();
        return Value::Int(v);
      }
      double v = e.bop == BinaryOp::kAdd ? l.AsDouble() + r.AsDouble()
                                         : l.AsDouble() - r.AsDouble();
      return Value::Double(v);
    }
    case BinaryOp::kMul:
      if (l.type() == DataType::kInt64 && r.type() == DataType::kInt64) {
        return Value::Int(l.int_value() * r.int_value());
      }
      return Value::Double(l.AsDouble() * r.AsDouble());
    case BinaryOp::kDiv: {
      double denom = r.AsDouble();
      if (denom == 0.0) return Value::Null();  // SQL raises; we yield NULL
      return Value::Double(l.AsDouble() / denom);
    }
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      break;  // handled above
  }
  return Status::Internal("unhandled binary op in eval");
}

}  // namespace

Result<Value> EvalExpr(const Expr& e, const Row& row) {
  switch (e.kind) {
    case Expr::Kind::kColumnRef:
      assert(e.slot >= 0 && static_cast<size_t>(e.slot) < row.size());
      return row[e.slot];
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kBinary:
      return EvalBinary(e, row);
    case Expr::Kind::kUnary: {
      CONQUER_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.left, row));
      switch (e.uop) {
        case UnaryOp::kNot:
          if (v.is_null()) return Value::Null();
          return Value::Bool(!v.bool_value());
        case UnaryOp::kNeg:
          if (v.is_null()) return Value::Null();
          if (v.type() == DataType::kInt64) return Value::Int(-v.int_value());
          return Value::Double(-v.AsDouble());
        case UnaryOp::kIsNull:
          return Value::Bool(v.is_null());
        case UnaryOp::kIsNotNull:
          return Value::Bool(!v.is_null());
      }
      return Status::Internal("unhandled unary op in eval");
    }
    case Expr::Kind::kAggregate:
      return Status::Internal(
          "aggregate reached the row-level evaluator: '" + e.ToString() + "'");
    case Expr::Kind::kParameter:
      return Status::InvalidArgument(
          "unbound parameter '?': bind values via a prepared statement");
  }
  return Status::Internal("unhandled expression kind in eval");
}

Result<bool> EvalPredicate(const Expr& e, const Row& row) {
  CONQUER_ASSIGN_OR_RETURN(Value v, EvalExpr(e, row));
  if (v.is_null()) return false;
  return v.bool_value();
}

}  // namespace conquer
