#ifndef CONQUER_EXEC_EVAL_BATCH_H_
#define CONQUER_EXEC_EVAL_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "exec/batch.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace conquer {

/// \brief Vectorized predicate evaluation over a selection vector.
///
/// Compacts `sel` (positions into `rows`) in place, keeping exactly the
/// rows where `e` evaluates to TRUE (SQL semantics: NULL drops the row,
/// matching EvalPredicate). Order is preserved, so output row order is
/// identical to the per-row scalar path.
///
/// Fast paths, applied per predicate node:
///   - AND: evaluate the left conjunct, then the right over the survivors;
///   - OR: evaluate both sides over disjoint position sets and merge;
///   - column-vs-literal and column-vs-column comparisons: one tight loop
///     over the selection, no Value copies and no per-row Result plumbing;
///   - `string_col = 'literal'` with a table dictionary: the literal is
///     resolved to its interned pointer once, each row is then a pointer
///     compare (counted in `*dict_hits`); a dictionary miss proves no
///     interned row can match.
/// Anything else falls back to scalar EvalPredicate per row.
///
/// `table` supplies per-column dictionaries when `rows` are base-table rows
/// (column references bound to table-local slots); pass nullptr for wide or
/// narrow intermediate rows. `dict_hits` (required) accumulates the number
/// of rows decided by an interned pointer compare.
Status FilterSelection(const Expr& e, const std::vector<Row>& rows,
                       const Table* table, SelVector* sel,
                       uint64_t* dict_hits);

}  // namespace conquer

#endif  // CONQUER_EXEC_EVAL_BATCH_H_
