#ifndef CONQUER_EXEC_EVAL_BATCH_H_
#define CONQUER_EXEC_EVAL_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "exec/batch.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace conquer {

/// \brief Vectorized predicate evaluation over a selection vector.
///
/// Compacts `sel` (positions into `rows`) in place, keeping exactly the
/// rows where `e` evaluates to TRUE (SQL semantics: NULL drops the row,
/// matching EvalPredicate). Order is preserved, so output row order is
/// identical to the per-row scalar path.
///
/// Fast paths, applied per predicate node:
///   - AND: evaluate the left conjunct, then the right over the survivors;
///   - OR: evaluate both sides over disjoint position sets and merge;
///   - column-vs-literal and column-vs-column comparisons: one tight loop
///     over the selection, no Value copies and no per-row Result plumbing;
///   - `string_col = 'literal'` with a table dictionary: the literal is
///     resolved to its interned pointer once, each row is then a pointer
///     compare (counted in `*dict_hits`); a dictionary miss proves no
///     interned row can match.
/// Anything else falls back to scalar EvalPredicate per row.
///
/// `table` supplies per-column dictionaries when `rows` are base-table rows
/// (column references bound to table-local slots); pass nullptr for wide or
/// narrow intermediate rows. `dict_hits` (required) accumulates the number
/// of rows decided by an interned pointer compare.
Status FilterSelection(const Expr& e, const std::vector<Row>& rows,
                       const Table* table, SelVector* sel,
                       uint64_t* dict_hits);

/// \brief Chunk-native predicate evaluation over a selection vector.
///
/// Same contract as FilterSelection — `sel` holds *chunk-local* positions
/// into chunk `chunk_index` of `table` and is compacted in place, order
/// preserved — but the fast paths read the chunk's typed column vectors
/// directly, with no row materialization:
///   - int64/date/bool columns compare raw int64 payloads;
///   - double columns compare raw doubles (INT64 literals widened once);
///   - string (in)equality resolves the literal to its dictionary code once
///     and compares codes per row (counted in `*dict_hits`); ordering and
///     LIKE decode through the dictionary without copying;
///   - an equality on a chunk whose zone map proves all-distinct values
///     stops after the first match.
/// Rows are materialized only for predicate shapes outside these paths
/// (scalar EvalPredicate fallback, one row at a time).
Status FilterChunkSelection(const Expr& e, const Table& table,
                            size_t chunk_index, SelVector* sel,
                            uint64_t* dict_hits);

/// \brief True when the chunk's zone maps prove no row can satisfy `e`.
///
/// Conservative: comparisons of a column against a literal are tested
/// against the column's min/max (an all-NULL chunk fails every comparison);
/// AND skips when either side skips, OR when both do; every other predicate
/// shape returns false. Only literal/column type pairings that the row-wise
/// evaluator would compare without error participate, so pruning never
/// suppresses a type error the scan would have raised.
bool ZoneMapCanSkip(const Expr& e, const Table& table, const Chunk& chunk);

}  // namespace conquer

#endif  // CONQUER_EXEC_EVAL_BATCH_H_
