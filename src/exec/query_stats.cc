#include "exec/query_stats.h"

#include <algorithm>

#include "common/str_util.h"

namespace conquer {

namespace {

bool MatchesPrefix(const PlanNodeStats& node, std::string_view prefix) {
  return node.description.size() >= prefix.size() &&
         std::string_view(node.description).substr(0, prefix.size()) == prefix;
}

void SumSelfSeconds(const PlanNodeStats& node, std::string_view prefix,
                    double* total) {
  if (MatchesPrefix(node, prefix)) *total += node.self_seconds;
  for (const PlanNodeStats& c : node.children) SumSelfSeconds(c, prefix, total);
}

const PlanNodeStats* FindFirst(const PlanNodeStats& node,
                               std::string_view prefix) {
  if (MatchesPrefix(node, prefix)) return &node;
  for (const PlanNodeStats& c : node.children) {
    if (const PlanNodeStats* hit = FindFirst(c, prefix)) return hit;
  }
  return nullptr;
}

std::string HumanBytes(uint64_t bytes) {
  if (bytes < 1024) return StringPrintf("%lluB", (unsigned long long)bytes);
  double kb = static_cast<double>(bytes) / 1024.0;
  if (kb < 1024.0) return StringPrintf("%.1fKB", kb);
  return StringPrintf("%.1fMB", kb / 1024.0);
}

void RenderNode(const PlanNodeStats& node, int depth, std::string* out) {
  const OperatorMetrics& m = node.metrics;
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.description);
  out->append(StringPrintf(
      "  (rows=%llu nexts=%llu time=%.3fms self=%.3fms",
      (unsigned long long)m.rows_produced, (unsigned long long)m.next_calls,
      m.total_seconds() * 1e3, node.self_seconds * 1e3));
  if (m.est_rows >= 0.0) {
    // Planner estimate next to the actual row count: cost-model
    // misestimates (histogram staleness, bad NDV) show up in one line.
    out->append(StringPrintf(" est_rows=%.0f", m.est_rows));
  }
  if (m.index_probes > 0) {
    out->append(StringPrintf(" index_probes=%llu index_rows=%llu",
                             (unsigned long long)m.index_probes,
                             (unsigned long long)m.index_rows));
  }
  if (m.batches > 0) {
    out->append(StringPrintf(" batches=%llu", (unsigned long long)m.batches));
  }
  if (m.dict_hits > 0) {
    out->append(
        StringPrintf(" dict_hit=%llu", (unsigned long long)m.dict_hits));
  }
  if (m.chunks_skipped > 0) {
    out->append(StringPrintf(" chunks_skipped=%llu",
                             (unsigned long long)m.chunks_skipped));
  }
  if (m.bloom_filtered > 0) {
    out->append(StringPrintf(" bloom_filtered=%llu",
                             (unsigned long long)m.bloom_filtered));
  }
  if (m.chunks_loaded > 0) {
    out->append(StringPrintf(" chunks_loaded=%llu",
                             (unsigned long long)m.chunks_loaded));
  }
  if (m.chunks_evicted > 0) {
    out->append(StringPrintf(" chunks_evicted=%llu",
                             (unsigned long long)m.chunks_evicted));
  }
  if (m.io_read_seconds > 0.0) {
    out->append(StringPrintf(" io_read_ms=%.3f", m.io_read_seconds * 1e3));
  }
  if (m.open_seconds > 0.0 && (m.hash_entries > 0 || m.build_rows > 0 ||
                               m.peak_memory_bytes > 0)) {
    out->append(StringPrintf(" open=%.3fms", m.open_seconds * 1e3));
  }
  if (m.build_rows > 0 || m.probe_rows > 0) {
    out->append(StringPrintf(" build_rows=%llu probe_rows=%llu",
                             (unsigned long long)m.build_rows,
                             (unsigned long long)m.probe_rows));
  }
  if (m.hash_entries > 0) {
    out->append(StringPrintf(" entries=%llu",
                             (unsigned long long)m.hash_entries));
  }
  if (m.peak_memory_bytes > 0) {
    out->append(" mem=" + HumanBytes(m.peak_memory_bytes));
  }
  if (m.parallel_degree > 0) {
    out->append(StringPrintf(" workers=%u", m.parallel_degree));
    out->append(" worker_rows=[");
    for (size_t i = 0; i < m.worker_rows.size(); ++i) {
      if (i > 0) out->append(",");
      out->append(StringPrintf("%llu", (unsigned long long)m.worker_rows[i]));
    }
    out->append("]");
  }
  out->append(")\n");
  for (const PlanNodeStats& c : node.children) {
    RenderNode(c, depth + 1, out);
  }
}

uint64_t SumPeakMemory(const PlanNodeStats& node) {
  uint64_t total = node.metrics.peak_memory_bytes;
  for (const PlanNodeStats& c : node.children) total += SumPeakMemory(c);
  return total;
}

}  // namespace

double QueryStats::OperatorSelfSeconds(std::string_view op_prefix) const {
  double total = 0.0;
  SumSelfSeconds(plan, op_prefix, &total);
  return total;
}

double QueryStats::OperatorShare(std::string_view op_prefix) const {
  if (exec_seconds <= 0.0) return 0.0;
  return std::min(1.0, OperatorSelfSeconds(op_prefix) / exec_seconds);
}

uint64_t QueryStats::OperatorRows(std::string_view op_prefix) const {
  const PlanNodeStats* hit = FindFirst(plan, op_prefix);
  return hit != nullptr ? hit->metrics.rows_produced : 0;
}

std::string QueryStats::ToString() const {
  std::string out = StringPrintf(
      "phases: parse=%.3fms bind=%.3fms plan=%.3fms exec=%.3fms "
      "(total %.3fms)\nrows: %llu  est. peak operator memory: %s\n",
      parse_seconds * 1e3, bind_seconds * 1e3, plan_seconds * 1e3,
      exec_seconds * 1e3, total_seconds() * 1e3,
      (unsigned long long)rows_returned, HumanBytes(peak_memory_bytes).c_str());
  out += RenderAnalyzedPlan(plan);
  return out;
}

PlanNodeStats CollectPlanStats(const Operator& root) {
  PlanNodeStats node;
  node.description = root.Describe();
  node.metrics = root.metrics();
  double children_total = 0.0;
  for (const Operator* child : root.Children()) {
    node.children.push_back(CollectPlanStats(*child));
    children_total += node.children.back().metrics.total_seconds();
  }
  node.self_seconds =
      std::max(0.0, node.metrics.total_seconds() - children_total);
  return node;
}

std::string RenderAnalyzedPlan(const PlanNodeStats& root) {
  std::string out;
  RenderNode(root, 0, &out);
  return out;
}

uint64_t EstimatePlanPeakMemory(const PlanNodeStats& root) {
  return SumPeakMemory(root);
}

}  // namespace conquer
