#include "exec/result_set.h"

#include <algorithm>

#include "common/str_util.h"

namespace conquer {

int ResultSet::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < column_names.size(); ++i) {
    if (EqualsIgnoreCase(column_names[i], name)) return static_cast<int>(i);
  }
  return -1;
}

bool ResultSet::ContainsRow(const Row& row) const {
  for (const Row& r : rows) {
    if (r.size() != row.size()) continue;
    bool eq = true;
    for (size_t i = 0; i < row.size() && eq; ++i) {
      eq = r[i].TotalCompare(row[i]) == 0;
    }
    if (eq) return true;
  }
  return false;
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::vector<size_t> widths(column_names.size());
  for (size_t c = 0; c < column_names.size(); ++c) {
    widths[c] = column_names[c].size();
  }
  size_t shown = std::min(max_rows, rows.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(column_names.size());
    for (size_t c = 0; c < column_names.size(); ++c) {
      cells[r][c] = rows[r][c].ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  auto hline = [&]() {
    std::string s = "+";
    for (size_t w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  std::string out = hline();
  out += "|";
  for (size_t c = 0; c < column_names.size(); ++c) {
    out += " " + column_names[c] +
           std::string(widths[c] - column_names[c].size(), ' ') + " |";
  }
  out += "\n" + hline();
  for (size_t r = 0; r < shown; ++r) {
    out += "|";
    for (size_t c = 0; c < column_names.size(); ++c) {
      out += " " + cells[r][c] + std::string(widths[c] - cells[r][c].size(), ' ') +
             " |";
    }
    out += "\n";
  }
  out += hline();
  if (rows.size() > shown) {
    out += StringPrintf("(%zu of %zu rows shown)\n", shown, rows.size());
  } else {
    out += StringPrintf("(%zu rows)\n", rows.size());
  }
  return out;
}

}  // namespace conquer
