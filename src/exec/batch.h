#ifndef CONQUER_EXEC_BATCH_H_
#define CONQUER_EXEC_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace conquer {

/// \brief A batch of rows flowing through Operator::NextBatch().
///
/// `capacity` is the number of rows the producer should aim for per call
/// (the consumer sets it before pulling; operators propagate it to their
/// children so one batch size governs the whole pipeline). Producers may
/// return fewer rows — the only hard contract is that a `true` return
/// carries at least one row and a `false` return means end of stream.
struct RowBatch {
  static constexpr size_t kDefaultCapacity = 1024;

  size_t capacity = kDefaultCapacity;
  std::vector<Row> rows;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }
  void clear() { rows.clear(); }
};

/// \brief Selection vector: positions (into some row array) that survived
/// the filters applied so far. Filters compact it in place, preserving
/// order, so downstream work touches only passing rows.
using SelVector = std::vector<uint32_t>;

}  // namespace conquer

#endif  // CONQUER_EXEC_BATCH_H_
