#include "exec/eval_batch.h"

#include <algorithm>

#include "common/str_util.h"
#include "exec/eval.h"

namespace conquer {

namespace {

bool IsOrderedComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool CmpMatches(BinaryOp op, int c) {
  switch (op) {
    case BinaryOp::kEq:
      return c == 0;
    case BinaryOp::kNe:
      return c != 0;
    case BinaryOp::kLt:
      return c < 0;
    case BinaryOp::kLe:
      return c <= 0;
    case BinaryOp::kGt:
      return c > 0;
    case BinaryOp::kGe:
      return c >= 0;
    default:
      return false;
  }
}

/// `lit op col` rewritten as `col op' lit`.
BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // kEq / kNe are symmetric
  }
}

/// Scalar fallback: per-row EvalPredicate over the selection.
Status FilterScalar(const Expr& e, const std::vector<Row>& rows,
                    SelVector* sel) {
  size_t out = 0;
  for (uint32_t i : *sel) {
    CONQUER_ASSIGN_OR_RETURN(bool pass, EvalPredicate(e, rows[i]));
    if (pass) (*sel)[out++] = i;
  }
  sel->resize(out);
  return Status::OK();
}

/// Equality of a string column against a dictionary-resolved constant.
/// `target` is the interned storage pointer of the literal, or nullptr when
/// the literal is absent from the column's dictionary (then no interned row
/// can match, only plain strings written after the last analyze could).
void FilterDictEquality(BinaryOp op, int slot, const std::string* target,
                        const std::string& lit_text,
                        const std::vector<Row>& rows, SelVector* sel,
                        uint64_t* dict_hits) {
  const bool want_equal = op == BinaryOp::kEq;
  uint64_t hits = 0;
  size_t out = 0;
  for (uint32_t i : *sel) {
    const Value& v = rows[i][slot];
    if (v.is_null()) continue;
    bool equal;
    if (const std::string* p = v.interned_ptr()) {
      equal = (p == target);
      ++hits;
    } else {
      equal = (v.string_value() == lit_text);
    }
    if (equal == want_equal) (*sel)[out++] = i;
  }
  sel->resize(out);
  *dict_hits += hits;
}

/// Comparison of a column slot against a non-NULL literal.
void FilterColumnConst(BinaryOp op, int slot, const Value& lit,
                       const std::vector<Row>& rows, SelVector* sel) {
  size_t out = 0;
  for (uint32_t i : *sel) {
    const Value& v = rows[i][slot];
    if (v.is_null()) continue;
    if (CmpMatches(op, v.Compare(lit))) (*sel)[out++] = i;
  }
  sel->resize(out);
}

/// Comparison between two column slots of the same row array.
void FilterColumnColumn(BinaryOp op, int lslot, int rslot,
                        const std::vector<Row>& rows, SelVector* sel) {
  size_t out = 0;
  for (uint32_t i : *sel) {
    const Value& l = rows[i][lslot];
    const Value& r = rows[i][rslot];
    if (l.is_null() || r.is_null()) continue;
    if (CmpMatches(op, l.Compare(r))) (*sel)[out++] = i;
  }
  sel->resize(out);
}

/// LIKE of a string column against a constant pattern.
Status FilterColumnLike(int slot, const std::string& pattern,
                        const std::vector<Row>& rows, SelVector* sel) {
  size_t out = 0;
  for (uint32_t i : *sel) {
    const Value& v = rows[i][slot];
    if (v.is_null()) continue;
    if (v.type() != DataType::kString) {
      return Status::TypeError(
          std::string("LIKE requires string operands, got ") +
          DataTypeToString(v.type()) + " and STRING");
    }
    if (LikeMatch(v.string_value(), pattern)) (*sel)[out++] = i;
  }
  sel->resize(out);
  return Status::OK();
}

/// Dispatches a comparison node to its vectorized shape, or falls back.
Status FilterComparison(const Expr& e, const std::vector<Row>& rows,
                        const Table* table, SelVector* sel,
                        uint64_t* dict_hits) {
  const Expr& l = *e.left;
  const Expr& r = *e.right;

  // Normalize to column-on-the-left.
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  BinaryOp op = e.bop;
  if (l.kind == Expr::Kind::kColumnRef && r.kind == Expr::Kind::kLiteral) {
    col = &l;
    lit = &r;
  } else if (l.kind == Expr::Kind::kLiteral &&
             r.kind == Expr::Kind::kColumnRef && e.bop != BinaryOp::kLike) {
    col = &r;
    lit = &l;
    op = FlipComparison(e.bop);
  } else if (l.kind == Expr::Kind::kColumnRef &&
             r.kind == Expr::Kind::kColumnRef &&
             IsOrderedComparison(e.bop)) {
    FilterColumnColumn(e.bop, l.slot, r.slot, rows, sel);
    return Status::OK();
  }
  if (col == nullptr) return FilterScalar(e, rows, sel);

  if (lit->literal.is_null()) {
    // A comparison with NULL is never TRUE.
    sel->clear();
    return Status::OK();
  }
  if (op == BinaryOp::kLike) {
    if (lit->literal.type() != DataType::kString) {
      return FilterScalar(e, rows, sel);  // scalar path raises the TypeError
    }
    return FilterColumnLike(col->slot, lit->literal.string_value(), rows, sel);
  }
  // String (in)equality through the column's dictionary: resolve the
  // constant to an interned pointer once, compare pointers per row.
  if ((op == BinaryOp::kEq || op == BinaryOp::kNe) &&
      lit->literal.type() == DataType::kString && table != nullptr &&
      col->slot >= 0 &&
      static_cast<size_t>(col->slot) < table->schema().num_columns()) {
    if (const StringDictionary* dict = table->dictionary(col->slot)) {
      const std::string& text = lit->literal.string_value();
      const uint32_t code = dict->Find(text);
      const std::string* target =
          code != StringDictionary::kInvalidCode ? dict->StringAt(code)
                                                 : nullptr;
      FilterDictEquality(op, col->slot, target, text, rows, sel, dict_hits);
      return Status::OK();
    }
  }
  FilterColumnConst(op, col->slot, lit->literal, rows, sel);
  return Status::OK();
}

// ---------------------------------------------------------- chunk filtering

/// Normalizes a comparison node to column-on-the-left. Returns false when
/// the node is not a column-vs-literal comparison (col/lit untouched).
bool NormalizeColLit(const Expr& e, const Expr** col, const Expr** lit,
                     BinaryOp* op) {
  const Expr& l = *e.left;
  const Expr& r = *e.right;
  *op = e.bop;
  if (l.kind == Expr::Kind::kColumnRef && r.kind == Expr::Kind::kLiteral) {
    *col = &l;
    *lit = &r;
    return true;
  }
  if (l.kind == Expr::Kind::kLiteral && r.kind == Expr::Kind::kColumnRef &&
      e.bop != BinaryOp::kLike) {
    *col = &r;
    *lit = &l;
    *op = FlipComparison(e.bop);
    return true;
  }
  return false;
}

/// Scalar fallback over a chunk: materializes each candidate row (table-
/// local layout, matching the rebased predicate's slots) and evaluates.
Status ChunkFilterScalar(const Expr& e, const Table& table, size_t chunk_index,
                         SelVector* sel) {
  const size_t base = chunk_index * table.chunk_capacity();
  Row scratch;
  size_t out = 0;
  for (uint32_t i : *sel) {
    table.GetRowInto(base + i, &scratch);
    CONQUER_ASSIGN_OR_RETURN(bool pass, EvalPredicate(e, scratch));
    if (pass) (*sel)[out++] = i;
  }
  sel->resize(out);
  return Status::OK();
}

/// Comparison of an int64-backed column (INT64/DATE/BOOL) against a raw
/// int64 constant.
void ChunkFilterFixed(BinaryOp op, const ColumnVector& cv, int64_t lit,
                      bool stop_after_match, SelVector* sel) {
  const int64_t* data = cv.fixed_data();
  const uint8_t* nulls = cv.null_data();
  size_t out = 0;
  for (size_t k = 0; k < sel->size(); ++k) {
    const uint32_t i = (*sel)[k];
    if (nulls[i]) continue;
    const int64_t v = data[i];
    if (CmpMatches(op, (v > lit) - (v < lit))) {
      (*sel)[out++] = i;
      if (stop_after_match) break;  // all-distinct chunk: no second match
    }
  }
  sel->resize(out);
}

/// Comparison of a double column (or an int column against a double
/// literal) using double semantics, mirroring Value::Compare.
template <typename T>
void ChunkFilterAsDouble(BinaryOp op, const T* data, const uint8_t* nulls,
                         double lit, SelVector* sel) {
  size_t out = 0;
  for (size_t k = 0; k < sel->size(); ++k) {
    const uint32_t i = (*sel)[k];
    if (nulls[i]) continue;
    const double v = static_cast<double>(data[i]);
    if (CmpMatches(op, (v > lit) - (v < lit))) (*sel)[out++] = i;
  }
  sel->resize(out);
}

/// String (in)equality as a dictionary-code compare. `code` may be
/// kInvalidCode (literal absent from the dictionary: nothing can be equal).
void ChunkFilterCodeEquality(BinaryOp op, const ColumnVector& cv,
                             uint32_t code, bool stop_after_match,
                             SelVector* sel, uint64_t* dict_hits) {
  const bool want_equal = op == BinaryOp::kEq;
  const uint32_t* codes = cv.code_data();
  const uint8_t* nulls = cv.null_data();
  uint64_t hits = 0;
  size_t out = 0;
  for (size_t k = 0; k < sel->size(); ++k) {
    const uint32_t i = (*sel)[k];
    if (nulls[i]) continue;
    ++hits;
    if ((codes[i] == code) == want_equal) {
      (*sel)[out++] = i;
      if (want_equal && stop_after_match) break;
    }
  }
  sel->resize(out);
  *dict_hits += hits;
}

/// Ordered string comparison / LIKE: decodes through the dictionary (no
/// copies) and compares bytes.
Status ChunkFilterStringScan(BinaryOp op, const ColumnVector& cv,
                             const StringDictionary& dict,
                             const std::string& text, SelVector* sel) {
  const uint32_t* codes = cv.code_data();
  const uint8_t* nulls = cv.null_data();
  size_t out = 0;
  for (size_t k = 0; k < sel->size(); ++k) {
    const uint32_t i = (*sel)[k];
    if (nulls[i]) continue;
    const std::string& s = *dict.StringAt(codes[i]);
    bool pass;
    if (op == BinaryOp::kLike) {
      pass = LikeMatch(s, text);
    } else {
      const int c = s.compare(text);
      pass = CmpMatches(op, (c > 0) - (c < 0));
    }
    if (pass) (*sel)[out++] = i;
  }
  sel->resize(out);
  return Status::OK();
}

/// Generic column-vs-literal loop (odd type pairings): builds each stored
/// value and defers to Value::Compare, matching FilterColumnConst exactly.
void ChunkFilterGenericConst(BinaryOp op, const ColumnVector& cv,
                             const StringDictionary* dict, const Value& lit,
                             SelVector* sel) {
  size_t out = 0;
  for (size_t k = 0; k < sel->size(); ++k) {
    const uint32_t i = (*sel)[k];
    if (cv.is_null(i)) continue;
    if (CmpMatches(op, cv.GetValue(i, dict).Compare(lit))) (*sel)[out++] = i;
  }
  sel->resize(out);
}

/// Dispatches a comparison over chunk columns to its typed loop.
Status ChunkFilterComparison(const Expr& e, const Table& table,
                             size_t chunk_index, SelVector* sel,
                             uint64_t* dict_hits) {
  const Chunk& chunk = table.chunk(chunk_index);
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  BinaryOp op = e.bop;
  if (!NormalizeColLit(e, &col, &lit, &op)) {
    if (e.left->kind == Expr::Kind::kColumnRef &&
        e.right->kind == Expr::Kind::kColumnRef &&
        IsOrderedComparison(e.bop)) {
      // Column vs column within one table: generic value loop.
      const ColumnVector& lc = chunk.column(e.left->slot);
      const ColumnVector& rc = chunk.column(e.right->slot);
      const StringDictionary* ld = table.dictionary(e.left->slot);
      const StringDictionary* rd = table.dictionary(e.right->slot);
      size_t out = 0;
      for (size_t k = 0; k < sel->size(); ++k) {
        const uint32_t i = (*sel)[k];
        if (lc.is_null(i) || rc.is_null(i)) continue;
        if (CmpMatches(e.bop, lc.GetValue(i, ld).Compare(rc.GetValue(i, rd)))) {
          (*sel)[out++] = i;
        }
      }
      sel->resize(out);
      return Status::OK();
    }
    return ChunkFilterScalar(e, table, chunk_index, sel);
  }
  if (lit->literal.is_null()) {
    // A comparison with NULL is never TRUE.
    sel->clear();
    return Status::OK();
  }
  if (col->slot < 0 ||
      static_cast<size_t>(col->slot) >= chunk.num_columns()) {
    return ChunkFilterScalar(e, table, chunk_index, sel);
  }
  const ColumnVector& cv = chunk.column(col->slot);
  const Value& c = lit->literal;
  const bool all_distinct = chunk.zone(col->slot).all_distinct;

  if (op == BinaryOp::kLike) {
    if (c.type() != DataType::kString) {
      return ChunkFilterScalar(e, table, chunk_index, sel);  // raises TypeError
    }
    if (cv.type() != DataType::kString) {
      return Status::TypeError(
          std::string("LIKE requires string operands, got ") +
          DataTypeToString(cv.type()) + " and STRING");
    }
    return ChunkFilterStringScan(op, cv, *table.dictionary(col->slot),
                                 c.string_value(), sel);
  }

  switch (cv.type()) {
    case DataType::kInt64:
    case DataType::kDate:
      if (c.type() == cv.type()) {
        ChunkFilterFixed(op, cv, c.int_value(),
                         all_distinct && op == BinaryOp::kEq, sel);
        return Status::OK();
      }
      if (cv.type() == DataType::kInt64 && c.type() == DataType::kDouble) {
        ChunkFilterAsDouble(op, cv.fixed_data(), cv.null_data(),
                            c.double_value(), sel);
        return Status::OK();
      }
      break;
    case DataType::kDouble:
      if (c.type() == DataType::kDouble || c.type() == DataType::kInt64) {
        ChunkFilterAsDouble(op, cv.double_data(), cv.null_data(), c.AsDouble(),
                            sel);
        return Status::OK();
      }
      break;
    case DataType::kBool:
      if (c.type() == DataType::kBool) {
        ChunkFilterFixed(op, cv, c.bool_value() ? 1 : 0, false, sel);
        return Status::OK();
      }
      break;
    case DataType::kString:
      if (c.type() == DataType::kString) {
        const StringDictionary& dict = *table.dictionary(col->slot);
        if (op == BinaryOp::kEq || op == BinaryOp::kNe) {
          ChunkFilterCodeEquality(op, cv, dict.Find(c.string_value()),
                                  all_distinct, sel, dict_hits);
          return Status::OK();
        }
        return ChunkFilterStringScan(op, cv, dict, c.string_value(), sel);
      }
      break;
    default:
      break;
  }
  // Mixed/odd type pairing: same semantics as the row-wise constant loop.
  ChunkFilterGenericConst(op, cv, table.dictionary(col->slot), c, sel);
  return Status::OK();
}

/// Mirror of TotalCompare's type classes, restricted to pairs Value::Compare
/// handles without error (zone pruning refuses everything else).
bool ZoneComparable(DataType lit, DataType col) {
  auto numeric = [](DataType t) {
    return t == DataType::kInt64 || t == DataType::kDouble;
  };
  if (numeric(lit) && numeric(col)) return true;
  return lit == col;
}

}  // namespace

bool ZoneMapCanSkip(const Expr& e, const Table& table, const Chunk& chunk) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      // A constant FALSE/NULL predicate rejects every row; other literal
      // types would raise in evaluation, so they never prune.
      return e.literal.is_null() ||
             (e.literal.type() == DataType::kBool && !e.literal.bool_value());
    case Expr::Kind::kBinary:
      break;
    default:
      return false;
  }
  if (e.bop == BinaryOp::kAnd) {
    return ZoneMapCanSkip(*e.left, table, chunk) ||
           ZoneMapCanSkip(*e.right, table, chunk);
  }
  if (e.bop == BinaryOp::kOr) {
    return ZoneMapCanSkip(*e.left, table, chunk) &&
           ZoneMapCanSkip(*e.right, table, chunk);
  }
  if (!IsOrderedComparison(e.bop)) return false;
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  BinaryOp op = e.bop;
  if (!NormalizeColLit(e, &col, &lit, &op)) return false;
  if (col->slot < 0 || static_cast<size_t>(col->slot) >= chunk.num_columns()) {
    return false;
  }
  if (lit->literal.is_null()) return true;  // never TRUE for any row
  const ZoneMap& z = chunk.zone(col->slot);
  // All rows NULL (or the chunk is empty): no row satisfies a comparison.
  if (!z.has_values()) return true;
  if (!ZoneComparable(lit->literal.type(), z.min.type())) return false;
  const int cmin = z.min.Compare(lit->literal);
  const int cmax = z.max.Compare(lit->literal);
  switch (op) {
    case BinaryOp::kEq:
      return cmin > 0 || cmax < 0;  // lit outside [min, max]
    case BinaryOp::kNe:
      return cmin == 0 && cmax == 0;  // every value equals lit
    case BinaryOp::kLt:
      return cmin >= 0;  // min >= lit: nothing below lit
    case BinaryOp::kLe:
      return cmin > 0;
    case BinaryOp::kGt:
      return cmax <= 0;  // max <= lit: nothing above lit
    case BinaryOp::kGe:
      return cmax < 0;
    default:
      return false;
  }
}

Status FilterChunkSelection(const Expr& e, const Table& table,
                            size_t chunk_index, SelVector* sel,
                            uint64_t* dict_hits) {
  if (sel->empty()) return Status::OK();
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      if (e.literal.is_null() || !e.literal.bool_value()) sel->clear();
      return Status::OK();
    case Expr::Kind::kBinary:
      if (e.bop == BinaryOp::kAnd) {
        CONQUER_RETURN_NOT_OK(
            FilterChunkSelection(*e.left, table, chunk_index, sel, dict_hits));
        return FilterChunkSelection(*e.right, table, chunk_index, sel,
                                    dict_hits);
      }
      if (e.bop == BinaryOp::kOr) {
        SelVector left = *sel;
        CONQUER_RETURN_NOT_OK(FilterChunkSelection(*e.left, table, chunk_index,
                                                   &left, dict_hits));
        SelVector right;
        right.reserve(sel->size() - left.size());
        std::set_difference(sel->begin(), sel->end(), left.begin(), left.end(),
                            std::back_inserter(right));
        CONQUER_RETURN_NOT_OK(FilterChunkSelection(*e.right, table, chunk_index,
                                                   &right, dict_hits));
        sel->clear();
        std::merge(left.begin(), left.end(), right.begin(), right.end(),
                   std::back_inserter(*sel));
        return Status::OK();
      }
      if (IsOrderedComparison(e.bop) || e.bop == BinaryOp::kLike) {
        return ChunkFilterComparison(e, table, chunk_index, sel, dict_hits);
      }
      return ChunkFilterScalar(e, table, chunk_index, sel);
    default:
      return ChunkFilterScalar(e, table, chunk_index, sel);
  }
}

Status FilterSelection(const Expr& e, const std::vector<Row>& rows,
                       const Table* table, SelVector* sel,
                       uint64_t* dict_hits) {
  if (sel->empty()) return Status::OK();
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      if (e.literal.is_null() || !e.literal.bool_value()) sel->clear();
      return Status::OK();
    case Expr::Kind::kBinary:
      if (e.bop == BinaryOp::kAnd) {
        // A row passes a conjunction iff both sides are TRUE: filter the
        // survivors of the left conjunct through the right one.
        CONQUER_RETURN_NOT_OK(
            FilterSelection(*e.left, rows, table, sel, dict_hits));
        return FilterSelection(*e.right, rows, table, sel, dict_hits);
      }
      if (e.bop == BinaryOp::kOr) {
        // A row passes a disjunction iff either side is TRUE. Evaluate the
        // left side, give only the rejected rows to the right side, then
        // merge the two (disjoint, ordered) position sets.
        SelVector left = *sel;
        CONQUER_RETURN_NOT_OK(
            FilterSelection(*e.left, rows, table, &left, dict_hits));
        SelVector right;
        right.reserve(sel->size() - left.size());
        std::set_difference(sel->begin(), sel->end(), left.begin(),
                            left.end(), std::back_inserter(right));
        CONQUER_RETURN_NOT_OK(
            FilterSelection(*e.right, rows, table, &right, dict_hits));
        sel->clear();
        std::merge(left.begin(), left.end(), right.begin(), right.end(),
                   std::back_inserter(*sel));
        return Status::OK();
      }
      if (IsOrderedComparison(e.bop) || e.bop == BinaryOp::kLike) {
        return FilterComparison(e, rows, table, sel, dict_hits);
      }
      return FilterScalar(e, rows, sel);
    default:
      return FilterScalar(e, rows, sel);
  }
}

}  // namespace conquer
