#include "exec/eval_batch.h"

#include <algorithm>

#include "common/str_util.h"
#include "exec/eval.h"

namespace conquer {

namespace {

bool IsOrderedComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool CmpMatches(BinaryOp op, int c) {
  switch (op) {
    case BinaryOp::kEq:
      return c == 0;
    case BinaryOp::kNe:
      return c != 0;
    case BinaryOp::kLt:
      return c < 0;
    case BinaryOp::kLe:
      return c <= 0;
    case BinaryOp::kGt:
      return c > 0;
    case BinaryOp::kGe:
      return c >= 0;
    default:
      return false;
  }
}

/// `lit op col` rewritten as `col op' lit`.
BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // kEq / kNe are symmetric
  }
}

/// Scalar fallback: per-row EvalPredicate over the selection.
Status FilterScalar(const Expr& e, const std::vector<Row>& rows,
                    SelVector* sel) {
  size_t out = 0;
  for (uint32_t i : *sel) {
    CONQUER_ASSIGN_OR_RETURN(bool pass, EvalPredicate(e, rows[i]));
    if (pass) (*sel)[out++] = i;
  }
  sel->resize(out);
  return Status::OK();
}

/// Equality of a string column against a dictionary-resolved constant.
/// `target` is the interned storage pointer of the literal, or nullptr when
/// the literal is absent from the column's dictionary (then no interned row
/// can match, only plain strings written after the last analyze could).
void FilterDictEquality(BinaryOp op, int slot, const std::string* target,
                        const std::string& lit_text,
                        const std::vector<Row>& rows, SelVector* sel,
                        uint64_t* dict_hits) {
  const bool want_equal = op == BinaryOp::kEq;
  uint64_t hits = 0;
  size_t out = 0;
  for (uint32_t i : *sel) {
    const Value& v = rows[i][slot];
    if (v.is_null()) continue;
    bool equal;
    if (const std::string* p = v.interned_ptr()) {
      equal = (p == target);
      ++hits;
    } else {
      equal = (v.string_value() == lit_text);
    }
    if (equal == want_equal) (*sel)[out++] = i;
  }
  sel->resize(out);
  *dict_hits += hits;
}

/// Comparison of a column slot against a non-NULL literal.
void FilterColumnConst(BinaryOp op, int slot, const Value& lit,
                       const std::vector<Row>& rows, SelVector* sel) {
  size_t out = 0;
  for (uint32_t i : *sel) {
    const Value& v = rows[i][slot];
    if (v.is_null()) continue;
    if (CmpMatches(op, v.Compare(lit))) (*sel)[out++] = i;
  }
  sel->resize(out);
}

/// Comparison between two column slots of the same row array.
void FilterColumnColumn(BinaryOp op, int lslot, int rslot,
                        const std::vector<Row>& rows, SelVector* sel) {
  size_t out = 0;
  for (uint32_t i : *sel) {
    const Value& l = rows[i][lslot];
    const Value& r = rows[i][rslot];
    if (l.is_null() || r.is_null()) continue;
    if (CmpMatches(op, l.Compare(r))) (*sel)[out++] = i;
  }
  sel->resize(out);
}

/// LIKE of a string column against a constant pattern.
Status FilterColumnLike(int slot, const std::string& pattern,
                        const std::vector<Row>& rows, SelVector* sel) {
  size_t out = 0;
  for (uint32_t i : *sel) {
    const Value& v = rows[i][slot];
    if (v.is_null()) continue;
    if (v.type() != DataType::kString) {
      return Status::TypeError(
          std::string("LIKE requires string operands, got ") +
          DataTypeToString(v.type()) + " and STRING");
    }
    if (LikeMatch(v.string_value(), pattern)) (*sel)[out++] = i;
  }
  sel->resize(out);
  return Status::OK();
}

/// Dispatches a comparison node to its vectorized shape, or falls back.
Status FilterComparison(const Expr& e, const std::vector<Row>& rows,
                        const Table* table, SelVector* sel,
                        uint64_t* dict_hits) {
  const Expr& l = *e.left;
  const Expr& r = *e.right;

  // Normalize to column-on-the-left.
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  BinaryOp op = e.bop;
  if (l.kind == Expr::Kind::kColumnRef && r.kind == Expr::Kind::kLiteral) {
    col = &l;
    lit = &r;
  } else if (l.kind == Expr::Kind::kLiteral &&
             r.kind == Expr::Kind::kColumnRef && e.bop != BinaryOp::kLike) {
    col = &r;
    lit = &l;
    op = FlipComparison(e.bop);
  } else if (l.kind == Expr::Kind::kColumnRef &&
             r.kind == Expr::Kind::kColumnRef &&
             IsOrderedComparison(e.bop)) {
    FilterColumnColumn(e.bop, l.slot, r.slot, rows, sel);
    return Status::OK();
  }
  if (col == nullptr) return FilterScalar(e, rows, sel);

  if (lit->literal.is_null()) {
    // A comparison with NULL is never TRUE.
    sel->clear();
    return Status::OK();
  }
  if (op == BinaryOp::kLike) {
    if (lit->literal.type() != DataType::kString) {
      return FilterScalar(e, rows, sel);  // scalar path raises the TypeError
    }
    return FilterColumnLike(col->slot, lit->literal.string_value(), rows, sel);
  }
  // String (in)equality through the column's dictionary: resolve the
  // constant to an interned pointer once, compare pointers per row.
  if ((op == BinaryOp::kEq || op == BinaryOp::kNe) &&
      lit->literal.type() == DataType::kString && table != nullptr &&
      col->slot >= 0 &&
      static_cast<size_t>(col->slot) < table->schema().num_columns()) {
    if (const StringDictionary* dict = table->dictionary(col->slot)) {
      const std::string& text = lit->literal.string_value();
      const uint32_t code = dict->Find(text);
      const std::string* target =
          code != StringDictionary::kInvalidCode ? dict->StringAt(code)
                                                 : nullptr;
      FilterDictEquality(op, col->slot, target, text, rows, sel, dict_hits);
      return Status::OK();
    }
  }
  FilterColumnConst(op, col->slot, lit->literal, rows, sel);
  return Status::OK();
}

}  // namespace

Status FilterSelection(const Expr& e, const std::vector<Row>& rows,
                       const Table* table, SelVector* sel,
                       uint64_t* dict_hits) {
  if (sel->empty()) return Status::OK();
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      if (e.literal.is_null() || !e.literal.bool_value()) sel->clear();
      return Status::OK();
    case Expr::Kind::kBinary:
      if (e.bop == BinaryOp::kAnd) {
        // A row passes a conjunction iff both sides are TRUE: filter the
        // survivors of the left conjunct through the right one.
        CONQUER_RETURN_NOT_OK(
            FilterSelection(*e.left, rows, table, sel, dict_hits));
        return FilterSelection(*e.right, rows, table, sel, dict_hits);
      }
      if (e.bop == BinaryOp::kOr) {
        // A row passes a disjunction iff either side is TRUE. Evaluate the
        // left side, give only the rejected rows to the right side, then
        // merge the two (disjoint, ordered) position sets.
        SelVector left = *sel;
        CONQUER_RETURN_NOT_OK(
            FilterSelection(*e.left, rows, table, &left, dict_hits));
        SelVector right;
        right.reserve(sel->size() - left.size());
        std::set_difference(sel->begin(), sel->end(), left.begin(),
                            left.end(), std::back_inserter(right));
        CONQUER_RETURN_NOT_OK(
            FilterSelection(*e.right, rows, table, &right, dict_hits));
        sel->clear();
        std::merge(left.begin(), left.end(), right.begin(), right.end(),
                   std::back_inserter(*sel));
        return Status::OK();
      }
      if (IsOrderedComparison(e.bop) || e.bop == BinaryOp::kLike) {
        return FilterComparison(e, rows, table, sel, dict_hits);
      }
      return FilterScalar(e, rows, sel);
    default:
      return FilterScalar(e, rows, sel);
  }
}

}  // namespace conquer
