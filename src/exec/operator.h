#ifndef CONQUER_EXEC_OPERATOR_H_
#define CONQUER_EXEC_OPERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/timer.h"
#include "exec/batch.h"
#include "storage/table.h"

namespace conquer {

/// \brief Execution counters collected by every operator (EXPLAIN ANALYZE).
///
/// Times are wall-clock and *cumulative*: an operator's seconds include time
/// spent inside its children, because children are pulled from within the
/// parent's Next()/Open(). Self time is derived at reporting time by
/// subtracting the children's totals (see PlanNodeStats::self_seconds).
struct OperatorMetrics {
  uint64_t next_calls = 0;     ///< Next() invocations (including the EOS one)
  uint64_t batches = 0;        ///< NextBatch() invocations (incl. the EOS one)
  uint64_t rows_produced = 0;  ///< rows returned from Next()/NextBatch()
  /// Rows decided by an interned-pointer compare against a
  /// dictionary-resolved string constant (vectorized filter fast path).
  uint64_t dict_hits = 0;
  /// Chunks a scan skipped wholesale because the zone maps proved no row
  /// could satisfy the pushed-down predicate.
  uint64_t chunks_skipped = 0;
  /// Rows a scan dropped through a pushed-down join Bloom filter (runtime
  /// semi-join filtering) before wide materialization.
  uint64_t bloom_filtered = 0;
  /// Evicted chunk payloads this operator faulted in from disk (buffer
  /// pool; zero when the whole table is resident). Zone-map-skipped chunks
  /// are checked before pinning, so they never count here.
  uint64_t chunks_loaded = 0;
  /// Chunk payloads the buffer pool evicted to make room for this
  /// operator's faults (budget pressure indicator).
  uint64_t chunks_evicted = 0;
  /// Wall time spent reading and decoding faulted chunk payloads.
  double io_read_seconds = 0.0;
  /// Per-chunk index probes issued (IndexScanOp / IndexNestedLoopJoinOp).
  uint64_t index_probes = 0;
  /// Candidate rows those probes returned, before MVCC visibility and the
  /// residual predicate re-check.
  uint64_t index_rows = 0;
  /// The planner's estimated output rows for this operator, surfaced next
  /// to the actual count in EXPLAIN ANALYZE so cost-model misestimates are
  /// visible in one line. Negative when the planner did not annotate.
  double est_rows = -1.0;
  double open_seconds = 0.0;   ///< time inside Open(); the build phase for
                               ///< blocking operators (hash build, sort)
  double next_seconds = 0.0;   ///< cumulative time across all Next() calls

  // Hash-based operators (HashJoinOp / HashAggregateOp / DistinctOp).
  uint64_t hash_entries = 0;        ///< entries resident in the hash table
  uint64_t peak_memory_bytes = 0;   ///< estimated bytes of materialized state

  // HashJoinOp build-vs-probe split.
  uint64_t build_rows = 0;  ///< rows drained from the build input
  uint64_t probe_rows = 0;  ///< rows drained from the probe input

  // Morsel-driven parallel phases (scan filter, join build, aggregation).
  // Zero parallel_degree means the operator ran its sequential path.
  uint32_t parallel_degree = 0;     ///< worker tasks used by the last Open()
  std::vector<uint64_t> worker_rows;  ///< input rows processed per worker

  /// Total time attributed to this operator (including children).
  double total_seconds() const { return open_seconds + next_seconds; }
};

/// Rough heap footprint of one materialized row (vector + string payloads).
uint64_t EstimateRowBytes(const Row& row);

/// \brief Volcano-style pull operator.
///
/// Operators below the projection produce *wide rows*: a row of
/// `total_slots` values covering every column of every FROM table, where
/// only the slot ranges of tables already scanned/joined are populated
/// (the rest are NULL). This keeps every expression bound once, to a global
/// slot, regardless of join order. Projection/aggregation switch to narrow
/// output rows indexed by select-item position.
///
/// The public Open()/Next()/Close() entry points are non-virtual: they
/// collect OperatorMetrics (row counts, wall time) around the virtual
/// OpenImpl()/NextImpl()/CloseImpl() that subclasses implement.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator (builds hash tables, sorts, resets cursors) and
  /// resets its metrics.
  Status Open() {
    metrics_ = OperatorMetrics{};
    metrics_.est_rows = est_rows_;
    Timer t;
    Status s = OpenImpl();
    metrics_.open_seconds = t.ElapsedSeconds();
    return s;
  }

  /// Produces the next row into *out. Returns false at end of stream.
  Result<bool> Next(Row* out) {
    Timer t;
    Result<bool> r = NextImpl(out);
    metrics_.next_seconds += t.ElapsedSeconds();
    ++metrics_.next_calls;
    if (r.ok() && *r) ++metrics_.rows_produced;
    return r;
  }

  /// Produces up to out->capacity rows into out->rows. Returns false at end
  /// of stream (with out empty); a true return carries at least one row.
  /// A single execution must drive an operator through either Next() or
  /// NextBatch(), not both — the two cursors share state.
  Result<bool> NextBatch(RowBatch* out) {
    Timer t;
    Result<bool> r = NextBatchImpl(out);
    metrics_.next_seconds += t.ElapsedSeconds();
    ++metrics_.batches;
    if (r.ok() && *r) metrics_.rows_produced += out->rows.size();
    return r;
  }

  /// Releases per-execution state. Idempotent. Metrics survive Close so
  /// they can be harvested after execution.
  void Close() { CloseImpl(); }

  /// One-line description of this node (no children).
  virtual std::string Describe() const = 0;

  /// Children, for plan printing.
  virtual std::vector<const Operator*> Children() const { return {}; }

  /// Counters collected since the last Open().
  const OperatorMetrics& metrics() const { return metrics_; }

  /// Planner annotation: estimated output rows, surviving metric resets
  /// across executions (copied into metrics at every Open()).
  void set_est_rows(double rows) { est_rows_ = rows; }
  double est_rows() const { return est_rows_; }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<bool> NextImpl(Row* out) = 0;

  /// Batch production. The default shim loops NextImpl so every operator is
  /// batch-drivable; operators on the hot path override it with genuinely
  /// vectorized implementations.
  virtual Result<bool> NextBatchImpl(RowBatch* out) {
    out->rows.clear();
    Row row;
    while (out->rows.size() < out->capacity) {
      CONQUER_ASSIGN_OR_RETURN(bool more, NextImpl(&row));
      if (!more) break;
      out->rows.push_back(std::move(row));
    }
    return !out->rows.empty();
  }

  virtual void CloseImpl() {}

  /// Subclass access for operator-specific counters (hash sizes, build/probe
  /// splits) not measurable from the outside.
  OperatorMetrics& mutable_metrics() { return metrics_; }

 private:
  OperatorMetrics metrics_;
  double est_rows_ = -1.0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Renders an operator tree as an indented EXPLAIN string.
std::string ExplainPlan(const Operator& root);

}  // namespace conquer

#endif  // CONQUER_EXEC_OPERATOR_H_
