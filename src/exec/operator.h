#ifndef CONQUER_EXEC_OPERATOR_H_
#define CONQUER_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace conquer {

/// \brief Volcano-style pull operator.
///
/// Operators below the projection produce *wide rows*: a row of
/// `total_slots` values covering every column of every FROM table, where
/// only the slot ranges of tables already scanned/joined are populated
/// (the rest are NULL). This keeps every expression bound once, to a global
/// slot, regardless of join order. Projection/aggregation switch to narrow
/// output rows indexed by select-item position.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator (builds hash tables, sorts, resets cursors).
  virtual Status Open() = 0;

  /// Produces the next row into *out. Returns false at end of stream.
  virtual Result<bool> Next(Row* out) = 0;

  /// Releases per-execution state. Idempotent.
  virtual void Close() {}

  /// One-line description of this node (no children).
  virtual std::string Describe() const = 0;

  /// Children, for plan printing.
  virtual std::vector<const Operator*> Children() const { return {}; }
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Renders an operator tree as an indented EXPLAIN string.
std::string ExplainPlan(const Operator& root);

}  // namespace conquer

#endif  // CONQUER_EXEC_OPERATOR_H_
