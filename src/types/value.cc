#include "types/value.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <functional>

#include "common/str_util.h"

namespace conquer {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kDate:
      return "DATE";
  }
  return "?";
}

namespace {
bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}
}  // namespace

bool TypesComparable(DataType a, DataType b) {
  if (a == DataType::kNull || b == DataType::kNull) return true;
  if (a == b) return true;
  return IsNumeric(a) && IsNumeric(b);
}

// Howard Hinnant's civil-days algorithm.
int64_t CivilToDays(int year, int month, int day) {
  int y = year - (month <= 2);
  int era = (y >= 0 ? y : y - 399) / 400;
  unsigned yoe = static_cast<unsigned>(y - era * 400);
  unsigned doy = (153u * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1;
  unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) - 719468;
}

void DaysToCivil(int64_t days, int* year, int* month, int* day) {
  int64_t z = days + 719468;
  int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  unsigned doe = static_cast<unsigned>(z - era * 146097);
  unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  int64_t y = static_cast<int64_t>(yoe) + era * 400;
  unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  unsigned mp = (5 * doy + 2) / 153;
  *day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *year = static_cast<int>(y + (*month <= 2));
}

Result<int64_t> ParseDate(std::string_view iso) {
  int y = 0, m = 0, d = 0;
  char extra = 0;
  std::string s(iso);
  if (std::sscanf(s.c_str(), "%d-%d-%d%c", &y, &m, &d, &extra) != 3 ||
      m < 1 || m > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument("malformed date literal: '" + s + "'");
  }
  return CivilToDays(y, m, d);
}

std::string FormatDate(int64_t days) {
  int y, m, d;
  DaysToCivil(days, &y, &m, &d);
  return StringPrintf("%04d-%02d-%02d", y, m, d);
}

double Value::AsDouble() const {
  switch (type_) {
    case DataType::kBool:
      return bool_value() ? 1.0 : 0.0;
    case DataType::kInt64:
      return static_cast<double>(int_value());
    case DataType::kDouble:
      return double_value();
    case DataType::kDate:
      return static_cast<double>(date_value());
    default:
      assert(false && "AsDouble on non-numeric value");
      return 0.0;
  }
}

bool Value::Equals(const Value& other) const { return Compare(other) == 0; }

int Value::Compare(const Value& other) const {
  assert(!is_null() && !other.is_null());
  if (type_ == other.type_) {
    switch (type_) {
      case DataType::kBool: {
        int a = bool_value(), b = other.bool_value();
        return (a > b) - (a < b);
      }
      case DataType::kInt64:
      case DataType::kDate: {
        int64_t a = int_value(), b = other.int_value();
        return (a > b) - (a < b);
      }
      case DataType::kDouble: {
        double a = double_value(), b = other.double_value();
        return (a > b) - (a < b);
      }
      case DataType::kString: {
        // Interned fast path: same dictionary entry => equal, no byte scan.
        const std::string* a = interned_ptr();
        if (a != nullptr && a == other.interned_ptr()) return 0;
        return string_value().compare(other.string_value()) < 0
                   ? -1
                   : (string_value() == other.string_value() ? 0 : 1);
      }
      default:
        break;
    }
  }
  // Mixed numeric comparison.
  assert(TypesComparable(type_, other.type_));
  double a = AsDouble(), b = other.AsDouble();
  return (a > b) - (a < b);
}

int Value::TotalCompare(const Value& other) const {
  auto cls = [](DataType t) {
    switch (t) {
      case DataType::kNull:
        return 0;
      case DataType::kBool:
        return 1;
      case DataType::kInt64:
      case DataType::kDouble:
        return 2;
      case DataType::kString:
        return 3;
      case DataType::kDate:
        return 4;
    }
    return 5;
  };
  int ca = cls(type_), cb = cls(other.type_);
  if (ca != cb) return (ca > cb) - (ca < cb);
  if (ca == 0) return 0;  // both NULL
  return Compare(other);
}

size_t Value::Hash() const {
  // Hot path of every hash join build/probe and group-by: reach into the
  // variant with unchecked get_if (the type tag already discriminates)
  // instead of the throwing std::get / visitor machinery.
  switch (type_) {
    case DataType::kNull:
      return 0x9e3779b9u;
    case DataType::kBool:
      return *std::get_if<bool>(&rep_) ? 0x1234u : 0x4321u;
    case DataType::kInt64: {
      // Hash the double image so 3 and 3.0 collide (they compare equal).
      double d = static_cast<double>(*std::get_if<int64_t>(&rep_));
      return std::hash<double>()(d) ^ 0x5bd1e995u;
    }
    case DataType::kDouble: {
      double d = *std::get_if<double>(&rep_);
      if (d == 0.0) d = 0.0;  // normalize -0.0
      return std::hash<double>()(d) ^ 0x5bd1e995u;
    }
    case DataType::kString: {
      if (const InternedStr* i = std::get_if<InternedStr>(&rep_)) {
        return i->hash;  // precomputed at intern time
      }
      return std::hash<std::string>()(*std::get_if<std::string>(&rep_));
    }
    case DataType::kDate:
      return std::hash<int64_t>()(*std::get_if<int64_t>(&rep_)) ^ 0x85ebca6bu;
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(int_value());
    case DataType::kDouble: {
      std::string s = StringPrintf("%.6g", double_value());
      return s;
    }
    case DataType::kString:
      return string_value();
    case DataType::kDate:
      return FormatDate(date_value());
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  switch (type_) {
    case DataType::kString: {
      std::string out = "'";
      for (char c : string_value()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
    case DataType::kDate:
      return "DATE '" + FormatDate(date_value()) + "'";
    default:
      return ToString();
  }
}

}  // namespace conquer
