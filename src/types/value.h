#ifndef CONQUER_TYPES_VALUE_H_
#define CONQUER_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace conquer {

/// \brief Column / value type tags of the relational engine.
enum class DataType {
  kNull = 0,  ///< Only as the type of an untyped NULL literal.
  kBool,
  kInt64,
  kDouble,
  kString,
  kDate,  ///< Stored as int64 days since 1970-01-01.
};

/// Name of the type, e.g. "INT64".
const char* DataTypeToString(DataType t);

/// True when values of `a` and `b` can be compared / combined arithmetically.
bool TypesComparable(DataType a, DataType b);

/// Converts a calendar date to days since 1970-01-01 (proleptic Gregorian).
int64_t CivilToDays(int year, int month, int day);

/// Inverse of CivilToDays.
void DaysToCivil(int64_t days, int* year, int* month, int* day);

/// Parses "YYYY-MM-DD" into days since epoch.
Result<int64_t> ParseDate(std::string_view iso);

/// Formats days since epoch as "YYYY-MM-DD".
std::string FormatDate(int64_t days);

/// \brief A dynamically typed SQL value: NULL, BOOL, INT64, DOUBLE, STRING,
/// or DATE.
///
/// Values use SQL comparison semantics at the expression-evaluation layer
/// (NULL comparisons yield unknown); `Value` itself also provides a total
/// order (`TotalCompare`, NULLs first) for sorting and grouping.
///
/// STRING values come in two representations: an owned `std::string`, or an
/// *interned* reference into a `StringDictionary` (a stable `const
/// std::string*` plus the string's precomputed hash). Interned values copy
/// in O(1), hash in O(1), and compare by pointer when both sides are
/// interned in the same dictionary; all accessors (`string_value`,
/// comparison, hashing) behave identically for both representations, and
/// hashes of the two representations of the same text always agree. The
/// referenced dictionary must outlive the value — the executor guarantees
/// this by decoding interned values into owned strings at the
/// projection/result-set boundary (`DecodeInPlace`).
class Value {
 public:
  /// Interned string payload: a pointer to dictionary-owned storage plus
  /// the precomputed `std::hash<std::string>` of the text.
  struct InternedStr {
    const std::string* str;
    size_t hash;
  };

  /// NULL value.
  Value() : type_(DataType::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(DataType::kBool, v); }
  static Value Int(int64_t v) { return Value(DataType::kInt64, v); }
  static Value Double(double v) { return Value(DataType::kDouble, v); }
  static Value String(std::string v) {
    return Value(DataType::kString, std::move(v));
  }
  static Value Date(int64_t days) { return Value(DataType::kDate, days); }
  /// STRING referencing dictionary-owned storage; `hash` must equal
  /// `std::hash<std::string>{}(*s)` (StringDictionary precomputes it).
  static Value Interned(const std::string* s, size_t hash) {
    return Value(DataType::kString, InternedStr{s, hash});
  }

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }

  /// Preconditions: value holds the requested representation.
  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const {
    if (const InternedStr* i = std::get_if<InternedStr>(&rep_)) return *i->str;
    return std::get<std::string>(rep_);
  }
  int64_t date_value() const { return std::get<int64_t>(rep_); }

  /// True for a STRING in the interned (dictionary-backed) representation.
  bool is_interned() const {
    return std::holds_alternative<InternedStr>(rep_);
  }
  /// The interned storage pointer, or nullptr for other representations.
  /// Two values interned in the same dictionary are equal iff the pointers
  /// are — the executor's string-equality fast path.
  const std::string* interned_ptr() const {
    const InternedStr* i = std::get_if<InternedStr>(&rep_);
    return i != nullptr ? i->str : nullptr;
  }

  /// Converts an interned STRING into an owning one (no-op otherwise), so
  /// the value survives its source dictionary.
  void DecodeInPlace() {
    if (const InternedStr* i = std::get_if<InternedStr>(&rep_)) {
      rep_ = *i->str;
    }
  }

  /// Numeric value widened to double (INT64, DOUBLE, DATE, BOOL).
  double AsDouble() const;

  /// SQL equality between non-null comparable values.
  bool Equals(const Value& other) const;

  /// Three-way comparison (-1/0/1) between non-null comparable values.
  /// INT64 and DOUBLE compare numerically across types.
  int Compare(const Value& other) const;

  /// Total order usable for std::sort / grouping: NULL < BOOL < numeric <
  /// STRING < DATE classes, NULLs equal each other.
  int TotalCompare(const Value& other) const;

  /// Hash compatible with TotalCompare equality (numeric 3 and 3.0 collide).
  size_t Hash() const;

  /// Display form: NULL, literals unquoted ("3", "3.5", "abc", "1995-03-15").
  std::string ToString() const;

  /// SQL literal form (strings quoted and escaped, dates as DATE '...').
  std::string ToSqlLiteral() const;

  bool operator==(const Value& other) const { return TotalCompare(other) == 0; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return TotalCompare(other) < 0; }

 private:
  template <typename T>
  Value(DataType t, T v) : type_(t), rep_(std::move(v)) {}

  DataType type_;
  std::variant<std::monostate, bool, int64_t, double, std::string, InternedStr>
      rep_;
};

/// Decodes every interned string in the row into owning storage (the
/// projection/result-set boundary of the batch executor).
inline void DecodeRowInPlace(std::vector<Value>* row) {
  for (Value& v : *row) v.DecodeInPlace();
}

/// Hasher for containers keyed on Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace conquer

#endif  // CONQUER_TYPES_VALUE_H_
