#ifndef CONQUER_FUZZ_SHRINKER_H_
#define CONQUER_FUZZ_SHRINKER_H_

#include <functional>

#include "fuzz/fuzz_case.h"
#include "fuzz/oracles.h"

namespace conquer {
namespace fuzz {

/// \brief Counters describing one shrink run.
struct ShrinkStats {
  size_t attempts = 0;   ///< candidate cases evaluated
  size_t accepted = 0;   ///< candidates that kept the failure alive
  size_t passes = 0;     ///< full drop-tables/rows/predicates sweeps
};

/// Re-runs the oracles over a candidate case and reports its failure kind
/// (kNone when the candidate passes). Supplied by the caller so the shrink
/// reproduces the exact oracle configuration (including any injected bug).
using OracleProbe = std::function<ViolationKind(const FuzzCase&)>;

/// Greedily minimizes a failing case while the failure persists, in passes:
/// drop leaf tables (with their joins, predicates and projections), drop
/// whole clusters, drop single rows (renormalizing the cluster's remaining
/// probabilities), drop selection predicates, drop projections. A shrink
/// candidate is accepted only when the probe still fails — and not with a
/// *new* expectation failure, so structural shrinks cannot degenerate into
/// trivially-rejected queries. Cases loaded from the corpus (raw SQL, no
/// query structure) are returned unchanged.
FuzzCase ShrinkCase(const FuzzCase& failing, const OracleProbe& probe,
                    ShrinkStats* stats = nullptr);

}  // namespace fuzz
}  // namespace conquer

#endif  // CONQUER_FUZZ_SHRINKER_H_
