#include "fuzz/shrinker.h"

#include <algorithm>
#include <map>

#include "common/str_util.h"

namespace conquer {
namespace fuzz {
namespace {

/// Accepts a shrink candidate when the failure persists without flipping
/// into an expectation mismatch the original run did not have.
class Shrinker {
 public:
  Shrinker(const OracleProbe& probe, ViolationKind original, ShrinkStats* stats)
      : probe_(probe), original_kind_(original), stats_(stats) {}

  bool StillFails(const FuzzCase& candidate) {
    if (stats_ != nullptr) stats_->attempts += 1;
    ViolationKind kind = probe_(candidate);
    if (kind == ViolationKind::kNone) return false;
    if (kind == ViolationKind::kExpectation &&
        original_kind_ != ViolationKind::kExpectation) {
      return false;
    }
    if (stats_ != nullptr) stats_->accepted += 1;
    return true;
  }

 private:
  const OracleProbe& probe_;
  ViolationKind original_kind_;
  ShrinkStats* stats_;
};

bool StartsWithTableRef(const std::string& qualified,
                        const std::string& table) {
  return qualified.size() > table.size() + 1 &&
         EqualsIgnoreCase(std::string_view(qualified).substr(0, table.size()),
                          table) &&
         qualified[table.size()] == '.';
}

/// True when no join uses `table` as the referencing (parent) side, i.e. the
/// table is a leaf of the join tree and removable without disconnecting it.
bool IsLeafTable(const FuzzCase& c, const std::string& table) {
  for (const FuzzJoin& j : c.query.joins) {
    if (EqualsIgnoreCase(j.left_table, table)) return false;
  }
  return true;
}

FuzzCase WithoutTable(const FuzzCase& c, size_t table_index) {
  const std::string name = c.tables[table_index].name;
  FuzzCase out = c;
  out.tables.erase(out.tables.begin() + static_cast<ptrdiff_t>(table_index));
  for (FuzzTable& t : out.tables) {
    t.foreign_ids.erase(
        std::remove_if(t.foreign_ids.begin(), t.foreign_ids.end(),
                       [&](const DirtyTableInfo::ForeignId& fk) {
                         return EqualsIgnoreCase(fk.referenced_table, name);
                       }),
        t.foreign_ids.end());
  }
  out.ops.erase(std::remove_if(out.ops.begin(), out.ops.end(),
                               [&](const FuzzOp& op) {
                                 return EqualsIgnoreCase(op.table, name);
                               }),
                out.ops.end());
  out.writes.erase(std::remove_if(out.writes.begin(), out.writes.end(),
                                  [&](const FuzzWrite& w) {
                                    return EqualsIgnoreCase(w.table, name);
                                  }),
                   out.writes.end());
  FuzzQuery& q = out.query;
  q.from.erase(std::remove_if(q.from.begin(), q.from.end(),
                              [&](const std::string& f) {
                                return EqualsIgnoreCase(f, name);
                              }),
               q.from.end());
  q.joins.erase(std::remove_if(q.joins.begin(), q.joins.end(),
                               [&](const FuzzJoin& j) {
                                 return EqualsIgnoreCase(j.left_table, name) ||
                                        EqualsIgnoreCase(j.right_table, name);
                               }),
                q.joins.end());
  q.filters.erase(std::remove_if(q.filters.begin(), q.filters.end(),
                                 [&](const FuzzPredicate& p) {
                                   return EqualsIgnoreCase(p.table, name);
                                 }),
                  q.filters.end());
  q.select.erase(std::remove_if(q.select.begin(), q.select.end(),
                                [&](const std::string& s) {
                                  return StartsWithTableRef(s, name);
                                }),
                 q.select.end());
  return out;
}

/// Rescales the cluster's remaining probabilities so they sum to ~1 again
/// after a member row was dropped.
void RenormalizeCluster(FuzzTable* t, const std::string& id_value) {
  auto id_col = t->FindColumn(t->id_column);
  auto prob_col = t->FindColumn(t->prob_column);
  if (!id_col.has_value() || !prob_col.has_value()) return;
  double sum = 0;
  for (const Row& row : t->rows) {
    if (!row[*id_col].is_null() && row[*id_col].ToString() == id_value &&
        !row[*prob_col].is_null()) {
      sum += row[*prob_col].AsDouble();
    }
  }
  if (sum <= 0) return;
  for (Row& row : t->rows) {
    if (!row[*id_col].is_null() && row[*id_col].ToString() == id_value &&
        !row[*prob_col].is_null()) {
      row[*prob_col] = Value::Double(row[*prob_col].AsDouble() / sum);
    }
  }
}

/// Groups the table's row indices by identifier value, in first-row order.
std::vector<std::pair<std::string, std::vector<size_t>>> Clusters(
    const FuzzTable& t) {
  std::vector<std::pair<std::string, std::vector<size_t>>> out;
  auto id_col = t.FindColumn(t.id_column);
  if (!id_col.has_value()) return out;
  std::map<std::string, size_t> index;
  for (size_t i = 0; i < t.rows.size(); ++i) {
    const Value& id = t.rows[i][*id_col];
    std::string key = id.is_null() ? "<null>" : id.ToString();
    auto [it, inserted] = index.try_emplace(key, out.size());
    if (inserted) out.push_back({key, {}});
    out[it->second].second.push_back(i);
  }
  return out;
}

bool ShrinkTables(Shrinker* s, FuzzCase* c) {
  bool progress = false;
  // Never remove the root (the first FROM entry): the rewritable class
  // requires its identifier in SELECT.
  for (size_t i = c->tables.size(); i-- > 0;) {
    if (c->query.from.empty() ||
        EqualsIgnoreCase(c->tables[i].name, c->query.from[0])) {
      continue;
    }
    if (!IsLeafTable(*c, c->tables[i].name)) continue;
    FuzzCase candidate = WithoutTable(*c, i);
    if (s->StillFails(candidate)) {
      *c = std::move(candidate);
      progress = true;
    }
  }
  return progress;
}

bool ShrinkRows(Shrinker* s, FuzzCase* c) {
  bool progress = false;
  for (size_t ti = 0; ti < c->tables.size(); ++ti) {
    // Whole clusters first: the biggest cut that keeps sums consistent.
    bool removed = true;
    while (removed) {
      removed = false;
      for (const auto& [id, rows] : Clusters(c->tables[ti])) {
        FuzzCase candidate = *c;
        FuzzTable& t = candidate.tables[ti];
        std::vector<size_t> sorted = rows;
        std::sort(sorted.rbegin(), sorted.rend());
        for (size_t r : sorted) {
          t.rows.erase(t.rows.begin() + static_cast<ptrdiff_t>(r));
        }
        if (!candidate.ops.empty()) candidate.ops.clear();
        if (s->StillFails(candidate)) {
          *c = std::move(candidate);
          progress = removed = true;
          break;
        }
      }
    }
    // Then single rows, renormalizing the surviving cluster members.
    removed = true;
    while (removed) {
      removed = false;
      for (const auto& [id, rows] : Clusters(c->tables[ti])) {
        if (rows.size() < 2) continue;
        for (size_t r : rows) {
          FuzzCase candidate = *c;
          FuzzTable& t = candidate.tables[ti];
          t.rows.erase(t.rows.begin() + static_cast<ptrdiff_t>(r));
          RenormalizeCluster(&t, id);
          if (!candidate.ops.empty()) candidate.ops.clear();
          if (s->StillFails(candidate)) {
            *c = std::move(candidate);
            progress = removed = true;
            break;
          }
        }
        if (removed) break;
      }
    }
  }
  return progress;
}

/// Drops mutation-stage write steps one at a time (suffix first, so a
/// failing step keeps its prefix of preceding writes).
bool ShrinkWrites(Shrinker* s, FuzzCase* c) {
  bool progress = false;
  for (size_t i = c->writes.size(); i-- > 0;) {
    FuzzCase candidate = *c;
    candidate.writes.erase(candidate.writes.begin() +
                           static_cast<ptrdiff_t>(i));
    if (s->StillFails(candidate)) {
      *c = std::move(candidate);
      progress = true;
    }
  }
  return progress;
}

bool ShrinkPredicates(Shrinker* s, FuzzCase* c) {
  bool progress = false;
  for (size_t i = c->query.filters.size(); i-- > 0;) {
    FuzzCase candidate = *c;
    candidate.query.filters.erase(candidate.query.filters.begin() +
                                  static_cast<ptrdiff_t>(i));
    if (s->StillFails(candidate)) {
      *c = std::move(candidate);
      progress = true;
    }
  }
  return progress;
}

bool ShrinkSelect(Shrinker* s, FuzzCase* c) {
  bool progress = false;
  if (c->query.from.empty()) return false;
  const std::string root_id =
      c->query.from[0] + "." +
      (c->FindTable(c->query.from[0]) != nullptr
           ? c->FindTable(c->query.from[0])->id_column
           : "id");
  for (size_t i = c->query.select.size(); i-- > 0;) {
    if (EqualsIgnoreCase(c->query.select[i], root_id)) continue;
    FuzzCase candidate = *c;
    candidate.query.select.erase(candidate.query.select.begin() +
                                 static_cast<ptrdiff_t>(i));
    if (s->StillFails(candidate)) {
      *c = std::move(candidate);
      progress = true;
    }
  }
  return progress;
}

}  // namespace

FuzzCase ShrinkCase(const FuzzCase& failing, const OracleProbe& probe,
                    ShrinkStats* stats) {
  if (!failing.query.raw_sql.empty()) return failing;  // corpus case: opaque
  ViolationKind original = probe(failing);
  if (original == ViolationKind::kNone) return failing;

  Shrinker shrinker(probe, original, stats);
  FuzzCase c = failing;
  const size_t kMaxPasses = 8;
  for (size_t pass = 0; pass < kMaxPasses; ++pass) {
    if (stats != nullptr) stats->passes += 1;
    bool progress = false;
    progress |= ShrinkWrites(&shrinker, &c);
    progress |= ShrinkTables(&shrinker, &c);
    progress |= ShrinkRows(&shrinker, &c);
    progress |= ShrinkPredicates(&shrinker, &c);
    progress |= ShrinkSelect(&shrinker, &c);
    if (!progress) break;
  }
  return c;
}

}  // namespace fuzz
}  // namespace conquer
