#include "fuzz/fuzzer.h"

#include <chrono>
#include <cstdio>

#include "common/str_util.h"
#include "fuzz/corpus.h"
#include "fuzz/shrinker.h"

namespace conquer {
namespace fuzz {
namespace {

/// Per-iteration case seed: a Weyl sequence over the golden ratio keeps the
/// seeds decorrelated while staying reproducible from the campaign seed.
uint64_t CaseSeed(uint64_t campaign_seed, size_t iteration) {
  return campaign_seed +
         0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(iteration + 1);
}

/// Shrink probe: a candidate "fails" with the kind its oracle run reports;
/// infrastructure errors (unbuildable candidate) count as not failing, so
/// the shrinker discards such candidates instead of chasing them.
ViolationKind Probe(const FuzzCase& c, const OracleOptions& oracle) {
  auto report = RunOracles(c, oracle);
  if (!report.ok()) return ViolationKind::kNone;
  return report->kind;
}

}  // namespace

Result<OracleReport> ReplayCase(const FuzzCase& c,
                                const OracleOptions& oracle) {
  return RunOracles(c, oracle);
}

Result<FuzzSummary> RunFuzz(const FuzzOptions& options) {
  FuzzSummary summary;
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < options.iterations; ++i) {
    const uint64_t seed = CaseSeed(options.seed, i);
    FuzzCase c = GenerateCase(seed, options.config);
    summary.cases += 1;
    if (options.dump_cases) {
      std::fputs(SerializeCase(c, StringPrintf("iteration %zu", i)).c_str(),
                 stdout);
      std::fputs("\n", stdout);
    }
    if (c.query.expect_rewritable) {
      summary.rewritable += 1;
    } else {
      summary.mutants += 1;
    }

    CONQUER_ASSIGN_OR_RETURN(OracleReport report,
                             RunOracles(c, options.oracle));
    if (report.naive_checked) {
      summary.naive_checked += 1;
    } else if (c.query.expect_rewritable) {
      summary.naive_skipped += 1;
    }

    if (options.verbose) {
      std::fprintf(stderr,
                   "[fuzz] case %zu/%zu seed=%llu tables=%zu rows=%zu "
                   "answers=%zu %s%s\n",
                   i + 1, options.iterations,
                   static_cast<unsigned long long>(seed), c.tables.size(),
                   c.TotalRows(), report.num_answers,
                   c.query.expect_rewritable ? "rewritable" : "mutant",
                   report.ok() ? "" : " VIOLATION");
    }
    if (report.ok()) continue;

    summary.violations += 1;
    std::string message = StringPrintf(
        "iteration %zu (case seed %llu): [%s] %s", i,
        static_cast<unsigned long long>(seed),
        ViolationKindToString(report.kind), report.violation.c_str());

    ShrinkStats stats;
    FuzzCase shrunk = ShrinkCase(
        c, [&](const FuzzCase& cand) { return Probe(cand, options.oracle); },
        &stats);
    message += StringPrintf(
        "; shrunk to %zu tables / %zu rows (%zu attempts, %zu passes)",
        shrunk.tables.size(), shrunk.TotalRows(), stats.attempts,
        stats.passes);

    if (!options.out_dir.empty()) {
      std::string path = options.out_dir +
                         StringPrintf("/fuzz_%llu_%zu.case",
                                      static_cast<unsigned long long>(
                                          options.seed),
                                      i);
      std::string note =
          "reproducer shrunk from " + message + "\nreplay: conquer_fuzz "
          "--replay=" + path;
      Status saved = SaveCaseFile(shrunk, path, note);
      if (saved.ok()) {
        summary.reproducer_paths.push_back(path);
        message += "; saved " + path;
      } else {
        message += "; FAILED to save reproducer: " + saved.ToString();
      }
    }
    summary.violation_messages.push_back(message);
    std::fprintf(stderr, "[fuzz] VIOLATION %s\n", message.c_str());
    if (options.fail_fast) break;
  }

  if (options.verbose || summary.violations > 0) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    std::fprintf(stderr,
                 "[fuzz] %zu cases (%zu rewritable, %zu mutants) in %lld ms; "
                 "naive-checked %zu, skipped %zu; %zu violations\n",
                 summary.cases, summary.rewritable, summary.mutants,
                 static_cast<long long>(elapsed), summary.naive_checked,
                 summary.naive_skipped, summary.violations);
  }
  return summary;
}

}  // namespace fuzz
}  // namespace conquer
