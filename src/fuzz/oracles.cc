#include "fuzz/oracles.h"

#include <cmath>
#include <cstring>

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/str_util.h"
#include "core/clean_engine.h"
#include "core/naive_eval.h"
#include "prob/assigner.h"
#include "prob/dcf.h"
#include "prob/incremental.h"
#include "storage/table.h"

namespace conquer {
namespace fuzz {
namespace {

uint64_t Bits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].TotalCompare(b[i]) != 0) return false;
  }
  return true;
}

void ApplyInjection(BugInjection inject, size_t threads, CleanAnswerSet* set) {
  switch (inject) {
    case BugInjection::kNone:
      break;
    case BugInjection::kProbBias:
      for (CleanAnswer& a : set->answers) {
        a.probability *= 1.0 + 1.0 / 1024.0;
      }
      break;
    case BugInjection::kDropAnswer:
      if (!set->answers.empty()) set->answers.pop_back();
      break;
    case BugInjection::kParallelSkew:
      if (threads > 1) {
        for (CleanAnswer& a : set->answers) {
          a.probability += 1.0 / (1 << 30);
        }
      }
      break;
    case BugInjection::kRenormSkip:
      // Injected into the prob layer itself (SetIncrementalFaultInjection),
      // not into the answer sets.
      break;
  }
}

/// "" when `run` reproduces `baseline` exactly (same rows, same order,
/// bit-identical probabilities); otherwise a description of the divergence.
std::string DiffAnswerSets(const CleanAnswerSet& baseline,
                           const CleanAnswerSet& run,
                           const std::string& label) {
  if (run.answers.size() != baseline.answers.size()) {
    return StringPrintf("answer count %zu != baseline %zu %s",
                        run.answers.size(), baseline.answers.size(),
                        label.c_str());
  }
  for (size_t i = 0; i < run.answers.size(); ++i) {
    if (!RowsEqual(run.answers[i].row, baseline.answers[i].row)) {
      return StringPrintf("answer row %zu differs from baseline %s", i,
                          label.c_str());
    }
    if (Bits(run.answers[i].probability) !=
        Bits(baseline.answers[i].probability)) {
      return StringPrintf(
          "probability of answer %zu not bit-identical to baseline "
          "(%.17g vs %.17g) %s",
          i, run.answers[i].probability, baseline.answers[i].probability,
          label.c_str());
    }
  }
  return "";
}

struct OracleRun {
  const FuzzCase& c;
  const OracleOptions& opts;
  BuiltDb built;
  std::string sql;
  OracleReport report;

  void Fail(ViolationKind kind, std::string message) {
    if (!report.ok()) return;  // keep the first violation
    report.kind = kind;
    report.violation = std::move(message);
  }

  /// One engine run under the current database configuration, with the
  /// injected bug applied. Engine errors become kEngineError violations.
  bool Query(const CleanAnswerEngine& engine, size_t threads,
             const std::string& label, CleanAnswerSet* out) {
    built.db->SetThreads(threads);
    auto run = engine.Query(sql);
    if (!run.ok()) {
      Fail(ViolationKind::kEngineError,
           "engine error " + label + ": " + run.status().ToString());
      return false;
    }
    *out = std::move(run).value();
    ApplyInjection(opts.inject, threads, out);
    return true;
  }

  void RestoreChunkCapacities() {
    for (const FuzzTable& t : c.tables) {
      auto table = built.db->GetTable(t.name);
      if (!table.ok()) continue;
      size_t capacity =
          t.chunk_capacity > 0 ? t.chunk_capacity : Table::kDefaultChunkCapacity;
      (*table)->Rechunk(capacity);
    }
  }
};

void CheckInputIntegrity(OracleRun* r) {
  for (const ClusterSum& cluster : ClusterProbabilitySums(r->c)) {
    if (std::abs(cluster.sum - 1.0) > 1e-9) {
      r->Fail(ViolationKind::kInputIntegrity,
              StringPrintf(
                  "cluster %s.%s probabilities sum to %.17g, expected ~1 "
                  "(%zu rows)",
                  cluster.table.c_str(), cluster.id.c_str(), cluster.sum,
                  cluster.rows));
      return;
    }
  }
}

/// The reject path: a deliberately non-rewritable mutant must be diagnosed
/// by the checker with a reason, and refused by Query.
void CheckRejectPath(OracleRun* r, const CleanAnswerEngine& engine) {
  auto check = engine.Check(r->sql);
  if (!check.ok()) {
    r->Fail(ViolationKind::kExpectation,
            "checker errored on mutant '" + r->c.query.mutation +
                "': " + check.status().ToString());
    return;
  }
  if (check->rewritable) {
    r->Fail(ViolationKind::kExpectation,
            "mutant '" + r->c.query.mutation +
                "' was accepted as rewritable: " + r->sql);
    return;
  }
  if (check->reason.empty()) {
    r->Fail(ViolationKind::kExpectation,
            "mutant '" + r->c.query.mutation + "' rejected without a reason");
    return;
  }
  auto run = engine.Query(r->sql);
  if (run.ok()) {
    r->Fail(ViolationKind::kExpectation,
            "Query executed a non-rewritable mutant '" + r->c.query.mutation +
                "' instead of rejecting it");
  }
}

void CheckProbabilityRange(OracleRun* r, const CleanAnswerSet& answers,
                           const std::string& label, double tolerance) {
  for (size_t i = 0; i < answers.answers.size(); ++i) {
    double p = answers.answers[i].probability;
    if (!(p >= -tolerance && p <= 1.0 + tolerance) || std::isnan(p)) {
      r->Fail(ViolationKind::kRange,
              StringPrintf("%s probability of answer %zu is %.17g, outside "
                           "[0, 1]",
                           label.c_str(), i, p));
      return;
    }
  }
}

void CheckAgainstNaive(OracleRun* r, const CleanAnswerSet& baseline) {
  NaiveCandidateEvaluator naive(r->built.db.get(), &r->built.dirty);
  auto slow = naive.Evaluate(r->sql, r->opts.max_candidates);
  if (!slow.ok()) {
    if (slow.status().code() == StatusCode::kResourceExhausted) {
      return;  // candidate cap hit; sweeps still gate the run
    }
    r->Fail(ViolationKind::kEngineError,
            "naive oracle error: " + slow.status().ToString());
    return;
  }
  r->report.naive_checked = true;
  CheckProbabilityRange(r, *slow, "naive", r->opts.naive_tolerance);
  if (slow->answers.size() != baseline.answers.size()) {
    r->Fail(ViolationKind::kNaiveMismatch,
            StringPrintf("engine returned %zu answers, naive oracle %zu",
                         baseline.answers.size(), slow->answers.size()));
    return;
  }
  for (const CleanAnswer& a : slow->answers) {
    double engine_p = baseline.ProbabilityOf(a.row);
    if (std::abs(engine_p - a.probability) > r->opts.naive_tolerance) {
      r->Fail(ViolationKind::kNaiveMismatch,
              StringPrintf("engine probability %.17g != naive %.17g for an "
                           "answer of: %s",
                           engine_p, a.probability, r->sql.c_str()));
      return;
    }
  }
}

void RunConfigSweeps(OracleRun* r, const CleanAnswerEngine& engine,
                     const CleanAnswerSet& baseline) {
  ExecContext* ctx = r->built.db->mutable_exec_context();
  const size_t default_batch = ctx->batch_size;
  CleanAnswerSet run;

  for (size_t threads : r->opts.thread_counts) {
    for (size_t batch : r->opts.batch_sizes) {
      ctx->batch_size = batch;
      std::string label = StringPrintf("(threads=%zu, batch_size=%zu)",
                                       threads, batch);
      if (!r->Query(engine, threads, label, &run)) return;
      std::string diff = DiffAnswerSets(baseline, run, label);
      if (!diff.empty()) {
        r->Fail(ViolationKind::kConfigMismatch, diff);
        return;
      }
    }
  }
  ctx->batch_size = default_batch;

  for (size_t capacity : r->opts.chunk_capacities) {
    for (const FuzzTable& t : r->c.tables) {
      auto table = r->built.db->GetTable(t.name);
      if (table.ok()) (*table)->Rechunk(capacity);
    }
    for (size_t threads : r->opts.thread_counts) {
      std::string label = StringPrintf("(chunk_capacity=%zu, threads=%zu)",
                                       capacity, threads);
      if (!r->Query(engine, threads, label, &run)) return;
      std::string diff = DiffAnswerSets(baseline, run, label);
      if (!diff.empty()) {
        r->Fail(ViolationKind::kConfigMismatch, diff);
        return;
      }
    }
  }
  r->RestoreChunkCapacities();

  if (r->opts.sweep_pruning_flags) {
    struct FlagConfig {
      bool zone, bloom, index;
      const char* label;
    };
    // Index access is swept like the pruning flags: IndexScan and the index
    // nested-loop join return candidate supersets re-verified against the
    // full predicate in scan row order, so disabling them must be invisible
    // down to the last probability bit.
    static const FlagConfig kFlagConfigs[] = {
        {false, true, true, "(zone_pruning=off)"},
        {true, false, true, "(runtime_filters=off)"},
        {true, true, false, "(index_scan=off)"},
        {false, false, false,
         "(zone_pruning=off, runtime_filters=off, index_scan=off)"},
    };
    for (const FlagConfig& fc : kFlagConfigs) {
      ctx->enable_zone_pruning = fc.zone;
      ctx->enable_runtime_filters = fc.bloom;
      ctx->enable_index_scan = fc.index;
      for (size_t threads : r->opts.thread_counts) {
        std::string label =
            StringPrintf("%s threads=%zu", fc.label, threads);
        if (!r->Query(engine, threads, label, &run)) break;
        std::string diff = DiffAnswerSets(baseline, run, label);
        if (!diff.empty()) {
          r->Fail(ViolationKind::kConfigMismatch, diff);
          break;
        }
      }
      if (!r->report.ok()) break;
    }
    ctx->enable_zone_pruning = true;
    ctx->enable_runtime_filters = true;
    ctx->enable_index_scan = true;
  }
}

/// Visible per-cluster state of one dirty table: member row positions and
/// stored probabilities, keyed by the identifier's string form, in
/// first-visible-row order (std::map for deterministic iteration).
struct ClusterState {
  std::vector<size_t> rows;
  std::vector<double> probs;
};

Result<std::map<std::string, ClusterState>> VisibleClusters(
    const Table& table, const FuzzTable& ft, uint64_t snapshot) {
  CONQUER_ASSIGN_OR_RETURN(size_t id_col,
                           table.schema().GetColumnIndex(ft.id_column));
  CONQUER_ASSIGN_OR_RETURN(size_t prob_col,
                           table.schema().GetColumnIndex(ft.prob_column));
  std::map<std::string, ClusterState> out;
  RowCursor cursor(&table);
  for (size_t pos : table.VisibleRowPositions(snapshot)) {
    cursor.Touch(pos);
    Value id = table.ValueAt(pos, id_col);
    Value prob = table.ValueAt(pos, prob_col);
    ClusterState& cluster = out[id.is_null() ? "<null>" : id.ToString()];
    cluster.rows.push_back(pos);
    cluster.probs.push_back(prob.is_null() ? 0.0 : prob.AsDouble());
  }
  return out;
}

/// Independent recomputation of one cluster's Figure-5 probabilities from
/// the batch assigner's primitives (not the incremental path under test).
Result<std::vector<double>> RecomputeClusterProbs(
    const Table& table, const FuzzTable& ft, const std::vector<size_t>& rows,
    double total_weight) {
  std::vector<size_t> attrs;
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    const std::string& name = table.schema().column(c).name;
    if (EqualsIgnoreCase(name, ft.id_column) ||
        EqualsIgnoreCase(name, ft.prob_column)) {
      continue;
    }
    attrs.push_back(c);
  }
  if (rows.size() == 1) return std::vector<double>{1.0};
  ValueSpace space;
  CONQUER_ASSIGN_OR_RETURN(
      Dcf rep, BuildClusterRepresentative(table, rows, attrs, &space));
  double s_sum = 0.0;
  std::vector<double> dist(rows.size());
  RowCursor cursor(&table);
  for (size_t i = 0; i < rows.size(); ++i) {
    cursor.Touch(rows[i]);
    std::vector<uint32_t> indices;
    for (size_t a = 0; a < attrs.size(); ++a) {
      indices.push_back(space.Intern(a, table.ValueAt(rows[i], attrs[a])));
    }
    dist[i] = InformationLossDistance(Dcf::ForTuple(indices), rep,
                                      total_weight);
    s_sum += dist[i];
  }
  std::vector<double> probs(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    probs[i] = s_sum <= 1e-12
                   ? 1.0 / static_cast<double>(rows.size())
                   : (1.0 - dist[i] / s_sum) /
                         static_cast<double>(rows.size() - 1);
  }
  return probs;
}

/// The mutation stage: replays the case's writes one by one through the
/// engine write path, checking after every step that incremental
/// maintenance kept the visible state coherent and the live query still
/// matches the naive oracle on the extracted snapshot.
void RunMutationStage(OracleRun* r, const CleanAnswerEngine& engine) {
  // Per-table cluster state before any write, for the untouched-cluster
  // bitwise-stability check.
  std::map<std::string, std::map<std::string, ClusterState>> prev;
  for (const FuzzTable& t : r->c.tables) {
    if (t.prob_column.empty()) continue;
    auto table = r->built.db->GetTable(t.name);
    if (!table.ok()) continue;
    auto clusters =
        VisibleClusters(**table, t, (*table)->committed_version());
    if (clusters.ok()) prev[ToLower(t.name)] = std::move(*clusters);
  }

  for (size_t step = 0; step < r->c.writes.size(); ++step) {
    const FuzzWrite& w = r->c.writes[step];
    std::vector<Value> touched_ids;
    auto written = r->built.db->ExecuteWrite(w.sql, &touched_ids);
    if (!written.ok()) {
      r->Fail(ViolationKind::kEngineError,
              StringPrintf("write step %zu failed: %s sql: %s", step,
                           written.status().ToString().c_str(),
                           w.sql.c_str()));
      return;
    }
    std::unordered_set<std::string> touched;
    for (const Value& id : touched_ids) {
      touched.insert(id.is_null() ? "<null>" : id.ToString());
    }

    const FuzzTable* written_table = r->c.FindTable(w.table);
    if (written_table != nullptr && !written_table->prob_column.empty()) {
      auto table = r->built.db->GetTable(w.table);
      if (!table.ok()) return;
      const uint64_t snapshot = (*table)->committed_version();
      auto clusters = VisibleClusters(**table, *written_table, snapshot);
      if (!clusters.ok()) {
        r->Fail(ViolationKind::kEngineError,
                "mutation oracle: " + clusters.status().ToString());
        return;
      }
      const double total_weight = static_cast<double>(
          (*table)->VisibleRowPositions(snapshot).size());
      std::map<std::string, ClusterState>& before = prev[ToLower(w.table)];
      for (const auto& [id, cluster] : *clusters) {
        // (a) Sums to ~1 no matter what the write did.
        double sum = 0.0;
        for (double p : cluster.probs) sum += p;
        if (std::abs(sum - 1.0) > 1e-9) {
          r->Fail(ViolationKind::kMaintenance,
                  StringPrintf("after write step %zu (%s), cluster %s.%s "
                               "probabilities sum to %.17g",
                               step, w.sql.c_str(), w.table.c_str(),
                               id.c_str(), sum));
          return;
        }
        if (touched.count(id) > 0) {
          // (b) Touched clusters match an independent recomputation.
          auto expected = RecomputeClusterProbs(**table, *written_table,
                                                cluster.rows, total_weight);
          if (!expected.ok()) {
            r->Fail(ViolationKind::kEngineError,
                    "mutation oracle: " + expected.status().ToString());
            return;
          }
          for (size_t i = 0; i < cluster.probs.size(); ++i) {
            if (std::abs(cluster.probs[i] - (*expected)[i]) > 1e-9) {
              r->Fail(
                  ViolationKind::kMaintenance,
                  StringPrintf(
                      "after write step %zu (%s), touched cluster %s.%s "
                      "member %zu has probability %.17g, recomputation "
                      "says %.17g",
                      step, w.sql.c_str(), w.table.c_str(), id.c_str(), i,
                      cluster.probs[i], (*expected)[i]));
              return;
            }
          }
        } else {
          // (c) Untouched clusters bitwise unchanged.
          auto it = before.find(id);
          if (it != before.end() &&
              (it->second.probs.size() != cluster.probs.size() ||
               !std::equal(it->second.probs.begin(), it->second.probs.end(),
                           cluster.probs.begin(),
                           [](double a, double b) {
                             return Bits(a) == Bits(b);
                           }))) {
            r->Fail(ViolationKind::kMaintenance,
                    StringPrintf("after write step %zu (%s), untouched "
                                 "cluster %s.%s changed",
                                 step, w.sql.c_str(), w.table.c_str(),
                                 id.c_str()));
            return;
          }
        }
      }
      before = std::move(*clusters);
    }

    // (d) The live query: bit-identical across thread counts, and agreeing
    // with the naive oracle evaluated on the extracted visible snapshot.
    CleanAnswerSet baseline;
    std::string label = StringPrintf("(write step %zu, threads=1)", step);
    if (!r->Query(engine, 1, label, &baseline)) return;
    CheckProbabilityRange(r, baseline, label, 0.0);
    if (!r->report.ok()) return;
    CleanAnswerSet run;
    for (size_t threads : r->opts.thread_counts) {
      if (threads == 1) continue;
      label = StringPrintf("(write step %zu, threads=%zu)", step, threads);
      if (!r->Query(engine, threads, label, &run)) return;
      std::string diff = DiffAnswerSets(baseline, run, label);
      if (!diff.empty()) {
        r->Fail(ViolationKind::kConfigMismatch, diff);
        return;
      }
    }
    // Index on/off after every write: appends fed the tail chunk's index
    // slice and updates invalidated touched slices, so this is where lazy
    // per-chunk rebuild must still reproduce the scan bit-for-bit.
    ExecContext* ctx = r->built.db->mutable_exec_context();
    ctx->enable_index_scan = false;
    label = StringPrintf("(write step %zu, index_scan=off)", step);
    bool index_off_ok = r->Query(engine, 1, label, &run);
    ctx->enable_index_scan = true;
    if (!index_off_ok) return;
    std::string index_diff = DiffAnswerSets(baseline, run, label);
    if (!index_diff.empty()) {
      r->Fail(ViolationKind::kConfigMismatch, index_diff);
      return;
    }
    auto snap = ExtractVisibleSnapshot(r->c, *r->built.db);
    if (!snap.ok()) {
      r->Fail(ViolationKind::kEngineError,
              "snapshot extraction: " + snap.status().ToString());
      return;
    }
    auto snap_built = BuildFuzzDatabase(*snap);
    if (!snap_built.ok()) {
      r->Fail(ViolationKind::kEngineError,
              "snapshot rebuild: " + snap_built.status().ToString());
      return;
    }
    NaiveCandidateEvaluator naive(snap_built->db.get(), &snap_built->dirty);
    auto slow = naive.Evaluate(r->sql, r->opts.max_candidates);
    if (!slow.ok()) {
      if (slow.status().code() == StatusCode::kResourceExhausted) continue;
      r->Fail(ViolationKind::kEngineError,
              "naive oracle error after write step " + std::to_string(step) +
                  ": " + slow.status().ToString());
      return;
    }
    if (slow->answers.size() != baseline.answers.size()) {
      r->Fail(ViolationKind::kNaiveMismatch,
              StringPrintf("after write step %zu (%s), engine returned %zu "
                           "answers, naive oracle %zu",
                           step, w.sql.c_str(), baseline.answers.size(),
                           slow->answers.size()));
      return;
    }
    for (const CleanAnswer& a : slow->answers) {
      double engine_p = baseline.ProbabilityOf(a.row);
      if (std::abs(engine_p - a.probability) > r->opts.naive_tolerance) {
        r->Fail(ViolationKind::kNaiveMismatch,
                StringPrintf("after write step %zu (%s), engine probability "
                             "%.17g != naive %.17g",
                             step, w.sql.c_str(), engine_p, a.probability));
        return;
      }
    }
  }
}

}  // namespace

Result<BugInjection> ParseBugInjection(std::string_view name) {
  std::string lower = ToLower(name);
  if (lower == "none" || lower.empty()) return BugInjection::kNone;
  if (lower == "prob_bias") return BugInjection::kProbBias;
  if (lower == "drop_answer") return BugInjection::kDropAnswer;
  if (lower == "parallel_skew") return BugInjection::kParallelSkew;
  if (lower == "renorm_skip") return BugInjection::kRenormSkip;
  return Status::InvalidArgument(
      "unknown bug injection '" + std::string(name) +
      "' (expected none, prob_bias, drop_answer, parallel_skew or "
      "renorm_skip)");
}

const char* ViolationKindToString(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kNone:
      return "none";
    case ViolationKind::kExpectation:
      return "expectation";
    case ViolationKind::kInputIntegrity:
      return "input-integrity";
    case ViolationKind::kEngineError:
      return "engine-error";
    case ViolationKind::kRange:
      return "probability-range";
    case ViolationKind::kNaiveMismatch:
      return "naive-mismatch";
    case ViolationKind::kConfigMismatch:
      return "config-mismatch";
    case ViolationKind::kMaintenance:
      return "maintenance";
  }
  return "unknown";
}

Result<OracleReport> RunOracles(const FuzzCase& c, const OracleOptions& opts) {
  CONQUER_ASSIGN_OR_RETURN(BuiltDb built, BuildFuzzDatabase(c));
  OracleRun r{c, opts, std::move(built), c.query.Sql(), {}};

  CheckInputIntegrity(&r);
  if (!r.report.ok()) return r.report;

  CleanAnswerEngine engine(r.built.db.get(), &r.built.dirty);

  if (!c.query.expect_rewritable) {
    CheckRejectPath(&r, engine);
    return r.report;
  }

  auto check = engine.Check(r.sql);
  if (!check.ok()) {
    r.Fail(ViolationKind::kExpectation,
           "checker error on expected-rewritable query: " +
               check.status().ToString() + " sql: " + r.sql);
    return r.report;
  }
  if (!check->rewritable) {
    r.Fail(ViolationKind::kExpectation,
           "expected-rewritable query rejected (" + check->reason +
               "): " + r.sql);
    return r.report;
  }

  // Sequential baseline under default execution settings.
  CleanAnswerSet baseline;
  if (!r.Query(engine, 1, "(baseline)", &baseline)) return r.report;
  r.report.num_answers = baseline.answers.size();
  CheckProbabilityRange(&r, baseline, "engine", 0.0);
  if (!r.report.ok()) return r.report;

  CheckAgainstNaive(&r, baseline);
  if (!r.report.ok()) return r.report;

  RunConfigSweeps(&r, engine, baseline);
  if (r.report.ok() && !c.writes.empty()) {
    if (opts.inject == BugInjection::kRenormSkip) {
      SetIncrementalFaultInjection(IncrementalFault::kSkipFirstCluster);
    }
    RunMutationStage(&r, engine);
    SetIncrementalFaultInjection(IncrementalFault::kNone);
  }
  r.built.db->SetThreads(1);
  return r.report;
}

}  // namespace fuzz
}  // namespace conquer
