#include "fuzz/oracles.h"

#include <cmath>
#include <cstring>

#include "common/str_util.h"
#include "core/clean_engine.h"
#include "core/naive_eval.h"
#include "storage/table.h"

namespace conquer {
namespace fuzz {
namespace {

uint64_t Bits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].TotalCompare(b[i]) != 0) return false;
  }
  return true;
}

void ApplyInjection(BugInjection inject, size_t threads, CleanAnswerSet* set) {
  switch (inject) {
    case BugInjection::kNone:
      break;
    case BugInjection::kProbBias:
      for (CleanAnswer& a : set->answers) {
        a.probability *= 1.0 + 1.0 / 1024.0;
      }
      break;
    case BugInjection::kDropAnswer:
      if (!set->answers.empty()) set->answers.pop_back();
      break;
    case BugInjection::kParallelSkew:
      if (threads > 1) {
        for (CleanAnswer& a : set->answers) {
          a.probability += 1.0 / (1 << 30);
        }
      }
      break;
  }
}

/// "" when `run` reproduces `baseline` exactly (same rows, same order,
/// bit-identical probabilities); otherwise a description of the divergence.
std::string DiffAnswerSets(const CleanAnswerSet& baseline,
                           const CleanAnswerSet& run,
                           const std::string& label) {
  if (run.answers.size() != baseline.answers.size()) {
    return StringPrintf("answer count %zu != baseline %zu %s",
                        run.answers.size(), baseline.answers.size(),
                        label.c_str());
  }
  for (size_t i = 0; i < run.answers.size(); ++i) {
    if (!RowsEqual(run.answers[i].row, baseline.answers[i].row)) {
      return StringPrintf("answer row %zu differs from baseline %s", i,
                          label.c_str());
    }
    if (Bits(run.answers[i].probability) !=
        Bits(baseline.answers[i].probability)) {
      return StringPrintf(
          "probability of answer %zu not bit-identical to baseline "
          "(%.17g vs %.17g) %s",
          i, run.answers[i].probability, baseline.answers[i].probability,
          label.c_str());
    }
  }
  return "";
}

struct OracleRun {
  const FuzzCase& c;
  const OracleOptions& opts;
  BuiltDb built;
  std::string sql;
  OracleReport report;

  void Fail(ViolationKind kind, std::string message) {
    if (!report.ok()) return;  // keep the first violation
    report.kind = kind;
    report.violation = std::move(message);
  }

  /// One engine run under the current database configuration, with the
  /// injected bug applied. Engine errors become kEngineError violations.
  bool Query(const CleanAnswerEngine& engine, size_t threads,
             const std::string& label, CleanAnswerSet* out) {
    built.db->SetThreads(threads);
    auto run = engine.Query(sql);
    if (!run.ok()) {
      Fail(ViolationKind::kEngineError,
           "engine error " + label + ": " + run.status().ToString());
      return false;
    }
    *out = std::move(run).value();
    ApplyInjection(opts.inject, threads, out);
    return true;
  }

  void RestoreChunkCapacities() {
    for (const FuzzTable& t : c.tables) {
      auto table = built.db->GetTable(t.name);
      if (!table.ok()) continue;
      size_t capacity =
          t.chunk_capacity > 0 ? t.chunk_capacity : Table::kDefaultChunkCapacity;
      (*table)->Rechunk(capacity);
    }
  }
};

void CheckInputIntegrity(OracleRun* r) {
  for (const ClusterSum& cluster : ClusterProbabilitySums(r->c)) {
    if (std::abs(cluster.sum - 1.0) > 1e-9) {
      r->Fail(ViolationKind::kInputIntegrity,
              StringPrintf(
                  "cluster %s.%s probabilities sum to %.17g, expected ~1 "
                  "(%zu rows)",
                  cluster.table.c_str(), cluster.id.c_str(), cluster.sum,
                  cluster.rows));
      return;
    }
  }
}

/// The reject path: a deliberately non-rewritable mutant must be diagnosed
/// by the checker with a reason, and refused by Query.
void CheckRejectPath(OracleRun* r, const CleanAnswerEngine& engine) {
  auto check = engine.Check(r->sql);
  if (!check.ok()) {
    r->Fail(ViolationKind::kExpectation,
            "checker errored on mutant '" + r->c.query.mutation +
                "': " + check.status().ToString());
    return;
  }
  if (check->rewritable) {
    r->Fail(ViolationKind::kExpectation,
            "mutant '" + r->c.query.mutation +
                "' was accepted as rewritable: " + r->sql);
    return;
  }
  if (check->reason.empty()) {
    r->Fail(ViolationKind::kExpectation,
            "mutant '" + r->c.query.mutation + "' rejected without a reason");
    return;
  }
  auto run = engine.Query(r->sql);
  if (run.ok()) {
    r->Fail(ViolationKind::kExpectation,
            "Query executed a non-rewritable mutant '" + r->c.query.mutation +
                "' instead of rejecting it");
  }
}

void CheckProbabilityRange(OracleRun* r, const CleanAnswerSet& answers,
                           const std::string& label, double tolerance) {
  for (size_t i = 0; i < answers.answers.size(); ++i) {
    double p = answers.answers[i].probability;
    if (!(p >= -tolerance && p <= 1.0 + tolerance) || std::isnan(p)) {
      r->Fail(ViolationKind::kRange,
              StringPrintf("%s probability of answer %zu is %.17g, outside "
                           "[0, 1]",
                           label.c_str(), i, p));
      return;
    }
  }
}

void CheckAgainstNaive(OracleRun* r, const CleanAnswerSet& baseline) {
  NaiveCandidateEvaluator naive(r->built.db.get(), &r->built.dirty);
  auto slow = naive.Evaluate(r->sql, r->opts.max_candidates);
  if (!slow.ok()) {
    if (slow.status().code() == StatusCode::kResourceExhausted) {
      return;  // candidate cap hit; sweeps still gate the run
    }
    r->Fail(ViolationKind::kEngineError,
            "naive oracle error: " + slow.status().ToString());
    return;
  }
  r->report.naive_checked = true;
  CheckProbabilityRange(r, *slow, "naive", r->opts.naive_tolerance);
  if (slow->answers.size() != baseline.answers.size()) {
    r->Fail(ViolationKind::kNaiveMismatch,
            StringPrintf("engine returned %zu answers, naive oracle %zu",
                         baseline.answers.size(), slow->answers.size()));
    return;
  }
  for (const CleanAnswer& a : slow->answers) {
    double engine_p = baseline.ProbabilityOf(a.row);
    if (std::abs(engine_p - a.probability) > r->opts.naive_tolerance) {
      r->Fail(ViolationKind::kNaiveMismatch,
              StringPrintf("engine probability %.17g != naive %.17g for an "
                           "answer of: %s",
                           engine_p, a.probability, r->sql.c_str()));
      return;
    }
  }
}

void RunConfigSweeps(OracleRun* r, const CleanAnswerEngine& engine,
                     const CleanAnswerSet& baseline) {
  ExecContext* ctx = r->built.db->mutable_exec_context();
  const size_t default_batch = ctx->batch_size;
  CleanAnswerSet run;

  for (size_t threads : r->opts.thread_counts) {
    for (size_t batch : r->opts.batch_sizes) {
      ctx->batch_size = batch;
      std::string label = StringPrintf("(threads=%zu, batch_size=%zu)",
                                       threads, batch);
      if (!r->Query(engine, threads, label, &run)) return;
      std::string diff = DiffAnswerSets(baseline, run, label);
      if (!diff.empty()) {
        r->Fail(ViolationKind::kConfigMismatch, diff);
        return;
      }
    }
  }
  ctx->batch_size = default_batch;

  for (size_t capacity : r->opts.chunk_capacities) {
    for (const FuzzTable& t : r->c.tables) {
      auto table = r->built.db->GetTable(t.name);
      if (table.ok()) (*table)->Rechunk(capacity);
    }
    for (size_t threads : r->opts.thread_counts) {
      std::string label = StringPrintf("(chunk_capacity=%zu, threads=%zu)",
                                       capacity, threads);
      if (!r->Query(engine, threads, label, &run)) return;
      std::string diff = DiffAnswerSets(baseline, run, label);
      if (!diff.empty()) {
        r->Fail(ViolationKind::kConfigMismatch, diff);
        return;
      }
    }
  }
  r->RestoreChunkCapacities();

  if (r->opts.sweep_pruning_flags) {
    struct FlagConfig {
      bool zone, bloom;
      const char* label;
    };
    static const FlagConfig kFlagConfigs[] = {
        {false, true, "(zone_pruning=off)"},
        {true, false, "(runtime_filters=off)"},
        {false, false, "(zone_pruning=off, runtime_filters=off)"},
    };
    for (const FlagConfig& fc : kFlagConfigs) {
      ctx->enable_zone_pruning = fc.zone;
      ctx->enable_runtime_filters = fc.bloom;
      for (size_t threads : r->opts.thread_counts) {
        std::string label =
            StringPrintf("%s threads=%zu", fc.label, threads);
        if (!r->Query(engine, threads, label, &run)) break;
        std::string diff = DiffAnswerSets(baseline, run, label);
        if (!diff.empty()) {
          r->Fail(ViolationKind::kConfigMismatch, diff);
          break;
        }
      }
      if (!r->report.ok()) break;
    }
    ctx->enable_zone_pruning = true;
    ctx->enable_runtime_filters = true;
  }
}

}  // namespace

Result<BugInjection> ParseBugInjection(std::string_view name) {
  std::string lower = ToLower(name);
  if (lower == "none" || lower.empty()) return BugInjection::kNone;
  if (lower == "prob_bias") return BugInjection::kProbBias;
  if (lower == "drop_answer") return BugInjection::kDropAnswer;
  if (lower == "parallel_skew") return BugInjection::kParallelSkew;
  return Status::InvalidArgument(
      "unknown bug injection '" + std::string(name) +
      "' (expected none, prob_bias, drop_answer or parallel_skew)");
}

const char* ViolationKindToString(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kNone:
      return "none";
    case ViolationKind::kExpectation:
      return "expectation";
    case ViolationKind::kInputIntegrity:
      return "input-integrity";
    case ViolationKind::kEngineError:
      return "engine-error";
    case ViolationKind::kRange:
      return "probability-range";
    case ViolationKind::kNaiveMismatch:
      return "naive-mismatch";
    case ViolationKind::kConfigMismatch:
      return "config-mismatch";
  }
  return "unknown";
}

Result<OracleReport> RunOracles(const FuzzCase& c, const OracleOptions& opts) {
  CONQUER_ASSIGN_OR_RETURN(BuiltDb built, BuildFuzzDatabase(c));
  OracleRun r{c, opts, std::move(built), c.query.Sql(), {}};

  CheckInputIntegrity(&r);
  if (!r.report.ok()) return r.report;

  CleanAnswerEngine engine(r.built.db.get(), &r.built.dirty);

  if (!c.query.expect_rewritable) {
    CheckRejectPath(&r, engine);
    return r.report;
  }

  auto check = engine.Check(r.sql);
  if (!check.ok()) {
    r.Fail(ViolationKind::kExpectation,
           "checker error on expected-rewritable query: " +
               check.status().ToString() + " sql: " + r.sql);
    return r.report;
  }
  if (!check->rewritable) {
    r.Fail(ViolationKind::kExpectation,
           "expected-rewritable query rejected (" + check->reason +
               "): " + r.sql);
    return r.report;
  }

  // Sequential baseline under default execution settings.
  CleanAnswerSet baseline;
  if (!r.Query(engine, 1, "(baseline)", &baseline)) return r.report;
  r.report.num_answers = baseline.answers.size();
  CheckProbabilityRange(&r, baseline, "engine", 0.0);
  if (!r.report.ok()) return r.report;

  CheckAgainstNaive(&r, baseline);
  if (!r.report.ok()) return r.report;

  RunConfigSweeps(&r, engine, baseline);
  r.built.db->SetThreads(1);
  return r.report;
}

}  // namespace fuzz
}  // namespace conquer
