#include "fuzz/fuzz_case.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <map>

#include "common/str_util.h"
#include "engine/persist.h"
#include "prob/incremental.h"
#include "storage/table.h"

namespace conquer {
namespace fuzz {

TableSchema FuzzTable::Schema() const {
  std::vector<ColumnDef> cols;
  cols.reserve(columns.size());
  for (const FuzzColumn& c : columns) cols.push_back({c.name, c.type});
  return TableSchema(name, std::move(cols));
}

DirtyTableInfo FuzzTable::DirtyInfo() const {
  DirtyTableInfo info;
  info.table_name = name;
  info.id_column = id_column;
  info.prob_column = prob_column;
  info.foreign_ids = foreign_ids;
  return info;
}

std::optional<size_t> FuzzTable::FindColumn(std::string_view n) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, n)) return i;
  }
  return std::nullopt;
}

std::string FuzzQuery::Sql() const {
  if (!raw_sql.empty()) return raw_sql;
  std::string sql = "select " + Join(select, ", ") + " from " + Join(from, ", ");
  std::vector<std::string> where;
  for (const FuzzJoin& j : joins) {
    where.push_back(j.left_table + "." + j.left_column + " = " +
                    j.right_table + "." + j.right_column);
  }
  for (const FuzzPredicate& p : filters) {
    where.push_back(p.table + "." + p.column + " " + p.op + " " +
                    p.literal.ToSqlLiteral());
  }
  if (!where.empty()) sql += " where " + Join(where, " and ");
  return sql;
}

size_t FuzzCase::TotalRows() const {
  size_t n = 0;
  for (const FuzzTable& t : tables) n += t.rows.size();
  return n;
}

const FuzzTable* FuzzCase::FindTable(std::string_view name) const {
  for (const FuzzTable& t : tables) {
    if (EqualsIgnoreCase(t.name, name)) return &t;
  }
  return nullptr;
}

Result<BuiltDb> BuildFuzzDatabase(const FuzzCase& c) {
  BuiltDb out;
  out.db = std::make_unique<Database>();
  if (c.memory_budget > 0) out.db->SetMemoryBudget(c.memory_budget);
  for (const FuzzTable& t : c.tables) {
    CONQUER_RETURN_NOT_OK(out.db->CreateTable(t.Schema()));
    CONQUER_RETURN_NOT_OK(out.dirty.AddTable(t.DirtyInfo()));
    if (t.chunk_capacity > 0) {
      CONQUER_ASSIGN_OR_RETURN(Table * table, out.db->GetTable(t.name));
      table->Rechunk(t.chunk_capacity);
    }
    CONQUER_RETURN_NOT_OK(out.db->InsertMany(t.name, t.rows));
  }
  if (c.save_load_roundtrip) {
    // Save/load through the binary segment format, then continue against
    // the reloaded database — the oracles now also check persistence
    // fidelity (stamps, dictionaries, probabilities) for free.
    static std::atomic<uint64_t> counter{0};
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        StringPrintf("conquer-fuzz-rt-%d-%llu", static_cast<int>(getpid()),
                     (unsigned long long)counter.fetch_add(1));
    CONQUER_RETURN_NOT_OK(SaveDatabase(*out.db, dir.string(), &out.dirty));
    auto reloaded = LoadDatabase(dir.string());
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    CONQUER_RETURN_NOT_OK(reloaded.status());
    out.db = std::move(*reloaded);
    if (c.memory_budget > 0) out.db->SetMemoryBudget(c.memory_budget);
  }
  // After every AddTable: the hooks hold pointers into the dirty schema's
  // table vector, which must not reallocate any more.
  CONQUER_RETURN_NOT_OK(
      InstallIncrementalMaintenance(out.db.get(), &out.dirty));
  for (const FuzzOp& op : c.ops) {
    CONQUER_ASSIGN_OR_RETURN(Table * table, out.db->GetTable(op.table));
    switch (op.kind) {
      case FuzzOp::Kind::kRechunk:
        if (op.capacity == 0) {
          return Status::InvalidArgument("rechunk op with capacity 0");
        }
        table->Rechunk(op.capacity);
        break;
      case FuzzOp::Kind::kSetValue: {
        if (op.row >= table->num_rows()) {
          return Status::OutOfRange(
              StringPrintf("setvalue row %zu out of range for table '%s'",
                           op.row, op.table.c_str()));
        }
        CONQUER_ASSIGN_OR_RETURN(size_t col,
                                 table->schema().GetColumnIndex(op.column));
        table->SetValue(op.row, col, op.value);
        break;
      }
      case FuzzOp::Kind::kCreateIndex:
        CONQUER_RETURN_NOT_OK(out.db->CreateIndex(op.table, op.column));
        break;
    }
  }
  return out;
}

Result<FuzzCase> ExtractVisibleSnapshot(const FuzzCase& c,
                                        const Database& db) {
  FuzzCase snap = c;
  snap.ops.clear();
  snap.writes.clear();
  for (FuzzTable& t : snap.tables) {
    CONQUER_ASSIGN_OR_RETURN(Table * table, db.GetTable(t.name));
    const uint64_t snapshot = table->committed_version();
    t.rows.clear();
    Row row;
    for (size_t pos : table->VisibleRowPositions(snapshot)) {
      table->GetRowInto(pos, &row);
      DecodeRowInPlace(&row);
      t.rows.push_back(row);
    }
  }
  return snap;
}

std::vector<ClusterSum> ClusterProbabilitySums(const FuzzCase& c) {
  std::vector<ClusterSum> out;
  for (const FuzzTable& t : c.tables) {
    if (t.prob_column.empty()) continue;
    auto id_col = t.FindColumn(t.id_column);
    auto prob_col = t.FindColumn(t.prob_column);
    if (!id_col.has_value() || !prob_col.has_value()) continue;
    std::map<std::string, size_t> index;
    for (const Row& row : t.rows) {
      const Value& id = row[*id_col];
      const Value& prob = row[*prob_col];
      std::string key = id.is_null() ? "<null>" : id.ToString();
      auto [it, inserted] = index.try_emplace(key, out.size());
      if (inserted) out.push_back({t.name, key, 0.0, 0});
      ClusterSum& sum = out[it->second];
      if (!prob.is_null()) sum.sum += prob.AsDouble();
      sum.rows += 1;
    }
  }
  return out;
}

}  // namespace fuzz
}  // namespace conquer
