#include "fuzz/corpus.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/str_util.h"
#include "engine/csv.h"

namespace conquer {
namespace fuzz {
namespace {

CsvOptions CorpusCsvOptions() {
  CsvOptions options;
  options.null_literal = kCorpusNull;
  return options;
}

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kString:
      return "string";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kDate:
      return "date";
    case DataType::kBool:
      return "bool";
    case DataType::kNull:
      break;
  }
  return "string";
}

Result<DataType> DataTypeFromName(std::string_view name) {
  std::string lower = ToLower(name);
  if (lower == "string") return DataType::kString;
  if (lower == "int64") return DataType::kInt64;
  if (lower == "double") return DataType::kDouble;
  if (lower == "date") return DataType::kDate;
  if (lower == "bool") return DataType::kBool;
  return Status::InvalidArgument("unknown column type '" + lower + "'");
}

std::string EncodeField(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      return kCorpusNull;
    case DataType::kBool:
      return v.bool_value() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(v.int_value());
    case DataType::kDouble:
      return StringPrintf("%.17g", v.double_value());
    case DataType::kString:
      return v.string_value();
    case DataType::kDate:
      return FormatDate(v.date_value());
  }
  return kCorpusNull;
}

Result<Value> DecodeField(const std::string& field, DataType type) {
  if (field == kCorpusNull) return Value::Null();
  switch (type) {
    case DataType::kString:
      return Value::String(field);
    case DataType::kInt64: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad int64 field '" + field + "'");
      }
      return Value::Int(v);
    }
    case DataType::kDouble: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double field '" + field + "'");
      }
      return Value::Double(v);
    }
    case DataType::kDate: {
      CONQUER_ASSIGN_OR_RETURN(int64_t days, ParseDate(field));
      return Value::Date(days);
    }
    case DataType::kBool:
      if (EqualsIgnoreCase(field, "true")) return Value::Bool(true);
      if (EqualsIgnoreCase(field, "false")) return Value::Bool(false);
      return Status::InvalidArgument("bad bool field '" + field + "'");
    case DataType::kNull:
      break;
  }
  return Status::InvalidArgument("field with unsupported type");
}

size_t CountLines(const std::string& text) {
  size_t n = 0;
  for (char ch : text) {
    if (ch == '\n') ++n;
  }
  return n;
}

std::string TableCsv(const FuzzTable& t) {
  CsvOptions options = CorpusCsvOptions();
  std::vector<std::string> header;
  for (const FuzzColumn& col : t.columns) header.push_back(col.name);
  std::string csv = FormatCsvLine(header, options) + "\n";
  std::vector<std::string> fields(t.columns.size());
  for (const Row& row : t.rows) {
    for (size_t i = 0; i < row.size() && i < fields.size(); ++i) {
      fields[i] = EncodeField(row[i]);
    }
    csv += FormatCsvLine(fields, options) + "\n";
  }
  return csv;
}

/// Loads the CSV payload through the engine's strict RFC 4180 reader, so
/// corpus replays keep exercising the multi-line quoted-record path.
Result<std::vector<Row>> RowsFromCsv(const FuzzTable& t,
                                     const std::string& csv) {
  Database staging;
  CONQUER_RETURN_NOT_OK(staging.CreateTable(t.Schema()));
  auto loaded = LoadCsvString(&staging, t.name, csv, CorpusCsvOptions());
  if (!loaded.ok()) {
    return Status::InvalidArgument("table '" + t.name + "' csv payload: " +
                                   loaded.status().ToString());
  }
  CONQUER_ASSIGN_OR_RETURN(Table * table, staging.GetTable(t.name));
  std::vector<Row> rows = table->rows();
  for (Row& row : rows) DecodeRowInPlace(&row);
  return rows;
}

std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string token;
  while (in >> token) out.push_back(token);
  return out;
}

}  // namespace

std::string SerializeCase(const FuzzCase& c, const std::string& note) {
  std::string out;
  for (const std::string& line : Split(note, '\n')) {
    if (!line.empty()) out += "# " + line + "\n";
  }
  out += std::string(kCorpusHeader) + "\n";
  out += "seed " + std::to_string(c.seed) + "\n";
  if (c.memory_budget > 0) {
    out += "budget " + std::to_string(c.memory_budget) + "\n";
  }
  if (c.save_load_roundtrip) out += "roundtrip\n";
  if (!c.query.mutation.empty()) {
    out += "# mutation: " + c.query.mutation + "\n";
  }
  for (const FuzzTable& t : c.tables) {
    out += "table " + t.name + "\n";
    for (const FuzzColumn& col : t.columns) {
      out += "column " + col.name + " " + DataTypeName(col.type) + "\n";
    }
    out += "dirty " + t.id_column + " " +
           (t.prob_column.empty() ? "-" : t.prob_column) + "\n";
    for (const auto& fk : t.foreign_ids) {
      out += "fk " + fk.column + " " + fk.referenced_table + "\n";
    }
    if (t.chunk_capacity > 0) {
      out += "chunk " + std::to_string(t.chunk_capacity) + "\n";
    }
    std::string csv = TableCsv(t);
    out += "csv " + std::to_string(CountLines(csv)) + "\n";
    out += csv;
    out += "endtable\n";
  }
  CsvOptions options = CorpusCsvOptions();
  for (const FuzzOp& op : c.ops) {
    if (op.kind == FuzzOp::Kind::kRechunk) {
      out += "op rechunk " + op.table + " " + std::to_string(op.capacity) +
             "\n";
    } else if (op.kind == FuzzOp::Kind::kCreateIndex) {
      out += "op create_index " + op.table + " " + op.column + "\n";
    } else {
      out += "op setvalue " + op.table + " " + std::to_string(op.row) + " " +
             op.column + " " + FormatCsvLine({EncodeField(op.value)}, options) +
             "\n";
    }
  }
  for (const FuzzWrite& w : c.writes) {
    out += "write " + w.table + " " + w.sql + "\n";
  }
  out += "query " + c.query.Sql() + "\n";
  out += std::string("expect ") +
         (c.query.expect_rewritable ? "rewritable" : "reject") + "\n";
  return out;
}

Result<FuzzCase> ParseCaseText(const std::string& text) {
  std::vector<std::string> lines = Split(text, '\n');
  for (std::string& line : lines) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
  }

  FuzzCase c;
  bool saw_header = false;
  bool saw_query = false;
  FuzzTable* open_table = nullptr;
  std::string open_csv;

  size_t i = 0;
  auto fail = [&](const std::string& msg) {
    return Status::InvalidArgument(
        StringPrintf("corpus line %zu: %s", i + 1, msg.c_str()));
  };

  for (; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (!saw_header) {
      if (trimmed != kCorpusHeader) {
        return fail("expected header '" + std::string(kCorpusHeader) + "'");
      }
      saw_header = true;
      continue;
    }
    std::vector<std::string> tokens = Tokens(line);
    const std::string& cmd = tokens[0];
    if (cmd == "seed" && tokens.size() == 2) {
      c.seed = std::strtoull(tokens[1].c_str(), nullptr, 10);
    } else if (cmd == "budget" && tokens.size() == 2) {
      c.memory_budget = std::strtoull(tokens[1].c_str(), nullptr, 10);
    } else if (cmd == "roundtrip" && tokens.size() == 1) {
      c.save_load_roundtrip = true;
    } else if (cmd == "table" && tokens.size() == 2) {
      if (open_table != nullptr) return fail("previous table not closed");
      c.tables.emplace_back();
      open_table = &c.tables.back();
      open_table->name = tokens[1];
      open_table->prob_column.clear();
      open_csv.clear();
    } else if (cmd == "column" && tokens.size() == 3) {
      if (open_table == nullptr) return fail("'column' outside a table block");
      CONQUER_ASSIGN_OR_RETURN(DataType type, DataTypeFromName(tokens[2]));
      open_table->columns.push_back({tokens[1], type});
    } else if (cmd == "dirty" && tokens.size() == 3) {
      if (open_table == nullptr) return fail("'dirty' outside a table block");
      open_table->id_column = tokens[1];
      open_table->prob_column = tokens[2] == "-" ? "" : tokens[2];
    } else if (cmd == "fk" && tokens.size() == 3) {
      if (open_table == nullptr) return fail("'fk' outside a table block");
      open_table->foreign_ids.push_back({tokens[1], tokens[2]});
    } else if (cmd == "chunk" && tokens.size() == 2) {
      if (open_table == nullptr) return fail("'chunk' outside a table block");
      open_table->chunk_capacity = std::strtoull(tokens[1].c_str(), nullptr,
                                                 10);
    } else if (cmd == "csv" && tokens.size() == 2) {
      if (open_table == nullptr) return fail("'csv' outside a table block");
      size_t n = std::strtoull(tokens[1].c_str(), nullptr, 10);
      if (i + n >= lines.size()) return fail("csv block truncated");
      open_csv.clear();
      for (size_t k = 1; k <= n; ++k) open_csv += lines[i + k] + "\n";
      i += n;
    } else if (cmd == "endtable") {
      if (open_table == nullptr) return fail("'endtable' without 'table'");
      CONQUER_ASSIGN_OR_RETURN(open_table->rows,
                               RowsFromCsv(*open_table, open_csv));
      open_table = nullptr;
    } else if (cmd == "op" && tokens.size() >= 4 && tokens[1] == "rechunk") {
      c.ops.push_back({FuzzOp::Kind::kRechunk, tokens[2],
                       std::strtoull(tokens[3].c_str(), nullptr, 10), 0, "",
                       Value::Null()});
    } else if (cmd == "op" && tokens.size() >= 4 &&
               tokens[1] == "create_index") {
      const FuzzTable* t = c.FindTable(tokens[2]);
      if (t == nullptr) {
        return fail("create_index on unknown table " + tokens[2]);
      }
      if (!t->FindColumn(tokens[3]).has_value()) {
        return fail("create_index on unknown column " + tokens[3]);
      }
      c.ops.push_back({FuzzOp::Kind::kCreateIndex, tokens[2], 0, 0, tokens[3],
                       Value::Null()});
    } else if (cmd == "op" && tokens.size() >= 6 && tokens[1] == "setvalue") {
      const FuzzTable* t = c.FindTable(tokens[2]);
      if (t == nullptr) return fail("setvalue on unknown table " + tokens[2]);
      auto col = t->FindColumn(tokens[4]);
      if (!col.has_value()) return fail("setvalue on unknown column");
      // The value is everything after the column name, CSV-decoded.
      size_t pos = line.find(tokens[4]);
      pos = line.find_first_not_of(" \t", pos + tokens[4].size());
      if (pos == std::string::npos) return fail("setvalue missing value");
      CONQUER_ASSIGN_OR_RETURN(
          std::vector<std::string> fields,
          ParseCsvLine(line.substr(pos), CorpusCsvOptions()));
      if (fields.size() != 1) return fail("setvalue expects one CSV field");
      CONQUER_ASSIGN_OR_RETURN(
          Value v, DecodeField(fields[0], t->columns[*col].type));
      c.ops.push_back({FuzzOp::Kind::kSetValue, tokens[2], 0,
                       std::strtoull(tokens[3].c_str(), nullptr, 10),
                       tokens[4], std::move(v)});
    } else if (cmd == "write" && tokens.size() >= 3) {
      // Everything after the table name is the verbatim SQL statement.
      std::string_view rest = Trim(line);
      rest.remove_prefix(std::strlen("write "));
      size_t sep = rest.find(' ');
      if (sep == std::string_view::npos) return fail("write missing sql");
      c.writes.push_back({std::string(rest.substr(0, sep)),
                          std::string(Trim(rest.substr(sep + 1)))});
    } else if (cmd == "query" && tokens.size() >= 2) {
      std::string_view rest = Trim(line);
      c.query.raw_sql = std::string(rest.substr(std::strlen("query ")));
      saw_query = true;
    } else if (cmd == "expect" && tokens.size() == 2) {
      if (tokens[1] == "rewritable") {
        c.query.expect_rewritable = true;
      } else if (tokens[1] == "reject") {
        c.query.expect_rewritable = false;
      } else {
        return fail("expect must be 'rewritable' or 'reject'");
      }
    } else {
      return fail("unrecognized directive '" + line + "'");
    }
  }
  if (open_table != nullptr) {
    return Status::InvalidArgument("corpus: unterminated table block");
  }
  if (!saw_header) return Status::InvalidArgument("corpus: missing header");
  if (!saw_query) return Status::InvalidArgument("corpus: missing query");
  return c;
}

Result<FuzzCase> LoadCaseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open corpus file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = ParseCaseText(buffer.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " + parsed.status().ToString());
  }
  return parsed;
}

Status SaveCaseFile(const FuzzCase& c, const std::string& path,
                    const std::string& note) {
  std::error_code ec;
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot write corpus file " + path);
  out << SerializeCase(c, note);
  out.close();
  if (!out) return Status::InvalidArgument("short write to " + path);
  return Status::OK();
}

std::vector<std::string> ListCaseFiles(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return out;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".case") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fuzz
}  // namespace conquer
