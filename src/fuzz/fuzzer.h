#ifndef CONQUER_FUZZ_FUZZER_H_
#define CONQUER_FUZZ_FUZZER_H_

#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/oracles.h"

namespace conquer {
namespace fuzz {

/// \brief One fuzzing campaign: how many cases, from which master seed, and
/// where shrunk reproducers land.
struct FuzzOptions {
  uint64_t seed = 1;
  size_t iterations = 100;
  /// Directory receiving shrunk `.case` reproducers; empty = don't save.
  std::string out_dir;
  bool fail_fast = false;
  bool verbose = false;
  /// Print every generated case in corpus format on stdout (debugging aid).
  bool dump_cases = false;
  FuzzConfig config;
  OracleOptions oracle;
};

/// \brief Aggregate campaign outcome.
struct FuzzSummary {
  size_t cases = 0;
  size_t rewritable = 0;       ///< cases expected (and checked) rewritable
  size_t mutants = 0;          ///< cases exercising the checker's reject path
  size_t naive_checked = 0;    ///< cases differentially checked vs the oracle
  size_t naive_skipped = 0;    ///< naive oracle bowed out (candidate blow-up)
  size_t violations = 0;
  std::vector<std::string> reproducer_paths;
  std::vector<std::string> violation_messages;

  bool ok() const { return violations == 0; }
};

/// Runs `iterations` generated cases through the oracles; every failure is
/// shrunk with the identical oracle configuration and, when `out_dir` is set,
/// saved as a corpus-format reproducer. Case seeds derive deterministically
/// from `seed`, so a campaign is replayable from its command line alone.
/// Status errors signal infrastructure failures, not oracle violations.
Result<FuzzSummary> RunFuzz(const FuzzOptions& options);

/// Replays one corpus case (or a freshly generated case) through the oracles.
Result<OracleReport> ReplayCase(const FuzzCase& c, const OracleOptions& oracle);

}  // namespace fuzz
}  // namespace conquer

#endif  // CONQUER_FUZZ_FUZZER_H_
