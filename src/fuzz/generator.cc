#include "fuzz/generator.h"

#include <algorithm>
#include <cstdlib>

#include "common/rng.h"
#include "common/str_util.h"
#include "gen/perturb.h"

namespace conquer {
namespace fuzz {
namespace {

/// Column layout of a generated table: id, attrs, fks, prob.
struct TablePlan {
  std::vector<DataType> attr_types;
  std::vector<int> children;  ///< table indices whose fk columns we carry
  std::vector<std::vector<double>> cluster_probs;  ///< one per entity
};

std::vector<double> MakeClusterProbs(Rng* rng, const FuzzConfig& cfg) {
  if (rng->Chance(cfg.exact_dyadic_rate)) {
    switch (rng->Uniform(0, 2)) {
      case 0:
        return {1.0};
      case 1:
        return {0.5, 0.5};
      default:
        return {0.25, 0.25, 0.25, 0.25};
    }
  }
  int k = 1;
  while (k < cfg.max_cluster_size && rng->Chance(cfg.cluster_skew)) ++k;
  std::vector<double> probs(k);
  double sum = 0;
  for (double& p : probs) {
    p = 0.05 + rng->NextDouble();
    sum += p;
  }
  for (double& p : probs) p /= sum;
  return probs;
}

std::string Word(int i) { return StringPrintf("w%02d", i); }

std::string EntityId(int table, size_t entity) {
  return StringPrintf("t%d_e%zu", table, entity);
}

Value RandomAttrValue(Rng* rng, DataType type, const FuzzConfig& cfg) {
  if (rng->Chance(cfg.null_density)) return Value::Null();
  if (type == DataType::kString) {
    return Value::String(Word(static_cast<int>(
        rng->Uniform(0, cfg.dict_cardinality - 1))));
  }
  return Value::Int(rng->Uniform(0, cfg.int_domain - 1));
}

/// A duplicate's attribute: NULL, a typo/jitter of the base, or a fresh draw.
Value DuplicateAttrValue(Rng* rng, DataType type, const Value& base,
                         const FuzzConfig& cfg) {
  if (rng->Chance(cfg.null_density)) return Value::Null();
  if (!base.is_null() && rng->Chance(cfg.perturb_rate)) {
    if (type == DataType::kString) {
      return Value::String(PerturbString(base.string_value(), rng, 1));
    }
    return Value::Int(base.int_value() + rng->Uniform(-1, 1));
  }
  if (base.is_null()) return RandomAttrValue(rng, type, cfg);
  return rng->Chance(0.5) ? base : RandomAttrValue(rng, type, cfg);
}

/// Applies one of the five Dfn 7 violations, picked uniformly among the
/// mutations applicable to this case. Returns the mutation label.
std::string ApplyMutation(Rng* rng, const FuzzCase& c, FuzzQuery* q) {
  struct AttrRef {
    std::string table, column;
    DataType type;
  };
  std::vector<AttrRef> attrs;
  for (const FuzzTable& t : c.tables) {
    for (const FuzzColumn& col : t.columns) {
      if (EqualsIgnoreCase(col.name, t.id_column) ||
          EqualsIgnoreCase(col.name, t.prob_column)) {
        continue;
      }
      bool is_fk = false;
      for (const auto& fk : t.foreign_ids) {
        if (EqualsIgnoreCase(fk.column, col.name)) is_fk = true;
      }
      if (!is_fk) attrs.push_back({t.name, col.name, col.type});
    }
  }
  // A cross-table attribute pair of equal type, if one exists.
  const AttrRef* pair_a = nullptr;
  const AttrRef* pair_b = nullptr;
  for (const AttrRef& a : attrs) {
    for (const AttrRef& b : attrs) {
      if (a.table != b.table && a.type == b.type) {
        pair_a = &a;
        pair_b = &b;
        break;
      }
    }
    if (pair_a != nullptr) break;
  }

  std::vector<std::string> applicable = {"self_join", "no_root_id"};
  if (pair_a != nullptr) applicable.push_back("attr_attr_join");
  if (c.tables.size() >= 2) applicable.push_back("id_id_unify");
  if (!q->joins.empty()) applicable.push_back("dup_join_arc");

  const std::string& pick = applicable[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(applicable.size()) - 1))];
  if (pick == "attr_attr_join") {
    q->joins.push_back(
        {pair_a->table, pair_a->column, pair_b->table, pair_b->column});
  } else if (pick == "id_id_unify") {
    size_t a = static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(c.tables.size()) - 1));
    size_t b = (a + 1) % c.tables.size();
    q->joins.push_back({c.tables[a].name, c.tables[a].id_column,
                        c.tables[b].name, c.tables[b].id_column});
  } else if (pick == "dup_join_arc") {
    q->joins.push_back(q->joins[static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(q->joins.size()) - 1))]);
  } else if (pick == "self_join") {
    q->from.push_back(q->from[static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(q->from.size()) - 1))]);
  } else {  // no_root_id
    const std::string root_id = c.tables[0].name + "." + c.tables[0].id_column;
    q->select.erase(std::remove(q->select.begin(), q->select.end(), root_id),
                    q->select.end());
    if (q->select.empty()) {
      q->select.push_back(c.tables[0].name + "." + c.tables[0].columns[1].name);
    }
  }
  return pick;
}

/// One random mutation-stage write against table `ti`. The write targets
/// existing entities so UPDATE/DELETE predicates are satisfiable, and
/// INSERTs carry probability 0.5 — any value that breaks the cluster sum
/// unless incremental maintenance renormalizes it away.
FuzzWrite MakeWrite(Rng* rng, const FuzzCase& c, size_t ti,
                    const std::vector<DataType>& attr_types, size_t entities,
                    int write_index, const FuzzConfig& cfg) {
  const FuzzTable& t = c.tables[ti];
  auto entity = [&] {
    return EntityId(static_cast<int>(ti),
                    static_cast<size_t>(rng->Uniform(
                        0, static_cast<int64_t>(entities) - 1)));
  };
  FuzzWrite w;
  w.table = t.name;
  switch (rng->Uniform(0, 2)) {
    case 0: {  // INSERT: a new duplicate of an existing entity, or a fresh one
      std::string id = rng->Chance(0.7)
                           ? entity()
                           : StringPrintf("t%zu_new%d", ti, write_index);
      std::vector<std::string> values;
      for (const FuzzColumn& col : t.columns) {
        if (EqualsIgnoreCase(col.name, t.id_column)) {
          values.push_back(Value::String(id).ToSqlLiteral());
        } else if (EqualsIgnoreCase(col.name, t.prob_column)) {
          values.push_back("0.5");
        } else if (col.name.rfind("fk", 0) == 0) {
          // Point the foreign key at some entity of the referenced table.
          int child = std::atoi(col.name.c_str() + 2);
          const FuzzTable* ct = c.FindTable(StringPrintf("t%d", child));
          size_t n = ct != nullptr && !ct->rows.empty()
                         ? static_cast<size_t>(rng->Uniform(
                               0, static_cast<int64_t>(ct->rows.size()) - 1))
                         : 0;
          values.push_back(
              ct != nullptr && !ct->rows.empty()
                  ? ct->rows[n][0].ToSqlLiteral()
                  : Value::String(EntityId(child, 0)).ToSqlLiteral());
        } else {
          Value v = RandomAttrValue(rng, col.type, cfg);
          values.push_back(v.ToSqlLiteral());
        }
      }
      w.sql = "insert into " + t.name + " values (" + Join(values, ", ") + ")";
      break;
    }
    case 1: {  // UPDATE: rewrite one attribute (rarely the identifier)
      std::string target = entity();
      if (!attr_types.empty() && !rng->Chance(0.15)) {
        size_t a = static_cast<size_t>(rng->Uniform(
            0, static_cast<int64_t>(attr_types.size()) - 1));
        Value v = RandomAttrValue(rng, attr_types[a], cfg);
        w.sql = "update " + t.name + " set " +
                StringPrintf("a%zu_%zu", ti, a) + " = " + v.ToSqlLiteral() +
                " where " + t.id_column + " = " +
                Value::String(target).ToSqlLiteral();
      } else {
        // Identifier rewrite: merges the source cluster into the target.
        w.sql = "update " + t.name + " set " + t.id_column + " = " +
                Value::String(entity()).ToSqlLiteral() + " where " +
                t.id_column + " = " + Value::String(target).ToSqlLiteral();
      }
      break;
    }
    default: {  // DELETE: a whole cluster, or members matching an attribute
      std::string target = entity();
      w.sql = "delete from " + t.name + " where " + t.id_column + " = " +
              Value::String(target).ToSqlLiteral();
      if (!attr_types.empty() && rng->Chance(0.4)) {
        // Narrow to part of the cluster with an attribute conjunct sampled
        // from its rows, so the survivors must be renormalized.
        size_t a = static_cast<size_t>(rng->Uniform(
            0, static_cast<int64_t>(attr_types.size()) - 1));
        const size_t col = 1 + a;
        std::vector<const Value*> present;
        for (const Row& row : t.rows) {
          if (!row[0].is_null() && row[0].string_value() == target &&
              !row[col].is_null()) {
            present.push_back(&row[col]);
          }
        }
        if (!present.empty()) {
          const Value* pick = present[static_cast<size_t>(rng->Uniform(
              0, static_cast<int64_t>(present.size()) - 1))];
          w.sql += " and " + StringPrintf("a%zu_%zu", ti, a) + " = " +
                   pick->ToSqlLiteral();
        }
      }
      break;
    }
  }
  return w;
}

}  // namespace

FuzzCase GenerateCase(uint64_t seed, const FuzzConfig& cfg) {
  Rng rng(seed ^ 0xc0ffee5eedULL);
  FuzzCase c;
  c.seed = seed;

  int n = static_cast<int>(rng.Uniform(cfg.min_tables, cfg.max_tables));
  std::vector<int> parent_of(n, -1);
  for (int t = 1; t < n; ++t) {
    parent_of[t] = static_cast<int>(rng.Uniform(0, t - 1));
  }

  // Decide shapes and cluster distributions up front so the candidate count
  // can be capped before any row exists.
  std::vector<TablePlan> plans(n);
  uint64_t product = 1;
  for (int t = 0; t < n; ++t) {
    int num_attrs = static_cast<int>(rng.Uniform(1, cfg.max_attrs));
    for (int a = 0; a < num_attrs; ++a) {
      plans[t].attr_types.push_back(rng.Chance(cfg.string_attr_rate)
                                        ? DataType::kString
                                        : DataType::kInt64);
    }
    for (int child = 1; child < n; ++child) {
      if (parent_of[child] == t) plans[t].children.push_back(child);
    }
    int entities =
        static_cast<int>(rng.Uniform(cfg.min_entities, cfg.max_entities));
    for (int e = 0; e < entities; ++e) {
      plans[t].cluster_probs.push_back(MakeClusterProbs(&rng, cfg));
      product *= plans[t].cluster_probs.back().size();
    }
  }
  for (TablePlan& plan : plans) {
    for (std::vector<double>& probs : plan.cluster_probs) {
      if (probs.size() > 1 && product > cfg.max_candidate_product) {
        product /= probs.size();
        probs = {1.0};
      }
    }
  }

  // Materialize tables and rows.
  for (int t = 0; t < n; ++t) {
    const TablePlan& plan = plans[t];
    FuzzTable table;
    table.name = StringPrintf("t%d", t);
    table.columns.push_back({"id", DataType::kString});
    std::vector<std::string> attr_names;
    for (size_t a = 0; a < plan.attr_types.size(); ++a) {
      attr_names.push_back(StringPrintf("a%d_%zu", t, a));
      table.columns.push_back({attr_names.back(), plan.attr_types[a]});
    }
    for (int child : plan.children) {
      std::string fk = StringPrintf("fk%d", child);
      table.columns.push_back({fk, DataType::kString});
      table.foreign_ids.push_back({fk, StringPrintf("t%d", child)});
    }
    table.columns.push_back({"prob", DataType::kDouble});

    for (size_t e = 0; e < plan.cluster_probs.size(); ++e) {
      const std::vector<double>& probs = plan.cluster_probs[e];
      // Cluster base values; duplicates perturb or redraw them.
      std::vector<Value> base_attrs;
      for (DataType type : plan.attr_types) {
        base_attrs.push_back(RandomAttrValue(&rng, type, cfg));
      }
      std::vector<size_t> base_fk_targets;
      for (int child : plan.children) {
        base_fk_targets.push_back(static_cast<size_t>(rng.Uniform(
            0,
            static_cast<int64_t>(plans[child].cluster_probs.size()) - 1)));
      }
      for (size_t j = 0; j < probs.size(); ++j) {
        Row row;
        row.push_back(Value::String(EntityId(t, e)));
        for (size_t a = 0; a < plan.attr_types.size(); ++a) {
          row.push_back(j == 0 ? base_attrs[a]
                               : DuplicateAttrValue(&rng, plan.attr_types[a],
                                                    base_attrs[a], cfg));
        }
        for (size_t ci = 0; ci < plan.children.size(); ++ci) {
          size_t target = base_fk_targets[ci];
          if (j > 0 && rng.Chance(cfg.fk_error_rate)) {
            target = static_cast<size_t>(rng.Uniform(
                0, static_cast<int64_t>(
                       plans[plan.children[ci]].cluster_probs.size()) -
                       1));
          }
          row.push_back(Value::String(EntityId(plan.children[ci], target)));
        }
        row.push_back(Value::Double(probs[j]));
        table.rows.push_back(std::move(row));
      }
    }
    c.tables.push_back(std::move(table));
  }

  // The query: the join tree, random projections, random selections.
  FuzzQuery q;
  q.select.push_back("t0.id");
  for (int t = 0; t < n; ++t) {
    q.from.push_back(c.tables[t].name);
    if (t > 0 && rng.Chance(cfg.select_id_rate)) {
      q.select.push_back(c.tables[t].name + ".id");
    }
    for (size_t a = 0; a < plans[t].attr_types.size(); ++a) {
      if (rng.Chance(cfg.select_attr_rate)) {
        q.select.push_back(c.tables[t].name + "." +
                           StringPrintf("a%d_%zu", t, a));
      }
    }
  }
  for (int t = 1; t < n; ++t) {
    q.joins.push_back({StringPrintf("t%d", parent_of[t]),
                       StringPrintf("fk%d", t), StringPrintf("t%d", t), "id"});
  }
  static const char* kIntOps[] = {"=", "<>", "<", "<=", ">", ">="};
  static const char* kBroadIntOps[] = {"<>", "<=", ">="};
  // Literal choice is deliberately biased toward *satisfiable* predicates:
  // sampled from rows the join can actually reach (parent-referenced
  // entities), mostly with broad operators, at most one predicate per table.
  // Blind conjunctions over the tiny domains empty nearly every result set,
  // and all-empty answers are invisible to the probability oracles.
  const double kBlindLiteralRate = 0.1;
  const size_t kMaxFilters = 3;
  for (int t = 0; t < n && q.filters.size() < kMaxFilters; ++t) {
    // Identifiers of this table the join can reach: every entity for the
    // root, the parent's foreign-key targets otherwise.
    std::vector<std::string> reachable_ids;
    if (t > 0) {
      const FuzzTable& parent = c.tables[static_cast<size_t>(parent_of[t])];
      auto fk_col = parent.FindColumn(StringPrintf("fk%d", t));
      if (fk_col.has_value()) {
        for (const Row& row : parent.rows) {
          if (!row[*fk_col].is_null()) {
            reachable_ids.push_back(row[*fk_col].string_value());
          }
        }
      }
    }
    auto reachable = [&](const Row& row) {
      if (t == 0) return true;
      if (row[0].is_null()) return false;
      const std::string& id = row[0].string_value();
      return std::find(reachable_ids.begin(), reachable_ids.end(), id) !=
             reachable_ids.end();
    };

    bool table_filtered = false;
    for (size_t a = 0; a < plans[t].attr_types.size() && !table_filtered;
         ++a) {
      if (!rng.Chance(cfg.pred_rate)) continue;
      FuzzPredicate pred;
      pred.table = c.tables[t].name;
      pred.column = StringPrintf("a%d_%zu", t, a);
      const size_t col = 1 + a;  // id column precedes the attributes
      std::vector<Value> present;
      for (const Row& row : c.tables[t].rows) {
        if (!row[col].is_null() && reachable(row)) present.push_back(row[col]);
      }
      Value sample;
      if (present.empty() || rng.Chance(kBlindLiteralRate)) {
        sample = RandomAttrValue(&rng, plans[t].attr_types[a], cfg);
        if (sample.is_null()) continue;
      } else {
        sample = present[static_cast<size_t>(rng.Uniform(
            0, static_cast<int64_t>(present.size()) - 1))];
      }
      if (plans[t].attr_types[a] == DataType::kString) {
        const std::string& word = sample.string_value();
        if (rng.Chance(cfg.like_rate)) {
          pred.op = "like";
          pred.literal = Value::String(
              word.substr(0, static_cast<size_t>(rng.Uniform(1, 2))) + "%");
        } else {
          pred.op = rng.Chance(0.5) ? "=" : "<>";
          pred.literal = std::move(sample);
        }
      } else {
        pred.op = rng.Chance(0.25) ? kIntOps[rng.Uniform(0, 5)]
                                   : kBroadIntOps[rng.Uniform(0, 2)];
        pred.literal = std::move(sample);
      }
      q.filters.push_back(std::move(pred));
      table_filtered = true;
    }
    if (!table_filtered && rng.Chance(cfg.id_pred_rate)) {
      // A point predicate on an unreferenced entity empties the join no
      // matter what the rest of the query does, hence reachable ids only.
      std::string id_literal;
      if (t == 0) {
        id_literal = EntityId(0, static_cast<size_t>(rng.Uniform(
                                  0, static_cast<int64_t>(
                                         plans[0].cluster_probs.size()) -
                                         1)));
      } else {
        if (reachable_ids.empty()) continue;
        id_literal = reachable_ids[static_cast<size_t>(rng.Uniform(
            0, static_cast<int64_t>(reachable_ids.size()) - 1))];
      }
      q.filters.push_back(
          {c.tables[t].name, "id", "=", Value::String(id_literal)});
    }
  }

  if (rng.Chance(cfg.mutant_rate)) {
    q.expect_rewritable = false;
    q.mutation = ApplyMutation(&rng, c, &q);
  }
  c.query = std::move(q);

  // Mutation-stage writes ride along on rewritable cases only: the reject
  // path never executes, so writes would be dead weight there.
  if (c.query.expect_rewritable && cfg.max_writes > 0 &&
      rng.Chance(cfg.write_rate)) {
    int num_writes = static_cast<int>(rng.Uniform(1, cfg.max_writes));
    for (int wi = 0; wi < num_writes; ++wi) {
      size_t ti = static_cast<size_t>(rng.Uniform(0, n - 1));
      c.writes.push_back(MakeWrite(&rng, c, ti, plans[ti].attr_types,
                                   plans[ti].cluster_probs.size(), wi, cfg));
    }
  }

  // Out-of-core dimensions: a quarter of the cases run under a starvation
  // budget (constant evict/reload through every oracle stage) and a quarter
  // take a binary save/load round-trip before the ops replay.
  if (rng.Chance(0.25)) {
    c.memory_budget = static_cast<uint64_t>(rng.Uniform(1, 4096));
  }
  if (rng.Chance(0.25)) c.save_load_roundtrip = true;

  // Secondary indexes. Emitted last so index decisions never perturb the
  // data or query draws above: the same seed with index_rate zeroed yields
  // the identical case minus the index dimension. Each indexed table may
  // also pick up a selective predicate template (point or narrow range, so
  // plans flow through IndexScan / index nested-loop joins) and an in-place
  // SetValue that invalidates one chunk's index slice after the build —
  // the query path must lazily rebuild exactly that slice.
  for (int t = 0; t < n; ++t) {
    if (!rng.Chance(cfg.index_rate)) continue;
    const FuzzTable& table = c.tables[static_cast<size_t>(t)];
    const size_t num_attrs = plans[t].attr_types.size();
    const bool on_id = num_attrs == 0 || rng.Chance(0.5);
    const size_t col =
        on_id ? 0
              : 1 + static_cast<size_t>(rng.Uniform(
                        0, static_cast<int64_t>(num_attrs) - 1));
    c.ops.push_back({FuzzOp::Kind::kCreateIndex, table.name, 0, 0,
                     table.columns[col].name, Value::Null()});
    if (!on_id && c.query.expect_rewritable &&
        rng.Chance(cfg.selective_pred_rate)) {
      // Literals sampled from stored rows keep the template satisfiable.
      std::vector<const Value*> present;
      for (const Row& row : table.rows) {
        if (!row[col].is_null()) present.push_back(&row[col]);
      }
      if (!present.empty()) {
        const Value& sample = *present[static_cast<size_t>(rng.Uniform(
            0, static_cast<int64_t>(present.size()) - 1))];
        const std::string& name = table.columns[col].name;
        if (table.columns[col].type == DataType::kInt64 && rng.Chance(0.5)) {
          c.query.filters.push_back(
              {table.name, name, ">=", Value::Int(sample.int_value() - 1)});
          c.query.filters.push_back(
              {table.name, name, "<=", Value::Int(sample.int_value() + 1)});
        } else {
          c.query.filters.push_back({table.name, name, "=", sample});
        }
      }
    }
    if (!on_id && !table.rows.empty() &&
        rng.Chance(cfg.index_setvalue_rate)) {
      const size_t row = static_cast<size_t>(rng.Uniform(
          0, static_cast<int64_t>(table.rows.size()) - 1));
      Value v = RandomAttrValue(&rng, plans[t].attr_types[col - 1], cfg);
      c.ops.push_back({FuzzOp::Kind::kSetValue, table.name, 0, row,
                       table.columns[col].name, std::move(v)});
    }
  }
  return c;
}

}  // namespace fuzz
}  // namespace conquer
