#ifndef CONQUER_FUZZ_FUZZ_CASE_H_
#define CONQUER_FUZZ_FUZZ_CASE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "core/dirty_schema.h"
#include "engine/database.h"
#include "types/value.h"

namespace conquer {
namespace fuzz {

/// \brief One column of a fuzzed dirty table.
struct FuzzColumn {
  std::string name;
  DataType type = DataType::kInt64;
};

/// \brief One table of a fuzz case: schema, dirty-schema annotations and the
/// full row payload. Self-contained so a case can be rebuilt, mutated by the
/// shrinker, and serialized into the regression corpus.
struct FuzzTable {
  std::string name;
  std::vector<FuzzColumn> columns;
  std::string id_column = "id";
  /// Empty = clean relation (every tuple its own cluster, probability 1).
  std::string prob_column = "prob";
  std::vector<DirtyTableInfo::ForeignId> foreign_ids;
  /// Per-chunk row capacity the table is built with (0 = engine default).
  size_t chunk_capacity = 0;
  std::vector<Row> rows;

  TableSchema Schema() const;
  DirtyTableInfo DirtyInfo() const;
  std::optional<size_t> FindColumn(std::string_view name) const;
};

/// \brief A post-load maintenance operation replayed against the built
/// database before the query runs. Exercises the in-place update paths
/// (SetValue zone widening / per-chunk index-slice invalidation),
/// chunk-geometry rebuilds, and secondary-index creation.
struct FuzzOp {
  enum class Kind { kRechunk, kSetValue, kCreateIndex };
  Kind kind = Kind::kRechunk;
  std::string table;
  size_t capacity = 0;  ///< kRechunk
  size_t row = 0;       ///< kSetValue
  std::string column;   ///< kSetValue, kCreateIndex
  Value value;          ///< kSetValue
};

/// \brief One SQL write statement of the mutation stage, replayed through
/// Database::ExecuteWrite after the static oracles pass. `table` names the
/// written table so the shrinker can drop writes when it removes tables.
struct FuzzWrite {
  std::string table;
  std::string sql;
};

/// \brief An equi-join edge `left.left_column = right.right_column`.
struct FuzzJoin {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;
};

/// \brief A single-relation selection predicate `table.column op literal`.
/// `op` is one of =, <>, <, <=, >, >= or `like`.
struct FuzzPredicate {
  std::string table;
  std::string column;
  std::string op = "=";
  Value literal;
};

/// \brief The query of a fuzz case in structured form, so the shrinker can
/// drop predicates/joins/select items and re-render valid SQL.
struct FuzzQuery {
  std::vector<std::string> select;  ///< qualified names, e.g. "t0.id"
  std::vector<std::string> from;
  std::vector<FuzzJoin> joins;
  std::vector<FuzzPredicate> filters;
  /// False for deliberately non-rewritable mutants that must be rejected by
  /// the Dfn 7 checker (the reject-path oracle).
  bool expect_rewritable = true;
  /// Label of the applied non-rewritable mutation, empty when none.
  std::string mutation;
  /// Corpus-loaded cases carry verbatim SQL instead of structure; when
  /// non-empty it wins over rendering (such cases cannot be shrunk).
  std::string raw_sql;

  /// The SQL text executed by the oracles.
  std::string Sql() const;
};

/// \brief A complete self-contained fuzz case.
struct FuzzCase {
  uint64_t seed = 0;
  std::vector<FuzzTable> tables;
  std::vector<FuzzOp> ops;
  /// Mutation-stage writes, executed in order after the static oracles.
  std::vector<FuzzWrite> writes;
  /// Buffer-pool byte budget the database is built under (0 = unlimited).
  /// Small budgets force evict/reload cycles through every oracle stage.
  uint64_t memory_budget = 0;
  /// When set, the built database is saved to binary segments and reloaded
  /// before the ops replay — round-trip fidelity under the oracles.
  bool save_load_roundtrip = false;
  FuzzQuery query;

  size_t TotalRows() const;
  const FuzzTable* FindTable(std::string_view name) const;
};

/// \brief A materialized fuzz-case database plus its dirty annotations.
struct BuiltDb {
  std::unique_ptr<Database> db;
  DirtySchema dirty;
};

/// Builds the case's tables, inserts every row, registers the dirty schema,
/// installs the incremental probability-maintenance write hooks and applies
/// the maintenance ops, in declaration order. The case's writes are NOT
/// executed here; the mutation-stage oracle replays them one by one.
Result<BuiltDb> BuildFuzzDatabase(const FuzzCase& c);

/// Snapshot of `db`'s state visible at each table's committed version, as a
/// fresh standalone case: same schema and query as `c`, rows replaced by the
/// visible row versions (with engine-maintained probabilities), no ops or
/// writes. The naive oracle evaluates this after each mutation step.
Result<FuzzCase> ExtractVisibleSnapshot(const FuzzCase& c, const Database& db);

/// \brief Probability mass of one cluster, for the input-integrity oracle.
struct ClusterSum {
  std::string table;
  std::string id;
  double sum = 0.0;
  size_t rows = 0;
};

/// Per-cluster probability sums of every dirty table, grouped by identifier
/// value, in first-occurrence order. Clean relations are skipped.
std::vector<ClusterSum> ClusterProbabilitySums(const FuzzCase& c);

}  // namespace fuzz
}  // namespace conquer

#endif  // CONQUER_FUZZ_FUZZ_CASE_H_
