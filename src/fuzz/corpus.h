#ifndef CONQUER_FUZZ_CORPUS_H_
#define CONQUER_FUZZ_CORPUS_H_

#include <string>
#include <vector>

#include "fuzz/fuzz_case.h"

namespace conquer {
namespace fuzz {

/// \brief The committed regression corpus: every reproducer the fuzzer ever
/// shrank is written as a `.case` file and replayed as a tier-1 test, so a
/// found bug can never silently return.
///
/// File format (line-oriented, `#` comments, one table block per table):
///
///   conquer-fuzz-case v1
///   seed <u64>
///   table <name>
///   column <name> <string|int64|double|date|bool>
///   dirty <id_column> <prob_column|->      # '-' marks a clean relation
///   fk <column> <referenced_table>
///   chunk <capacity>                       # optional, 0/absent = default
///   csv <n>                                # n physical lines follow
///   <RFC 4180 CSV: header + rows; quoted fields may span lines; \N = NULL>
///   endtable
///   op rechunk <table> <capacity>
///   op setvalue <table> <row> <column> <csv-field>
///   query <sql on one line>
///   expect rewritable|reject
///
/// Row payloads are parsed by the engine's own strict RFC 4180 reader, so
/// every corpus replay also exercises the multi-line quoted-field CSV path.
inline constexpr char kCorpusHeader[] = "conquer-fuzz-case v1";
inline constexpr char kCorpusNull[] = "\\N";

/// Renders the case in the corpus format; `note` lines (e.g. the violation
/// text) are embedded as leading comments.
std::string SerializeCase(const FuzzCase& c, const std::string& note = "");

/// Parses the corpus format. The query comes back as raw SQL (structured
/// shrinking does not apply to corpus-loaded cases).
Result<FuzzCase> ParseCaseText(const std::string& text);

/// Reads and parses one `.case` file.
Result<FuzzCase> LoadCaseFile(const std::string& path);

/// Serializes the case to `path` (parent directories are created).
Status SaveCaseFile(const FuzzCase& c, const std::string& path,
                    const std::string& note = "");

/// The `.case` files directly inside `dir`, sorted by name; empty when the
/// directory does not exist.
std::vector<std::string> ListCaseFiles(const std::string& dir);

}  // namespace fuzz
}  // namespace conquer

#endif  // CONQUER_FUZZ_CORPUS_H_
