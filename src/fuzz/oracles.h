#ifndef CONQUER_FUZZ_ORACLES_H_
#define CONQUER_FUZZ_ORACLES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzz_case.h"

namespace conquer {
namespace fuzz {

/// \brief Deliberate bugs injectable into the checked engine results, for
/// mutation-testing the harness itself: each must be caught by an oracle.
enum class BugInjection {
  kNone = 0,
  /// Scales every engine probability by (1 + 2^-10): caught by the naive
  /// comparison and by the [0, 1] range oracle on certain answers.
  kProbBias,
  /// Drops the last answer from every engine run: caught by the naive
  /// answer-count comparison.
  kDropAnswer,
  /// Adds 2^-30 to probabilities only in parallel runs: caught by the
  /// bit-identity oracle across thread counts.
  kParallelSkew,
  /// Injects an off-by-one cluster skip into the incremental maintenance
  /// path (the first touched cluster is left stale after a write): caught
  /// by the mutation stage's cluster-sum and naive-snapshot oracles.
  kRenormSkip,
};

/// Parses "none", "prob_bias", "drop_answer", "parallel_skew" or
/// "renorm_skip".
Result<BugInjection> ParseBugInjection(std::string_view name);

/// \brief The failure category of a violated oracle. The shrinker uses the
/// kind to refuse shrinks that merely flip a case into an
/// expectation-mismatch failure (e.g. disconnecting the join tree).
enum class ViolationKind {
  kNone = 0,
  kExpectation,     ///< rewritable/reject expectation not met
  kInputIntegrity,  ///< generated cluster probabilities do not sum to ~1
  kEngineError,     ///< engine returned an unexpected error
  kRange,           ///< probability outside [0, 1]
  kNaiveMismatch,   ///< engine disagrees with the enumeration oracle
  kConfigMismatch,  ///< engine disagrees with itself across configurations
  kMaintenance,     ///< incremental probability maintenance left bad state
};

const char* ViolationKindToString(ViolationKind kind);

/// \brief Sweep configuration + oracle tolerances.
struct OracleOptions {
  uint64_t max_candidates = 1 << 12;
  std::vector<size_t> thread_counts = {1, 3};
  std::vector<size_t> batch_sizes = {1, 7, 1024};
  std::vector<size_t> chunk_capacities = {1, 7, 65536};
  /// Also run with zone-map pruning, runtime Bloom filters and secondary
  /// index access disabled (individually and together).
  bool sweep_pruning_flags = true;
  double naive_tolerance = 1e-9;
  BugInjection inject = BugInjection::kNone;
};

/// \brief Outcome of one oracle run.
struct OracleReport {
  ViolationKind kind = ViolationKind::kNone;
  std::string violation;  ///< first violation, human-readable; empty when ok
  /// False when the candidate cap made the enumeration oracle bail
  /// (ResourceExhausted); the configuration sweeps still ran.
  bool naive_checked = false;
  size_t num_answers = 0;

  bool ok() const { return kind == ViolationKind::kNone; }
};

/// Runs every oracle over the case: expectation check (rewritable vs
/// reject), input cluster-probability integrity, naive candidate-enumeration
/// comparison, probability range, and bit-identity of the answer set across
/// thread counts, batch sizes, chunk capacities, pruning flags and index
/// access (on vs off).
///
/// Cases with writes then enter the mutation stage: each write replays
/// through the engine's write path, after which (a) every visible dirty
/// cluster's probabilities must sum to ~1, (b) clusters the write touched
/// must match an independent recomputation of the Figure-5 assignment over
/// the visible rows, (c) untouched clusters must be bitwise unchanged, and
/// (d) the live query must stay bit-identical across thread counts and
/// agree with the naive oracle evaluated on the extracted visible snapshot.
/// Status errors are infrastructure failures (the case itself could not be
/// built); semantic failures come back inside the report.
Result<OracleReport> RunOracles(const FuzzCase& c, const OracleOptions& opts);

}  // namespace fuzz
}  // namespace conquer

#endif  // CONQUER_FUZZ_ORACLES_H_
