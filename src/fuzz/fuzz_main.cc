// conquer_fuzz: seeded differential fuzzer for the clean-answer engine.
//
//   conquer_fuzz --iterations=500 --seed=42          # fuzzing campaign
//   conquer_fuzz --replay=tests/fuzz/corpus          # replay the corpus
//   conquer_fuzz --inject_bug=prob_bias ...          # harness self-test
//
// Exit codes: 0 = clean, 1 = oracle violations, 2 = usage/infrastructure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"

namespace {

using conquer::Result;
using conquer::fuzz::FuzzCase;
using conquer::fuzz::FuzzOptions;
using conquer::fuzz::FuzzSummary;
using conquer::fuzz::OracleReport;

constexpr char kUsage[] =
    "usage: conquer_fuzz [options]\n"
    "  --iterations=N     generated cases to run (default 100)\n"
    "  --seed=S           campaign seed; case seeds derive from it "
    "(default 1)\n"
    "  --out=DIR          write shrunk reproducers (.case) into DIR\n"
    "  --replay=PATH      replay a .case file, or every .case in a "
    "directory,\n"
    "                     instead of generating cases\n"
    "  --inject_bug=NAME  none|prob_bias|drop_answer|parallel_skew|\n"
    "                     renorm_skip (self-test: the injected bug must be\n"
    "                     caught by an oracle)\n"
    "  --max_candidates=N naive-oracle candidate cap (default 4096)\n"
    "  --dump             print every generated case on stdout\n"
    "  --fail-fast        stop at the first violation\n"
    "  --verbose          per-case progress on stderr\n";

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int ReplayPath(const std::string& path, const FuzzOptions& options) {
  std::vector<std::string> files;
  if (std::filesystem::is_directory(path)) {
    files = conquer::fuzz::ListCaseFiles(path);
    if (files.empty()) {
      std::fprintf(stderr, "conquer_fuzz: no .case files in %s\n",
                   path.c_str());
      return 0;
    }
  } else {
    files.push_back(path);
  }

  int violations = 0;
  for (const std::string& file : files) {
    Result<FuzzCase> loaded = conquer::fuzz::LoadCaseFile(file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "conquer_fuzz: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    Result<OracleReport> report =
        conquer::fuzz::ReplayCase(*loaded, options.oracle);
    if (!report.ok()) {
      std::fprintf(stderr, "conquer_fuzz: %s: %s\n", file.c_str(),
                   report.status().ToString().c_str());
      return 2;
    }
    if (report->ok()) {
      std::fprintf(stderr, "[replay] OK       %s (%zu answers%s)\n",
                   file.c_str(), report->num_answers,
                   report->naive_checked ? ", naive-checked" : "");
    } else {
      ++violations;
      std::fprintf(stderr, "[replay] VIOLATION %s: [%s] %s\n", file.c_str(),
                   conquer::fuzz::ViolationKindToString(report->kind),
                   report->violation.c_str());
      if (options.fail_fast) break;
    }
  }
  std::fprintf(stderr, "[replay] %zu case(s), %d violation(s)\n", files.size(),
               violations);
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions options;
  std::string replay_path;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseFlag(arg, "--iterations", &value)) {
      options.iterations = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "--seed", &value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "--out", &value)) {
      options.out_dir = value;
    } else if (ParseFlag(arg, "--replay", &value)) {
      replay_path = value;
    } else if (ParseFlag(arg, "--max_candidates", &value)) {
      options.oracle.max_candidates = std::strtoull(value.c_str(), nullptr,
                                                    10);
    } else if (ParseFlag(arg, "--inject_bug", &value)) {
      auto inject = conquer::fuzz::ParseBugInjection(value);
      if (!inject.ok()) {
        std::fprintf(stderr, "conquer_fuzz: %s\n%s",
                     inject.status().ToString().c_str(), kUsage);
        return 2;
      }
      options.oracle.inject = *inject;
    } else if (std::strcmp(arg, "--dump") == 0) {
      options.dump_cases = true;
    } else if (std::strcmp(arg, "--fail-fast") == 0) {
      options.fail_fast = true;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      options.verbose = true;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    } else {
      std::fprintf(stderr, "conquer_fuzz: unknown argument '%s'\n%s", arg,
                   kUsage);
      return 2;
    }
  }

  if (!replay_path.empty()) return ReplayPath(replay_path, options);

  if (options.iterations == 0) {
    std::fprintf(stderr, "conquer_fuzz: --iterations must be positive\n");
    return 2;
  }
  Result<FuzzSummary> summary = conquer::fuzz::RunFuzz(options);
  if (!summary.ok()) {
    std::fprintf(stderr, "conquer_fuzz: %s\n",
                 summary.status().ToString().c_str());
    return 2;
  }
  std::fprintf(stderr,
               "[fuzz] done: %zu cases, %zu rewritable, %zu mutants, "
               "%zu naive-checked, %zu violations\n",
               summary->cases, summary->rewritable, summary->mutants,
               summary->naive_checked, summary->violations);
  return summary->ok() ? 0 : 1;
}
