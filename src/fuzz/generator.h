#ifndef CONQUER_FUZZ_GENERATOR_H_
#define CONQUER_FUZZ_GENERATOR_H_

#include <cstdint>

#include "fuzz/fuzz_case.h"

namespace conquer {
namespace fuzz {

/// \brief Knobs of the random dirty-database / query generator.
///
/// Everything is driven by one 64-bit seed: the same (seed, config) pair
/// always yields byte-identical cases, so a failing iteration can be
/// reproduced from its seed alone.
struct FuzzConfig {
  // ---- Database shape. ----
  int min_tables = 2;
  int max_tables = 4;
  /// Entities (clusters) per table.
  int min_entities = 1;
  int max_entities = 4;
  /// Non-key attribute columns per table (at least 1).
  int max_attrs = 2;
  /// Probability that an attribute column is a STRING (else INT64).
  double string_attr_rate = 0.45;

  // ---- Cluster shape. ----
  /// Geometric continuation probability for cluster sizes: a cluster grows
  /// past size k with probability cluster_skew^k. Higher = more duplicates.
  double cluster_skew = 0.55;
  int max_cluster_size = 4;
  /// Probability that a cluster gets an exactly-dyadic distribution (1.0,
  /// 0.5+0.5, 0.25*4) whose probabilities sum to exactly 1.0 in binary
  /// floating point — the "answer sits exactly on probability 1" edge case.
  double exact_dyadic_rate = 0.3;
  /// Cap on the candidate-database count (product of cluster sizes); extra
  /// clusters collapse to singletons so the naive oracle stays feasible.
  uint64_t max_candidate_product = 1024;

  // ---- Value model. ----
  /// Probability that an attribute value is NULL.
  double null_density = 0.12;
  /// Size of the string-attribute domain (dictionary cardinality).
  int dict_cardinality = 6;
  int int_domain = 6;  ///< INT64 attributes draw from [0, int_domain).
  /// Probability that a duplicate's attribute is a typo-perturbed copy of
  /// the cluster base value (gen/perturb machinery) instead of a fresh draw.
  double perturb_rate = 0.5;
  /// Probability that a duplicate's foreign key points at a different
  /// entity than the cluster base row (referential disagreement).
  double fk_error_rate = 0.1;

  // ---- Query shape. ----
  /// Probability that any given attribute gets a selection predicate.
  double pred_rate = 0.45;
  /// Among string predicates, probability of LIKE instead of =/<>.
  double like_rate = 0.3;
  /// Probability of an id-equality point predicate on some table.
  double id_pred_rate = 0.15;
  /// Probability that an attribute is projected.
  double select_attr_rate = 0.6;
  /// Probability that a non-root identifier is projected.
  double select_id_rate = 0.4;
  /// Probability that the query is a deliberately non-rewritable mutant
  /// exercising the Dfn 7 checker's reject path.
  double mutant_rate = 0.15;

  // ---- Mutation stage (on by default). ----
  /// Probability that a rewritable case carries mutation-stage writes.
  double write_rate = 0.6;
  /// Maximum SQL writes interleaved per case (uniform in [1, max_writes]).
  int max_writes = 4;

  // ---- Secondary indexes (on by default). ----
  /// Probability that a table gets a CREATE INDEX op (on its identifier or
  /// a random attribute). Indexed cases flow through IndexScan and index
  /// nested-loop joins; the oracle sweeps re-run them with index access
  /// disabled and demand bit-identical answers.
  double index_rate = 0.5;
  /// Probability that an indexed attribute also receives a selective point
  /// or narrow-range predicate template (satisfiable: literals are sampled
  /// from stored rows), steering plans toward the index path.
  double selective_pred_rate = 0.5;
  /// Probability that an indexed attribute gets an in-place SetValue op
  /// after the index is built, invalidating exactly one chunk's index slice
  /// so the query path exercises lazy per-chunk rebuild.
  double index_setvalue_rate = 0.4;
};

/// The non-rewritable mutations the generator can apply.
/// Labels stored in FuzzQuery::mutation:
///   "attr_attr_join"  joins two non-identifier attributes (condition 1)
///   "id_id_unify"     id=id edge collapsing the tree into a cycle (cond. 2)
///   "dup_join_arc"    duplicated fk=id conjunct: two parents (condition 2)
///   "self_join"       relation listed twice in FROM (condition 3)
///   "no_root_id"      root identifier dropped from SELECT (condition 4)
FuzzCase GenerateCase(uint64_t seed, const FuzzConfig& config);

}  // namespace fuzz
}  // namespace conquer

#endif  // CONQUER_FUZZ_GENERATOR_H_
