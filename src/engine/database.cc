#include "engine/database.h"

#include "exec/operators.h"
#include "plan/planner.h"
#include "sql/parser.h"

namespace conquer {

Status Database::CreateTable(TableSchema schema) {
  return catalog_.CreateTable(std::move(schema)).status();
}

Status Database::DropTable(std::string_view name) {
  return catalog_.DropTable(name);
}

Status Database::Insert(std::string_view table, Row row) {
  CONQUER_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  return t->Insert(std::move(row));
}

Status Database::InsertMany(std::string_view table, std::vector<Row> rows) {
  CONQUER_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  t->Reserve(t->num_rows() + rows.size());
  for (auto& row : rows) {
    CONQUER_RETURN_NOT_OK(t->Insert(std::move(row)));
  }
  return Status::OK();
}

Status Database::CreateIndex(std::string_view table, std::string_view column) {
  CONQUER_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  return t->CreateIndex(column);
}

Status Database::Analyze(std::string_view table) {
  CONQUER_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  t->AnalyzeStatistics();
  return Status::OK();
}

Status Database::AnalyzeAll() {
  for (const std::string& name : catalog_.TableNames()) {
    CONQUER_RETURN_NOT_OK(Analyze(name));
  }
  return Status::OK();
}

Result<ResultSet> Database::Query(std::string_view sql) const {
  CONQUER_ASSIGN_OR_RETURN(auto stmt, Parser::Parse(sql));
  return Execute(std::move(stmt));
}

Result<ResultSet> Database::Execute(
    std::unique_ptr<SelectStatement> stmt) const {
  Binder binder(&catalog_);
  CONQUER_ASSIGN_OR_RETURN(BoundQuery bound, binder.Bind(std::move(stmt)));
  CONQUER_ASSIGN_OR_RETURN(OperatorPtr plan, Planner::Plan(bound, planner_options_));

  ResultSet rs;
  for (size_t i = 0; i < bound.num_visible_columns; ++i) {
    rs.column_names.push_back(bound.output_names[i]);
    rs.column_types.push_back(bound.output_types[i]);
  }
  CONQUER_RETURN_NOT_OK(plan->Open());
  Row row;
  while (true) {
    CONQUER_ASSIGN_OR_RETURN(bool more, plan->Next(&row));
    if (!more) break;
    rs.rows.push_back(row);
  }
  plan->Close();
  return rs;
}

Result<std::string> Database::Explain(std::string_view sql) const {
  CONQUER_ASSIGN_OR_RETURN(auto stmt, Parser::Parse(sql));
  Binder binder(&catalog_);
  CONQUER_ASSIGN_OR_RETURN(BoundQuery bound, binder.Bind(std::move(stmt)));
  CONQUER_ASSIGN_OR_RETURN(OperatorPtr plan, Planner::Plan(bound, planner_options_));
  return ExplainPlan(*plan);
}

Result<Table*> Database::GetTable(std::string_view name) const {
  return catalog_.GetTable(name);
}

}  // namespace conquer
