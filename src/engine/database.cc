#include "engine/database.h"

#include <algorithm>

#include "common/str_util.h"
#include "common/timer.h"
#include "exec/operators.h"
#include "exec/write_exec.h"
#include "plan/planner.h"
#include "sql/parser.h"

namespace conquer {

Database::ActiveQueryGuard::ActiveQueryGuard(const Database* db) : db_(db) {
  std::unique_lock<std::mutex> lock(db_->exec_mu_);
  db_->exec_cv_.wait(lock, [db] { return !db->reconfig_waiting_; });
  ++db_->active_queries_;
}

Database::ActiveQueryGuard::~ActiveQueryGuard() {
  {
    std::lock_guard<std::mutex> lock(db_->exec_mu_);
    --db_->active_queries_;
  }
  db_->exec_cv_.notify_all();
}

void Database::SetThreads(size_t n) {
  std::unique_lock<std::mutex> lock(exec_mu_);
  // Wait out in-flight queries; block new ones from being admitted so a
  // steady stream cannot starve the reconfiguration.
  reconfig_waiting_ = true;
  exec_cv_.wait(lock, [this] { return active_queries_ == 0; });
  if (n <= 1) {
    exec_ctx_.pool = nullptr;
    pool_.reset();
  } else if (pool_ == nullptr || pool_->num_threads() != n) {
    exec_ctx_.pool = nullptr;
    pool_ = std::make_unique<TaskPool>(n);
    exec_ctx_.pool = pool_.get();
  }
  reconfig_waiting_ = false;
  lock.unlock();
  exec_cv_.notify_all();
}

Status Database::CreateTable(TableSchema schema) {
  Result<Table*> t = catalog_.CreateTable(std::move(schema));
  if (t.ok()) {
    t.value()->AttachBufferPool(buffer_pool_.get());
    BumpCatalogVersion();
  }
  return t.status();
}

Status Database::DropTable(std::string_view name) {
  Status s = catalog_.DropTable(name);
  if (s.ok()) BumpCatalogVersion();
  return s;
}

Status Database::Insert(std::string_view table, Row row) {
  CONQUER_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  return t->Insert(std::move(row));
}

Status Database::InsertMany(std::string_view table, std::vector<Row> rows) {
  CONQUER_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  t->Reserve(t->num_rows() + rows.size());
  for (auto& row : rows) {
    CONQUER_RETURN_NOT_OK(t->Insert(std::move(row)));
  }
  return Status::OK();
}

Status Database::CreateIndex(std::string_view table, std::string_view column) {
  CONQUER_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  CONQUER_RETURN_NOT_OK(t->CreateIndex(column));
  // A new index changes what the planner would pick (access paths, join
  // strategies); stale plan-cache entries must replan against it.
  BumpCatalogVersion();
  return Status::OK();
}

Status Database::Analyze(std::string_view table) {
  CONQUER_ASSIGN_OR_RETURN(Table * t, catalog_.GetTable(table));
  t->AnalyzeStatistics();
  BumpCatalogVersion();
  return Status::OK();
}

Status Database::AnalyzeAll() {
  for (const std::string& name : catalog_.TableNames()) {
    CONQUER_RETURN_NOT_OK(Analyze(name));
  }
  return Status::OK();
}

namespace {

/// Wraps rendered multi-line text as a one-column result set (one row per
/// line), the shape EXPLAIN [ANALYZE] results take.
ResultSet TextResultSet(const std::string& column, const std::string& text) {
  ResultSet rs;
  rs.column_names.push_back(column);
  rs.column_types.push_back(DataType::kString);
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    rs.rows.push_back({Value::String(text.substr(start, end - start))});
    start = end + 1;
  }
  return rs;
}

}  // namespace

Result<ResultSet> Database::Query(std::string_view sql,
                                  QueryStats* stats) const {
  Timer parse_timer;
  CONQUER_ASSIGN_OR_RETURN(ParsedStatement parsed,
                           Parser::ParseStatement(sql));
  double parse_seconds = parse_timer.ElapsedSeconds();
  if (stats != nullptr) stats->parse_seconds = parse_seconds;

  if (parsed.is_write()) {
    return Status::InvalidArgument(
        "write statements are not allowed through Query(); use "
        "ExecuteWrite(), which requires exclusive admission");
  }

  switch (parsed.explain) {
    case ExplainMode::kNone:
      return Execute(std::move(parsed.select), stats);
    case ExplainMode::kPlan: {
      Binder binder(&catalog_);
      CONQUER_ASSIGN_OR_RETURN(BoundQuery bound,
                               binder.Bind(std::move(parsed.select)));
      ActiveQueryGuard guard(this);
      CONQUER_ASSIGN_OR_RETURN(OperatorPtr plan,
                               Planner::Plan(bound, planner_options_, &exec_ctx_));
      return TextResultSet("QUERY PLAN", ExplainPlan(*plan));
    }
    case ExplainMode::kAnalyze: {
      QueryStats local;
      QueryStats* out = stats != nullptr ? stats : &local;
      CONQUER_ASSIGN_OR_RETURN(ResultSet rs,
                               Execute(std::move(parsed.select), out));
      out->parse_seconds = parse_seconds;
      return TextResultSet("QUERY PLAN", out->ToString());
    }
  }
  return Status::Internal("unhandled explain mode");
}

Result<ResultSet> Database::Execute(std::unique_ptr<SelectStatement> stmt,
                                    QueryStats* stats) const {
  Timer timer;
  Binder binder(&catalog_);
  CONQUER_ASSIGN_OR_RETURN(BoundQuery bound, binder.Bind(std::move(stmt)));
  if (stats != nullptr) stats->bind_seconds = timer.ElapsedSeconds();
  return ExecuteBound(std::move(bound), stats);
}

Result<ResultSet> Database::ExecuteBound(BoundQuery bound,
                                         QueryStats* stats) const {
  if (bound.stmt->num_params > 0) {
    return Status::InvalidArgument(
        "statement contains unbound '?' parameters; prepare it and bind "
        "values before executing");
  }
  ActiveQueryGuard guard(this);
  Timer timer;
  CONQUER_ASSIGN_OR_RETURN(OperatorPtr plan, Planner::Plan(bound, planner_options_, &exec_ctx_));
  if (stats != nullptr) stats->plan_seconds = timer.ElapsedSeconds();

  ResultSet rs;
  for (size_t i = 0; i < bound.num_visible_columns; ++i) {
    rs.column_names.push_back(bound.output_names[i]);
    rs.column_types.push_back(bound.output_types[i]);
  }
  timer.Restart();
  CONQUER_RETURN_NOT_OK(plan->Open());
  // Batch-at-a-time drain: the root batch capacity seeds the whole pipeline.
  RowBatch batch;
  batch.capacity = std::max<size_t>(1, exec_ctx_.batch_size);
  while (true) {
    CONQUER_ASSIGN_OR_RETURN(bool more, plan->NextBatch(&batch));
    if (!more) break;
    for (Row& row : batch.rows) rs.rows.push_back(std::move(row));
  }
  plan->Close();
  if (stats != nullptr) {
    stats->exec_seconds = timer.ElapsedSeconds();
    stats->rows_returned = rs.rows.size();
    stats->plan = CollectPlanStats(*plan);
    stats->peak_memory_bytes = EstimatePlanPeakMemory(stats->plan);
  }
  return rs;
}

Result<std::string> Database::Explain(std::string_view sql) const {
  CONQUER_ASSIGN_OR_RETURN(auto stmt, Parser::Parse(sql));
  Binder binder(&catalog_);
  CONQUER_ASSIGN_OR_RETURN(BoundQuery bound, binder.Bind(std::move(stmt)));
  ActiveQueryGuard guard(this);
  CONQUER_ASSIGN_OR_RETURN(OperatorPtr plan, Planner::Plan(bound, planner_options_, &exec_ctx_));
  return ExplainPlan(*plan);
}

Result<std::string> Database::ExplainAnalyze(std::string_view sql,
                                             QueryStats* stats) const {
  QueryStats local;
  QueryStats* out = stats != nullptr ? stats : &local;
  Timer parse_timer;
  CONQUER_ASSIGN_OR_RETURN(auto stmt, Parser::Parse(sql));
  out->parse_seconds = parse_timer.ElapsedSeconds();
  CONQUER_RETURN_NOT_OK(Execute(std::move(stmt), out).status());
  return out->ToString();
}

Result<Table*> Database::GetTable(std::string_view name) const {
  return catalog_.GetTable(name);
}

void Database::SetWriteHook(std::string_view table, WriteMaintenanceHook hook) {
  std::string key = ToLower(table);
  if (hook.after_write == nullptr) {
    write_hooks_.erase(key);
  } else {
    write_hooks_[key] = std::move(hook);
  }
}

namespace {

/// One-row, one-column result set reporting how many rows a write changed.
ResultSet RowsAffected(int64_t n) {
  ResultSet rs;
  rs.column_names.push_back("rows_affected");
  rs.column_types.push_back(DataType::kInt64);
  rs.rows.push_back({Value::Int(n)});
  return rs;
}

}  // namespace

Result<ResultSet> Database::ExecuteWrite(std::string_view sql,
                                         std::vector<Value>* touched_ids) {
  CONQUER_ASSIGN_OR_RETURN(ParsedStatement parsed,
                           Parser::ParseStatement(sql));
  if (!parsed.is_write()) {
    return Status::InvalidArgument(
        "ExecuteWrite() only accepts INSERT, UPDATE or DELETE statements");
  }

  const std::string table_name =
      parsed.kind == StatementKind::kInsert   ? parsed.insert->table_name
      : parsed.kind == StatementKind::kUpdate ? parsed.update->table_name
                                              : parsed.del->table_name;
  CONQUER_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(table_name));

  const WriteMaintenanceHook* hook = nullptr;
  auto it = write_hooks_.find(ToLower(table_name));
  if (it != write_hooks_.end()) hook = &it->second;
  int id_column = -1;
  if (hook != nullptr && !hook->id_column.empty()) {
    CONQUER_ASSIGN_OR_RETURN(
        size_t idx, table->schema().GetColumnIndex(hook->id_column));
    id_column = static_cast<int>(idx);
  }

  Binder binder(&catalog_);
  // Stamps are applied at `version` but the version is only published by
  // CommitWrite below, after the maintenance hook succeeds. The caller
  // guarantees no query overlaps this call, so the intermediate state is
  // never observed.
  const uint64_t version = table->BeginWrite();
  Result<WriteResult> executed = [&]() -> Result<WriteResult> {
    switch (parsed.kind) {
      case StatementKind::kInsert: {
        CONQUER_ASSIGN_OR_RETURN(BoundInsert bound,
                                 binder.BindInsert(std::move(parsed.insert)));
        return ExecuteInsert(table, bound, version, id_column);
      }
      case StatementKind::kUpdate: {
        CONQUER_ASSIGN_OR_RETURN(BoundUpdate bound,
                                 binder.BindUpdate(std::move(parsed.update)));
        return ExecuteUpdate(table, bound, version, id_column);
      }
      case StatementKind::kDelete: {
        CONQUER_ASSIGN_OR_RETURN(BoundDelete bound,
                                 binder.BindDelete(std::move(parsed.del)));
        return ExecuteDelete(table, bound, version, id_column);
      }
      case StatementKind::kSelect:
        break;
    }
    return Status::Internal("unreachable: SELECT in write path");
  }();

  Status status = executed.status();
  if (status.ok() && hook != nullptr && hook->after_write != nullptr) {
    status = hook->after_write(table, executed->touched_ids, version);
  }
  if (!status.ok()) {
    // Roll the write back physically. BeginWrite hands the same version to
    // the next write (committed_version_ is unchanged), so any stamps left
    // behind here would be published by that write's commit — phantom
    // inserts appearing and aborted deletes vanishing.
    table->AbortWrite(version);
    return status;
  }

  WriteResult wr = std::move(executed).value();
  if (touched_ids != nullptr) *touched_ids = std::move(wr.touched_ids);
  table->CommitWrite(version);
  // Cached plans may hold pruning metadata or row counts from before this
  // write; bumping the catalog version makes the serving layer discard them.
  BumpCatalogVersion();
  return RowsAffected(wr.rows_changed);
}

}  // namespace conquer
