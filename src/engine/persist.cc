#include "engine/persist.h"

#include <filesystem>
#include <fstream>

#include "common/str_util.h"
#include "engine/csv.h"
#include "storage/segment.h"

namespace conquer {

namespace {

constexpr const char* kNullSpelling = "\\N";

Result<DataType> TypeFromName(std::string_view name) {
  if (EqualsIgnoreCase(name, "INT64")) return DataType::kInt64;
  if (EqualsIgnoreCase(name, "DOUBLE")) return DataType::kDouble;
  if (EqualsIgnoreCase(name, "STRING")) return DataType::kString;
  if (EqualsIgnoreCase(name, "DATE")) return DataType::kDate;
  if (EqualsIgnoreCase(name, "BOOL")) return DataType::kBool;
  return Status::InvalidArgument("unknown column type '" + std::string(name) +
                                 "' in manifest");
}

CsvOptions PersistCsvOptions() {
  CsvOptions options;
  options.null_literal = kNullSpelling;
  return options;
}

/// Value::ToString prints doubles with %.6g — fine for display, lossy on
/// disk. The CSV export uses %.17g, the shortest precision guaranteed to
/// round-trip every finite double through decimal.
std::string CsvField(const Value& v, const CsvOptions& csv) {
  if (v.is_null()) return csv.null_literal;
  if (v.type() == DataType::kDouble) {
    return StringPrintf("%.17g", v.double_value());
  }
  return v.ToString();
}

Status SaveTableCsv(const Table& table, const std::string& path,
                    const CsvOptions& csv) {
  std::ofstream data(path);
  if (!data) {
    return Status::InvalidArgument("cannot write table file '" + path + "'");
  }
  std::vector<std::string> header;
  for (const ColumnDef& col : table.schema().columns()) {
    header.push_back(col.name);
  }
  data << FormatCsvLine(header, csv) << '\n';
  std::vector<std::string> fields(header.size());
  Row row;
  // Export only the rows visible at the latest committed version: dead row
  // versions must not be resurrected by a save/load cycle, and rows of
  // uncommitted writes must not leak out.
  RowCursor cursor(&table);
  for (size_t r : table.VisibleRowPositions(table.committed_version())) {
    // Materialize one row at a time: chunked tables have no contiguous
    // row vector to iterate, and a full copy would double peak memory.
    cursor.Touch(r);
    table.GetRowInto(r, &row);
    for (size_t c = 0; c < row.size(); ++c) {
      fields[c] = CsvField(row[c], csv);
    }
    data << FormatCsvLine(fields, csv) << '\n';
  }
  return Status::OK();
}

}  // namespace

Status SaveDatabase(const Database& db, const std::string& dir,
                    const DirtySchema* dirty, SaveFormat format) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create directory '" + dir +
                                   "': " + ec.message());
  }

  std::ofstream manifest(dir + "/manifest.txt");
  if (!manifest) {
    return Status::InvalidArgument("cannot write manifest in '" + dir + "'");
  }
  CsvOptions csv = PersistCsvOptions();
  for (const std::string& name : db.catalog().TableNames()) {
    CONQUER_ASSIGN_OR_RETURN(Table * table, db.GetTable(name));
    manifest << name;
    for (const ColumnDef& col : table->schema().columns()) {
      manifest << '|' << col.name << ':' << DataTypeToString(col.type);
    }
    manifest << '\n';

    if (format == SaveFormat::kBinary) {
      CONQUER_RETURN_NOT_OK(
          WriteTableSegment(table, dir + "/" + name + ".seg"));
    } else {
      CONQUER_RETURN_NOT_OK(
          SaveTableCsv(*table, dir + "/" + name + ".csv", csv));
    }
  }

  if (dirty != nullptr) {
    std::ofstream out(dir + "/dirty_schema.txt");
    if (!out) {
      return Status::InvalidArgument("cannot write dirty schema file");
    }
    for (const DirtyTableInfo& info : dirty->tables()) {
      out << info.table_name << '|' << info.id_column << '|'
          << info.prob_column << '|';
      for (size_t i = 0; i < info.foreign_ids.size(); ++i) {
        if (i > 0) out << ',';
        out << info.foreign_ids[i].column << ':'
            << info.foreign_ids[i].referenced_table;
      }
      out << '\n';
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<Database>> LoadDatabase(const std::string& dir,
                                               DirtySchema* dirty) {
  std::ifstream manifest(dir + "/manifest.txt");
  if (!manifest) {
    return Status::NotFound("no manifest.txt in '" + dir + "'");
  }
  auto db = std::make_unique<Database>();
  CsvOptions csv = PersistCsvOptions();

  std::string line;
  while (std::getline(manifest, line)) {
    if (Trim(line).empty()) continue;
    std::vector<std::string> parts = Split(line, '|');
    if (parts.size() < 2) {
      return Status::InvalidArgument("malformed manifest line: " + line);
    }
    TableSchema schema(parts[0], {});
    for (size_t i = 1; i < parts.size(); ++i) {
      std::vector<std::string> col = Split(parts[i], ':');
      if (col.size() != 2) {
        return Status::InvalidArgument("malformed column spec: " + parts[i]);
      }
      CONQUER_ASSIGN_OR_RETURN(DataType type, TypeFromName(col[1]));
      CONQUER_RETURN_NOT_OK(schema.AddColumn({col[0], type}));
    }
    CONQUER_RETURN_NOT_OK(db->CreateTable(schema));

    const std::string seg_path = dir + "/" + parts[0] + ".seg";
    if (std::filesystem::exists(seg_path)) {
      CONQUER_ASSIGN_OR_RETURN(Table * table, db->GetTable(parts[0]));
      CONQUER_RETURN_NOT_OK(LoadTableSegment(table, seg_path));
      continue;
    }
    std::ifstream data(dir + "/" + parts[0] + ".csv");
    if (!data) {
      return Status::NotFound("missing table file for '" + parts[0] + "'");
    }
    CONQUER_RETURN_NOT_OK(LoadCsv(db.get(), parts[0], &data, csv).status());
  }

  if (dirty != nullptr) {
    std::ifstream in(dir + "/dirty_schema.txt");
    if (in) {
      while (std::getline(in, line)) {
        if (Trim(line).empty()) continue;
        std::vector<std::string> parts = Split(line, '|');
        if (parts.size() != 4) {
          return Status::InvalidArgument("malformed dirty schema line: " +
                                         line);
        }
        DirtyTableInfo info;
        info.table_name = parts[0];
        info.id_column = parts[1];
        info.prob_column = parts[2];
        if (!parts[3].empty()) {
          for (const std::string& fk : Split(parts[3], ',')) {
            std::vector<std::string> pair = Split(fk, ':');
            if (pair.size() != 2) {
              return Status::InvalidArgument("malformed foreign id: " + fk);
            }
            info.foreign_ids.push_back({pair[0], pair[1]});
          }
        }
        CONQUER_RETURN_NOT_OK(dirty->AddTable(std::move(info)));
      }
    }
  }
  return db;
}

}  // namespace conquer
