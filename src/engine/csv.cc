#include "engine/csv.h"

#include <cstdlib>
#include <istream>
#include <sstream>

#include "common/str_util.h"

namespace conquer {

namespace {

/// RFC 4180 parser core. When `continues` is non-null and the input ends
/// inside an open quoted field, sets *continues = true instead of failing —
/// the caller appends the next physical line (the quoted field contains a
/// newline) and re-parses.
Result<std::vector<std::string>> ParseCsvRecord(std::string_view line,
                                                const CsvOptions& options,
                                                bool* continues) {
  enum class State { kFieldStart, kUnquoted, kQuoted, kQuoteClosed };
  std::vector<std::string> fields;
  std::string current;
  State state = State::kFieldStart;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    switch (state) {
      case State::kFieldStart:
        if (c == '"') {
          state = State::kQuoted;
        } else if (c == options.delimiter) {
          fields.emplace_back();
        } else {
          current += c;
          state = State::kUnquoted;
        }
        ++i;
        break;
      case State::kUnquoted:
        if (c == '"') {
          return Status::InvalidArgument(StringPrintf(
              "stray '\"' at position %zu: a quote must open the field", i));
        }
        if (c == options.delimiter) {
          fields.push_back(std::move(current));
          current.clear();
          state = State::kFieldStart;
        } else {
          current += c;
        }
        ++i;
        break;
      case State::kQuoted:
        if (c == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            current += '"';
            i += 2;
          } else {
            state = State::kQuoteClosed;
            ++i;
          }
        } else {
          current += c;
          ++i;
        }
        break;
      case State::kQuoteClosed:
        if (c != options.delimiter) {
          return Status::InvalidArgument(StringPrintf(
              "unexpected '%c' at position %zu after closing quote", c, i));
        }
        fields.push_back(std::move(current));
        current.clear();
        state = State::kFieldStart;
        ++i;
        break;
    }
  }
  if (state == State::kQuoted) {
    if (continues != nullptr) {
      *continues = true;
      return fields;
    }
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace

Result<std::vector<std::string>> ParseCsvLine(std::string_view line,
                                              const CsvOptions& options) {
  return ParseCsvRecord(line, options, nullptr);
}

std::string FormatCsvLine(const std::vector<std::string>& fields,
                          const CsvOptions& options) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += options.delimiter;
    const std::string& f = fields[i];
    bool needs_quotes = f.find(options.delimiter) != std::string::npos ||
                        f.find('"') != std::string::npos ||
                        f.find('\n') != std::string::npos;
    if (!needs_quotes) {
      out += f;
    } else {
      out += '"';
      for (char c : f) {
        if (c == '"') out += "\"\"";
        else out += c;
      }
      out += '"';
    }
  }
  return out;
}

namespace {

Result<Value> ConvertField(const std::string& field, DataType type,
                           const CsvOptions& options) {
  if (field == options.null_literal) return Value::Null();
  switch (type) {
    case DataType::kInt64: {
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') {
        return Status::TypeError("'" + field + "' is not an INT64");
      }
      return Value::Int(v);
    }
    case DataType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Status::TypeError("'" + field + "' is not a DOUBLE");
      }
      return Value::Double(v);
    }
    case DataType::kDate: {
      CONQUER_ASSIGN_OR_RETURN(int64_t days, ParseDate(field));
      return Value::Date(days);
    }
    case DataType::kBool: {
      if (EqualsIgnoreCase(field, "true") || field == "1") {
        return Value::Bool(true);
      }
      if (EqualsIgnoreCase(field, "false") || field == "0") {
        return Value::Bool(false);
      }
      return Status::TypeError("'" + field + "' is not a BOOL");
    }
    case DataType::kString:
      return Value::String(field);
    case DataType::kNull:
      break;
  }
  return Status::TypeError("column has unloadable type");
}

}  // namespace

Result<size_t> LoadCsv(Database* db, std::string_view table_name,
                       std::istream* input, const CsvOptions& options) {
  CONQUER_ASSIGN_OR_RETURN(Table * table, db->GetTable(table_name));
  const TableSchema& schema = table->schema();

  // Pre-size the table: a seekable input is scanned once for its newline
  // count — a cheap upper bound on the number of records (header, blank
  // lines and quoted newlines overshoot slightly) — so the row storage
  // does not reallocate during the load.
  std::streampos start = input->tellg();
  if (start != std::streampos(-1)) {
    size_t newlines = 0;
    char buf[1 << 16];
    while (input->good()) {
      input->read(buf, sizeof(buf));
      const std::streamsize got = input->gcount();
      for (std::streamsize i = 0; i < got; ++i) {
        newlines += buf[i] == '\n' ? 1 : 0;
      }
    }
    input->clear();
    input->seekg(start);
    table->Reserve(table->num_rows() + newlines + 1);
  }

  std::string line;
  size_t line_number = 0;
  if (options.has_header) {
    if (!std::getline(*input, line)) {
      return Status::InvalidArgument("missing CSV header");
    }
    ++line_number;
    CONQUER_ASSIGN_OR_RETURN(auto header, ParseCsvLine(line, options));
    if (header.size() != schema.num_columns()) {
      return Status::InvalidArgument(StringPrintf(
          "CSV header has %zu columns, table '%s' has %zu", header.size(),
          table->name().c_str(), schema.num_columns()));
    }
    for (size_t c = 0; c < header.size(); ++c) {
      if (!EqualsIgnoreCase(Trim(header[c]), schema.column(c).name)) {
        return Status::InvalidArgument(
            "CSV header column '" + header[c] + "' does not match '" +
            schema.column(c).name + "'");
      }
    }
  }

  size_t loaded = 0;
  // A logical record may span physical lines when a quoted field contains a
  // newline; accumulate until the parse no longer ends inside quotes.
  std::string record;
  size_t record_start_line = 0;
  bool in_record = false;
  while (std::getline(*input, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!in_record) {
      if (line.empty()) continue;  // blank lines between records are skipped
      record = std::move(line);
      record_start_line = line_number;
      in_record = true;
    } else {
      record += '\n';
      record += line;
    }
    bool continues = false;
    auto fields = ParseCsvRecord(record, options, &continues);
    if (continues) continue;  // open quoted field: pull the next line
    if (!fields.ok()) {
      return Status::InvalidArgument(
          StringPrintf("line %zu: %s", record_start_line,
                       fields.status().message().c_str()));
    }
    in_record = false;
    if (fields->size() != schema.num_columns()) {
      return Status::InvalidArgument(StringPrintf(
          "line %zu: expected %zu fields, got %zu", record_start_line,
          schema.num_columns(), fields->size()));
    }
    Row row;
    row.reserve(fields->size());
    for (size_t c = 0; c < fields->size(); ++c) {
      auto value = ConvertField((*fields)[c], schema.column(c).type, options);
      if (!value.ok()) {
        return Status::InvalidArgument(
            StringPrintf("line %zu, column '%s': %s", record_start_line,
                         schema.column(c).name.c_str(),
                         value.status().message().c_str()));
      }
      row.push_back(std::move(value).value());
    }
    CONQUER_RETURN_NOT_OK(table->Insert(std::move(row)));
    ++loaded;
  }
  if (in_record) {
    return Status::InvalidArgument(StringPrintf(
        "unterminated quoted field in record starting on line %zu",
        record_start_line));
  }
  return loaded;
}

Result<size_t> LoadCsvString(Database* db, std::string_view table_name,
                             std::string_view csv, const CsvOptions& options) {
  std::istringstream stream{std::string(csv)};
  return LoadCsv(db, table_name, &stream, options);
}

std::string ResultSetToCsv(const ResultSet& rs, const CsvOptions& options) {
  std::string out;
  if (options.has_header) {
    out += FormatCsvLine(rs.column_names, options);
    out += '\n';
  }
  std::vector<std::string> fields(rs.num_columns());
  for (const Row& row : rs.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      fields[c] = row[c].is_null() ? options.null_literal : row[c].ToString();
    }
    out += FormatCsvLine(fields, options);
    out += '\n';
  }
  return out;
}

}  // namespace conquer
