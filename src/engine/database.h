#ifndef CONQUER_ENGINE_DATABASE_H_
#define CONQUER_ENGINE_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/task_pool.h"
#include "storage/buffer_pool.h"
#include "exec/exec_context.h"
#include "exec/query_stats.h"
#include "exec/result_set.h"
#include "plan/binder.h"
#include "plan/planner.h"

namespace conquer {

/// \brief Post-write maintenance callback for one table.
///
/// Registered by higher layers (e.g. incremental probability maintenance in
/// prob/) that the engine cannot depend on directly. After every successful
/// write statement against the table — still inside the exclusive write
/// section, before the new version is committed — the engine invokes
/// `after_write` with the values of `id_column` in every touched row version
/// (old and new). A non-OK status aborts the write: its version stamps are
/// physically rolled back (Table::AbortWrite) and the commit is skipped, so
/// the hook must not leave partial in-place mutations of its own behind.
struct WriteMaintenanceHook {
  /// Column whose values identify the maintenance unit (e.g. the dirty
  /// cluster id column).
  std::string id_column;
  /// (table, touched id values, write version) -> status.
  std::function<Status(Table*, const std::vector<Value>&, uint64_t)>
      after_write;
};

/// \brief The top-level embedded relational engine.
///
/// Owns a catalog of in-memory tables and executes SELECT statements of the
/// supported subset. All methods are Status/Result based; no exceptions
/// escape the public API.
///
/// \code
///   Database db;
///   TableSchema schema("t", {{"a", DataType::kInt64}, {"b", DataType::kString}});
///   db.CreateTable(schema);
///   db.Insert("t", {Value::Int(1), Value::String("x")});
///   auto rs = db.Query("select a from t where b = 'x'");
/// \endcode
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table.
  Status CreateTable(TableSchema schema);

  /// Drops a table.
  Status DropTable(std::string_view name);

  /// Inserts one row (validated against the schema).
  Status Insert(std::string_view table, Row row);

  /// Bulk-inserts rows.
  Status InsertMany(std::string_view table, std::vector<Row> rows);

  /// Builds a hash index on `table(column)`.
  Status CreateIndex(std::string_view table, std::string_view column);

  /// Recomputes optimizer statistics for one table (RUNSTATS analogue).
  Status Analyze(std::string_view table);

  /// Recomputes optimizer statistics for every table.
  Status AnalyzeAll();

  /// Parses, binds, plans and executes a statement. Plain SELECTs return
  /// their rows; `EXPLAIN SELECT ...` returns the plan tree and
  /// `EXPLAIN ANALYZE SELECT ...` executes the query and returns the plan
  /// annotated with per-operator counters — both as a single-column result
  /// set with one row per output line.
  ///
  /// When `stats` is non-null it receives phase timings, per-operator
  /// metrics and the executed plan shape (unchanged for plain EXPLAIN,
  /// which does not execute).
  Result<ResultSet> Query(std::string_view sql,
                          QueryStats* stats = nullptr) const;

  /// Executes one INSERT / UPDATE / DELETE statement.
  ///
  /// The caller must guarantee exclusivity: no query may be in flight for
  /// the duration of the call (the serving layer acquires an exclusive
  /// admission ticket; embedded callers simply must not overlap it with
  /// Query). The write appends new row versions stamped with a fresh
  /// version number, runs the table's maintenance hook (if registered),
  /// commits the version so subsequent readers see it, and bumps the
  /// catalog version so cached plans are discarded.
  ///
  /// Returns a one-row result set with a single `rows_affected` column.
  /// When `touched_ids` is non-null it receives the hook id-column values
  /// of every touched row version (empty when no hook is registered for
  /// the table) — the write's maintenance scope, which tests and the
  /// fuzzer's mutation oracle verify against.
  Result<ResultSet> ExecuteWrite(std::string_view sql,
                                 std::vector<Value>* touched_ids = nullptr);

  /// Registers (or replaces) the post-write maintenance hook for `table`.
  /// Pass a hook with no callback to clear it.
  void SetWriteHook(std::string_view table, WriteMaintenanceHook hook);

  /// Executes an already-parsed statement (consumed). Fills `stats` with
  /// bind/plan/exec timings and per-operator metrics when non-null.
  Result<ResultSet> Execute(std::unique_ptr<SelectStatement> stmt,
                            QueryStats* stats = nullptr) const;

  /// Executes an already-bound query (what the serving layer's plan cache
  /// stores): plans and drains it without re-parsing or re-binding. The
  /// bound query must have been produced against this database's catalog
  /// at its current version, with every parameter already substituted.
  Result<ResultSet> ExecuteBound(BoundQuery bound,
                                 QueryStats* stats = nullptr) const;

  /// Physical plan of the statement, as an indented tree.
  Result<std::string> Explain(std::string_view sql) const;

  /// Executes the statement and renders the annotated plan tree (the string
  /// form of `EXPLAIN ANALYZE <sql>`). Fills `stats` when non-null.
  Result<std::string> ExplainAnalyze(std::string_view sql,
                                     QueryStats* stats = nullptr) const;

  /// Direct table access for bulk loading and inspection.
  Result<Table*> GetTable(std::string_view name) const;

  const Catalog& catalog() const { return catalog_; }
  Catalog* mutable_catalog() { return &catalog_; }

  /// Caps resident column-payload bytes across every table of this database
  /// (0 = unlimited). Cold chunks beyond the budget are evicted to their
  /// backing segment (or an anonymous spill file when dirty) and fault back
  /// in on first pin. Resident metadata — zone maps, MVCC stamps,
  /// dictionaries, indexes — is never evicted and does not count against
  /// the budget; see DESIGN.md §14. The initial budget comes from the
  /// CONQUER_MEMORY_BUDGET environment variable (e.g. "64m", "2g",
  /// "unlimited").
  void SetMemoryBudget(uint64_t bytes) { buffer_pool_->SetBudget(bytes); }
  uint64_t memory_budget() const { return buffer_pool_->budget(); }
  BufferPool* buffer_pool() const { return buffer_pool_.get(); }

  /// Planner configuration used by Query/Execute/Explain (e.g. greedy vs.
  /// dynamic-programming join ordering).
  void set_planner_options(const PlannerOptions& options) {
    planner_options_ = options;
  }
  const PlannerOptions& planner_options() const { return planner_options_; }

  /// Sizes the worker pool used by morsel-driven parallel operators.
  /// `n <= 1` (the default) destroys the pool and restores strictly
  /// sequential execution.
  ///
  /// Safe to call concurrently with Query: the swap is DEFERRED until every
  /// in-flight query has drained (in-flight plans hold a pointer to the
  /// current pool through their shared ExecContext, so swapping under them
  /// would race). While a reconfiguration waits, new queries block at
  /// admission, so a steady query stream cannot starve the swap. Do not
  /// call from inside a running query's thread — it would wait on itself.
  void SetThreads(size_t n);

  /// Worker threads queries run with (1 means sequential).
  size_t num_threads() const {
    return pool_ != nullptr ? pool_->num_threads() : 1;
  }

  /// Execution tuning (morsel size, hash-partition fanout). The pool
  /// pointer inside is managed by SetThreads; tests lower morsel_size to
  /// exercise the parallel paths on small tables.
  ExecContext* mutable_exec_context() { return &exec_ctx_; }
  const ExecContext& exec_context() const { return exec_ctx_; }

  /// Monotone counter bumped by every catalog-shape or statistics change
  /// (CreateTable, DropTable, Analyze). The serving layer's plan cache
  /// tags entries with the version they were bound at and discards entries
  /// from older versions, since cached bound queries hold raw Table
  /// pointers and plans built from pre-Analyze statistics.
  uint64_t catalog_version() const {
    return catalog_version_.load(std::memory_order_acquire);
  }

  /// Queries currently inside ExecuteBound/Explain (approximate; for
  /// stats and tests).
  size_t active_queries() const {
    std::lock_guard<std::mutex> lock(exec_mu_);
    return active_queries_;
  }

  /// Morsel tasks queued but not yet running (0 without a pool). Reads the
  /// pool under the same mutex SetThreads swaps it under.
  size_t scheduler_backlog() const {
    std::lock_guard<std::mutex> lock(exec_mu_);
    return pool_ != nullptr ? pool_->num_queued() : 0;
  }

 private:
  /// RAII in-flight marker. Blocks while a SetThreads reconfiguration is
  /// waiting so the swap cannot be starved, then counts the query in;
  /// releases and wakes any waiting reconfiguration on destruction.
  class ActiveQueryGuard {
   public:
    explicit ActiveQueryGuard(const Database* db);
    ~ActiveQueryGuard();
    ActiveQueryGuard(const ActiveQueryGuard&) = delete;
    ActiveQueryGuard& operator=(const ActiveQueryGuard&) = delete;

   private:
    const Database* db_;
  };

  void BumpCatalogVersion() {
    catalog_version_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Declared before the catalog so destruction (reverse order) tears the
  /// tables — whose chunks unregister themselves — down first.
  std::unique_ptr<BufferPool> buffer_pool_ =
      std::make_unique<BufferPool>(BufferPool::DefaultBudgetFromEnv());
  Catalog catalog_;
  PlannerOptions planner_options_;
  /// Post-write maintenance hooks, keyed by lower-cased table name.
  std::unordered_map<std::string, WriteMaintenanceHook> write_hooks_;
  std::unique_ptr<TaskPool> pool_;
  ExecContext exec_ctx_;
  std::atomic<uint64_t> catalog_version_{0};

  // Query/reconfiguration interlock (see SetThreads).
  mutable std::mutex exec_mu_;
  mutable std::condition_variable exec_cv_;
  mutable size_t active_queries_ = 0;
  mutable bool reconfig_waiting_ = false;
};

}  // namespace conquer

#endif  // CONQUER_ENGINE_DATABASE_H_
