#include "engine/plan_cache.h"

#include <algorithm>
#include <utility>

namespace conquer {

PlanCache::PlanCache(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

std::optional<BoundQuery> PlanCache::Lookup(const std::string& key,
                                            uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second->epoch != epoch) {
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidated;
    ++stats_.misses;
    return std::nullopt;
  }
  // Move to MRU position; iterators stay valid across splice.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->bound.Clone();
}

void PlanCache::Insert(const std::string& key, uint64_t epoch,
                       BoundQuery bound) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent misses on one key both insert; last writer wins.
    it->second->epoch = epoch;
    it->second->bound = std::move(bound);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, epoch, std::move(bound)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evicted;
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidated += lru_.size();
  lru_.clear();
  index_.clear();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats s = stats_;
  s.entries = lru_.size();
  return s;
}

}  // namespace conquer
