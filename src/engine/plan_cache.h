#ifndef CONQUER_ENGINE_PLAN_CACHE_H_
#define CONQUER_ENGINE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "plan/binder.h"

namespace conquer {

/// Cache effectiveness counters (monotone except `entries`).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidated = 0;  ///< entries discarded by a catalog-epoch bump
  uint64_t evicted = 0;      ///< entries discarded by LRU capacity pressure
  size_t entries = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// \brief Thread-safe LRU cache of bound query templates.
///
/// Keyed on normalized SQL (NormalizeSql), so textual variants of one query
/// share an entry. The cache stores BoundQuery master copies — parse+bind is
/// the work it skips; planning still runs per execution because physical
/// operator trees are stateful and borrow expressions from their BoundQuery.
/// Lookup therefore hands out a deep Clone of the master, never the master
/// itself.
///
/// Entries are tagged with the catalog epoch they were bound under
/// (Database::catalog_version). A cached BoundQuery holds raw Table
/// pointers and reflects the statistics current at bind time, so any
/// CreateTable/DropTable/Analyze makes it stale: lookups carrying a newer
/// epoch drop the stale entry and report a miss.
class PlanCache {
 public:
  /// `capacity` is clamped to at least 1.
  explicit PlanCache(size_t capacity);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns a clone of the cached bound query for `key`, provided the
  /// entry was bound at `epoch`. A stale entry is erased (counted as
  /// `invalidated`) and the lookup reports a miss.
  std::optional<BoundQuery> Lookup(const std::string& key, uint64_t epoch);

  /// Stores (replacing any existing entry for `key`) and evicts the least
  /// recently used entry when over capacity.
  void Insert(const std::string& key, uint64_t epoch, BoundQuery bound);

  /// Drops every entry (e.g. when the serving layer runs DDL and does not
  /// want stale entries lingering until their next lookup).
  void Clear();

  PlanCacheStats stats() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    uint64_t epoch = 0;
    BoundQuery bound;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  PlanCacheStats stats_;
};

}  // namespace conquer

#endif  // CONQUER_ENGINE_PLAN_CACHE_H_
