#ifndef CONQUER_ENGINE_SESSION_H_
#define CONQUER_ENGINE_SESSION_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "exec/query_stats.h"
#include "exec/result_set.h"
#include "types/value.h"

namespace conquer {

class QueryService;

/// A statement prepared in a session: the original text (for transparent
/// re-prepare after DDL), its normalized plan-cache key, and the number of
/// '?' placeholders the binder found.
struct PreparedStatement {
  std::string name;
  std::string sql;
  std::string key;
  int num_params = 0;
};

/// Per-execution outcome flags the serving layer reports alongside the
/// result (for tests, the shell and benchmarks).
struct ExecInfo {
  bool cache_hit = false;   ///< bound template came from the plan cache
  bool reprepared = false;  ///< prepared statement was stale and rebound
};

/// \brief One client's connection to a QueryService.
///
/// A session is the unit of client state: it owns the client's prepared
/// statements and counts its queries. It is intentionally NOT thread-safe —
/// the concurrency model is one session per client thread, with all
/// cross-session coordination (admission, plan cache, catalog epochs)
/// living in the shared QueryService. The service must outlive every
/// session it created.
class Session {
 public:
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Executes ad-hoc SQL through the service: shared admission, plan-cache
  /// lookup on the normalized text, EXPLAIN pass-through.
  Result<ResultSet> Execute(std::string_view sql, QueryStats* stats = nullptr,
                            ExecInfo* info = nullptr);

  /// Parses, binds and caches `sql` under `name` (replacing any previous
  /// statement with that name). The statement may contain '?' placeholders;
  /// the binder infers each placeholder's type from its context.
  Status Prepare(std::string_view name, std::string_view sql);

  /// Executes a prepared statement with `params` bound positionally to its
  /// placeholders. If DDL or ANALYZE invalidated the cached template, the
  /// statement is transparently re-bound from its stored text.
  Result<ResultSet> ExecutePrepared(std::string_view name,
                                    const std::vector<Value>& params,
                                    QueryStats* stats = nullptr,
                                    ExecInfo* info = nullptr);

  /// Forgets a prepared statement; NotFound if the name is unknown.
  Status DeallocatePrepared(std::string_view name);

  const PreparedStatement* GetPrepared(std::string_view name) const;
  std::vector<std::string> PreparedNames() const;

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  uint64_t queries_executed() const { return queries_executed_; }

 private:
  friend class QueryService;

  Session(QueryService* service, uint64_t id, std::string name)
      : service_(service), id_(id), name_(std::move(name)) {}

  QueryService* service_;
  const uint64_t id_;
  const std::string name_;
  uint64_t queries_executed_ = 0;
  std::map<std::string, PreparedStatement, std::less<>> prepared_;
};

}  // namespace conquer

#endif  // CONQUER_ENGINE_SESSION_H_
