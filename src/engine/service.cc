#include "engine/service.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/str_util.h"
#include "sql/normalize.h"
#include "sql/parser.h"

namespace conquer {

namespace {

size_t DefaultMaxConcurrent() {
  const size_t hw = std::thread::hardware_concurrency();
  return std::max<size_t>(2, hw);
}

bool IsExplain(const std::string& normalized_sql) {
  return normalized_sql.rfind("EXPLAIN", 0) == 0;
}

/// True when the normalized SQL starts with the word `kw`. The write words
/// are soft keywords, so normalization preserves their original case —
/// match case-insensitively and require a word boundary.
bool StartsWithWord(const std::string& normalized_sql, std::string_view kw) {
  if (normalized_sql.size() < kw.size()) return false;
  if (normalized_sql.size() > kw.size() && normalized_sql[kw.size()] != ' ') {
    return false;
  }
  return EqualsIgnoreCase(
      std::string_view(normalized_sql).substr(0, kw.size()), kw);
}

bool IsWrite(const std::string& normalized_sql) {
  return StartsWithWord(normalized_sql, "INSERT") ||
         StartsWithWord(normalized_sql, "UPDATE") ||
         StartsWithWord(normalized_sql, "DELETE");
}

}  // namespace

QueryService::QueryService(Database* db, ServiceOptions options)
    : db_(db),
      gate_(options.max_concurrent_queries > 0 ? options.max_concurrent_queries
                                               : DefaultMaxConcurrent()),
      cache_(options.plan_cache_capacity) {}

std::unique_ptr<Session> QueryService::CreateSession(std::string name) {
  const uint64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  sessions_created_.fetch_add(1, std::memory_order_relaxed);
  if (name.empty()) name = "session-" + std::to_string(id);
  // Not make_unique: the constructor is private to Session's friends.
  return std::unique_ptr<Session>(new Session(this, id, std::move(name)));
}

Result<ResultSet> QueryService::Record(Result<ResultSet> r) {
  queries_executed_.fetch_add(1, std::memory_order_relaxed);
  if (!r.ok()) query_errors_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

Result<BoundQuery> QueryService::BindAndCache(std::string_view sql,
                                              const std::string& key,
                                              uint64_t epoch) {
  std::unique_ptr<SelectStatement> stmt;
  CONQUER_ASSIGN_OR_RETURN(stmt, Parser::Parse(sql));
  Binder binder(&db_->catalog());
  BoundQuery bound;
  CONQUER_ASSIGN_OR_RETURN(bound, binder.Bind(std::move(stmt)));
  cache_.Insert(key, epoch, bound.Clone());
  return bound;
}

Result<ResultSet> QueryService::ExecuteSql(std::string_view sql,
                                           QueryStats* stats, ExecInfo* info) {
  Result<std::string> norm = NormalizeSql(sql);
  if (!norm.ok()) {
    // Text the lexer rejects: let the regular path produce the real error.
    SharedAdmission admission(&gate_);
    return Record(db_->Query(sql, stats));
  }
  const std::string key = std::move(norm).value();
  if (IsWrite(key)) {
    // Writes run alone: the exclusive ticket drains in-flight queries and
    // blocks new ones, so version stamping and incremental probability
    // maintenance need no row-level synchronization. ExecuteWrite bumps the
    // catalog epoch, invalidating cached plans bound over the old data.
    ExclusiveAdmission admission(&gate_);
    return Record(db_->ExecuteWrite(sql));
  }
  if (IsExplain(key)) {
    // EXPLAIN [ANALYZE] is diagnostic output, not a row stream worth
    // caching; run it straight through the Database.
    SharedAdmission admission(&gate_);
    return Record(db_->Query(sql, stats));
  }

  SharedAdmission admission(&gate_);
  // While we hold a shared slot no DDL can run, so the epoch read here
  // stays valid through bind and execution.
  const uint64_t epoch = db_->catalog_version();
  if (std::optional<BoundQuery> cached = cache_.Lookup(key, epoch)) {
    if (info != nullptr) info->cache_hit = true;
    return Record(db_->ExecuteBound(std::move(*cached), stats));
  }
  Result<BoundQuery> bound = BindAndCache(sql, key, epoch);
  if (!bound.ok()) return Record(bound.status());
  return Record(db_->ExecuteBound(std::move(bound).value(), stats));
}

Result<PreparedStatement> QueryService::PrepareInternal(std::string_view name,
                                                        std::string_view sql) {
  std::string key;
  CONQUER_ASSIGN_OR_RETURN(key, NormalizeSql(sql));
  if (IsExplain(key)) {
    return Status::InvalidArgument(
        "cannot prepare an EXPLAIN statement; prepare the SELECT and use "
        "EXPLAIN ad hoc");
  }
  if (IsWrite(key)) {
    return Status::InvalidArgument(
        "cannot prepare a write statement; execute INSERT/UPDATE/DELETE "
        "ad hoc");
  }
  SharedAdmission admission(&gate_);
  const uint64_t epoch = db_->catalog_version();
  int num_params = 0;
  if (std::optional<BoundQuery> cached = cache_.Lookup(key, epoch)) {
    num_params = cached->stmt->num_params;
  } else {
    BoundQuery bound;
    CONQUER_ASSIGN_OR_RETURN(bound, BindAndCache(sql, key, epoch));
    num_params = bound.stmt->num_params;
  }
  PreparedStatement ps;
  ps.name = std::string(name);
  ps.sql = std::string(sql);
  ps.key = std::move(key);
  ps.num_params = num_params;
  return ps;
}

Result<ResultSet> QueryService::ExecutePreparedInternal(
    const PreparedStatement& ps, const std::vector<Value>& params,
    QueryStats* stats, ExecInfo* info) {
  prepared_executions_.fetch_add(1, std::memory_order_relaxed);
  SharedAdmission admission(&gate_);
  const uint64_t epoch = db_->catalog_version();
  BoundQuery bound;
  if (std::optional<BoundQuery> cached = cache_.Lookup(ps.key, epoch)) {
    if (info != nullptr) info->cache_hit = true;
    bound = std::move(*cached);
  } else {
    // The template was evicted or invalidated by DDL/ANALYZE since Prepare:
    // transparently re-bind from the stored text.
    Result<BoundQuery> fresh = BindAndCache(ps.sql, ps.key, epoch);
    if (!fresh.ok()) return Record(fresh.status());
    bound = std::move(fresh).value();
    reprepares_.fetch_add(1, std::memory_order_relaxed);
    if (info != nullptr) info->reprepared = true;
  }
  Status s = BindParameters(bound.stmt.get(), params);
  if (!s.ok()) return Record(std::move(s));
  return Record(db_->ExecuteBound(std::move(bound), stats));
}

Status QueryService::CreateTable(TableSchema schema) {
  ExclusiveAdmission admission(&gate_);
  return db_->CreateTable(std::move(schema));
}

Status QueryService::DropTable(std::string_view name) {
  ExclusiveAdmission admission(&gate_);
  return db_->DropTable(name);
}

Status QueryService::Insert(std::string_view table, Row row) {
  ExclusiveAdmission admission(&gate_);
  return db_->Insert(table, std::move(row));
}

Status QueryService::InsertMany(std::string_view table, std::vector<Row> rows) {
  ExclusiveAdmission admission(&gate_);
  return db_->InsertMany(table, std::move(rows));
}

Status QueryService::CreateIndex(std::string_view table,
                                 std::string_view column) {
  ExclusiveAdmission admission(&gate_);
  return db_->CreateIndex(table, column);
}

Status QueryService::Analyze(std::string_view table) {
  ExclusiveAdmission admission(&gate_);
  return db_->Analyze(table);
}

Status QueryService::AnalyzeAll() {
  ExclusiveAdmission admission(&gate_);
  return db_->AnalyzeAll();
}

void QueryService::SetThreads(size_t n) {
  // Exclusive admission has already drained in-flight queries, so the
  // Database-level wait inside SetThreads returns immediately.
  ExclusiveAdmission admission(&gate_);
  db_->SetThreads(n);
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.queries_executed = queries_executed_.load(std::memory_order_relaxed);
  s.query_errors = query_errors_.load(std::memory_order_relaxed);
  s.prepared_executions = prepared_executions_.load(std::memory_order_relaxed);
  s.reprepares = reprepares_.load(std::memory_order_relaxed);
  s.sessions_created = sessions_created_.load(std::memory_order_relaxed);
  s.plan_cache = cache_.stats();
  s.admission = gate_.stats();
  s.scheduler_backlog = db_->scheduler_backlog();
  return s;
}

}  // namespace conquer
