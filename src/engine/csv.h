#ifndef CONQUER_ENGINE_CSV_H_
#define CONQUER_ENGINE_CSV_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "engine/database.h"

namespace conquer {

/// \brief CSV options shared by the reader and writer.
struct CsvOptions {
  char delimiter = ',';
  /// Spelling that reads/writes as SQL NULL.
  std::string null_literal = "";
  /// Reader: first line holds column names (must match the schema when a
  /// schema is supplied).
  bool has_header = true;
};

/// \brief Parses one CSV record into fields (strict RFC-4180 quoting: a
/// quote may only open at the start of a field, "" escapes a quote inside a
/// quoted field, and nothing may follow a closing quote except the
/// delimiter). A quote in the middle of an unquoted field, trailing
/// characters after a closing quote, or an unterminated quote are
/// InvalidArgument errors. Exposed for testing.
Result<std::vector<std::string>> ParseCsvLine(std::string_view line,
                                              const CsvOptions& options);

/// \brief Renders fields as one CSV line (quoting when needed).
std::string FormatCsvLine(const std::vector<std::string>& fields,
                          const CsvOptions& options);

/// \brief Loads CSV text into an existing table, converting each field to
/// the column's declared type (INT64, DOUBLE, DATE "YYYY-MM-DD", BOOL
/// true/false, STRING). Returns the number of rows loaded.
///
/// Fields equal to `options.null_literal` load as NULL. Malformed rows
/// abort the load with the 1-based line number (of the record's first
/// physical line) in the error message.
///
/// Quoted fields may contain the delimiter, escaped quotes ("") and
/// newlines: a record whose quoted field spans physical lines is
/// accumulated until the quote closes, so FormatCsvLine output always
/// loads back. `\r\n` line endings are accepted; blank lines *between*
/// records are skipped (blank lines inside a quoted field are data).
Result<size_t> LoadCsv(Database* db, std::string_view table_name,
                       std::istream* input, const CsvOptions& options = {});

/// \brief Convenience overload reading from a string.
Result<size_t> LoadCsvString(Database* db, std::string_view table_name,
                             std::string_view csv,
                             const CsvOptions& options = {});

/// \brief Writes a result set as CSV (header first when configured).
std::string ResultSetToCsv(const ResultSet& rs, const CsvOptions& options = {});

}  // namespace conquer

#endif  // CONQUER_ENGINE_CSV_H_
