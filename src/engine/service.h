#ifndef CONQUER_ENGINE_SERVICE_H_
#define CONQUER_ENGINE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/admission.h"
#include "engine/database.h"
#include "engine/plan_cache.h"
#include "engine/session.h"

namespace conquer {

struct ServiceOptions {
  /// Queries admitted concurrently; 0 picks max(2, hardware_concurrency).
  /// More in-flight queries than this wait in FIFO order.
  size_t max_concurrent_queries = 0;

  /// Plan-cache capacity in entries (LRU beyond that).
  size_t plan_cache_capacity = 128;
};

struct ServiceStats {
  uint64_t queries_executed = 0;    ///< attempts, successful or not
  uint64_t query_errors = 0;
  uint64_t prepared_executions = 0;
  uint64_t reprepares = 0;          ///< stale prepared statements rebound
  uint64_t sessions_created = 0;
  PlanCacheStats plan_cache;
  AdmissionGate::Stats admission;
  size_t scheduler_backlog = 0;     ///< morsel tasks queued in the TaskPool
};

/// \brief Multi-client serving layer over one Database.
///
/// The service is the thread-safe front door: any number of threads may use
/// it (each through its own Session, or via ExecuteSql directly) while the
/// underlying Database and its single TaskPool stay shared. Three
/// mechanisms make that safe and fast:
///
///  - Admission control. Queries enter under a shared admission slot (at
///    most `max_concurrent_queries` at once, FIFO-fair), so N clients
///    multiplex onto the morsel scheduler instead of oversubscribing it.
///    DDL, writes and pool resizes enter exclusively: they run alone,
///    which is what lets the query path read catalog and table data — and
///    resolve dictionary codes — without per-row locks.
///
///  - Plan caching. Bound statements are cached under their normalized
///    text and the catalog epoch they were bound at; a hit skips parse and
///    bind. Epoch bumps (CreateTable/DropTable/Analyze) invalidate lazily.
///
///  - Prepared statements. Sessions bind '?' placeholders per execution
///    against the cached template, so the per-query cost on the hot path
///    is parameter substitution + physical planning + execution.
class QueryService {
 public:
  explicit QueryService(Database* db, ServiceOptions options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Opens a client session. The service must outlive it.
  std::unique_ptr<Session> CreateSession(std::string name = "");

  /// Session-less ad-hoc execution (same path Session::Execute takes).
  Result<ResultSet> ExecuteSql(std::string_view sql,
                               QueryStats* stats = nullptr,
                               ExecInfo* info = nullptr);

  /// \name Write/DDL gateways
  /// Run under exclusive admission: they wait for in-flight queries to
  /// drain and keep new ones out while they mutate shared state.
  /// @{
  Status CreateTable(TableSchema schema);
  Status DropTable(std::string_view name);
  Status Insert(std::string_view table, Row row);
  Status InsertMany(std::string_view table, std::vector<Row> rows);
  Status CreateIndex(std::string_view table, std::string_view column);
  Status Analyze(std::string_view table);
  Status AnalyzeAll();
  void SetThreads(size_t n);
  /// @}

  ServiceStats stats() const;

  Database* database() { return db_; }
  const Database* database() const { return db_; }
  size_t max_concurrent_queries() const { return gate_.max_shared(); }
  size_t plan_cache_capacity() const { return cache_.capacity(); }

 private:
  friend class Session;

  /// Validates and caches a statement, returning its session-side handle.
  Result<PreparedStatement> PrepareInternal(std::string_view name,
                                            std::string_view sql);

  /// Clone-from-cache (or transparent re-prepare), parameter substitution,
  /// execution — all under one shared admission slot.
  Result<ResultSet> ExecutePreparedInternal(const PreparedStatement& ps,
                                            const std::vector<Value>& params,
                                            QueryStats* stats, ExecInfo* info);

  /// Parses and binds `sql` and caches the result under `key`/`epoch`.
  /// Caller must hold a shared admission slot (it pins the catalog epoch).
  Result<BoundQuery> BindAndCache(std::string_view sql, const std::string& key,
                                  uint64_t epoch);

  /// Tallies one query attempt; returns `r` unchanged.
  Result<ResultSet> Record(Result<ResultSet> r);

  Database* const db_;
  AdmissionGate gate_;
  PlanCache cache_;
  std::atomic<uint64_t> queries_executed_{0};
  std::atomic<uint64_t> query_errors_{0};
  std::atomic<uint64_t> prepared_executions_{0};
  std::atomic<uint64_t> reprepares_{0};
  std::atomic<uint64_t> sessions_created_{0};
  std::atomic<uint64_t> next_session_id_{1};
};

}  // namespace conquer

#endif  // CONQUER_ENGINE_SERVICE_H_
