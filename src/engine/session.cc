#include "engine/session.h"

#include <utility>

#include "engine/service.h"

namespace conquer {

Result<ResultSet> Session::Execute(std::string_view sql, QueryStats* stats,
                                   ExecInfo* info) {
  ++queries_executed_;
  return service_->ExecuteSql(sql, stats, info);
}

Status Session::Prepare(std::string_view name, std::string_view sql) {
  if (name.empty()) {
    return Status::InvalidArgument("prepared statement name must not be empty");
  }
  Result<PreparedStatement> ps = service_->PrepareInternal(name, sql);
  if (!ps.ok()) return ps.status();
  prepared_[std::string(name)] = std::move(ps).value();
  return Status::OK();
}

Result<ResultSet> Session::ExecutePrepared(std::string_view name,
                                           const std::vector<Value>& params,
                                           QueryStats* stats, ExecInfo* info) {
  auto it = prepared_.find(name);
  if (it == prepared_.end()) {
    return Status::NotFound("no prepared statement named '" +
                            std::string(name) + "' in this session");
  }
  ++queries_executed_;
  return service_->ExecutePreparedInternal(it->second, params, stats, info);
}

Status Session::DeallocatePrepared(std::string_view name) {
  auto it = prepared_.find(name);
  if (it == prepared_.end()) {
    return Status::NotFound("no prepared statement named '" +
                            std::string(name) + "' in this session");
  }
  prepared_.erase(it);
  return Status::OK();
}

const PreparedStatement* Session::GetPrepared(std::string_view name) const {
  auto it = prepared_.find(name);
  return it == prepared_.end() ? nullptr : &it->second;
}

std::vector<std::string> Session::PreparedNames() const {
  std::vector<std::string> names;
  names.reserve(prepared_.size());
  for (const auto& [name, ps] : prepared_) names.push_back(name);
  return names;
}

}  // namespace conquer
