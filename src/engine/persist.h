#ifndef CONQUER_ENGINE_PERSIST_H_
#define CONQUER_ENGINE_PERSIST_H_

#include <string>

#include "common/result.h"
#include "core/dirty_schema.h"
#include "engine/database.h"

namespace conquer {

/// \brief On-disk layout written by SaveDatabase:
///
///   <dir>/manifest.txt       one line per table: name|col:TYPE|col:TYPE|...
///   <dir>/<table>.csv        data with header, NULLs spelled \N
///   <dir>/dirty_schema.txt   (optional) one line per dirty table:
///                            table|id_col|prob_col|fk:ref,fk:ref,...
///
/// The format is deliberately plain text so saved databases are diffable
/// and loadable by external tools; it is not a transactional store.
/// \{

/// Saves every table of `db` (and the dirty annotations if supplied) under
/// `dir`, creating the directory.
Status SaveDatabase(const Database& db, const std::string& dir,
                    const DirtySchema* dirty = nullptr);

/// Loads a database previously written by SaveDatabase. When `dirty` is
/// non-null and <dir>/dirty_schema.txt exists, the annotations are loaded
/// into it.
Result<std::unique_ptr<Database>> LoadDatabase(const std::string& dir,
                                               DirtySchema* dirty = nullptr);

/// \}

}  // namespace conquer

#endif  // CONQUER_ENGINE_PERSIST_H_
