#ifndef CONQUER_ENGINE_PERSIST_H_
#define CONQUER_ENGINE_PERSIST_H_

#include <string>

#include "common/result.h"
#include "core/dirty_schema.h"
#include "engine/database.h"

namespace conquer {

/// How SaveDatabase lays table data on disk.
enum class SaveFormat {
  /// One self-contained binary segment per table (`<table>.seg`, see
  /// storage/segment.h). Bit-exact: doubles round-trip by bit pattern,
  /// NULL and empty string stay distinct, and MVCC version stamps are
  /// preserved verbatim — a reloaded database answers every snapshot
  /// exactly like the saved one. Reloaded chunks stay on disk and fault
  /// in through the database's buffer pool, so loading respects the
  /// memory budget.
  kBinary,
  /// Plain-text CSV export (`<table>.csv`, NULLs spelled \N, doubles
  /// printed with %.17g so finite values survive a round-trip). Exports
  /// only the rows visible at the latest committed version — dead row
  /// versions are not resurrected — which also means per-version history
  /// is flattened. Meant for diffing and external tools.
  kCsv,
};

/// \brief On-disk layout written by SaveDatabase:
///
///   <dir>/manifest.txt       one line per table: name|col:TYPE|col:TYPE|...
///   <dir>/<table>.seg        binary segment (SaveFormat::kBinary)
///   <dir>/<table>.csv        CSV export (SaveFormat::kCsv)
///   <dir>/dirty_schema.txt   (optional) one line per dirty table:
///                            table|id_col|prob_col|fk:ref,fk:ref,...
///
/// LoadDatabase prefers `<table>.seg` and falls back to `<table>.csv`, so
/// either format (or a directory holding a mix) loads.
/// \{

/// Saves every table of `db` (and the dirty annotations if supplied) under
/// `dir`, creating the directory.
Status SaveDatabase(const Database& db, const std::string& dir,
                    const DirtySchema* dirty = nullptr,
                    SaveFormat format = SaveFormat::kBinary);

/// Loads a database previously written by SaveDatabase. When `dirty` is
/// non-null and <dir>/dirty_schema.txt exists, the annotations are loaded
/// into it. The returned database's memory budget comes from
/// CONQUER_MEMORY_BUDGET (see Database::SetMemoryBudget); binary tables
/// load lazily under it.
Result<std::unique_ptr<Database>> LoadDatabase(const std::string& dir,
                                               DirtySchema* dirty = nullptr);

/// \}

}  // namespace conquer

#endif  // CONQUER_ENGINE_PERSIST_H_
