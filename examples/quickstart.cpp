// Quickstart: build a small dirty database, ask for clean answers, and
// compare against ordinary query answering and offline cleaning.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "core/clean_engine.h"
#include "engine/database.h"

using namespace conquer;

namespace {

void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // 1. A dirty `employee` table. Tuples sharing an `id` are duplicate
  //    representations of the same person, produced upstream by a tuple
  //    matcher; `prob` is each representation's probability of being the
  //    one in the (unknown) clean database.
  Database db;
  Check(db.CreateTable(TableSchema("employee", {{"id", DataType::kString},
                                                {"name", DataType::kString},
                                                {"salary", DataType::kInt64},
                                                {"dept", DataType::kString},
                                                {"prob", DataType::kDouble}})));
  auto insert = [&](const char* id, const char* name, int64_t salary,
                    const char* dept, double p) {
    Check(db.Insert("employee",
                    {Value::String(id), Value::String(name),
                     Value::Int(salary), Value::String(dept),
                     Value::Double(p)}));
  };
  insert("e1", "Ann Smith", 95000, "engineering", 0.45);
  insert("e1", "Anne Smith", 61000, "engineering", 0.55);
  insert("e2", "Bob Jones", 72000, "marketing", 0.6);
  insert("e2", "Robert Jones", 70500, "sales", 0.4);
  insert("e3", "Carla Diaz", 83000, "engineering", 1.0);

  // 2. Register the dirty-table metadata: which column is the cluster
  //    identifier and which carries the probabilities.
  DirtySchema dirty;
  Check(dirty.AddTable({"employee", "id", "prob", {}}));

  // 3. Ask for clean answers: who earns more than $75K?
  CleanAnswerEngine engine(&db, &dirty);
  const char* query =
      "select id from employee e where salary > 75000";

  std::printf("Query: %s\n\n", query);
  std::printf("Rewritten SQL executed under the hood:\n  %s\n\n",
              engine.RewrittenSql(query).value().c_str());

  auto answers = engine.Query(query);
  Check(answers.status());
  answers->SortByProbabilityDesc();
  std::printf("Clean answers (entity, probability of being in the clean "
              "database):\n%s\n",
              answers->ToString().c_str());

  // 4. Contrast with the two naive approaches.
  auto ordinary = db.Query("select distinct id from employee e "
                           "where salary > 75000");
  Check(ordinary.status());
  std::printf("Ordinary querying of the dirty data returns %zu entities, "
              "with no way to tell\nthat e3 is certain while e1 is only "
              "45%% credible.\n\n",
              ordinary->num_rows());

  OfflineCleaningBaseline baseline(&db, &dirty);
  auto offline = baseline.Query("select id from employee e "
                                "where salary > 75000");
  Check(offline.status());
  std::printf("Offline cleaning (keep the max-probability duplicate) "
              "returns %zu entities --\ne1's high-salary duplicate is "
              "discarded and the answer is silently lost.\n",
              offline->num_rows());

  // 5. Consistent answers (certainty 1) are a special case.
  auto consistent = answers->ConsistentAnswers();
  std::printf("\nConsistent answers (probability 1): %zu\n",
              consistent.size());
  return 0;
}
