// The paper's running example (Sections 1-3): the loyalty-card CRM
// database of Figure 1 and the order/customer database of Figure 2,
// including the non-rewritable query of Example 7.
//
// Run:  ./build/examples/crm_dirty_customers

#include <cstdio>

#include "core/clean_engine.h"
#include "core/naive_eval.h"
#include "engine/database.h"

using namespace conquer;

namespace {

void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

void Figure1() {
  std::printf("=== Figure 1: loyalty cards over duplicated customers ===\n");
  Database db;
  DirtySchema dirty;
  Check(db.CreateTable(TableSchema("loyaltycard",
                                   {{"cardid", DataType::kInt64},
                                    {"custfk", DataType::kString},
                                    {"prob", DataType::kDouble}})));
  Check(db.Insert("loyaltycard",
                  {Value::Int(111), Value::String("c1"), Value::Double(0.4)}));
  Check(db.Insert("loyaltycard",
                  {Value::Int(111), Value::String("c2"), Value::Double(0.6)}));
  Check(db.CreateTable(TableSchema("customer",
                                   {{"custid", DataType::kString},
                                    {"name", DataType::kString},
                                    {"income", DataType::kInt64},
                                    {"prob", DataType::kDouble}})));
  auto cust = [&](const char* id, const char* name, int64_t income, double p) {
    Check(db.Insert("customer", {Value::String(id), Value::String(name),
                                 Value::Int(income), Value::Double(p)}));
  };
  cust("c1", "John", 120000, 0.9);
  cust("c1", "John", 80000, 0.1);
  cust("c2", "Mary", 140000, 0.4);
  cust("c2", "Marion", 40000, 0.6);
  Check(dirty.AddTable(
      {"loyaltycard", "cardid", "prob", {{"custfk", "customer"}}}));
  Check(dirty.AddTable({"customer", "custid", "prob", {}}));

  const char* query =
      "select l.cardid from loyaltycard l, customer c "
      "where l.custfk = c.custid and c.income > 100000";
  std::printf("Cards of customers earning above $100K:\n  %s\n\n", query);

  CleanAnswerEngine engine(&db, &dirty);
  auto answers = engine.Query(query);
  Check(answers.status());
  std::printf("%s", answers->ToString().c_str());
  std::printf("(The paper: card 111 is a clean answer with probability "
              "0.6.)\n\n");

  OfflineCleaningBaseline baseline(&db, &dirty);
  auto offline = baseline.Query(query);
  Check(offline.status());
  std::printf("Offline cleaning first would return %zu rows -- the answer "
              "disappears\nbecause the kept duplicates (card->c2, "
              "c2->Marion/$40K) never join.\n\n",
              offline->num_rows());
}

void Figure2() {
  std::printf("=== Figure 2: orders over duplicated customers ===\n");
  Database db;
  DirtySchema dirty;
  Check(db.CreateTable(TableSchema("orders", {{"id", DataType::kString},
                                              {"cidfk", DataType::kString},
                                              {"quantity", DataType::kInt64},
                                              {"prob", DataType::kDouble}})));
  auto ord = [&](const char* id, const char* cid, int64_t q, double p) {
    Check(db.Insert("orders", {Value::String(id), Value::String(cid),
                               Value::Int(q), Value::Double(p)}));
  };
  ord("o1", "c1", 3, 1.0);
  ord("o2", "c1", 2, 0.5);
  ord("o2", "c2", 5, 0.5);
  Check(db.CreateTable(TableSchema("customer",
                                   {{"id", DataType::kString},
                                    {"name", DataType::kString},
                                    {"balance", DataType::kInt64},
                                    {"prob", DataType::kDouble}})));
  auto cust = [&](const char* id, const char* name, int64_t b, double p) {
    Check(db.Insert("customer", {Value::String(id), Value::String(name),
                                 Value::Int(b), Value::Double(p)}));
  };
  cust("c1", "John", 20000, 0.7);
  cust("c1", "John", 30000, 0.3);
  cust("c2", "Mary", 27000, 0.2);
  cust("c2", "Marion", 5000, 0.8);
  Check(dirty.AddTable({"orders", "id", "prob", {{"cidfk", "customer"}}}));
  Check(dirty.AddTable({"customer", "id", "prob", {}}));

  CleanAnswerEngine engine(&db, &dirty);

  const char* q2 =
      "select o.id, c.id from orders o, customer c "
      "where o.cidfk = c.id and c.balance > 10000";
  std::printf("Example 6 (q2), orders of customers with balance > $10K:\n"
              "  %s\n%s\n",
              q2, engine.Query(q2)->ToString().c_str());

  // Example 7 (q3): outside the rewritable class.
  const char* q3 =
      "select c.id from orders o, customer c "
      "where o.quantity < 5 and o.cidfk = c.id and c.balance > 25000";
  std::printf("Example 7 (q3): %s\n", q3);
  auto check = engine.Check(q3);
  Check(check.status());
  std::printf("Rewritable? %s\n  reason: %s\n",
              check->rewritable ? "yes" : "NO",
              check->reason.c_str());

  // The naive oracle still answers it (exponentially).
  NaiveCandidateEvaluator naive(&db, &dirty);
  auto exact = naive.Evaluate(q3);
  Check(exact.status());
  std::printf("Candidate-enumeration answer (ground truth):\n%s",
              exact->ToString().c_str());
  std::printf("(Grouping-and-summing would wrongly report 0.45 for c1 -- "
              "see the paper's Example 7.)\n");
}

}  // namespace

int main() {
  Figure1();
  Figure2();
  return 0;
}
