// End-to-end pipeline on generated dirty TPC-H data (paper Section 5):
// generate -> propagate identifiers -> assign probabilities (Fig. 5) ->
// index -> rewrite and answer the thirteen paper queries.
//
// Run:  ./build/examples/tpch_clean_answers [scale_milli] [if]
//   scale_milli: scale factor in thousandths of TPC-H 1GB (default 2)
//   if:          inconsistency factor (default 3)

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "core/clean_engine.h"
#include "gen/tpch_dirty.h"
#include "gen/tpch_queries.h"
#include "prob/assigner.h"

using namespace conquer;

int main(int argc, char** argv) {
  int sf_milli = argc > 1 ? std::atoi(argv[1]) : 2;
  int iff = argc > 2 ? std::atoi(argv[2]) : 3;

  TpchDirtyConfig config;
  config.scale_factor = sf_milli / 1000.0;
  config.inconsistency_factor = iff;
  // Leave probabilities unset and identifiers unpropagated: this example
  // runs the full offline pipeline itself.
  config.fill_probabilities = false;
  config.propagate_identifiers = false;

  std::printf("Generating dirty TPC-H (sf=%.3f, if=%d)...\n",
              config.scale_factor, iff);
  Timer timer;
  auto gen = MakeTpchDirtyDatabase(config);
  if (!gen.ok()) {
    std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
    return 1;
  }
  std::printf("  %zu total tuples in %.2fs\n\n", gen->TotalRows(),
              timer.ElapsedSeconds());

  // Offline step 1: identifier propagation (paper Section 2.1).
  timer.Restart();
  auto prop = gen->Propagate();
  if (!prop.ok()) {
    std::fprintf(stderr, "%s\n", prop.status().ToString().c_str());
    return 1;
  }
  std::printf("Identifier propagation: %zu foreign keys rewritten "
              "(%zu dangling) in %.2fs\n",
              prop->rows_updated, prop->dangling_references,
              timer.ElapsedSeconds());

  // Offline step 2: probability assignment (paper Fig. 5) per dirty table.
  timer.Restart();
  size_t assigned = 0;
  for (const DirtyTableInfo& info : gen->dirty.tables()) {
    auto table = gen->db->GetTable(info.table_name);
    if (!table.ok()) continue;
    auto details = AssignProbabilities(*table, info);
    if (!details.ok()) {
      std::fprintf(stderr, "assigning %s: %s\n", info.table_name.c_str(),
                   details.status().ToString().c_str());
      return 1;
    }
    assigned += details->size();
  }
  std::printf("Probability assignment: %zu tuples in %.2fs\n", assigned,
              timer.ElapsedSeconds());

  // Offline step 3: indexes + statistics (the paper's RUNSTATS).
  timer.Restart();
  if (Status s = gen->BuildIndexesAndStats(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Indexes + statistics in %.2fs\n\n", timer.ElapsedSeconds());

  // Online: the thirteen paper queries, original vs rewritten.
  CleanAnswerEngine engine(gen->db.get(), &gen->dirty);
  std::printf("%-4s %12s %12s %8s %10s %s\n", "Q", "orig (ms)", "rewr (ms)",
              "ratio", "answers", "max-prob answer");
  for (const TpchQuery& q : TpchQueries()) {
    Timer t1;
    auto original = gen->db->Query(q.sql);
    double orig_ms = t1.ElapsedMillis();
    if (!original.ok()) {
      std::fprintf(stderr, "Q%d: %s\n", q.number,
                   original.status().ToString().c_str());
      return 1;
    }
    Timer t2;
    auto answers = engine.Query(q.sql);
    double rewr_ms = t2.ElapsedMillis();
    if (!answers.ok()) {
      std::fprintf(stderr, "Q%d: %s\n", q.number,
                   answers.status().ToString().c_str());
      return 1;
    }
    double best = 0;
    for (const CleanAnswer& a : answers->answers) {
      if (a.probability > best) best = a.probability;
    }
    std::printf("Q%-3d %12.1f %12.1f %7.2fx %10zu p=%.3f\n", q.number,
                orig_ms, rewr_ms, rewr_ms / (orig_ms > 0 ? orig_ms : 1),
                answers->answers.size(), best);
  }
  std::printf("\n(The paper's Figure 8 claim: the rewritten query stays "
              "within ~1.5x of the original\nfor all queries but the "
              "six-join Q9.)\n");
  return 0;
}
