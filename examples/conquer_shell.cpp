// Interactive shell over a saved (or generated) dirty database.
//
// Run:  ./build/examples/conquer_shell [dir]
//   dir: a directory written by SaveDatabase; when omitted, a small dirty
//        TPC-H database is generated in memory.
//
// Commands:
//   <select ...>;          ordinary SQL over the dirty data
//                          (EXPLAIN / EXPLAIN ANALYZE prefixes work here)
//   .clean <select ...>;   clean answers (probability per answer)
//   .rewrite <select ...>; show the RewriteClean SQL
//   .check <select ...>;   rewritability verdict (Dfn 7)
//   .explain <select ...>; physical plan
//   .prepare <name> <select ...>;  prepare a statement ('?' placeholders)
//   .exec <name> [v1, v2, ...];    execute it with bound parameters
//   .stats                 toggle per-query timing/operator stats
//   .sessions              serving-layer stats (plan cache, admission)
//   .threads <n>           worker threads for parallel execution (1 = off)
//   .tables                list tables
//   .save <dir>            persist the database
//   .quit
//
// Plain SQL runs through a QueryService session, so repeated statements hit
// the plan cache (visible in .sessions / .stats output).

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "core/clean_engine.h"
#include "engine/persist.h"
#include "engine/service.h"
#include "gen/tpch_dirty.h"
#include "prob/incremental.h"

using namespace conquer;

namespace {

void PrintStatus(const Status& s) {
  std::printf("error: %s\n", s.ToString().c_str());
}

/// Parses a comma-separated parameter list: integers, doubles, 'strings'
/// (with '' escaping) and NULL.
Result<std::vector<Value>> ParseParams(const std::string& text) {
  std::vector<Value> params;
  size_t pos = 0;
  auto skip_ws = [&] {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  };
  skip_ws();
  while (pos < text.size()) {
    if (text[pos] == '\'') {
      std::string s;
      ++pos;
      while (true) {
        if (pos >= text.size()) {
          return Status::InvalidArgument("unterminated string parameter");
        }
        if (text[pos] == '\'') {
          if (pos + 1 < text.size() && text[pos + 1] == '\'') {
            s += '\'';
            pos += 2;
            continue;
          }
          ++pos;
          break;
        }
        s += text[pos++];
      }
      params.push_back(Value::String(std::move(s)));
    } else {
      size_t start = pos;
      while (pos < text.size() && text[pos] != ',') ++pos;
      std::string tok = text.substr(start, pos - start);
      while (!tok.empty() &&
             std::isspace(static_cast<unsigned char>(tok.back()))) {
        tok.pop_back();
      }
      if (tok.empty()) {
        return Status::InvalidArgument("empty parameter in list");
      }
      if (EqualsIgnoreCase(tok, "null")) {
        params.push_back(Value::Null());
      } else if (tok.find_first_of(".eE") != std::string::npos) {
        params.push_back(Value::Double(std::atof(tok.c_str())));
      } else {
        params.push_back(Value::Int(std::atoll(tok.c_str())));
      }
    }
    skip_ws();
    if (pos < text.size()) {
      if (text[pos] != ',') {
        return Status::InvalidArgument("expected ',' between parameters");
      }
      ++pos;
      skip_ws();
    }
  }
  return params;
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<Database> owned_db;
  DirtySchema dirty;
  std::unique_ptr<TpchDirtyDatabase> generated;
  Database* db = nullptr;

  if (argc > 1) {
    auto loaded = LoadDatabase(argv[1], &dirty);
    if (!loaded.ok()) {
      PrintStatus(loaded.status());
      return 1;
    }
    owned_db = std::move(loaded).value();
    db = owned_db.get();
    std::printf("Loaded database from %s\n", argv[1]);
  } else {
    TpchDirtyConfig config;
    config.scale_factor = 0.002;
    config.inconsistency_factor = 3;
    auto gen = MakeTpchDirtyDatabase(config);
    if (!gen.ok()) {
      PrintStatus(gen.status());
      return 1;
    }
    generated = std::make_unique<TpchDirtyDatabase>(std::move(gen).value());
    if (Status s = generated->BuildIndexesAndStats(); !s.ok()) {
      PrintStatus(s);
      return 1;
    }
    dirty = generated->dirty;
    db = generated->db.get();
    std::printf("Generated dirty TPC-H (sf=0.002, if=3), %zu tuples.\n",
                generated->TotalRows());
  }

  // Writes through the session (INSERT/UPDATE/DELETE) renormalize the
  // touched dirty clusters, so .clean stays meaningful after edits.
  if (Status s = InstallIncrementalMaintenance(db, &dirty); !s.ok()) {
    PrintStatus(s);
    return 1;
  }

  CleanAnswerEngine engine(db, &dirty);
  QueryService service(db);
  std::unique_ptr<Session> session = service.CreateSession("shell");
  std::printf("Type .help for commands; statements end with ';'.\n");

  bool show_stats = false;
  std::string buffer;
  std::string line;
  while (std::printf("conquer> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    buffer += line;
    if (buffer.empty()) continue;
    // Dot-commands without arguments execute immediately.
    if (buffer == ".quit" || buffer == ".exit") break;
    if (buffer == ".help") {
      std::printf(
          "  select ...;            ordinary SQL\n"
          "  .clean select ...;     clean answers with probabilities\n"
          "  .rewrite select ...;   show RewriteClean output\n"
          "  .check select ...;     rewritability verdict\n"
          "  .explain select ...;   physical plan\n"
          "  .prepare <name> select ...;  prepare ('?' placeholders allowed)\n"
          "  .exec <name> v1, v2, ...;    run a prepared statement\n"
          "  .stats                 toggle per-query stats (phases + operators)\n"
          "  .sessions              serving-layer stats (plan cache, admission)\n"
          "  .threads <n>           worker threads for parallel execution\n"
          "  .memory_budget <size>  cap resident chunk bytes (64m, 2g,\n"
          "                         unlimited); excess spills to disk\n"
          "  .tables                list tables\n"
          "  .save <dir>            persist database (binary segments)\n"
          "  .quit\n");
      buffer.clear();
      continue;
    }
    if (buffer == ".stats") {
      show_stats = !show_stats;
      std::printf("per-query stats %s\n", show_stats ? "on" : "off");
      buffer.clear();
      continue;
    }
    if (buffer == ".sessions") {
      const ServiceStats ss = service.stats();
      std::printf(
          "sessions created:    %llu\n"
          "queries executed:    %llu  (%llu errors, %llu prepared)\n"
          "plan cache:          %llu hits / %llu misses (%.1f%% hit rate), "
          "%zu entries\n"
          "  invalidated:       %llu  evicted: %llu  reprepares: %llu\n"
          "admission:           %llu admitted, %llu waited, peak %zu "
          "concurrent (max %zu)\n",
          static_cast<unsigned long long>(ss.sessions_created),
          static_cast<unsigned long long>(ss.queries_executed),
          static_cast<unsigned long long>(ss.query_errors),
          static_cast<unsigned long long>(ss.prepared_executions),
          static_cast<unsigned long long>(ss.plan_cache.hits),
          static_cast<unsigned long long>(ss.plan_cache.misses),
          100.0 * ss.plan_cache.hit_rate(), ss.plan_cache.entries,
          static_cast<unsigned long long>(ss.plan_cache.invalidated),
          static_cast<unsigned long long>(ss.plan_cache.evicted),
          static_cast<unsigned long long>(ss.reprepares),
          static_cast<unsigned long long>(ss.admission.admitted),
          static_cast<unsigned long long>(ss.admission.waited),
          ss.admission.peak_active, service.max_concurrent_queries());
      for (const std::string& name : session->PreparedNames()) {
        const PreparedStatement* ps = session->GetPrepared(name);
        std::printf("  prepared %-10s (%d params): %s\n", name.c_str(),
                    ps->num_params, ps->sql.c_str());
      }
      buffer.clear();
      continue;
    }
    if (buffer == ".tables") {
      for (const std::string& name : db->catalog().TableNames()) {
        auto t = db->GetTable(name);
        std::printf("  %-12s %zu rows%s\n", name.c_str(),
                    t.ok() ? (*t)->num_rows() : 0,
                    dirty.Find(name) != nullptr ? "  [dirty]" : "");
      }
      buffer.clear();
      continue;
    }
    if (buffer.rfind(".threads ", 0) == 0) {
      int n = std::atoi(buffer.substr(9).c_str());
      if (n < 1) {
        std::printf("usage: .threads <n>  (n >= 1)\n");
      } else {
        service.SetThreads(static_cast<size_t>(n));
        std::printf("worker threads: %zu%s\n", db->num_threads(),
                    db->num_threads() == 1 ? " (sequential)" : "");
      }
      buffer.clear();
      continue;
    }
    if (buffer.rfind(".memory_budget ", 0) == 0) {
      const std::string arg = buffer.substr(15);
      uint64_t bytes = 0;
      if (!ParseByteSize(arg, &bytes)) {
        std::printf("usage: .memory_budget <bytes|Nk|Nm|Ng|unlimited>\n");
      } else {
        db->SetMemoryBudget(bytes);
        const BufferPool::Stats ps = db->buffer_pool()->stats();
        if (bytes == 0) {
          std::printf("memory budget: unlimited (resident %.1f MB)\n",
                      static_cast<double>(ps.resident_bytes) / (1024.0 * 1024.0));
        } else {
          std::printf("memory budget: %.1f MB (resident %.1f MB, "
                      "%llu chunks evicted so far)\n",
                      static_cast<double>(bytes) / (1024.0 * 1024.0),
                      static_cast<double>(ps.resident_bytes) / (1024.0 * 1024.0),
                      static_cast<unsigned long long>(ps.chunks_evicted));
        }
      }
      buffer.clear();
      continue;
    }
    if (buffer.rfind(".save ", 0) == 0) {
      std::string dir = buffer.substr(6);
      Status s = SaveDatabase(*db, dir, &dirty);
      if (!s.ok()) PrintStatus(s);
      else std::printf("saved to %s\n", dir.c_str());
      buffer.clear();
      continue;
    }
    // Statements wait for a terminating ';'.
    if (buffer.back() != ';') {
      buffer += ' ';
      continue;
    }
    std::string stmt = buffer.substr(0, buffer.size() - 1);
    buffer.clear();

    auto run = [&](const std::string& cmd, const std::string& sql) {
      if (cmd == "clean") {
        QueryStats stats;
        auto answers = engine.Query(sql, show_stats ? &stats : nullptr);
        if (!answers.ok()) return PrintStatus(answers.status());
        answers->SortByProbabilityDesc();
        std::printf("%s", answers->ToString(25).c_str());
        if (show_stats) std::printf("%s", stats.ToString().c_str());
      } else if (cmd == "rewrite") {
        auto rewritten = engine.RewrittenSql(sql);
        if (!rewritten.ok()) return PrintStatus(rewritten.status());
        std::printf("%s\n", rewritten->c_str());
      } else if (cmd == "check") {
        auto check = engine.Check(sql);
        if (!check.ok()) return PrintStatus(check.status());
        if (check->rewritable) {
          std::printf("rewritable (root: FROM entry %d)\n",
                      check->root_from_index);
        } else {
          std::printf("NOT rewritable: %s\n", check->reason.c_str());
        }
      } else if (cmd == "explain") {
        auto plan = db->Explain(sql);
        if (!plan.ok()) return PrintStatus(plan.status());
        std::printf("%s", plan->c_str());
      } else if (cmd == "prepare") {
        // sql here is "<name> <select ...>".
        size_t space = sql.find(' ');
        if (space == std::string::npos) {
          std::printf("usage: .prepare <name> <select ...>;\n");
          return;
        }
        std::string name = sql.substr(0, space);
        Status s = session->Prepare(name, sql.substr(space + 1));
        if (!s.ok()) return PrintStatus(s);
        std::printf("prepared '%s' (%d params)\n", name.c_str(),
                    session->GetPrepared(name)->num_params);
      } else if (cmd == "exec") {
        // sql here is "<name> [v1, v2, ...]".
        size_t space = sql.find(' ');
        std::string name = sql.substr(0, space);
        auto params = ParseParams(
            space == std::string::npos ? "" : sql.substr(space + 1));
        if (!params.ok()) return PrintStatus(params.status());
        QueryStats stats;
        ExecInfo info;
        auto rs = session->ExecutePrepared(name, *params,
                                           show_stats ? &stats : nullptr,
                                           &info);
        if (!rs.ok()) return PrintStatus(rs.status());
        std::printf("%s", rs->ToString(50).c_str());
        if (show_stats) {
          std::printf("plan cache: %s%s\n%s", info.cache_hit ? "hit" : "miss",
                      info.reprepared ? " (reprepared)" : "",
                      stats.ToString().c_str());
        }
      } else {
        // Plain SQL, including EXPLAIN / EXPLAIN ANALYZE prefixes. Runs
        // through the session so repeated statements hit the plan cache.
        QueryStats stats;
        ExecInfo info;
        auto rs = session->Execute(sql, show_stats ? &stats : nullptr, &info);
        if (!rs.ok()) return PrintStatus(rs.status());
        std::printf("%s", rs->ToString(50).c_str());
        if (show_stats) {
          std::printf("plan cache: %s\n%s", info.cache_hit ? "hit" : "miss",
                      stats.ToString().c_str());
        }
      }
    };

    if (stmt.rfind(".clean ", 0) == 0) run("clean", stmt.substr(7));
    else if (stmt.rfind(".rewrite ", 0) == 0) run("rewrite", stmt.substr(9));
    else if (stmt.rfind(".check ", 0) == 0) run("check", stmt.substr(7));
    else if (stmt.rfind(".explain ", 0) == 0) run("explain", stmt.substr(9));
    else if (stmt.rfind(".prepare ", 0) == 0) run("prepare", stmt.substr(9));
    else if (stmt.rfind(".exec ", 0) == 0) run("exec", stmt.substr(6));
    else run("sql", stmt);
  }
  return 0;
}
