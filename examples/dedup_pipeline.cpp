// Deduplication pipeline on bibliographic data (paper Section 4): cluster
// summaries (DCFs), information-loss distances, probability assignment,
// and clean answers over the annotated result.
//
// Run:  ./build/examples/dedup_pipeline

#include <algorithm>
#include <cstdio>

#include "core/clean_engine.h"
#include "gen/cora.h"
#include "prob/assigner.h"
#include "prob/matcher.h"

using namespace conquer;

int main() {
  // 1. A Cora-like citations table: duplicate citations as integrated from
  //    several sources (no probabilities yet).
  CoraConfig config;
  config.num_clusters = 6;
  config.min_cluster_size = 2;
  config.max_cluster_size = 9;
  DirtyTableInfo info;
  auto table = MakeCoraLikeTable(config, &info);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("Generated %zu citation tuples in %zu clusters.\n",
              (*table)->num_rows(), config.num_clusters);

  // 1b. Pretend the clustering is unknown: run the baseline LIMBO-family
  //     matcher and compare its cluster count against the ground truth.
  {
    MatcherOptions match;
    match.exclude_columns = {"id", "prob"};
    auto found = MatchTuples(**table, match);
    if (found.ok()) {
      std::printf("Baseline matcher re-discovers %zu clusters "
                  "(ground truth: %zu).\n\n",
                  found->num_clusters, config.num_clusters);
    }
  }

  // 2. Assign probabilities with the paper's Fig. 5 algorithm.
  auto details = AssignProbabilities(table->get(), info);
  if (!details.ok()) {
    std::fprintf(stderr, "%s\n", details.status().ToString().c_str());
    return 1;
  }

  // Show one cluster's internal ranking.
  std::printf("Cluster 'pub0' ranked by assigned probability:\n");
  std::vector<TupleProbability> ranked;
  for (const TupleProbability& t : *details) {
    if ((*table)->row(t.row)[0].string_value() == "pub0") ranked.push_back(t);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const TupleProbability& a, const TupleProbability& b) {
                     return a.probability > b.probability;
                   });
  for (const TupleProbability& t : ranked) {
    const Row& r = (*table)->row(t.row);
    std::printf("  p=%.3f d=%.4f  %s | %s | %s\n", t.probability, t.distance,
                r[1].string_value().c_str(), r[2].string_value().c_str(),
                r[3].string_value().c_str());
  }

  // 3. Load into a database and answer clean queries over it.
  Database db;
  if (Status s = db.mutable_catalog()->AddTable(std::move(*table)).status();
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  DirtySchema dirty;
  if (Status s = dirty.AddTable(info); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  CleanAnswerEngine engine(&db, &dirty);
  // Query on the venue of the first cluster's canonical citation.
  auto citations = db.GetTable("citations");
  if (!citations.ok()) return 1;
  std::string venue = (*citations)->row(0)[3].string_value();
  std::string query =
      "select id, venue from citations c where venue = '" + venue + "'";
  std::printf("\nWhich publications appeared in '%s'?\n  %s\n\n",
              venue.c_str(), query.c_str());
  auto answers = engine.Query(query.c_str());
  if (!answers.ok()) {
    std::fprintf(stderr, "%s\n", answers.status().ToString().c_str());
    return 1;
  }
  answers->SortByProbabilityDesc();
  std::printf("%s", answers->ToString(20).c_str());
  std::printf("\nEach probability sums the clusters' duplicate evidence for "
              "the venue value;\nformat variants and misclustered tuples "
              "lower it without erasing the answer.\n");
  return 0;
}
